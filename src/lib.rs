//! Umbrella crate for the RUM reproduction workspace.
//!
//! This crate exists to host the workspace-level examples (`examples/`) and
//! integration tests (`tests/`); the functionality lives in the member
//! crates, re-exported here for convenience:
//!
//! * [`openflow`] — OpenFlow 1.0 protocol model and wire codec.
//! * [`simnet`] — deterministic discrete-event network simulator.
//! * [`ofswitch`] — software OpenFlow switch with buggy-barrier behaviour
//!   models.
//! * [`controller`] — consistent-update controller and experiment scenarios.
//! * [`rum`] — the RUM layer itself (acknowledgment techniques, probing,
//!   reliable barriers).
//! * [`rum_tcp`] — the TCP proxy deployment of RUM.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use controller;
pub use ofswitch;
pub use openflow;
pub use rum;
pub use rum_tcp;
pub use simnet;

/// A convenience prelude for examples and quick experiments.
pub mod prelude {
    pub use controller::scenarios::{BulkUpdateScenario, TriangleScenario};
    pub use controller::{
        AckMode, ConnId, Controller, FailurePolicy, SessionEffect, SessionInput, SessionOutcome,
        UpdatePlan, UpdateSession,
    };
    pub use ofswitch::{BarrierMode, FaultPlan, SwitchModel};
    pub use openflow::{Action, OfMatch, OfMessage, PacketHeader};
    pub use rum::{
        deploy, Effect, Input, ProxyStats, RumBuilder, RumEngine, RumHandle, SwitchId,
        TechniqueConfig,
    };
    pub use rum_tcp::{RumTcpProxy, TcpUpdateController};
    pub use simnet::OpenFlowSwitch;
    pub use simnet::{SimTime, Simulator};
}
