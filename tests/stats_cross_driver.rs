//! Cross-driver equivalence for the unified [`rum::ProxyStats`] surface.
//!
//! Both deployments of the RUM engine — the discrete-event simulator and
//! the real-socket TCP proxy — derive their statistics from the *same*
//! telemetry registry counters inside the engine (`RumEngine::stats`), so
//! neither driver can drift its own ad-hoc tally.  This test locks that in:
//! a deterministic plan (static timeout, fine-grained acks, window 1, no
//! probes, no faults) must produce identical per-switch and aggregate stats
//! on both drivers, counter for counter.

use controller::{AckMode, Controller, SessionOutcome, TriangleScenario, UpdateSession};
use ofswitch::SwitchModel;
use rum::{deploy, ProxyStats, RumBuilder, SwitchId, TechniqueConfig};
use rum_tcp::{spawn_switch, wait_for, ProxyConfig, RumTcpProxy, TcpUpdateController};
use simnet::OpenFlowSwitch;
use simnet::{SimTime, Simulator};
use std::time::Duration;

const N_FLOWS: u32 = 4;
const HOLD_DOWN: Duration = Duration::from_millis(15);
/// Window 1 serialises the plan: with no probes and no faults, every
/// counter of every switch is a pure function of the plan.
const WINDOW: usize = 1;
const N_SWITCHES: usize = 3;

fn scenario() -> TriangleScenario {
    TriangleScenario {
        n_flows: N_FLOWS,
        packets_per_sec: 0,
        ..Default::default()
    }
}

fn technique() -> TechniqueConfig {
    TechniqueConfig::StaticTimeout { delay: HOLD_DOWN }
}

/// Per-switch stats plus the engine's aggregate, in switch order.
fn simnet_stats() -> (Vec<ProxyStats>, ProxyStats) {
    let mut sim = Simulator::new(21);
    let net = scenario().build(&mut sim);
    let switches = [net.s1, net.s2, net.s3];
    let ctrl = Controller::new(
        "ctrl",
        net.plan.clone(),
        AckMode::RumAcks,
        WINDOW,
        SimTime::from_millis(5),
    );
    let ctrl_id = sim.add_node(ctrl);
    let builder = RumBuilder::new(switches.len()).technique(technique());
    let (proxies, handle) = deploy(&mut sim, builder, ctrl_id, &switches);
    sim.node_mut::<Controller>(ctrl_id)
        .unwrap()
        .set_connections(proxies.clone());
    for (i, sw) in switches.iter().enumerate() {
        sim.node_mut::<OpenFlowSwitch>(*sw)
            .unwrap()
            .connect_controller(proxies[i]);
    }
    sim.run_until(SimTime::from_secs(10));
    let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
    assert!(ctrl.is_complete(), "simnet run stalled");
    let per_switch = (0..N_SWITCHES)
        .map(|i| handle.stats(SwitchId::new(i)))
        .collect();
    (per_switch, handle.total_stats())
}

fn tcp_stats() -> (Vec<ProxyStats>, ProxyStats) {
    let plan = scenario().plan();
    let session = UpdateSession::new(plan, AckMode::RumAcks, WINDOW);
    let controller = TcpUpdateController::new("127.0.0.1:0".parse().unwrap(), session, N_SWITCHES);
    let ctrl_handle = controller.start().expect("controller starts");
    let proxy = RumTcpProxy::new(
        ProxyConfig {
            listen_addr: "127.0.0.1:0".parse().unwrap(),
            controller_addr: ctrl_handle.local_addr,
        },
        RumBuilder::new(N_SWITCHES).technique(technique()),
    );
    let proxy_handle = proxy.start().expect("proxy starts");

    // Connect S1, S2, S3 in order so ConnId/SwitchId match the plan refs.
    let models = [
        SwitchModel::faithful(),
        SwitchModel::hp5406zl(),
        SwitchModel::faithful(),
    ];
    let mut switches = Vec::new();
    for (i, model) in models.into_iter().enumerate() {
        switches.push(spawn_switch(proxy_handle.local_addr, model).expect("switch connects"));
        assert!(
            wait_for(
                || ctrl_handle.connections() == i + 1,
                Duration::from_secs(5)
            ),
            "switch {i} did not reach the controller"
        );
    }

    let outcome = ctrl_handle
        .wait_for_outcome(Duration::from_secs(30))
        .expect("TCP run must finish");
    assert!(matches!(outcome, SessionOutcome::Completed { .. }));
    let per_switch = (0..N_SWITCHES)
        .map(|i| proxy_handle.stats(SwitchId::new(i)))
        .collect();
    let total = proxy_handle.total_stats();
    ctrl_handle.shutdown();
    proxy_handle.shutdown();
    (per_switch, total)
}

#[test]
fn both_drivers_report_identical_proxy_stats() {
    let (sim_per_switch, sim_total) = simnet_stats();
    let (tcp_per_switch, tcp_total) = tcp_stats();

    assert_eq!(
        sim_per_switch, tcp_per_switch,
        "per-switch stats must match counter for counter across drivers"
    );
    assert_eq!(sim_total, tcp_total, "aggregate stats must match");

    // And the run actually exercised the counters: the monitored switches
    // saw the plan's modifications and acked every one of them.
    let mods: u64 = sim_per_switch.iter().map(|s| s.controller_flow_mods).sum();
    let acks: u64 = sim_per_switch.iter().map(|s| s.acks_sent).sum();
    assert_eq!(mods, 2 * N_FLOWS as u64);
    assert_eq!(acks, mods, "every modification must be acked exactly once");
    assert_eq!(sim_total.controller_flow_mods, mods);
    assert_eq!(sim_total.unconfirmed, 0);
}
