//! Restart re-convergence properties (the paper's harshest adversary: a
//! full switch reboot — tables wiped, control channel dropped — mid-update):
//!
//! 1. Across randomly sampled seeds and restart points, the probing
//!    techniques never emit a false confirmation *and* — because the RUM
//!    proxy re-issues every unconfirmed modification on the reattach — the
//!    whole plan still converges: zero missed acks, on both drivers.
//! 2. The same seed produces identical restart verdicts on the simulator
//!    driver and the real-socket driver, mirroring `tests/fault_matrix.rs`:
//!    the adversary (wipe point, reboot) is transport-independent, so the
//!    verdict grid must be too — including for the baselines, whose false
//!    and missed acks under a restart are part of the soundness map.

use ofswitch::{FaultPlan, SwitchModel};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rum::TechniqueConfig;
use rum_bench::scenario_matrix::{
    run_simnet_cell, run_tcp_cell, FaultModel, MatrixCell, MatrixTechnique,
};
use std::time::Duration;

const N_RULES: usize = 6;

fn probing_techniques() -> [MatrixTechnique; 2] {
    [
        MatrixTechnique::Rum(TechniqueConfig::SequentialProbing {
            batch_size: 3,
            probe_interval: Duration::from_millis(10),
        }),
        MatrixTechnique::Rum(TechniqueConfig::default_general()),
    ]
}

fn restart_fault(model: SwitchModel, seed: u64, after_mods: u64) -> FaultModel {
    FaultModel {
        name: "restart",
        model,
        faults: FaultPlan::seeded(seed).with_restart_after(after_mods),
    }
}

fn assert_probing_survived(cell: &MatrixCell, context: &str) {
    assert_eq!(
        cell.false_acks, 0,
        "{context}: probing must never acknowledge falsely across a restart: {cell:?}"
    );
    assert_eq!(
        cell.missed_acks, 0,
        "{context}: the re-issued plan must converge after the reattach: {cell:?}"
    );
    assert_eq!(cell.confirmed, N_RULES, "{context}: {cell:?}");
    assert!(
        cell.completion_ms.is_some(),
        "{context}: a converged update reports a completion time: {cell:?}"
    );
}

/// Property: for sampled `(seed, restart point)` pairs, both probing
/// techniques survive the restart on the simulator driver — zero false acks
/// (soundness) and zero missed acks (re-convergence).  One sampled pair is
/// additionally replayed on the TCP driver per technique, so the property
/// is exercised over real sockets too without taking minutes.
#[test]
fn probing_survives_restarts_without_false_or_missed_acks() {
    let mut rng = SmallRng::seed_from_u64(0x4E57_A127);
    for round in 0..4 {
        let seed = rng.next_u64();
        // Restart anywhere in the plan, including after the very first
        // accepted modification (which for probing techniques is RUM's own
        // catch rule — any modification can trip the reboot counter).
        let after_mods = 1 + rng.gen_range_u64(N_RULES as u64);
        let fault = restart_fault(SwitchModel::hp5406zl(), seed, after_mods);
        for technique in probing_techniques() {
            let cell = run_simnet_cell(&technique, &fault, N_RULES, seed);
            assert_probing_survived(
                &cell,
                &format!("round {round} (seed {seed}, restart after {after_mods})"),
            );
        }
    }
    // The same property over real sockets, one sampled pair per technique.
    let seed = rng.next_u64();
    let after_mods = 1 + rng.gen_range_u64(N_RULES as u64);
    let fault = restart_fault(SwitchModel::fast_buggy(), seed, after_mods);
    for technique in probing_techniques() {
        let cell = run_tcp_cell(&technique, &fault, N_RULES);
        assert_probing_survived(
            &cell,
            &format!("tcp (seed {seed}, restart after {after_mods})"),
        );
    }
}

/// Cross-driver determinism for the restart column: one seeded mid-plan
/// reboot, two transports, identical verdicts — for general probing (which
/// must fully re-converge) and for the barrier-only baseline (whose false
/// and missed acks around the wipe point are a pure function of the seed
/// and the restart counter, not of the transport).
#[test]
fn same_seed_same_restart_verdicts_on_both_drivers() {
    let seed = 0xB007u64;
    let after_mods = (N_RULES as u64).div_ceil(2);

    for technique in [
        MatrixTechnique::Rum(TechniqueConfig::default_general()),
        MatrixTechnique::BarrierOnly,
    ] {
        let sim_cell = run_simnet_cell(
            &technique,
            &restart_fault(SwitchModel::hp5406zl(), seed, after_mods),
            N_RULES,
            seed,
        );
        let tcp_cell = run_tcp_cell(
            &technique,
            &restart_fault(SwitchModel::fast_buggy(), seed, after_mods),
            N_RULES,
        );
        assert_eq!(
            sim_cell.false_acks, tcp_cell.false_acks,
            "{technique:?}: {sim_cell:?} vs {tcp_cell:?}"
        );
        assert_eq!(
            sim_cell.missed_acks, tcp_cell.missed_acks,
            "{technique:?}: {sim_cell:?} vs {tcp_cell:?}"
        );
        assert_eq!(
            sim_cell.confirmed, tcp_cell.confirmed,
            "{technique:?}: {sim_cell:?} vs {tcp_cell:?}"
        );
        match &technique {
            // The baseline sits on the other side of the soundness map: the
            // modifications confirmed before the reboot were never in the
            // data plane (false acks), the rest are never re-sent (missed).
            MatrixTechnique::BarrierOnly => {
                assert_eq!(
                    sim_cell.false_acks + sim_cell.missed_acks,
                    N_RULES,
                    "every rule is either falsely confirmed or lost: {sim_cell:?}"
                );
                assert!(sim_cell.false_acks > 0, "{sim_cell:?}");
                assert!(sim_cell.missed_acks > 0, "{sim_cell:?}");
            }
            _ => assert_probing_survived(&sim_cell, "general probing under restart"),
        }
    }
}
