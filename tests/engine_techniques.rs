//! Table-driven test of the sans-IO [`rum::RumEngine`]: all five
//! acknowledgment techniques driven **directly** — no simulator — through a
//! ~100-line in-test harness (virtual clock + three emulated switch flow
//! tables on the paper's A–B–C chain), then cross-checked against the
//! simulator deployment: the engine must confirm the same cookies in the
//! same order whether it is driven by the test harness or by `RumProxy`
//! inside `simnet`.  That equivalence is the point of the sans-IO redesign:
//! one core, any driver.

use ofswitch::FlowTable;
use openflow::constants::port;
use openflow::messages::{FlowMod, PacketIn};
use openflow::{Action, OfMatch, OfMessage, PacketHeader, PortNo};
use rum::{Effect, Input, RumBuilder, SwitchId, SwitchPortMap, TechniqueConfig, TimerToken};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::net::Ipv4Addr;
use std::time::Duration;

const N_RULES: usize = 10;
const A: usize = 0;
const B: usize = 1;
const C: usize = 2;
/// Control-plane latency of the emulated switches (barrier replies).
const CTRL_LAT: Duration = Duration::from_millis(1);
/// Data-plane activation lag: a rule only matches packets this long after
/// the switch accepted it (the paper's central phenomenon).
const ACT_LAG: Duration = Duration::from_millis(50);
/// One link hop.
const LINK_LAT: Duration = Duration::from_millis(1);

/// The A–B–C chain: A:2 <-> B:1, B:2 <-> C:1.
fn link(sw: usize, out_port: PortNo) -> Option<(usize, PortNo)> {
    match (sw, out_port) {
        (A, 2) => Some((B, 1)),
        (B, 1) => Some((A, 2)),
        (B, 2) => Some((C, 1)),
        (C, 1) => Some((B, 2)),
        _ => None,
    }
}

fn port_maps() -> Vec<SwitchPortMap> {
    let mut a = SwitchPortMap::default();
    a.port_to_switch.insert(2, SwitchId::new(B));
    a.inject_via = Some((SwitchId::new(B), 1));
    let mut b = SwitchPortMap::default();
    b.port_to_switch.insert(1, SwitchId::new(A));
    b.port_to_switch.insert(2, SwitchId::new(C));
    b.inject_via = Some((SwitchId::new(A), 2));
    let mut c = SwitchPortMap::default();
    c.port_to_switch.insert(1, SwitchId::new(B));
    c.inject_via = Some((SwitchId::new(B), 2));
    vec![a, b, c]
}

fn rule(i: usize) -> FlowMod {
    FlowMod::add(
        OfMatch::ipv4_pair(
            Ipv4Addr::new(10, 0, 0, i as u8 + 1),
            Ipv4Addr::new(10, 1, 0, i as u8 + 1),
        ),
        100,
        vec![Action::output(2)],
    )
    .with_cookie(1_000 + i as u64)
}

/// One scheduled harness event.
#[derive(Debug)]
enum Ev {
    /// The controller sends a message on switch `sw`'s connection.
    FromController(usize, OfMessage),
    /// Switch `sw` sends a message towards the controller.
    FromSwitch(usize, OfMessage),
    /// A rule the engine sent to switch `sw` becomes active in its data
    /// plane.
    Activate(usize, FlowMod),
    /// A packet arrives at switch `sw` on `in_port`.
    Packet(usize, PacketHeader, PortNo),
    /// An engine timer expires.
    Timer(u64),
}

struct Item {
    at: Duration,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Item {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Item {}
impl PartialOrd for Item {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Item {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Drives a `RumEngine` against three emulated flow tables, with no
/// simulator in sight, and returns the confirmed cookies in order.
fn drive_engine_directly(technique: TechniqueConfig) -> Vec<u64> {
    let mut engine = RumBuilder::new(3)
        .technique(technique)
        .port_maps(port_maps())
        .build();

    let mut tables = [FlowTable::new(0), FlowTable::new(0), FlowTable::new(0)];
    let mut queue: BinaryHeap<Reverse<Item>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut now = Duration::ZERO;
    let mut confirmed = Vec::new();

    macro_rules! schedule {
        ($at:expr, $ev:expr) => {{
            seq += 1;
            queue.push(Reverse(Item {
                at: $at,
                seq,
                ev: $ev,
            }));
        }};
    }

    // The bulk update: the controller programs switch B, one rule per 2 ms.
    for i in 0..N_RULES {
        schedule!(
            Duration::from_millis(100 + 2 * i as u64),
            Ev::FromController(
                B,
                OfMessage::FlowMod {
                    xid: 1_000 + i as u32,
                    body: rule(i),
                },
            )
        );
    }

    // Engine start-up (catch rules for the probing techniques).
    let start_effects = engine.start(now);
    let mut pending_effects = vec![(now, start_effects)];

    let horizon = Duration::from_secs(60);
    loop {
        // Execute any effects produced by the previous step.
        for (at, effects) in std::mem::take(&mut pending_effects) {
            for effect in effects {
                match effect {
                    Effect::ToSwitch { switch, message } => match message {
                        OfMessage::FlowMod { body, .. } => {
                            schedule!(at + ACT_LAG, Ev::Activate(switch.index(), body));
                        }
                        OfMessage::BarrierRequest { xid } => {
                            // The emulated switch answers barriers from its
                            // control plane, long before ACT_LAG has passed —
                            // the buggy behaviour the paper documents.
                            schedule!(
                                at + CTRL_LAT,
                                Ev::FromSwitch(switch.index(), OfMessage::BarrierReply { xid })
                            );
                        }
                        _ => {}
                    },
                    Effect::InjectVia { switch, message } => {
                        if let OfMessage::PacketOut { body, .. } = message {
                            if let Ok(header) = PacketHeader::from_bytes(&body.data) {
                                for p in Action::output_ports(&body.actions) {
                                    if let Some((peer, in_port)) = link(switch.index(), p) {
                                        schedule!(at + LINK_LAT, Ev::Packet(peer, header, in_port));
                                    }
                                }
                            }
                        }
                    }
                    Effect::ArmTimer { delay, token } => {
                        schedule!(at + delay, Ev::Timer(token.raw()));
                    }
                    Effect::Confirmed { switch, cookie } => {
                        assert_eq!(
                            switch,
                            SwitchId::new(B),
                            "only switch B receives controller rules"
                        );
                        confirmed.push(cookie);
                    }
                    Effect::ToController { .. } => {
                        // Acks / barrier releases; ordering is already
                        // captured through Effect::Confirmed.
                    }
                }
            }
        }

        let Some(Reverse(item)) = queue.pop() else {
            break;
        };
        assert!(item.at <= horizon, "harness did not quiesce: {:?}", item.ev);
        now = now.max(item.at);
        match item.ev {
            Ev::FromController(sw, message) => {
                let fx = engine.handle(
                    now,
                    Input::FromController {
                        switch: SwitchId::new(sw),
                        message,
                    },
                );
                pending_effects.push((now, fx));
            }
            Ev::FromSwitch(sw, message) => {
                let fx = engine.handle(
                    now,
                    Input::FromSwitch {
                        switch: SwitchId::new(sw),
                        message,
                    },
                );
                pending_effects.push((now, fx));
            }
            Ev::Timer(token) => {
                let fx = engine.handle(
                    now,
                    Input::TimerFired {
                        token: TimerToken::from_raw(token),
                    },
                );
                pending_effects.push((now, fx));
            }
            Ev::Activate(sw, fm) => {
                let _ = tables[sw].apply(&fm, now);
            }
            Ev::Packet(sw, header, in_port) => {
                // Data-plane forwarding against the *active* table.
                let Some(entry) = tables[sw].lookup(&header, in_port) else {
                    continue; // no rule yet: dropped, like the real chain
                };
                let actions = entry.actions.clone();
                let (out_header, ports) = Action::apply_list(&actions, &header);
                for p in ports {
                    if p == port::CONTROLLER {
                        // Punted by the catch rule's explicit to-controller
                        // action; the engine (rightly) ignores probe-marked
                        // packets punted for a mere table miss.
                        let pi = PacketIn::unbuffered(
                            in_port,
                            openflow::constants::packet_in_reason::ACTION,
                            out_header.to_bytes(),
                        );
                        schedule!(
                            now + CTRL_LAT,
                            Ev::FromSwitch(sw, OfMessage::PacketIn { xid: 0, body: pi })
                        );
                    } else if let Some((peer, peer_port)) = link(sw, p) {
                        schedule!(now + LINK_LAT, Ev::Packet(peer, out_header, peer_port));
                    }
                }
            }
        }
    }
    confirmed
}

/// Runs the same bulk update through the simulator deployment (`RumProxy`
/// driving the identical engine) and returns the engine's confirm order.
fn drive_engine_through_simulator(technique: TechniqueConfig) -> Vec<u64> {
    use controller::scenarios::BulkUpdateScenario;
    use controller::{AckMode, Controller};
    use ofswitch::SwitchModel;
    use simnet::OpenFlowSwitch;
    use simnet::{SimTime, Simulator};

    let mut sim = Simulator::new(11);
    let scenario = BulkUpdateScenario {
        n_rules: N_RULES,
        packets_per_sec: 0,
        model: SwitchModel::hp5406zl(),
        ..Default::default()
    };
    let net = scenario.build(&mut sim);
    let ctrl = Controller::new(
        "ctrl",
        net.plan.clone(),
        AckMode::RumAcks,
        N_RULES,
        SimTime::from_millis(10),
    );
    let ctrl_id = sim.add_node(ctrl);
    let switches = [net.sw_a, net.sw_b, net.sw_c];
    let builder = RumBuilder::new(switches.len()).technique(technique);
    let (proxies, handle) = rum::deploy(&mut sim, builder, ctrl_id, &switches);
    sim.node_mut::<Controller>(ctrl_id)
        .unwrap()
        .set_connections(vec![proxies[1]]);
    for (idx, sw) in switches.iter().enumerate() {
        sim.node_mut::<OpenFlowSwitch>(*sw)
            .unwrap()
            .connect_controller(proxies[idx]);
    }
    sim.run_until(SimTime::from_secs(30));
    handle
        .confirmed_order()
        .into_iter()
        .map(|(sw, cookie)| {
            assert_eq!(sw, SwitchId::new(1));
            cookie
        })
        .collect()
}

/// The table: every technique, driven both ways, must confirm every rule
/// exactly once and in the same order.
#[test]
fn all_five_techniques_confirm_identically_with_and_without_simulator() {
    let techniques: [(&str, TechniqueConfig); 5] = [
        ("barriers", TechniqueConfig::BarrierBaseline),
        (
            "timeout",
            TechniqueConfig::StaticTimeout {
                delay: Duration::from_millis(300),
            },
        ),
        (
            "adaptive",
            TechniqueConfig::AdaptiveDelay {
                assumed_rate: 200.0,
                assumed_sync_lag: Duration::from_millis(150),
            },
        ),
        ("sequential", TechniqueConfig::default_sequential()),
        ("general", TechniqueConfig::default_general()),
    ];

    let expected: Vec<u64> = (0..N_RULES as u64).map(|i| 1_000 + i).collect();
    for (name, technique) in techniques {
        let direct = drive_engine_directly(technique.clone());
        // Completeness: every cookie confirmed exactly once.
        let mut sorted = direct.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted, expected,
            "{name}: engine-direct drive must confirm every rule exactly once"
        );
        // Equivalence: identical confirm ordering to the RumProxy path.
        let via_sim = drive_engine_through_simulator(technique);
        assert_eq!(
            direct, via_sim,
            "{name}: confirm order must not depend on the driver (sans-IO harness vs simulator)"
        );
    }
}

/// The direct drive needs no port maps for control-plane techniques; the
/// builder's empty default is enough.
#[test]
fn control_plane_techniques_need_no_topology() {
    let mut engine = RumBuilder::new(1)
        .technique(TechniqueConfig::StaticTimeout {
            delay: Duration::from_millis(5),
        })
        .build();
    let sw = SwitchId::new(0);
    engine.start(Duration::ZERO);
    let fx = engine.handle(
        Duration::ZERO,
        Input::FromController {
            switch: sw,
            message: OfMessage::FlowMod {
                xid: 1,
                body: rule(0),
            },
        },
    );
    assert!(fx.iter().any(|e| matches!(
        e,
        Effect::ToSwitch {
            message: OfMessage::BarrierRequest { .. },
            ..
        }
    )));
}
