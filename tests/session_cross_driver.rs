//! Cross-driver equivalence for the sans-IO `UpdateSession`: the simnet
//! driver (`controller::Controller`) and the TCP driver
//! (`rum_tcp::TcpUpdateController`) must confirm the same plan in the same
//! order, because every ordering decision — dependency gating, the window,
//! sorted dispatch — lives in the session, not in the drivers.

use controller::{AckMode, Controller, SessionOutcome, TriangleScenario, UpdateSession};
use ofswitch::SwitchModel;
use rum::{deploy, RumBuilder, TechniqueConfig};
use rum_tcp::{spawn_switch, wait_for, ProxyConfig, RumTcpProxy, TcpUpdateController};
use simnet::OpenFlowSwitch;
use simnet::{SimTime, Simulator};
use std::time::Duration;

const N_FLOWS: u32 = 4;
const HOLD_DOWN: Duration = Duration::from_millis(15);
/// Window 1 serialises the plan, so the confirm order is fully determined
/// by the session's dispatch rule and must not depend on driver timing.
const WINDOW: usize = 1;

fn scenario() -> TriangleScenario {
    TriangleScenario {
        n_flows: N_FLOWS,
        packets_per_sec: 0,
        ..Default::default()
    }
}

fn technique() -> TechniqueConfig {
    TechniqueConfig::StaticTimeout { delay: HOLD_DOWN }
}

fn simnet_confirm_order() -> Vec<u64> {
    let mut sim = Simulator::new(21);
    let net = scenario().build(&mut sim);
    let switches = [net.s1, net.s2, net.s3];
    let ctrl = Controller::new(
        "ctrl",
        net.plan.clone(),
        AckMode::RumAcks,
        WINDOW,
        SimTime::from_millis(5),
    );
    let ctrl_id = sim.add_node(ctrl);
    let builder = RumBuilder::new(switches.len()).technique(technique());
    let (proxies, _handle) = deploy(&mut sim, builder, ctrl_id, &switches);
    sim.node_mut::<Controller>(ctrl_id)
        .unwrap()
        .set_connections(proxies.clone());
    for (i, sw) in switches.iter().enumerate() {
        sim.node_mut::<OpenFlowSwitch>(*sw)
            .unwrap()
            .connect_controller(proxies[i]);
    }
    sim.run_until(SimTime::from_secs(10));
    let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
    assert!(
        ctrl.is_complete(),
        "simnet run stalled at {}/{}",
        ctrl.confirmed_count(),
        2 * N_FLOWS
    );
    ctrl.session().confirmed_order().to_vec()
}

fn tcp_confirm_order() -> Vec<u64> {
    let plan = scenario().plan();
    let session = UpdateSession::new(plan, AckMode::RumAcks, WINDOW);
    let controller = TcpUpdateController::new("127.0.0.1:0".parse().unwrap(), session, 3);
    let ctrl_handle = controller.start().expect("controller starts");
    let proxy = RumTcpProxy::new(
        ProxyConfig {
            listen_addr: "127.0.0.1:0".parse().unwrap(),
            controller_addr: ctrl_handle.local_addr,
        },
        RumBuilder::new(3).technique(technique()),
    );
    let proxy_handle = proxy.start().expect("proxy starts");

    // Connect S1, S2, S3 in order so ConnId/SwitchId match the plan refs.
    let models = [
        SwitchModel::faithful(),
        SwitchModel::hp5406zl(),
        SwitchModel::faithful(),
    ];
    let mut switches = Vec::new();
    for (i, model) in models.into_iter().enumerate() {
        switches.push(spawn_switch(proxy_handle.local_addr, model).expect("switch connects"));
        assert!(
            wait_for(
                || ctrl_handle.connections() == i + 1,
                Duration::from_secs(5)
            ),
            "switch {i} did not reach the controller"
        );
    }

    let outcome = ctrl_handle
        .wait_for_outcome(Duration::from_secs(30))
        .expect("TCP run must finish");
    assert!(matches!(outcome, SessionOutcome::Completed { .. }));
    let order = ctrl_handle.confirmed_order();
    ctrl_handle.shutdown();
    proxy_handle.shutdown();
    order
}

#[test]
fn simnet_and_tcp_drivers_confirm_in_the_same_order() {
    let sim_order = simnet_confirm_order();
    let tcp_order = tcp_confirm_order();
    assert_eq!(sim_order.len(), 2 * N_FLOWS as usize);
    assert_eq!(
        sim_order, tcp_order,
        "the sans-IO session must impose the same confirm order on both drivers"
    );
    // The consistent-update property in the order itself: every S1 flip
    // (cookie >= 100_000) confirms after its S2 install (cookie 1000 + i).
    for i in 0..N_FLOWS {
        let install = TriangleScenario::s2_install_cookie(i);
        let flip = TriangleScenario::s1_flip_cookie(i);
        let pos = |id: u64| sim_order.iter().position(|&x| x == id).unwrap();
        assert!(
            pos(install) < pos(flip),
            "flip {flip} confirmed before install {install}"
        );
    }
}
