//! Cross-driver determinism of the reconciliation subsystem: the same
//! seeded restart produces the *identical* per-round convergence trace on
//! the deterministic simulator and over real TCP sockets.
//!
//! The reconciler is sans-IO and every decision it sees is a pure function
//! of the seed — which rules the reboot wiped (the restart counter), which
//! flow-stats replies the adversary swallows (hash of `(seed, xid)`), and
//! the backoff schedule (deterministic jitter keyed by switch and attempt).
//! So readback contents, diffs and re-requests must line up round-for-round
//! across transports; wall-clock timing may differ, the *observations* may
//! not.  That equality is the `restart_resync` scenario's proof obligation.

use controller::{
    AckMode, BackoffPolicy, Controller, FailurePolicy, ResyncConfig, ResyncRound, ResyncStatus,
    UpdatePlan, UpdateSession,
};
use ofswitch::{FaultPlan, SwitchModel};
use openflow::messages::FlowMod;
use openflow::{Action, DatapathId, OfMatch};
use rum_tcp::{spawn_switch_with, SwitchHostOptions, TcpUpdateController};
use simnet::{OpenFlowSwitch, SimTime, Simulator};
use std::net::Ipv4Addr;
use std::time::Duration;

const N_RULES: u64 = 6;
/// Reboot mid-plan: both sides of the wipe are represented (rules confirmed
/// then erased, and rules never delivered).
const RESTART_AFTER: u64 = 3;

/// The same six-rule plan on both drivers (ids 1..=6, distinct matches).
fn shared_plan() -> UpdatePlan {
    let mut plan = UpdatePlan::new();
    for i in 0..N_RULES {
        plan.add(
            i + 1,
            0,
            FlowMod::add(
                OfMatch::ipv4_pair(
                    Ipv4Addr::new(10, 0, 0, i as u8 + 1),
                    Ipv4Addr::new(10, 1, 0, 1),
                ),
                100,
                vec![Action::output(2)],
            ),
        )
        .unwrap();
    }
    plan
}

/// The preinstalled rule both drivers seed into the desired store; its
/// cookie collides with plan id 1, exercising the reconciler's duplicate-
/// cookie deferral identically on both transports.
fn drop_all() -> FlowMod {
    FlowMod::add(OfMatch::wildcard_all(), 0, Vec::new()).with_cookie(1)
}

/// One reconciler configuration for both drivers — trace equality is only
/// meaningful if the round budget, backoff and delta session match.
fn shared_config() -> ResyncConfig {
    ResyncConfig {
        backoff: BackoffPolicy::new(Duration::from_millis(20), Duration::from_millis(160)),
        max_rounds: 8,
        ack_mode: AckMode::Barriers { batch: 4 },
        window: 8,
        failure_policy: FailurePolicy::retry(Duration::from_millis(100), 2),
    }
}

fn shared_faults(seed: u64, stats_loss_one_in: u32) -> FaultPlan {
    let plan = FaultPlan::seeded(seed).with_restart_after(RESTART_AFTER);
    if stats_loss_one_in > 0 {
        plan.with_stats_reply_loss(stats_loss_one_in)
    } else {
        plan
    }
}

/// Runs the restart + resync scenario on the simulator driver and returns
/// the reconciler's terminal status and full round trace.
fn simnet_trace(seed: u64, stats_loss_one_in: u32) -> (ResyncStatus, Vec<ResyncRound>) {
    let mut sim = Simulator::new(seed);
    let mut controller = Controller::new(
        "ctrl",
        shared_plan(),
        AckMode::NoWait,
        16,
        SimTime::from_millis(1),
    );
    let reconciler = controller.enable_resync(shared_config());
    reconciler.store_mut().note_confirmed(0, &drop_all());
    let ctrl_id = sim.add_node(controller);

    let mut sw = OpenFlowSwitch::with_faults(
        "s1",
        DatapathId::new(1),
        4,
        SwitchModel::faithful(),
        shared_faults(seed, stats_loss_one_in),
    );
    sw.preinstall(&drop_all());
    sw.connect_controller(ctrl_id);
    sw.set_reconnect_delay(Some(Duration::from_millis(50)));
    let sw_id = sim.add_node(sw);
    sim.node_mut::<Controller>(ctrl_id)
        .unwrap()
        .set_connections(vec![sw_id]);
    sim.run_until(SimTime::from_secs(60));

    let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
    let reconciler = ctrl.reconciler().unwrap();
    (
        reconciler.status(0).cloned().expect("resync ran"),
        reconciler.trace(0).to_vec(),
    )
}

/// The same scenario over real sockets.
fn tcp_trace(seed: u64, stats_loss_one_in: u32) -> (ResyncStatus, Vec<ResyncRound>) {
    let session = UpdateSession::new(shared_plan(), AckMode::NoWait, 16);
    let mut ctrl = TcpUpdateController::new("127.0.0.1:0".parse().unwrap(), session, 1);
    let reconciler = ctrl.enable_resync(shared_config());
    reconciler.store_mut().note_confirmed(0, &drop_all());
    let handle = ctrl.start().expect("controller starts");

    let sw = spawn_switch_with(
        handle.local_addr,
        SwitchModel::faithful(),
        SwitchHostOptions {
            faults: shared_faults(seed, stats_loss_one_in),
            preinstall: vec![drop_all()],
            reconnect_delay: Some(Duration::from_millis(50)),
            ..Default::default()
        },
    )
    .expect("switch connects");

    handle
        .wait_for_outcome(Duration::from_secs(5))
        .expect("no-wait session settles");
    assert!(
        handle.wait_for_resync(1, Duration::from_secs(20)),
        "resync must reach a terminal state (seed {seed}, loss 1/{stats_loss_one_in})"
    );
    let (status, trace) = handle
        .with_reconciler(|r| {
            (
                r.status(0).cloned().expect("resync ran"),
                r.trace(0).to_vec(),
            )
        })
        .expect("resync enabled");
    sw.stop();
    handle.shutdown();
    let _ = sw.join();
    (status, trace)
}

/// The tentpole claim: identical convergence traces per seed across
/// drivers — with and without the stats-reply-loss adversary in the
/// readback path.
#[test]
fn same_seed_same_convergence_trace_on_both_drivers() {
    for (seed, loss) in [(7u64, 0u32), (0xBEEF, 3)] {
        let (sim_status, sim_trace) = simnet_trace(seed, loss);
        let (tcp_status, tcp_trace) = tcp_trace(seed, loss);

        assert!(sim_status.converged, "simnet seed {seed}: {sim_status:?}");
        assert!(tcp_status.converged, "tcp seed {seed}: {tcp_status:?}");
        assert_eq!(sim_status.final_diff, 0);
        assert_eq!(tcp_status.final_diff, 0);
        assert_eq!(
            (
                sim_status.rounds,
                sim_status.delta_mods,
                sim_status.re_requests
            ),
            (
                tcp_status.rounds,
                tcp_status.delta_mods,
                tcp_status.re_requests
            ),
            "seed {seed} loss 1/{loss}: terminal status must match across drivers"
        );
        assert_eq!(
            sim_trace, tcp_trace,
            "seed {seed} loss 1/{loss}: convergence traces must be identical cell-for-cell"
        );
        // A wiped table cannot converge in a single round: round 1 sees the
        // empty table, re-issues the delta, and a later readback proves it.
        assert!(sim_trace.len() >= 2, "{sim_trace:?}");
        assert_eq!(sim_trace.first().unwrap().actual, 0, "{sim_trace:?}");
        let last = sim_trace.last().unwrap();
        assert_eq!(last.diff(), 0, "{sim_trace:?}");
        assert_eq!(last.actual as u64, N_RULES + 1, "plan plus drop-all");
    }
}

/// Property, across seeds: the reconciler converges to a zero diff even
/// when the adversary swallows flow-stats replies — the readback loop
/// re-requests under its backoff, and that backoff never exceeds its
/// configured ceiling at any attempt.
#[test]
fn resync_converges_under_stats_reply_loss_across_seeds() {
    let config = shared_config();
    let mut losses_seen = 0u32;
    for seed in 0..6u64 {
        let (status, trace) = simnet_trace(seed, 2);
        assert!(
            status.converged,
            "seed {seed}: must converge despite lost stats replies: {status:?}"
        );
        assert_eq!(status.final_diff, 0, "seed {seed}");
        losses_seen += status.re_requests;
        assert_eq!(
            trace.iter().map(|r| r.re_requests).sum::<u32>(),
            status.re_requests,
            "seed {seed}: trace and status must agree on re-requests"
        );
    }
    assert!(
        losses_seen > 0,
        "a one-in-two loss rate must swallow at least one reply across six seeds"
    );
    // The backoff ceiling holds for every (key, attempt) the readback loop
    // could ever use — jitter shrinks delays, never inflates them.
    for key in 0..64u64 {
        for attempt in 0..32u32 {
            assert!(
                config.backoff.delay(key, attempt) <= Duration::from_millis(160),
                "backoff exceeded its ceiling at key {key}, attempt {attempt}"
            );
        }
    }
}
