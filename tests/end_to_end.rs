//! Workspace-level integration tests: the whole stack (controller → RUM →
//! switches → hosts) exercised together, checking the paper's headline
//! claims at reduced scale.

use controller::scenarios::TriangleScenario;
use controller::{AckMode, Controller};
use ofswitch::SwitchModel;
use rum::{deploy, RumBuilder, TechniqueConfig};
use simnet::OpenFlowSwitch;
use simnet::{SimTime, Simulator};
use std::time::Duration;

struct Run {
    drops: usize,
    migrated: usize,
    delivered: usize,
    complete: bool,
    negative_acks: usize,
    events: u64,
}

fn run_triangle(technique: TechniqueConfig, n_flows: u32, s2_model: SwitchModel, seed: u64) -> Run {
    let mut sim = Simulator::new(seed);
    let scenario = TriangleScenario {
        n_flows,
        packets_per_sec: 250,
        traffic_stop: SimTime::from_secs(5),
        s2_model,
        ..Default::default()
    };
    let net = scenario.build(&mut sim);
    let switches = [net.s1, net.s2, net.s3];
    let controller = Controller::new(
        "ctrl",
        net.plan.clone(),
        AckMode::RumAcks,
        10_000,
        SimTime::from_millis(500),
    );
    let ctrl_id = sim.add_node(controller);
    let builder = RumBuilder::new(switches.len()).technique(technique);
    let (proxies, _handle) = deploy(&mut sim, builder, ctrl_id, &switches);
    sim.node_mut::<Controller>(ctrl_id)
        .unwrap()
        .set_connections(proxies.clone());
    for (i, sw) in switches.iter().enumerate() {
        sim.node_mut::<OpenFlowSwitch>(*sw)
            .unwrap()
            .connect_controller(proxies[i]);
    }
    sim.run_until(SimTime::from_secs(6));

    let summaries = sim.trace().flow_update_summaries();
    let negative_acks = sim
        .trace()
        .activation_delays()
        .iter()
        .filter(|d| d.delay_millis() < 0.0)
        .count();
    Run {
        drops: sim.trace().dropped_packets(None),
        migrated: summaries.values().filter(|s| s.path_changed).count(),
        delivered: sim.trace().delivered_packets(None),
        complete: sim.node_ref::<Controller>(ctrl_id).unwrap().is_complete(),
        negative_acks,
        events: sim.events_processed(),
    }
}

#[test]
fn buggy_switch_with_barrier_baseline_loses_packets() {
    let run = run_triangle(
        TechniqueConfig::BarrierBaseline,
        25,
        SwitchModel::hp5406zl(),
        1,
    );
    assert!(run.complete, "update must finish");
    assert_eq!(run.migrated, 25, "every flow must end up on the new path");
    assert!(run.drops > 0, "premature acks must cause packet loss");
    assert!(run.negative_acks > 0, "acks must precede the data plane");
}

#[test]
fn general_probing_migrates_without_loss_even_on_reordering_switch() {
    let run = run_triangle(
        TechniqueConfig::default_general(),
        25,
        SwitchModel::reordering(),
        2,
    );
    assert!(run.complete, "update must finish");
    assert_eq!(run.migrated, 25);
    assert_eq!(run.drops, 0, "general probing must never lose user packets");
    assert_eq!(run.negative_acks, 0, "no ack may precede the data plane");
    assert!(run.delivered > 0);
}

#[test]
fn sequential_probing_migrates_without_loss_on_early_reply_switch() {
    let run = run_triangle(
        TechniqueConfig::default_sequential(),
        25,
        SwitchModel::hp5406zl(),
        3,
    );
    assert!(run.complete);
    assert_eq!(run.migrated, 25);
    assert_eq!(run.drops, 0);
    assert_eq!(run.negative_acks, 0);
}

#[test]
fn static_timeout_is_safe_on_the_calibrated_switch() {
    let run = run_triangle(
        TechniqueConfig::StaticTimeout {
            delay: Duration::from_millis(300),
        },
        20,
        SwitchModel::hp5406zl(),
        4,
    );
    assert!(run.complete);
    assert_eq!(run.drops, 0);
    assert_eq!(run.negative_acks, 0);
}

#[test]
fn optimistic_adaptive_model_can_misfire() {
    // The paper's "adaptive 250" curve: assuming the switch is faster than it
    // really is makes some acknowledgments premature once the table fills.
    let optimistic = run_triangle(
        TechniqueConfig::AdaptiveDelay {
            assumed_rate: 250.0,
            assumed_sync_lag: Duration::from_millis(150),
        },
        60,
        SwitchModel::hp5406zl(),
        5,
    );
    assert!(optimistic.complete);
    assert!(
        optimistic.negative_acks > 0,
        "an optimistic model must eventually acknowledge too early"
    );

    let conservative = run_triangle(
        TechniqueConfig::AdaptiveDelay {
            assumed_rate: 200.0,
            assumed_sync_lag: SwitchModel::hp5406zl().worst_case_dataplane_lag(),
        },
        60,
        SwitchModel::hp5406zl(),
        5,
    );
    assert!(conservative.complete);
    assert_eq!(conservative.negative_acks, 0);
    assert_eq!(conservative.drops, 0);
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let a = run_triangle(
        TechniqueConfig::default_general(),
        10,
        SwitchModel::hp5406zl(),
        9,
    );
    let b = run_triangle(
        TechniqueConfig::default_general(),
        10,
        SwitchModel::hp5406zl(),
        9,
    );
    assert_eq!(a.events, b.events);
    assert_eq!(a.drops, b.drops);
    assert_eq!(a.delivered, b.delivered);
}

#[test]
fn honest_switch_needs_no_rum_to_be_safe() {
    let run = run_triangle(
        TechniqueConfig::BarrierBaseline,
        15,
        SwitchModel::faithful(),
        6,
    );
    assert!(run.complete);
    assert_eq!(
        run.drops, 0,
        "a specification-compliant switch never breaks the update"
    );
    assert_eq!(run.negative_acks, 0);
}
