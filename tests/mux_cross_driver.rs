//! Cross-driver equivalence of the multi-tenant session multiplexer: the
//! same tenant population, seed and fault plan driven through the
//! discrete-event simulator (`sessiond::MuxController`) and through real
//! loopback sockets (`rum_tcp::TcpMuxController`) must agree — per session
//! — on the confirm order and on the soundness verdicts.
//!
//! All ordering decisions live in the sans-IO `SessionMux` (per-session
//! window 1 in the soak harness), so any divergence between the drivers is
//! a driver bug, not scheduling noise.  This is the acceptance test for
//! the PR's "per-session confirm order identical to simnet for the same
//! seed" claim, at integration-test scale; `bench_results` runs the same
//! harness at 200+ sessions.

use ofswitch::SwitchModel;
use rum_bench::session_soak::{early_reply_fault, run_simnet_soak, run_tcp_soak, SoakConfig};
use std::sync::Arc;
use std::time::Duration;
use telemetry::Registry;

const SEED: u64 = 42;

fn config() -> SoakConfig {
    SoakConfig {
        sessions: 8,
        mods_per_session: 3,
        seed: SEED,
        budget: Duration::from_secs(30),
        global_window: 6,
    }
}

#[test]
fn per_session_confirm_orders_and_verdicts_agree_across_drivers() {
    let cfg = config();
    let registry = Arc::new(Registry::new());
    // The simulated run probes an early-replying hp5406zl; the socket run
    // uses the early-replying fast-buggy model so wall-clock stays small.
    // Soundness verdicts and per-session orders must not depend on either
    // choice: general probing never confirms against the data plane.
    let sim = run_simnet_soak(
        &cfg,
        &early_reply_fault(&SwitchModel::hp5406zl(), SEED),
        &registry,
    );
    let tcp = run_tcp_soak(
        &cfg,
        &early_reply_fault(&SwitchModel::fast_buggy(), SEED),
        &registry,
    );

    // Per-session confirm order: identical for every tenant, and exactly
    // the plan order (the per-session window is 1).
    assert_eq!(sim.per_session_orders.len(), cfg.sessions);
    assert_eq!(tcp.per_session_orders.len(), cfg.sessions);
    let expected: Vec<u64> = (1..=cfg.mods_per_session as u64).collect();
    for (t, (s, w)) in sim
        .per_session_orders
        .iter()
        .zip(&tcp.per_session_orders)
        .enumerate()
    {
        assert_eq!(s, w, "tenant {t}: drivers confirmed in different orders");
        assert_eq!(s, &expected, "tenant {t}: confirm order is not plan order");
    }

    // Per-session verdicts: every tenant completes on both drivers, no
    // false acks, no missed acks, no stray acks — despite the early acks.
    for r in [&sim.record, &tcp.record] {
        assert_eq!(r.completed, cfg.sessions as u64, "{}: incomplete", r.driver);
        assert_eq!(r.aborted, 0, "{}: aborted sessions", r.driver);
        assert_eq!(r.false_acks, 0, "{}: false acks", r.driver);
        assert_eq!(r.missed_acks, 0, "{}: missed acks", r.driver);
        assert_eq!(r.stray_acks, 0, "{}: stray acks", r.driver);
        assert_eq!(
            r.confirmed_mods,
            (cfg.sessions * cfg.mods_per_session) as u64,
            "{}: not every planned modification confirmed",
            r.driver
        );
        assert!(
            r.p999_confirm_ms.is_finite(),
            "{}: unmeasured tail latency",
            r.driver
        );
    }
}
