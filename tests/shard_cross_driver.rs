//! Fleet-scale cross-driver conformance for the sharded engine.
//!
//! The sharding tentpole is only sound if the sans-IO boundary survives it:
//! the simulator driver and the TCP driver must drive the *identical*
//! sharded engine, and the sharded engine must behave byte-identically to
//! the single-engine (pre-shard) oracle.  These property tests check both,
//! over multiple seeds, at a 64-switch fleet:
//!
//! * **cross-driver**: per-switch confirm orders and matrix verdicts are
//!   identical between the simnet run and the TCP run of the same seed;
//! * **cross-engine**: per-switch confirm orders and verdicts are identical
//!   between the 8-shard engine and the unsharded oracle (simnet), and
//!   between the event-loop proxy and the pre-shard thread-per-connection
//!   proxy (TCP);
//! * **soundness**: every run has zero false acks and zero missed acks.
//!
//! The same invariants at 1,000 switches are covered twice: by the ignored
//! [`full_fleet_cross_driver_soundness`] run below (too slow for the
//! default suite; run it with `--ignored`), and continuously by the
//! committed `BENCH_results.json`, whose 1,000-switch rows CI gates through
//! `validate_results --min-matrix-switches 1000`.

use rum_bench::scale::{
    run_simnet_scale_cell_with, run_tcp_scale_cell_with, ScaleCellOutcome, ScaleProxy, SCALE_SHARDS,
};
use rum_bench::scenario_matrix::MatrixCell;
use telemetry::Registry;

/// Fleet width of the default-suite runs; big enough that every shard owns
/// eight switches and the DSCP probe plan must reuse catch codepoints.
const FLEET: usize = 64;
const RULES_PER_SWITCH: usize = 2;
const SEEDS: [u64; 2] = [7, 42];

/// The verdict fields two conforming runs must agree on (completion time is
/// timing, not behaviour, so it is excluded).
fn verdict(cell: &MatrixCell) -> (usize, usize, usize, usize, usize) {
    (
        cell.switches,
        cell.planned,
        cell.confirmed,
        cell.false_acks,
        cell.missed_acks,
    )
}

fn assert_sound(out: &ScaleCellOutcome, label: &str) {
    assert_eq!(
        out.cell.false_acks, 0,
        "{label}: false acks\n{:?}",
        out.cell
    );
    assert_eq!(
        out.cell.missed_acks, 0,
        "{label}: missed acks\n{:?}",
        out.cell
    );
    assert_eq!(
        out.per_switch_orders.iter().map(Vec::len).sum::<usize>(),
        out.cell.planned,
        "{label}: every planned rule confirms on exactly one switch"
    );
}

/// (a) simnet vs TCP: the same seed produces the same per-switch confirm
/// orders and the same matrix verdict on both drivers, because every
/// ordering decision lives in the shared sharded engine, not the drivers.
#[test]
fn drivers_agree_on_per_switch_confirm_orders_at_fleet_scale() {
    for seed in SEEDS {
        let registry = Registry::new();
        let sim =
            run_simnet_scale_cell_with(FLEET, RULES_PER_SWITCH, seed, SCALE_SHARDS, &registry);
        let tcp = run_tcp_scale_cell_with(
            FLEET,
            RULES_PER_SWITCH,
            seed,
            SCALE_SHARDS,
            ScaleProxy::EventLoop,
            &registry,
        );
        assert_sound(&sim, &format!("simnet seed {seed}"));
        assert_sound(&tcp, &format!("tcp seed {seed}"));
        assert_eq!(
            verdict(&sim.cell),
            verdict(&tcp.cell),
            "seed {seed}: matrix verdicts diverged between drivers"
        );
        assert_eq!(
            sim.per_switch_orders, tcp.per_switch_orders,
            "seed {seed}: per-switch confirm orders diverged between drivers"
        );
    }
}

/// (b) sharded vs the single-engine oracle: on the simulator driver, the
/// 8-shard engine and the unsharded (`shards = 1`) engine confirm every
/// switch's rules in the same order with the same verdict.
#[test]
fn sharded_engine_matches_the_single_engine_oracle_on_simnet() {
    for seed in SEEDS {
        let registry = Registry::new();
        let sharded =
            run_simnet_scale_cell_with(FLEET, RULES_PER_SWITCH, seed, SCALE_SHARDS, &registry);
        let oracle = run_simnet_scale_cell_with(FLEET, RULES_PER_SWITCH, seed, 1, &registry);
        assert_sound(&sharded, &format!("sharded seed {seed}"));
        assert_sound(&oracle, &format!("oracle seed {seed}"));
        assert_eq!(verdict(&sharded.cell), verdict(&oracle.cell));
        assert_eq!(
            sharded.per_switch_orders, oracle.per_switch_orders,
            "seed {seed}: sharding changed a per-switch confirm order"
        );
    }
}

/// (b) on the wire: the readiness-driven event-loop proxy and the pre-shard
/// thread-per-connection proxy (the original wire path, kept as
/// `LegacyRumTcpProxy`) produce identical per-switch confirm orders and
/// verdicts for the same seed.
#[test]
fn event_loop_proxy_matches_the_pre_shard_proxy() {
    let seed = SEEDS[0];
    let registry = Registry::new();
    let event_loop = run_tcp_scale_cell_with(
        FLEET,
        RULES_PER_SWITCH,
        seed,
        SCALE_SHARDS,
        ScaleProxy::EventLoop,
        &registry,
    );
    let legacy = run_tcp_scale_cell_with(
        FLEET,
        RULES_PER_SWITCH,
        seed,
        1,
        ScaleProxy::Legacy,
        &registry,
    );
    assert_sound(&event_loop, "event-loop");
    assert_sound(&legacy, "legacy");
    assert_eq!(verdict(&event_loop.cell), verdict(&legacy.cell));
    assert_eq!(
        event_loop.per_switch_orders, legacy.per_switch_orders,
        "the event loop changed a per-switch confirm order vs the pre-shard wire path"
    );
}

/// The full 1,000-switch conformance run — several minutes of wall clock,
/// so it is ignored by default; CI covers the same scale through the
/// committed BENCH gate.  `cargo test --release -- --ignored
/// full_fleet_cross_driver_soundness` runs it directly.
#[test]
#[ignore]
fn full_fleet_cross_driver_soundness() {
    const FULL_FLEET: usize = 1_000;
    let registry = Registry::new();
    let sim = run_simnet_scale_cell_with(FULL_FLEET, RULES_PER_SWITCH, 42, SCALE_SHARDS, &registry);
    let tcp = run_tcp_scale_cell_with(
        FULL_FLEET,
        RULES_PER_SWITCH,
        42,
        SCALE_SHARDS,
        ScaleProxy::EventLoop,
        &registry,
    );
    assert_sound(&sim, "simnet 1000");
    assert_sound(&tcp, "tcp 1000");
    assert_eq!(verdict(&sim.cell), verdict(&tcp.cell));
    assert_eq!(
        sim.per_switch_orders, tcp.per_switch_orders,
        "per-switch confirm orders diverged between drivers at 1,000 switches"
    );
}
