//! Property-based tests over the core data structures and invariants.

use openflow::messages::{FlowMod, FlowModCommand};
use openflow::{Action, MacAddr, OfMatch, OfMessage, PacketHeader, Wildcards};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

fn arb_ipv4() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_packet_header() -> impl Strategy<Value = PacketHeader> {
    (
        arb_mac(),
        arb_mac(),
        arb_ipv4(),
        arb_ipv4(),
        any::<u16>(),
        any::<u16>(),
        any::<u8>(),
        prop::sample::select(vec![6u8, 17u8]),
        prop::option::of(0u16..4095),
    )
        .prop_map(
            |(dl_src, dl_dst, nw_src, nw_dst, tp_src, tp_dst, tos, proto, vlan)| {
                let mut h = PacketHeader::ipv4_udp(dl_src, dl_dst, nw_src, nw_dst, tp_src, tp_dst);
                h.nw_proto = proto;
                h.nw_tos = tos;
                if let Some(v) = vlan {
                    h.dl_vlan = v;
                    h.dl_vlan_pcp = (v % 8) as u8;
                }
                h
            },
        )
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (any::<u16>(), any::<u16>()).prop_map(|(p, m)| Action::Output { port: p, max_len: m }),
        (0u16..4096).prop_map(Action::SetVlanVid),
        (0u8..8).prop_map(Action::SetVlanPcp),
        Just(Action::StripVlan),
        arb_mac().prop_map(Action::SetDlSrc),
        arb_mac().prop_map(Action::SetDlDst),
        any::<u32>().prop_map(Action::SetNwSrc),
        any::<u32>().prop_map(Action::SetNwDst),
        any::<u8>().prop_map(Action::SetNwTos),
        any::<u16>().prop_map(Action::SetTpSrc),
        any::<u16>().prop_map(Action::SetTpDst),
        (any::<u16>(), any::<u32>()).prop_map(|(p, q)| Action::Enqueue { port: p, queue_id: q }),
    ]
}

/// An arbitrary match built the way controllers build them: from a concrete
/// packet plus a random subset of wildcarded fields.
fn arb_match() -> impl Strategy<Value = OfMatch> {
    (arb_packet_header(), any::<u16>(), any::<u32>(), 0u32..=32, 0u32..=32).prop_map(
        |(pkt, in_port, wild_bits, src_bits, dst_bits)| {
            let mut m = OfMatch::exact_from_packet(&pkt, in_port);
            let mut w = m.wildcards;
            for (bit, flag) in [
                Wildcards::IN_PORT,
                Wildcards::DL_VLAN,
                Wildcards::DL_SRC,
                Wildcards::DL_DST,
                Wildcards::DL_TYPE,
                Wildcards::NW_PROTO,
                Wildcards::TP_SRC,
                Wildcards::TP_DST,
                Wildcards::DL_VLAN_PCP,
                Wildcards::NW_TOS,
            ]
            .iter()
            .enumerate()
            {
                w = w.with(*flag, wild_bits & (1 << bit) != 0);
            }
            w = w.with_nw_src_bits(src_bits).with_nw_dst_bits(dst_bits);
            m.wildcards = w;
            m
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Ethernet/IP serialisation round-trips for every header we generate.
    #[test]
    fn packet_header_bytes_round_trip(h in arb_packet_header()) {
        let parsed = PacketHeader::from_bytes(&h.to_bytes()).unwrap();
        prop_assert_eq!(parsed, h);
    }

    /// OpenFlow match encode/decode round-trips.
    #[test]
    fn of_match_wire_round_trip(m in arb_match()) {
        let mut buf = bytes::BytesMut::new();
        m.encode(&mut buf);
        let decoded = OfMatch::decode(&mut buf.freeze()).unwrap();
        prop_assert_eq!(decoded, m);
    }

    /// Flow-mod messages round-trip through the full message codec.
    #[test]
    fn flow_mod_message_round_trip(
        m in arb_match(),
        actions in prop::collection::vec(arb_action(), 0..5),
        priority in any::<u16>(),
        xid in any::<u32>(),
        cookie in any::<u64>(),
        cmd in prop::sample::select(vec![
            FlowModCommand::Add,
            FlowModCommand::Modify,
            FlowModCommand::ModifyStrict,
            FlowModCommand::Delete,
            FlowModCommand::DeleteStrict,
        ]),
    ) {
        let mut body = FlowMod::add(m, priority, actions).with_cookie(cookie);
        body.command = cmd;
        let msg = OfMessage::FlowMod { xid, body };
        let bytes = msg.encode_to_vec().unwrap();
        prop_assert_eq!(OfMessage::decode(&bytes).unwrap(), msg);
    }

    /// PacketIn / PacketOut / barrier messages survive the stream codec even
    /// when delivered byte by byte.
    #[test]
    fn stream_codec_survives_arbitrary_fragmentation(
        headers in prop::collection::vec(arb_packet_header(), 1..4),
        split in 1usize..7,
    ) {
        let codec = openflow::OfCodec::new();
        let msgs: Vec<OfMessage> = headers
            .iter()
            .enumerate()
            .flat_map(|(i, h)| {
                vec![
                    OfMessage::PacketOut {
                        xid: i as u32,
                        body: openflow::messages::PacketOut::single_port(1, h.to_bytes()),
                    },
                    OfMessage::BarrierRequest { xid: 1000 + i as u32 },
                ]
            })
            .collect();
        let wire = codec.encode_batch(&msgs).unwrap();
        let mut rx = openflow::OfCodec::new();
        let mut decoded = Vec::new();
        for chunk in wire.chunks(split) {
            rx.feed(chunk);
            while let Some(m) = rx.next_message().unwrap() {
                decoded.push(m);
            }
        }
        prop_assert_eq!(decoded, msgs);
    }

    /// `example_packet` always produces a packet that matches its own rule.
    #[test]
    fn example_packet_matches_rule(m in arb_match()) {
        let (pkt, port) = m.example_packet(&PacketHeader::default());
        prop_assert!(m.matches(&pkt, port));
    }

    /// If a rule covers another, then any packet matching the covered rule's
    /// example also matches the covering rule, and the two rules overlap.
    #[test]
    fn covers_implies_overlap_and_match(a in arb_match(), b in arb_match()) {
        if a.covers(&b) {
            prop_assert!(a.overlaps(&b), "covers must imply overlaps");
            let (pkt, port) = b.example_packet(&PacketHeader::default());
            prop_assert!(a.matches(&pkt, port), "covering rule must match the covered example");
        }
        // Overlap is symmetric.
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        // Every match covers and overlaps itself.
        prop_assert!(a.covers(&a));
        prop_assert!(a.overlaps(&a));
    }

    /// Applying actions is deterministic and output ports are preserved.
    #[test]
    fn action_application_is_deterministic(
        h in arb_packet_header(),
        actions in prop::collection::vec(arb_action(), 0..6),
    ) {
        let (a1, p1) = Action::apply_list(&actions, &h);
        let (a2, p2) = Action::apply_list(&actions, &h);
        prop_assert_eq!(a1, a2);
        prop_assert_eq!(&p1, &p2);
        prop_assert_eq!(p1, Action::output_ports(&actions));
    }
}

/// A property over the RUM probe synthesiser: whenever a probe is produced,
/// it matches the probed rule and no higher-priority known rule.
mod probe_properties {
    use super::*;
    use rum::probe::{synthesize_general_probe, KnownRule};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn synthesized_probe_hits_exactly_the_probed_rule(
            src in arb_ipv4(),
            dst in arb_ipv4(),
            others in prop::collection::vec((arb_ipv4(), arb_ipv4(), 1u16..200), 0..10),
        ) {
            let probed = KnownRule {
                match_: OfMatch::ipv4_pair(src, dst),
                priority: 100,
                actions: vec![Action::output(2)],
            };
            let mut table: Vec<KnownRule> = vec![
                KnownRule { match_: OfMatch::wildcard_all(), priority: 0, actions: vec![] },
                probed.clone(),
            ];
            table.extend(others.into_iter().map(|(s, d, prio)| KnownRule {
                match_: OfMatch::ipv4_pair(s, d),
                priority: prio,
                actions: vec![Action::output(3)],
            }));
            if let Ok(probe) = synthesize_general_probe(&probed, &table, 0xf8, 77) {
                prop_assert!(probed.match_.matches(&probe.packet, 0));
                for k in &table {
                    if k.priority > probed.priority {
                        prop_assert!(
                            !k.match_.matches(&probe.packet, 0),
                            "probe hijacked by a higher-priority rule"
                        );
                    }
                }
            }
        }
    }
}
