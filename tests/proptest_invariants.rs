//! Randomised property tests over the core data structures and invariants.
//!
//! These were originally written with `proptest`; the offline build
//! environment has no crates.io access, so the same properties are exercised
//! with a seeded deterministic generator instead (no shrinking, but fully
//! reproducible: every failure message includes the case index, and the seed
//! is fixed).

use openflow::messages::{FlowMod, FlowModCommand};
use openflow::{Action, MacAddr, OfMatch, OfMessage, PacketHeader, Wildcards};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

const CASES: usize = 128;

fn rng_for(test: u64) -> SmallRng {
    SmallRng::seed_from_u64(0x5eed_0000 + test)
}

fn arb_mac(rng: &mut SmallRng) -> MacAddr {
    let mut b = [0u8; 6];
    for byte in &mut b {
        *byte = rng.next_u32() as u8;
    }
    MacAddr::new(b)
}

fn arb_ipv4(rng: &mut SmallRng) -> Ipv4Addr {
    Ipv4Addr::from(rng.next_u32())
}

fn arb_packet_header(rng: &mut SmallRng) -> PacketHeader {
    let mut h = PacketHeader::ipv4_udp(
        arb_mac(rng),
        arb_mac(rng),
        arb_ipv4(rng),
        arb_ipv4(rng),
        rng.next_u32() as u16,
        rng.next_u32() as u16,
    );
    h.nw_proto = if rng.gen_bool(0.5) { 6 } else { 17 };
    h.nw_tos = rng.next_u32() as u8;
    if rng.gen_bool(0.5) {
        let v = rng.gen_range_u64(4095) as u16;
        h.dl_vlan = v;
        h.dl_vlan_pcp = (v % 8) as u8;
    }
    h
}

fn arb_action(rng: &mut SmallRng) -> Action {
    match rng.gen_index(12) {
        0 => Action::Output {
            port: rng.next_u32() as u16,
            max_len: rng.next_u32() as u16,
        },
        1 => Action::SetVlanVid(rng.gen_range_u64(4096) as u16),
        2 => Action::SetVlanPcp(rng.gen_index(8) as u8),
        3 => Action::StripVlan,
        4 => Action::SetDlSrc(arb_mac(rng)),
        5 => Action::SetDlDst(arb_mac(rng)),
        6 => Action::SetNwSrc(rng.next_u32()),
        7 => Action::SetNwDst(rng.next_u32()),
        8 => Action::SetNwTos(rng.next_u32() as u8),
        9 => Action::SetTpSrc(rng.next_u32() as u16),
        10 => Action::SetTpDst(rng.next_u32() as u16),
        _ => Action::Enqueue {
            port: rng.next_u32() as u16,
            queue_id: rng.next_u32(),
        },
    }
}

fn arb_actions(rng: &mut SmallRng, max: usize) -> Vec<Action> {
    (0..rng.gen_index(max)).map(|_| arb_action(rng)).collect()
}

/// An arbitrary match built the way controllers build them: from a concrete
/// packet plus a random subset of wildcarded fields.
fn arb_match(rng: &mut SmallRng) -> OfMatch {
    let pkt = arb_packet_header(rng);
    let in_port = rng.next_u32() as u16;
    let wild_bits = rng.next_u32() as u16;
    let src_bits = rng.gen_range_u64(33) as u32;
    let dst_bits = rng.gen_range_u64(33) as u32;
    let mut m = OfMatch::exact_from_packet(&pkt, in_port);
    let mut w = m.wildcards;
    for (bit, flag) in [
        Wildcards::IN_PORT,
        Wildcards::DL_VLAN,
        Wildcards::DL_SRC,
        Wildcards::DL_DST,
        Wildcards::DL_TYPE,
        Wildcards::NW_PROTO,
        Wildcards::TP_SRC,
        Wildcards::TP_DST,
        Wildcards::DL_VLAN_PCP,
        Wildcards::NW_TOS,
    ]
    .iter()
    .enumerate()
    {
        w = w.with(*flag, wild_bits & (1 << bit) != 0);
    }
    w = w.with_nw_src_bits(src_bits).with_nw_dst_bits(dst_bits);
    m.wildcards = w;
    m
}

/// Ethernet/IP serialisation round-trips for every header we generate.
#[test]
fn packet_header_bytes_round_trip() {
    let mut rng = rng_for(1);
    for case in 0..CASES {
        let h = arb_packet_header(&mut rng);
        let parsed = PacketHeader::from_bytes(&h.to_bytes()).unwrap();
        assert_eq!(parsed, h, "case {case}");
    }
}

/// OpenFlow match encode/decode round-trips.
#[test]
fn of_match_wire_round_trip() {
    let mut rng = rng_for(2);
    for case in 0..CASES {
        let m = arb_match(&mut rng);
        let mut buf = bytes::BytesMut::new();
        m.encode(&mut buf);
        let decoded = OfMatch::decode(&mut buf.freeze()).unwrap();
        assert_eq!(decoded, m, "case {case}");
    }
}

/// Flow-mod messages round-trip through the full message codec.
#[test]
fn flow_mod_message_round_trip() {
    let mut rng = rng_for(3);
    let commands = [
        FlowModCommand::Add,
        FlowModCommand::Modify,
        FlowModCommand::ModifyStrict,
        FlowModCommand::Delete,
        FlowModCommand::DeleteStrict,
    ];
    for case in 0..CASES {
        let m = arb_match(&mut rng);
        let actions = arb_actions(&mut rng, 5);
        let priority = rng.next_u32() as u16;
        let xid = rng.next_u32();
        let cookie = rng.next_u64();
        let cmd = commands[rng.gen_index(commands.len())];
        let mut body = FlowMod::add(m, priority, actions).with_cookie(cookie);
        body.command = cmd;
        let msg = OfMessage::FlowMod { xid, body };
        let bytes = msg.encode_to_vec().unwrap();
        assert_eq!(OfMessage::decode(&bytes).unwrap(), msg, "case {case}");
    }
}

/// PacketIn / PacketOut / barrier messages survive the stream codec even
/// when delivered byte by byte.
#[test]
fn stream_codec_survives_arbitrary_fragmentation() {
    let mut rng = rng_for(4);
    for case in 0..CASES {
        let n_headers = 1 + rng.gen_index(3);
        let headers: Vec<PacketHeader> = (0..n_headers)
            .map(|_| arb_packet_header(&mut rng))
            .collect();
        let split = 1 + rng.gen_index(6);
        let codec = openflow::OfCodec::new();
        let msgs: Vec<OfMessage> = headers
            .iter()
            .enumerate()
            .flat_map(|(i, h)| {
                vec![
                    OfMessage::PacketOut {
                        xid: i as u32,
                        body: openflow::messages::PacketOut::single_port(1, h.to_bytes()),
                    },
                    OfMessage::BarrierRequest {
                        xid: 1000 + i as u32,
                    },
                ]
            })
            .collect();
        let wire = codec.encode_batch(&msgs).unwrap();
        let mut rx = openflow::OfCodec::new();
        let mut decoded = Vec::new();
        for chunk in wire.chunks(split) {
            rx.feed(chunk);
            while let Some(m) = rx.next_message().unwrap() {
                decoded.push(m);
            }
        }
        assert_eq!(decoded, msgs, "case {case} (split {split})");
    }
}

/// `example_packet` always produces a packet that matches its own rule.
#[test]
fn example_packet_matches_rule() {
    let mut rng = rng_for(5);
    for case in 0..CASES {
        let m = arb_match(&mut rng);
        let (pkt, port) = m.example_packet(&PacketHeader::default());
        assert!(m.matches(&pkt, port), "case {case}: {m:?}");
    }
}

/// If a rule covers another, then any packet matching the covered rule's
/// example also matches the covering rule, and the two rules overlap.
#[test]
fn covers_implies_overlap_and_match() {
    let mut rng = rng_for(6);
    for case in 0..CASES {
        let a = arb_match(&mut rng);
        let b = arb_match(&mut rng);
        if a.covers(&b) {
            assert!(a.overlaps(&b), "case {case}: covers must imply overlaps");
            let (pkt, port) = b.example_packet(&PacketHeader::default());
            assert!(
                a.matches(&pkt, port),
                "case {case}: covering rule must match the covered example"
            );
        }
        // Overlap is symmetric.
        assert_eq!(a.overlaps(&b), b.overlaps(&a), "case {case}");
        // Every match covers and overlaps itself.
        assert!(a.covers(&a), "case {case}");
        assert!(a.overlaps(&a), "case {case}");
    }
}

/// Applying actions is deterministic and output ports are preserved.
#[test]
fn action_application_is_deterministic() {
    let mut rng = rng_for(7);
    for case in 0..CASES {
        let h = arb_packet_header(&mut rng);
        let actions = arb_actions(&mut rng, 6);
        let (a1, p1) = Action::apply_list(&actions, &h);
        let (a2, p2) = Action::apply_list(&actions, &h);
        assert_eq!(a1, a2, "case {case}");
        assert_eq!(p1, p2, "case {case}");
        assert_eq!(p1, Action::output_ports(&actions), "case {case}");
    }
}

/// A property over the RUM probe synthesiser: whenever a probe is produced,
/// it matches the probed rule and no higher-priority known rule.
#[test]
fn synthesized_probe_hits_exactly_the_probed_rule() {
    let mut rng = rng_for(8);
    for case in 0..64 {
        let src = arb_ipv4(&mut rng);
        let dst = arb_ipv4(&mut rng);
        let probed = rum::probe::KnownRule {
            match_: OfMatch::ipv4_pair(src, dst),
            priority: 100,
            actions: vec![Action::output(2)],
        };
        let mut table: Vec<rum::probe::KnownRule> = vec![
            rum::probe::KnownRule {
                match_: OfMatch::wildcard_all(),
                priority: 0,
                actions: vec![],
            },
            probed.clone(),
        ];
        for _ in 0..rng.gen_index(10) {
            table.push(rum::probe::KnownRule {
                match_: OfMatch::ipv4_pair(arb_ipv4(&mut rng), arb_ipv4(&mut rng)),
                priority: 1 + rng.gen_range_u64(199) as u16,
                actions: vec![Action::output(3)],
            });
        }
        if let Ok(probe) = rum::probe::synthesize_general_probe(&probed, &table, 0xf8, 77) {
            assert!(
                probed.match_.matches(&probe.packet, 0),
                "case {case}: probe must hit the probed rule"
            );
            for k in &table {
                if k.priority > probed.priority {
                    assert!(
                        !k.match_.matches(&probe.packet, 0),
                        "case {case}: probe hijacked by a higher-priority rule"
                    );
                }
            }
        }
    }
}

/// The session multiplexer's shared-budget invariant: under random ack
/// interleavings across many concurrent tenants, the number of
/// sent-but-unconfirmed modifications never exceeds the global window, no
/// tenant starves (every admitted session completes), and acks that belong
/// to nobody are counted as strays rather than misattributed.
#[test]
fn session_mux_never_exceeds_global_window_under_random_interleavings() {
    use controller::{ConnId, UpdatePlan};
    use sessiond::{MuxConfig, MuxEffect, MuxInput, SessionMux};
    use std::time::Duration;

    let mut rng = rng_for(10);
    for case in 0..64 {
        let tenants = 2 + rng.gen_index(5);
        let global_window = 1 + rng.gen_index(6);
        let config = MuxConfig {
            session_window: 1 + rng.gen_index(3),
            global_window,
            quantum: 1 + rng.gen_range_u64(3),
            ..MuxConfig::default()
        };
        let namespace_bits = config.namespace_bits;
        let mut mux = SessionMux::new(config);
        let mut outstanding: Vec<u64> = Vec::new();
        let collect = |fx: &[MuxEffect], outstanding: &mut Vec<u64>| {
            for e in fx {
                if let MuxEffect::Send {
                    message: OfMessage::FlowMod { xid, .. },
                    ..
                } = e
                {
                    outstanding.push(u64::from(*xid));
                }
            }
        };
        let mut fx = Vec::new();
        let mut sids = Vec::new();
        let mut planned = 0u64;
        for t in 0..tenants {
            let mods = 1 + rng.gen_index(8) as u64;
            planned += mods;
            let mut plan = UpdatePlan::new();
            for r in 0..mods {
                plan.add(
                    r + 1,
                    0,
                    FlowMod::add(
                        OfMatch::ipv4_pair(
                            Ipv4Addr::new(10, t as u8, r as u8, 1),
                            Ipv4Addr::new(10, 200, 0, 1),
                        ),
                        100,
                        vec![Action::output(2)],
                    ),
                )
                .unwrap();
            }
            fx.clear();
            sids.push(
                mux.submit(plan, Duration::ZERO, &mut fx)
                    .expect("disjoint plans all admit"),
            );
            collect(&fx, &mut outstanding);
            assert!(
                mux.global_in_flight() <= global_window,
                "case {case}: admission burst violated the global window"
            );
        }

        // An xid in the flow-mod namespace of a tenant that was never
        // admitted: always a stray.
        let stray_xid = ((tenants as u32 + 5) << namespace_bits) + 1;
        let mut expected_strays = 0u64;
        let mut now_ms = 0u64;
        let mut steps = 0usize;
        while !mux.all_done() {
            steps += 1;
            assert!(
                steps < 20_000,
                "case {case}: a tenant starved ({} still running)",
                mux.running_sessions()
            );
            now_ms += 1 + rng.gen_range_u64(5);
            let input = if outstanding.is_empty() || rng.gen_bool(0.05) {
                if rng.gen_bool(0.5) {
                    expected_strays += 1;
                    MuxInput::FromSwitch {
                        conn: ConnId::new(0),
                        message: OfMessage::rum_ack(stray_xid),
                    }
                } else {
                    MuxInput::Tick
                }
            } else {
                // Ack a random outstanding modification — interleaving
                // across tenants is entirely up to the network.
                let idx = rng.gen_index(outstanding.len());
                let xid = outstanding.swap_remove(idx);
                MuxInput::FromSwitch {
                    conn: ConnId::new(0),
                    message: OfMessage::rum_ack(xid as u32),
                }
            };
            fx.clear();
            mux.handle(Duration::from_millis(now_ms), input, &mut fx);
            collect(&fx, &mut outstanding);
            assert!(
                mux.global_in_flight() <= global_window,
                "case {case}: global window violated ({} > {global_window})",
                mux.global_in_flight()
            );
        }

        assert_eq!(mux.stray_acks(), expected_strays, "case {case}");
        assert_eq!(mux.global_in_flight(), 0, "case {case}");
        let mut confirmed = 0u64;
        for (t, sid) in sids.iter().enumerate() {
            let session = mux.session(*sid).expect("completed sessions are retained");
            assert!(session.is_complete(), "case {case}: tenant {t} starved");
            confirmed += session.confirmed_count() as u64;
        }
        assert_eq!(confirmed, planned, "case {case}");
    }
}

/// The update session's window invariant: under arbitrary (randomised)
/// interleavings of acknowledgments, rejections and ticks, the number of
/// sent-but-unconfirmed modifications never exceeds K, dependencies are
/// always respected, and the plan eventually completes.
#[test]
fn update_session_never_exceeds_window_under_random_ack_interleavings() {
    use controller::{AckMode, ConnId, SessionEffect, SessionInput, UpdatePlan, UpdateSession};
    use std::time::Duration;

    let mut rng = rng_for(9);
    for case in 0..CASES {
        let n_mods = 2 + rng.gen_index(20) as u64;
        let window = 1 + rng.gen_index(6);
        // Random DAG: each mod may depend on up to two earlier mods.
        let mut plan = UpdatePlan::new();
        for id in 1..=n_mods {
            let mut deps = Vec::new();
            if id > 1 && rng.gen_bool(0.5) {
                deps.push(1 + rng.gen_range_u64(id - 1));
            }
            if id > 1 && rng.gen_bool(0.25) {
                let d = 1 + rng.gen_range_u64(id - 1);
                if !deps.contains(&d) {
                    deps.push(d);
                }
            }
            let target = rng.gen_index(3);
            plan.add_with_deps(
                id,
                target,
                FlowMod::add(
                    OfMatch::ipv4_pair(
                        Ipv4Addr::new(10, 0, 0, id as u8),
                        Ipv4Addr::new(10, 1, 0, id as u8),
                    ),
                    100,
                    vec![Action::output(2)],
                ),
                deps,
            )
            .unwrap();
        }
        plan.validate().expect("forward deps are acyclic");

        let mut session = UpdateSession::new(plan, AckMode::RumAcks, window);
        let mut outstanding: Vec<u64> = Vec::new();
        let mut now = Duration::ZERO;
        let collect = |fx: Vec<SessionEffect>, outstanding: &mut Vec<u64>| {
            for e in fx {
                if let SessionEffect::Send {
                    message: OfMessage::FlowMod { xid, .. },
                    ..
                } = e
                {
                    outstanding.push(u64::from(xid));
                }
            }
        };
        let fx = session.handle(now, SessionInput::Started);
        collect(fx, &mut outstanding);
        assert!(
            session.in_flight() <= window,
            "case {case}: {} in flight with window {window} right after start",
            session.in_flight()
        );

        let mut steps = 0usize;
        while !session.is_complete() {
            steps += 1;
            assert!(
                steps < 10_000,
                "case {case}: session did not complete (confirmed {}/{n_mods})",
                session.confirmed_count()
            );
            now += Duration::from_millis(1 + rng.gen_range_u64(10));
            let input = if outstanding.is_empty() || rng.gen_bool(0.1) {
                SessionInput::Tick
            } else {
                // Ack a random outstanding modification (ordering across
                // switches is entirely up to the network).
                let idx = rng.gen_index(outstanding.len());
                let id = outstanding.swap_remove(idx);
                SessionInput::FromSwitch {
                    conn: ConnId::new(0),
                    message: OfMessage::rum_ack(id as u32),
                }
            };
            let fx = session.handle(now, input);
            collect(fx, &mut outstanding);
            assert!(
                session.in_flight() <= window,
                "case {case}: window violated ({} > {window})",
                session.in_flight()
            );
        }
        // Dependencies were honoured: every mod was sent at or after the
        // confirmation of each of its dependencies.
        for m in session.plan().mods() {
            for d in &m.deps {
                assert!(
                    session.send_times()[&m.id] >= session.confirmation_times()[d],
                    "case {case}: mod {} sent before dep {d} confirmed",
                    m.id
                );
            }
        }
        assert_eq!(session.confirmed_count(), n_mods as usize, "case {case}");
    }
}
