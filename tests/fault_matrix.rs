//! Cross-driver fault-matrix properties (the reliability claims of the
//! paper, checked against the behaviour engine's ground truth):
//!
//! 1. Under *any* sampled order-preserving `FaultPlan`, no RUM probing
//!    technique (sequential, general) ever emits a false confirmation — in
//!    particular not for a silently dropped rule, which simply stays
//!    unconfirmed.
//! 2. The barrier-only baseline *does* emit false confirmations under the
//!    plain early-reply switch, which is the whole reason RUM exists.
//! 3. The same `FaultPlan` seed produces identical confirm-correctness
//!    verdicts on the simulator driver and the real-socket driver: fault
//!    decisions are pure hashes of `(seed, cookie)`, so the adversary —
//!    and the verdict grid it induces — is transport-independent.

use controller::scenarios::BulkUpdateScenario;
use ofswitch::{FaultPlan, SwitchModel};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rum::TechniqueConfig;
use rum_bench::scenario_matrix::{run_simnet_cell, run_tcp_cell, FaultModel, MatrixTechnique};
use std::time::Duration;

const N_RULES: usize = 6;

fn sampled_fault_plan(rng: &mut SmallRng) -> FaultPlan {
    let seed = rng.next_u64();
    let mut plan = FaultPlan::seeded(seed);
    if rng.gen_bool(0.7) {
        plan = plan.with_silent_drops(2 + rng.gen_range_u64(4) as u32);
    }
    if rng.gen_bool(0.5) {
        plan = plan.with_sync_bursts(
            1 + rng.gen_range_u64(2) as u32,
            Duration::from_millis(100 + rng.gen_range_u64(600)),
        );
    }
    if rng.gen_bool(0.5) {
        plan = plan.with_ack_loss(3 + rng.gen_range_u64(5) as u32);
    }
    if rng.gen_bool(0.5) {
        plan = plan.with_ack_duplication(3 + rng.gen_range_u64(5) as u32);
    }
    plan
}

/// Property: across randomly sampled fault plans, the probing techniques
/// never acknowledge a rule the data plane does not have — while the
/// barrier-only baseline lies under plain early replies on every seed.
#[test]
fn probing_never_lies_under_sampled_fault_plans() {
    let mut rng = SmallRng::seed_from_u64(0xFA_17);
    let probing = [
        MatrixTechnique::Rum(TechniqueConfig::SequentialProbing {
            batch_size: 3,
            probe_interval: Duration::from_millis(10),
        }),
        MatrixTechnique::Rum(TechniqueConfig::default_general()),
    ];
    for round in 0..5 {
        let faults = sampled_fault_plan(&mut rng);
        let fault = FaultModel {
            name: "sampled",
            model: SwitchModel::hp5406zl(),
            faults: faults.clone(),
        };
        for technique in &probing {
            let cell = run_simnet_cell(technique, &fault, N_RULES, faults.seed);
            assert_eq!(
                cell.false_acks, 0,
                "round {round}: {technique:?} under {faults:?} produced false acks: {cell:?}"
            );
            // Once a rule at plan position `w` wedges the FIFO, everything
            // from `w` on stays out of the data plane and must stay
            // unconfirmed.  (The wedge may fire even earlier, on one of
            // RUM's *own* probe/catch-rule cookies — any modification can
            // wedge the queue — so the plan-derived count is a floor.)
            let wedge_index =
                (0..N_RULES).find(|&i| faults.drops_cookie(BulkUpdateScenario::rule_cookie(i)));
            let expected_missed = wedge_index.map_or(0, |w| N_RULES - w);
            assert!(
                cell.missed_acks >= expected_missed,
                "round {round}: {technique:?} under {faults:?}: {cell:?}"
            );
            assert_eq!(cell.confirmed + cell.missed_acks, N_RULES);
        }
        // The baseline on the same seed, no extra faults: early replies
        // alone are enough to make it lie.
        let early = FaultModel {
            name: "early_reply",
            model: SwitchModel::hp5406zl(),
            faults: FaultPlan::seeded(faults.seed),
        };
        let baseline = run_simnet_cell(&MatrixTechnique::BarrierOnly, &early, N_RULES, faults.seed);
        assert!(
            baseline.false_acks > 0,
            "round {round}: the barrier-only baseline must lie under early replies: {baseline:?}"
        );
        assert_eq!(baseline.missed_acks, 0);
    }
}

/// Cross-driver determinism: one seeded silent-drop adversary, two
/// transports, identical verdicts.  The wedge set is a pure function of
/// `(seed, cookie)`, so the simulator run and the TCP run agree on exactly
/// which rules are missed and that nothing was falsely confirmed.
#[test]
fn same_seed_same_verdicts_on_both_drivers() {
    // Pick a seed whose wedge hits the middle of the plan, so both sides of
    // the wedge are represented.
    let seed = (0..256u64)
        .find(|&s| {
            let f = FaultPlan::seeded(s).with_silent_drops(4);
            !f.drops_cookie(BulkUpdateScenario::rule_cookie(0))
                && !f.drops_cookie(BulkUpdateScenario::rule_cookie(1))
                && (2..N_RULES).any(|i| f.drops_cookie(BulkUpdateScenario::rule_cookie(i)))
        })
        .expect("a mid-plan wedge seed exists");
    let faults = FaultPlan::seeded(seed).with_silent_drops(4);
    let technique = MatrixTechnique::Rum(TechniqueConfig::default_general());

    let sim_fault = FaultModel {
        name: "silent_drop",
        model: SwitchModel::hp5406zl(),
        faults: faults.clone(),
    };
    let sim_cell = run_simnet_cell(&technique, &sim_fault, N_RULES, seed);

    // The TCP driver runs the scaled model; the *fault decisions* only
    // depend on the plan seed and the cookies, which are identical.
    let tcp_fault = FaultModel {
        name: "silent_drop",
        model: SwitchModel::fast_buggy(),
        faults: faults.clone(),
    };
    let tcp_cell = run_tcp_cell(&technique, &tcp_fault, N_RULES);

    let wedge_index = (0..N_RULES)
        .find(|&i| faults.drops_cookie(BulkUpdateScenario::rule_cookie(i)))
        .expect("seed was chosen to wedge");
    // The wedge may additionally fire earlier on one of RUM's own
    // catch-rule cookies — identically on both drivers, because those
    // cookies come from the same deterministic engine xid stream — so the
    // plan-derived count is a floor.
    let expected_missed = N_RULES - wedge_index;

    for cell in [&sim_cell, &tcp_cell] {
        assert_eq!(cell.false_acks, 0, "{cell:?}");
        assert!(cell.missed_acks >= expected_missed, "{cell:?}");
        assert_eq!(cell.confirmed + cell.missed_acks, N_RULES, "{cell:?}");
    }
    // The cross-driver property: the verdict grid is transport-independent.
    assert_eq!(sim_cell.false_acks, tcp_cell.false_acks);
    assert_eq!(sim_cell.missed_acks, tcp_cell.missed_acks);
    assert_eq!(sim_cell.confirmed, tcp_cell.confirmed);
}
