//! Robustness of the readiness-driven event-loop proxy under adversarial
//! socket behaviour: stalls, partial writes, mid-write disconnects and
//! restart re-dials.  Everything here drives `rum_tcp::RumTcpProxy` with
//! raw sockets so each failure mode can be induced precisely.

use openflow::messages::FlowMod;
use openflow::{Action, OfCodec, OfMatch, OfMessage};
use rum::{RumBuilder, SwitchId, TechniqueConfig};
use rum_tcp::{wait_for, ProxyConfig, ProxyHandle, RumTcpProxy};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// Starts a proxy for `n` switches over `shards` engine shards with a
/// static-timeout technique (`delay`), plus the listener playing the real
/// controller.  Returns `(controller_listener, handle)`.
fn start_proxy(n: usize, shards: usize, delay: Duration) -> (TcpListener, ProxyHandle) {
    let controller_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let proxy = RumTcpProxy::new(
        ProxyConfig {
            listen_addr: "127.0.0.1:0".parse().unwrap(),
            controller_addr: controller_listener.local_addr().unwrap(),
        },
        RumBuilder::new(n)
            .shards(shards)
            .technique(TechniqueConfig::StaticTimeout { delay })
            .fine_grained_acks(false),
    );
    let handle = proxy.start().expect("proxy starts");
    (controller_listener, handle)
}

/// Attaches one switch: dials the proxy, accepts the proxy's onward dial on
/// the controller listener, and waits until the proxy counts the
/// connection.  Returns `(switch_stream, controller_stream)`.
fn attach_switch(
    listener: &TcpListener,
    handle: &ProxyHandle,
    expected_connections: u64,
) -> (TcpStream, TcpStream) {
    let switch = TcpStream::connect(handle.local_addr).expect("switch dials proxy");
    let (ctrl, _) = listener.accept().expect("proxy dials controller");
    ctrl.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    switch
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    assert!(
        wait_for(
            || handle.counters().connections() == expected_connections,
            Duration::from_secs(5),
        ),
        "connection {expected_connections} not counted"
    );
    (switch, ctrl)
}

fn flow_mod(xid: u32, cookie: u64) -> OfMessage {
    OfMessage::FlowMod {
        xid,
        body: FlowMod::add(OfMatch::wildcard_all(), 1, vec![Action::output(1)]).with_cookie(cookie),
    }
}

/// Reads from `stream` until `want` flow-mods have been decoded or the read
/// times out; returns the decoded flow-mod xids in arrival order.
fn read_flow_mod_xids(stream: &mut TcpStream, want: usize) -> Vec<u32> {
    let mut codec = OfCodec::new();
    let mut buf = [0u8; 64 * 1024];
    let mut xids = Vec::with_capacity(want);
    while xids.len() < want {
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        codec.feed(&buf[..n]);
        while let Ok(Some(msg)) = codec.next_message() {
            if let OfMessage::FlowMod { xid, .. } = msg {
                xids.push(xid);
            }
        }
    }
    xids
}

/// Plays a well-behaved switch on `stream` until it has answered a barrier
/// request with `xid`: replies to hello/echo/barrier, swallows flow-mods.
fn serve_switch_until_barrier(stream: &mut TcpStream, xid: u32, context: &str) {
    let mut codec = OfCodec::new();
    let mut buf = [0u8; 64 * 1024];
    let mut replies = Vec::new();
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => panic!("{context}: proxy closed before barrier {xid}"),
            Err(e) => panic!("{context}: switch never saw barrier {xid}: {e}"),
            Ok(n) => n,
        };
        codec.feed(&buf[..n]);
        replies.clear();
        let mut done = false;
        while let Ok(Some(msg)) = codec.next_message() {
            let reply = match msg {
                OfMessage::BarrierRequest { xid: got } => {
                    done |= got == xid;
                    Some(OfMessage::BarrierReply { xid: got })
                }
                OfMessage::EchoRequest { xid, data } => Some(OfMessage::EchoReply { xid, data }),
                OfMessage::Hello { xid } => Some(OfMessage::Hello { xid }),
                _ => None,
            };
            if let Some(r) = reply {
                r.encode_into(&mut replies).unwrap();
            }
        }
        if !replies.is_empty() {
            stream.write_all(&replies).unwrap();
        }
        if done {
            return;
        }
    }
}

/// Reads until a barrier reply with `xid` arrives; panics on timeout.
fn expect_barrier_reply(stream: &mut TcpStream, xid: u32, context: &str) {
    let mut codec = OfCodec::new();
    let mut buf = [0u8; 8192];
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => panic!("{context}: peer closed before barrier reply {xid}"),
            Err(e) => panic!("{context}: no barrier reply {xid}: {e}"),
            Ok(n) => n,
        };
        codec.feed(&buf[..n]);
        while let Ok(Some(msg)) = codec.next_message() {
            if matches!(msg, OfMessage::BarrierReply { xid: got } if got == xid) {
                return;
            }
        }
    }
}

/// A switch that stalls (stops reading) while the controller keeps
/// blasting forces the proxy into `WouldBlock` territory: its outbox
/// gauge must go up (chunks queued behind the full socket), and once the
/// switch drains, every flow-mod must arrive exactly once, in order —
/// partial writes resumed at the recorded offset, no bytes lost or
/// duplicated across `WouldBlock` boundaries.
#[test]
fn partial_writes_resume_at_the_recorded_offset() {
    // Big enough to overrun the kernel's send-buffer autotuning ceiling
    // (tcp_wmem max is typically 4 MiB) so the proxy really hits
    // `WouldBlock` mid-chunk: ~90 bytes a mod → ~5.4 MiB.
    const MODS: usize = 60_000;
    let (listener, handle) = start_proxy(1, 1, Duration::from_secs(60));
    let (mut switch, mut ctrl) = attach_switch(&listener, &handle, 1);

    // Blast from the controller side while the switch is not reading.
    let mut wire = Vec::with_capacity(MODS * 90);
    for k in 0..MODS {
        flow_mod(2 + k as u32, 1 + k as u64)
            .encode_into(&mut wire)
            .unwrap();
    }
    ctrl.write_all(&wire).unwrap();

    // The socket towards the stalled switch fills up; queued chunks must
    // become visible on the per-switch outbox gauge.
    assert!(
        wait_for(
            || {
                handle
                    .metrics()
                    .snapshot()
                    .gauges
                    .get("proxy.sw0.switch_outbox_depth")
                    .copied()
                    .unwrap_or(0)
                    > 0
            },
            Duration::from_secs(5),
        ),
        "the stalled switch never backed up the proxy outbox"
    );

    // Now drain: every mod arrives exactly once, in order.
    let xids = read_flow_mod_xids(&mut switch, MODS);
    assert_eq!(xids.len(), MODS, "flow-mods lost across partial writes");
    for (k, xid) in xids.iter().enumerate() {
        assert_eq!(*xid, 2 + k as u32, "flow-mod {k} out of order");
    }
    assert_eq!(
        handle.stats(SwitchId::new(0)).controller_flow_mods,
        MODS as u64
    );

    drop(ctrl);
    drop(switch);
    handle.shutdown();
}

/// One stalled switch must not head-of-line-block the fleet: with four
/// switches striped over four shards, switch 0 stops reading entirely
/// while a blast overruns its socket, yet switches 1–3 still complete
/// flow-mod → barrier round trips.  Barrier-baseline keeps the round trip
/// purely wire-driven: each reply needs the live switch to answer, which
/// is exactly what a blocked event loop would prevent.
#[test]
fn stalled_switch_does_not_block_other_shards() {
    let (listener, handle) = {
        let controller_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let proxy = RumTcpProxy::new(
            ProxyConfig {
                listen_addr: "127.0.0.1:0".parse().unwrap(),
                controller_addr: controller_listener.local_addr().unwrap(),
            },
            RumBuilder::new(4)
                .shards(4)
                .technique(TechniqueConfig::BarrierBaseline)
                .fine_grained_acks(false),
        );
        let handle = proxy.start().expect("proxy starts");
        (controller_listener, handle)
    };
    let mut pairs = Vec::new();
    for i in 0..4u64 {
        pairs.push(attach_switch(&listener, &handle, i + 1));
    }

    // Stall switch 0: never read from it again, and overrun its socket so
    // the proxy's writes towards it genuinely hit `WouldBlock`.
    let mut blast = Vec::new();
    for k in 0..60_000u32 {
        flow_mod(2 + k, 1 + k as u64)
            .encode_into(&mut blast)
            .unwrap();
    }
    pairs[0].1.write_all(&blast).unwrap();
    assert!(
        wait_for(
            || {
                handle
                    .metrics()
                    .snapshot()
                    .gauges
                    .get("proxy.sw0.switch_outbox_depth")
                    .copied()
                    .unwrap_or(0)
                    > 0
            },
            Duration::from_secs(10),
        ),
        "the stalled switch never backed up its outbox"
    );

    // Meanwhile switches 1..3 complete ordinary barrier round trips.
    for (i, (switch, ctrl)) in pairs.iter_mut().enumerate().skip(1) {
        let mut wire = Vec::new();
        flow_mod(2, 7).encode_into(&mut wire).unwrap();
        OfMessage::BarrierRequest { xid: 3 }
            .encode_into(&mut wire)
            .unwrap();
        ctrl.write_all(&wire).unwrap();
        serve_switch_until_barrier(switch, 3, &format!("switch {i}"));
        expect_barrier_reply(ctrl, 3, &format!("switch {i} behind a stalled neighbour"));
    }
    for i in 1..4 {
        assert_eq!(
            handle.stats(SwitchId::new(i)).barrier_replies_released,
            1,
            "switch {i}"
        );
    }
    // The stalled neighbour's replies never came back, so its barriers
    // stayed unreleased — stalling cost it only itself.
    assert_eq!(handle.stats(SwitchId::new(0)).barrier_replies_released, 0);
    handle.shutdown();
}

/// A switch that dies **mid-write** — its socket full of queued proxy
/// output when the connection drops — must detach cleanly, keep its
/// modifications unconfirmed, and on re-dial land in the freed slot with
/// exactly one `SwitchReconnected`: the engine re-issues every unconfirmed
/// modification down the fresh channel.
#[test]
fn mid_write_disconnect_reconnects_into_the_freed_slot() {
    const MODS: usize = 60_000;
    // Hold-down far beyond the test so nothing confirms before the drop.
    let (listener, handle) = start_proxy(2, 2, Duration::from_secs(120));
    let (switch0, mut ctrl0) = attach_switch(&listener, &handle, 1);
    let (_switch1, _ctrl1) = attach_switch(&listener, &handle, 2);

    // Queue a blast towards switch 0 without it reading, then kill its
    // connection while the proxy still has chunks in flight.
    let mut wire = Vec::with_capacity(MODS * 90);
    for k in 0..MODS {
        flow_mod(2 + k as u32, 1 + k as u64)
            .encode_into(&mut wire)
            .unwrap();
    }
    ctrl0.write_all(&wire).unwrap();
    assert!(
        wait_for(
            || handle.stats(SwitchId::new(0)).controller_flow_mods == MODS as u64,
            Duration::from_secs(10),
        ),
        "engine never saw the blast"
    );
    // The drop must be a *mid-write* disconnect: wait until the proxy has
    // chunks queued behind switch 0's full socket before killing it.
    assert!(
        wait_for(
            || {
                handle
                    .metrics()
                    .snapshot()
                    .gauges
                    .get("proxy.sw0.switch_outbox_depth")
                    .copied()
                    .unwrap_or(0)
                    > 0
            },
            Duration::from_secs(10),
        ),
        "switch 0's outbox never backed up — the disconnect would not be mid-write"
    );
    drop(switch0); // mid-write disconnect: outbox still non-empty

    // Re-dial until the freed slot is claimed (detach is asynchronous).
    let mut replacement = None;
    assert!(
        wait_for(
            || {
                if handle.counters().connections() >= 3 {
                    return true;
                }
                replacement = TcpStream::connect(handle.local_addr).ok();
                false
            },
            Duration::from_secs(5),
        ),
        "re-dial was not attached"
    );
    let mut replacement = replacement.expect("replacement stream");
    replacement
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // The proxy dials the controller once more for the reattached switch.
    let (_ctrl0b, _) = listener.accept().expect("proxy re-dials controller");

    // Exactly one reconnect, on the restarted switch only, and every
    // still-unconfirmed modification re-issued down the fresh channel.
    assert!(
        wait_for(
            || handle.stats(SwitchId::new(0)).reconnects == 1,
            Duration::from_secs(5),
        ),
        "switch 0 must re-converge exactly once, saw {}",
        handle.stats(SwitchId::new(0)).reconnects
    );
    assert_eq!(handle.stats(SwitchId::new(1)).reconnects, 0);
    assert_eq!(
        handle.stats(SwitchId::new(0)).reissued_flow_mods,
        MODS as u64,
        "unconfirmed modifications must be re-issued on reconnect"
    );
    let xids = read_flow_mod_xids(&mut replacement, MODS);
    assert_eq!(
        xids.len(),
        MODS,
        "the reattached switch must receive the full re-issue"
    );
    handle.shutdown();
}

/// A clean restart (EOF, empty outbox) re-dials into the freed slot while
/// a neighbour stays attached: same slot, one `SwitchReconnected`, the
/// neighbour untouched — and the re-attached channel still works.
#[test]
fn restart_re_dial_lands_in_the_freed_slot_with_one_reconnect() {
    let delay = Duration::from_millis(30);
    let (listener, handle) = start_proxy(2, 2, delay);
    let (switch0, ctrl0) = attach_switch(&listener, &handle, 1);
    let (_switch1, _ctrl1) = attach_switch(&listener, &handle, 2);

    // Clean shutdown of switch 0 (nothing queued).
    drop(switch0);
    drop(ctrl0);

    let mut replacement = None;
    assert!(
        wait_for(
            || {
                if handle.counters().connections() >= 3 {
                    return true;
                }
                replacement = TcpStream::connect(handle.local_addr).ok();
                false
            },
            Duration::from_secs(5),
        ),
        "restart re-dial was not attached"
    );
    let mut replacement = replacement.expect("replacement stream");
    replacement
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let (mut ctrl0b, _) = listener.accept().expect("proxy re-dials controller");
    ctrl0b
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();

    assert!(
        wait_for(
            || handle.stats(SwitchId::new(0)).reconnects == 1,
            Duration::from_secs(5),
        ),
        "slot 0 must record exactly one reconnect"
    );
    assert_eq!(handle.stats(SwitchId::new(1)).reconnects, 0);

    // The re-attached slot serves traffic: a confirmed update completes.
    let mut wire = Vec::new();
    flow_mod(2, 99).encode_into(&mut wire).unwrap();
    OfMessage::BarrierRequest { xid: 3 }
        .encode_into(&mut wire)
        .unwrap();
    ctrl0b.write_all(&wire).unwrap();
    serve_switch_until_barrier(&mut replacement, 3, "restarted switch");
    expect_barrier_reply(&mut ctrl0b, 3, "restarted switch");
    assert_eq!(handle.stats(SwitchId::new(0)).barrier_replies_released, 1);
    handle.shutdown();
}
