//! A close-up of the probing machinery: what rules RUM installs, what probe
//! packets it synthesises, and how a single rule modification gets confirmed.
//!
//! Run with `cargo run --release --example probing_demo`.

use rum_repro::prelude::*;
use rum_repro::rum::config::ProbeFieldPlan;
use rum_repro::rum::probe::{
    catch_rule, sequential_probe_packet, sequential_probe_rule, synthesize_general_probe, KnownRule,
};
use std::net::Ipv4Addr;

fn main() {
    println!("== RUM probing machinery walk-through ==\n");

    // 1. Per-switch probe values: a triangle of switches needs three distinct
    //    catch values; a longer chain can reuse them (vertex colouring).
    let triangle = ProbeFieldPlan::from_links(&[(0, 1), (1, 2), (0, 2)], 3);
    let chain = ProbeFieldPlan::from_links(&[(0, 1), (1, 2), (2, 3), (3, 4)], 5);
    println!(
        "probe-catch ToS values (triangle): {:02x?}",
        triangle.catch_tos
    );
    println!(
        "probe-catch ToS values (5-chain):  {:02x?} (colours reused)\n",
        chain.catch_tos
    );

    // 2. The rules RUM installs for sequential probing.
    let catch = catch_rule(triangle.catch_tos(SwitchId::new(2)), 900);
    println!(
        "catch rule at S3: priority {}, match ToS 0x{:02x}, action -> controller",
        catch.priority, catch.match_.nw_tos
    );
    let probe_rule = sequential_probe_rule(
        triangle.preprobe_tos,
        triangle.catch_tos(SwitchId::new(2)),
        2,
        7,
        901,
        true,
    );
    println!(
        "probe rule at S2: match ToS 0x{:02x}, actions {:?}\n",
        probe_rule.match_.nw_tos, probe_rule.actions
    );
    let probe_packet = sequential_probe_packet(triangle.preprobe_tos);
    println!(
        "sequential probe packet: {} -> {}, ToS 0x{:02x}\n",
        probe_packet.nw_src, probe_packet.nw_dst, probe_packet.nw_tos
    );

    // 3. General probing: synthesise a probe for a concrete rule while other
    //    rules overlap with it.
    let probed = KnownRule {
        match_: OfMatch::wildcard_all().with_nw_dst_prefix(Ipv4Addr::new(10, 1, 0, 0), 16),
        priority: 100,
        actions: vec![Action::output(2)],
    };
    let table = vec![
        KnownRule {
            match_: OfMatch::wildcard_all(),
            priority: 0,
            actions: vec![],
        },
        KnownRule {
            // A higher-priority rule that would hijack the obvious probe.
            match_: OfMatch::wildcard_all().with_nw_src_prefix(Ipv4Addr::new(198, 51, 100, 1), 32),
            priority: 200,
            actions: vec![Action::output(9)],
        },
        probed.clone(),
    ];
    match synthesize_general_probe(&probed, &table, triangle.catch_tos(SwitchId::new(2)), 4242) {
        Ok(probe) => println!(
            "general probe for '10.1/16 -> port 2': src {}, dst {}, ToS 0x{:02x}, tp_src {} (probe id), leaves via port {}",
            probe.packet.nw_src,
            probe.packet.nw_dst,
            probe.packet.nw_tos,
            probe.packet.tp_src,
            probe.out_port
        ),
        Err(e) => println!("no probe possible: {e}"),
    }

    // 4. And a rule that cannot be probed (a drop rule): RUM falls back to a
    //    control-plane timeout, as the paper prescribes.
    let drop_rule = KnownRule {
        match_: OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 1, 0, 1)),
        priority: 300,
        actions: vec![],
    };
    match synthesize_general_probe(
        &drop_rule,
        &table,
        triangle.catch_tos(SwitchId::new(2)),
        4243,
    ) {
        Ok(_) => println!("unexpectedly probed a drop rule"),
        Err(e) => println!("drop rule falls back to the control-plane technique: {e}"),
    }

    // 5. End to end: one rule through a buggy switch, watched by RUM.
    println!("\n== one rule, end to end ==");
    let mut sim = Simulator::new(3);
    let scenario = BulkUpdateScenario {
        n_rules: 1,
        packets_per_sec: 0,
        ..Default::default()
    };
    let net = scenario.build(&mut sim);
    let controller = Controller::new(
        "ctrl",
        net.plan.clone(),
        AckMode::RumAcks,
        1,
        SimTime::from_millis(10),
    );
    let ctrl_id = sim.add_node(controller);
    let switches = [net.sw_a, net.sw_b, net.sw_c];
    let builder = RumBuilder::new(switches.len()).technique(TechniqueConfig::default_general());
    let (proxies, handle) = deploy(&mut sim, builder, ctrl_id, &switches);
    sim.node_mut::<Controller>(ctrl_id)
        .unwrap()
        .set_connections(vec![proxies[1]]);
    for (i, sw) in switches.iter().enumerate() {
        sim.node_mut::<OpenFlowSwitch>(*sw)
            .unwrap()
            .connect_controller(proxies[i]);
    }
    sim.run_until(SimTime::from_secs(5));

    let dp = sim.trace().data_plane_activation_times();
    let cp = sim.trace().confirmation_times();
    let cookie = controller::scenarios::BulkUpdateScenario::rule_cookie(0);
    println!(
        "rule sent at t=10 ms, data-plane active at {}, acknowledged to the controller at {}",
        dp[&cookie], cp[&cookie]
    );
    let stats = handle.stats(SwitchId::new(1));
    println!(
        "probes injected: {}, acknowledgments sent: {}",
        stats.probes_injected, stats.acks_sent
    );
}
