//! The paper's end-to-end experiment at full scale: 300 flows migrated from
//! S1→S3 to S1→S2→S3 while 250 packets/s per flow are in flight, comparing
//! every acknowledgment technique (Figures 1b, 6 and 7 in one run).
//!
//! Run with `cargo run --release --example consistent_update [n_flows]`.

use rum_repro::prelude::*;

#[derive(Clone, Copy)]
struct Outcome {
    drops: usize,
    mean_update_ms: f64,
    max_broken_ms: f64,
}

fn run(technique: Option<TechniqueConfig>, n_flows: u32, seed: u64) -> Outcome {
    let mut sim = Simulator::new(seed);
    let scenario = TriangleScenario {
        n_flows,
        packets_per_sec: 250,
        traffic_stop: SimTime::from_secs(6),
        ..Default::default()
    };
    let net = scenario.build(&mut sim);
    let switches = [net.s1, net.s2, net.s3];
    let update_start = SimTime::from_millis(500);
    let ack_mode = if technique.is_some() {
        AckMode::RumAcks
    } else {
        AckMode::NoWait
    };
    let controller = Controller::new("ctrl", net.plan.clone(), ack_mode, 10_000, update_start);
    let ctrl_id = sim.add_node(controller);
    match technique {
        Some(tech) => {
            let builder = RumBuilder::new(switches.len()).technique(tech);
            let (proxies, _) = deploy(&mut sim, builder, ctrl_id, &switches);
            sim.node_mut::<Controller>(ctrl_id)
                .unwrap()
                .set_connections(proxies.clone());
            for (i, sw) in switches.iter().enumerate() {
                sim.node_mut::<OpenFlowSwitch>(*sw)
                    .unwrap()
                    .connect_controller(proxies[i]);
            }
        }
        None => {
            sim.node_mut::<Controller>(ctrl_id)
                .unwrap()
                .set_connections(switches.to_vec());
            for sw in switches {
                sim.node_mut::<OpenFlowSwitch>(sw)
                    .unwrap()
                    .connect_controller(ctrl_id);
            }
        }
    }
    sim.run_until(SimTime::from_secs(7));

    let summaries = sim.trace().flow_update_summaries();
    let update_times: Vec<f64> = summaries
        .values()
        .filter_map(|s| s.first_new_path)
        .map(|t| t.as_millis_f64() - update_start.as_millis_f64())
        .collect();
    let mean_update_ms = if update_times.is_empty() {
        f64::NAN
    } else {
        update_times.iter().sum::<f64>() / update_times.len() as f64
    };
    let max_broken_ms = summaries
        .values()
        .map(|s| s.broken_time().as_millis_f64())
        .fold(0.0, f64::max);
    Outcome {
        drops: sim.trace().dropped_packets(None),
        mean_update_ms,
        max_broken_ms,
    }
}

fn main() {
    let n_flows: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    println!("Consistent path migration of {n_flows} flows over a buggy switch\n");
    println!(
        "{:<28} {:>8} {:>18} {:>16}",
        "technique", "drops", "mean update [ms]", "max broken [ms]"
    );
    let cases: Vec<(&str, Option<TechniqueConfig>)> = vec![
        ("no wait (inconsistent)", None),
        (
            "barriers (baseline)",
            Some(TechniqueConfig::BarrierBaseline),
        ),
        (
            "timeout 300 ms",
            Some(TechniqueConfig::StaticTimeout {
                delay: std::time::Duration::from_millis(300),
            }),
        ),
        (
            "adaptive 200 mods/s",
            Some(TechniqueConfig::AdaptiveDelay {
                assumed_rate: 200.0,
                assumed_sync_lag: SwitchModel::hp5406zl().worst_case_dataplane_lag(),
            }),
        ),
        (
            "sequential probing",
            Some(TechniqueConfig::default_sequential()),
        ),
        ("general probing", Some(TechniqueConfig::default_general())),
    ];
    for (label, technique) in cases {
        let o = run(technique, n_flows, 42);
        println!(
            "{label:<28} {:>8} {:>18.1} {:>16.1}",
            o.drops, o.mean_update_ms, o.max_broken_ms
        );
    }
}
