//! Quickstart: migrate 50 flows across the paper's triangle topology with a
//! buggy switch, once with plain barriers and once with RUM's general
//! probing, and compare the damage.
//!
//! Run with `cargo run --release --example quickstart`.

use rum_repro::prelude::*;

fn run(technique: Option<TechniqueConfig>) -> (usize, usize) {
    let mut sim = Simulator::new(1);
    // The Figure 1a testbed: H1 - S1 - {S2,S3} - H2, with S2 modelled after
    // the paper's HP 5406zl (early barrier replies, lagging data plane).
    let scenario = TriangleScenario {
        n_flows: 50,
        packets_per_sec: 250,
        traffic_stop: SimTime::from_secs(5),
        ..Default::default()
    };
    let net = scenario.build(&mut sim);
    let switches = [net.s1, net.s2, net.s3];

    // The controller executes the consistent migration plan and waits for
    // per-rule acknowledgments before releasing dependent modifications.
    let controller = Controller::new(
        "controller",
        net.plan.clone(),
        AckMode::RumAcks,
        1_000,
        SimTime::from_millis(500),
    );
    let ctrl_id = sim.add_node(controller);

    match technique {
        Some(tech) => {
            // Interpose RUM between the controller and every switch.
            let builder = RumBuilder::new(switches.len()).technique(tech);
            let (proxies, _layer) = deploy(&mut sim, builder, ctrl_id, &switches);
            sim.node_mut::<Controller>(ctrl_id)
                .unwrap()
                .set_connections(proxies.clone());
            for (i, sw) in switches.iter().enumerate() {
                sim.node_mut::<OpenFlowSwitch>(*sw)
                    .unwrap()
                    .connect_controller(proxies[i]);
            }
        }
        None => {
            sim.node_mut::<Controller>(ctrl_id)
                .unwrap()
                .set_connections(switches.to_vec());
            for sw in switches {
                sim.node_mut::<OpenFlowSwitch>(sw)
                    .unwrap()
                    .connect_controller(ctrl_id);
            }
        }
    }

    sim.run_until(SimTime::from_secs(6));
    let drops = sim.trace().dropped_packets(None);
    let migrated = sim
        .trace()
        .flow_update_summaries()
        .values()
        .filter(|s| s.path_changed)
        .count();
    (drops, migrated)
}

fn main() {
    println!("RUM quickstart: consistent path migration over a buggy switch\n");

    // Without RUM the controller trusts the switch's (early) barrier replies:
    // here we emulate that with RUM's baseline technique, which simply
    // forwards the switch's view.
    let (drops, migrated) = run(Some(TechniqueConfig::BarrierBaseline));
    println!("barriers (baseline):   {migrated} flows migrated, {drops} packets dropped");

    let (drops, migrated) = run(Some(TechniqueConfig::default_general()));
    println!("RUM general probing:   {migrated} flows migrated, {drops} packets dropped");

    let (drops, migrated) = run(Some(TechniqueConfig::default_sequential()));
    println!("RUM sequential probing: {migrated} flows migrated, {drops} packets dropped");

    println!(
        "\nThe baseline loses packets because switch S1 is re-pointed at S2 before S2's data \
         plane actually forwards the flows; RUM only acknowledges a rule once a probe has seen \
         it working, so the consistent update behaves as the theory promises."
    );
}
