//! The paper's full prototype, end to end, on real I/O: the triangle
//! path-migration plan executed by the sans-IO `UpdateSession` over loopback
//! TCP sockets, through the RUM proxy, against socket-hosted switches — and
//! cross-checked against the *same* session driven inside the simulator.
//!
//! ```text
//!   TcpUpdateController ◀── 3 connections ── RumTcpProxy ◀── S1,S2,S3
//!   (UpdateSession)          (RumEngine)                  (socket switches)
//! ```
//!
//! Both runs use `AckMode::RumAcks` with a window of 1 and the static
//! timeout technique; the confirm *ordering* must be identical, because all
//! ordering decisions live in the two sans-IO engines, not in the drivers.
//!
//! Run with `cargo run --release --example tcp_consistent_update [n_flows]`.
//!
//! Pass `--telemetry` to run the TCP deployment with the live telemetry
//! plane enabled: engine, proxy-transport and session metrics all land in
//! one shared registry served over a loopback TCP endpoint (printed at
//! start-up — point `rumtop` at it while the update runs), and the example
//! scrapes its own endpoint at the end to validate the snapshot.
//!
//! Pass `--sessions N` to run the **multi-tenant** variant instead: N
//! concurrent tenant sessions, each owning a disjoint plan of `n_flows`
//! rules, multiplexed through one `sessiond::SessionMux` behind a
//! `TcpMuxController` over the same loopback proxy + socket switches.  The
//! run self-validates: every tenant must complete, every tenant's confirm
//! order must be exactly its plan order (the per-session window is 1), and
//! the mux must attribute every ack (zero strays).

use controller::{AckMode, Controller, TriangleScenario, UpdatePlan, UpdateSession};
use ofswitch::SwitchModel;
use openflow::messages::FlowMod;
use openflow::{Action, OfMatch};
use rum::{deploy, RumBuilder, TechniqueConfig};
use rum_tcp::{
    spawn_switch, wait_for, ProxyConfig, RumTcpProxy, TcpMuxController, TcpUpdateController,
};
use sessiond::MuxConfig;
use simnet::OpenFlowSwitch;
use simnet::{SimTime, Simulator};
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;
use telemetry::Registry;

/// The static hold-down RUM waits after a barrier reply before confirming.
const HOLD_DOWN: Duration = Duration::from_millis(25);
/// The paper's K: with a window of 1 the confirm order is fully determined
/// by the plan, so the two deployments must agree exactly.
const WINDOW: usize = 1;

/// Worst-case completion budget for a run: window 1 serialises the plan,
/// so each of the `2 * n_flows` modifications costs one hold-down plus
/// slack for the controller's polling interval (simnet) or socket latency
/// (TCP).  25 ms of hold-down alone under-budgets large plans — the simnet
/// controller only notices each confirmation on its next 10 ms tick.
fn run_budget(n_flows: u32) -> Duration {
    (HOLD_DOWN + Duration::from_millis(20)) * (2 * n_flows + 20)
}

fn scenario(n_flows: u32) -> TriangleScenario {
    TriangleScenario {
        n_flows,
        packets_per_sec: 0,
        ..Default::default()
    }
}

/// Runs the migration inside the simulator and returns the confirm order.
fn run_simnet(n_flows: u32) -> Vec<u64> {
    let mut sim = Simulator::new(7);
    let net = scenario(n_flows).build(&mut sim);
    let switches = [net.s1, net.s2, net.s3];
    let ctrl = Controller::new(
        "ctrl",
        net.plan.clone(),
        AckMode::RumAcks,
        WINDOW,
        SimTime::from_millis(10),
    );
    let ctrl_id = sim.add_node(ctrl);
    let builder = RumBuilder::new(switches.len())
        .technique(TechniqueConfig::StaticTimeout { delay: HOLD_DOWN });
    let (proxies, _handle) = deploy(&mut sim, builder, ctrl_id, &switches);
    sim.node_mut::<Controller>(ctrl_id)
        .unwrap()
        .set_connections(proxies.clone());
    for (i, sw) in switches.iter().enumerate() {
        sim.node_mut::<OpenFlowSwitch>(*sw)
            .unwrap()
            .connect_controller(proxies[i]);
    }
    // Window 1 serialises the plan: 2*n mods, each ~hold-down apart.
    sim.run_until(SimTime::from(run_budget(n_flows)));
    let ctrl = sim.node_ref::<Controller>(ctrl_id).unwrap();
    assert!(
        ctrl.is_complete(),
        "simnet run confirmed only {}/{}",
        ctrl.confirmed_count(),
        2 * n_flows as usize
    );
    ctrl.session().confirmed_order().to_vec()
}

/// Runs the migration over loopback TCP and returns the confirm order.
/// With `telemetry`, a shared registry collects engine + proxy + session
/// metrics, is served live over TCP, and is self-scraped and validated at
/// the end of the run.
fn run_tcp(n_flows: u32, telemetry: bool) -> Vec<u64> {
    let registry = telemetry.then(|| Arc::new(Registry::new()));
    let server = registry.as_ref().map(|reg| {
        let server =
            telemetry::serve("127.0.0.1:0", reg.clone()).expect("telemetry endpoint binds");
        println!(
            "telemetry endpoint on {} (try: cargo run --release -p rum_bench --bin rumtop -- {})",
            server.local_addr(),
            server.local_addr()
        );
        server
    });

    let plan = scenario(n_flows).plan();
    let n_mods = plan.len();
    let mut session = UpdateSession::new(plan, AckMode::RumAcks, WINDOW);
    if let Some(reg) = &registry {
        session.attach_metrics(reg);
    }
    let controller = TcpUpdateController::new("127.0.0.1:0".parse().unwrap(), session, 3);
    let ctrl_handle = controller.start().expect("controller starts");
    println!("controller listening on {}", ctrl_handle.local_addr);

    let mut builder =
        RumBuilder::new(3).technique(TechniqueConfig::StaticTimeout { delay: HOLD_DOWN });
    if let Some(reg) = &registry {
        builder = builder.metrics(reg.clone());
    }
    let proxy = RumTcpProxy::new(
        ProxyConfig {
            listen_addr: "127.0.0.1:0".parse().unwrap(),
            controller_addr: ctrl_handle.local_addr,
        },
        builder,
    );
    let proxy_handle = proxy.start().expect("proxy starts");
    println!("RUM proxy listening on {}", proxy_handle.local_addr);

    // Connect the switches one at a time so accept order — and therefore
    // the ConnId/SwitchId mapping — is S1, S2, S3, like the plan expects.
    let models = [
        ("S1", SwitchModel::faithful()),
        ("S2", SwitchModel::hp5406zl()),
        ("S3", SwitchModel::faithful()),
    ];
    let mut switch_handles = Vec::new();
    for (i, (label, model)) in models.into_iter().enumerate() {
        let handle = spawn_switch(proxy_handle.local_addr, model).expect("switch connects");
        assert!(
            wait_for(
                || ctrl_handle.connections() == i + 1,
                Duration::from_secs(5)
            ),
            "{label} did not reach the controller"
        );
        println!("{label} connected through the proxy");
        switch_handles.push(handle);
    }

    let budget = run_budget(n_flows) + Duration::from_secs(5);
    let outcome = ctrl_handle
        .wait_for_outcome(budget)
        .expect("update must finish within the budget");
    println!("update outcome: {outcome:?}");
    let order = ctrl_handle.confirmed_order();
    assert_eq!(order.len(), n_mods, "every modification must confirm");

    let s2_mods = switch_handles[1]
        .counters()
        .flow_mods
        .load(std::sync::atomic::Ordering::SeqCst);
    println!("S2 accepted {s2_mods} rule installations over its socket");

    if let Some(server) = server {
        validate_snapshot(server.local_addr(), n_mods);
        server.shutdown();
    }
    ctrl_handle.shutdown();
    proxy_handle.shutdown();
    order
}

/// Scrapes the example's own telemetry endpoint and checks the snapshot
/// agrees with what the run just did.  Panics (nonzero exit) on any
/// missing or inconsistent metric — this is the CI smoke check.
fn validate_snapshot(addr: std::net::SocketAddr, n_mods: usize) {
    let snap = telemetry::scrape(addr, Duration::from_secs(2)).expect("scrape own endpoint");
    let expected_counters = [
        "session.mods_sent",
        "session.mods_confirmed",
        "proxy.connections",
        "proxy.drains",
        "proxy.to_switch_msgs",
        "proxy.to_controller_msgs",
        "rum.sw0.controller_flow_mods",
        "rum.sw1.controller_flow_mods",
        "rum.sw2.controller_flow_mods",
    ];
    for key in expected_counters {
        assert!(
            snap.counters.contains_key(key),
            "telemetry snapshot is missing counter {key}"
        );
    }
    assert_eq!(
        snap.counters["session.mods_confirmed"], n_mods as u64,
        "every confirmed modification must be visible in telemetry"
    );
    assert_eq!(snap.counters["proxy.connections"], 3);
    assert!(
        snap.gauges.contains_key("session.in_flight"),
        "telemetry snapshot is missing gauge session.in_flight"
    );
    let latency = snap
        .histograms
        .get("session.confirm_latency_us")
        .expect("telemetry snapshot is missing histogram session.confirm_latency_us");
    assert_eq!(latency.count, n_mods as u64);
    println!(
        "telemetry snapshot OK: {} metrics, confirm latency p50 {}us p99 {}us",
        snap.counters.len() + snap.gauges.len() + snap.histograms.len(),
        latency.p50,
        latency.p99
    );
}

/// A tenant's plan for the multi-tenant mode: `mods` dependency-free rule
/// installs in the tenant's own /24 match space (so admission never
/// serialises or rejects it), targeting switch `tenant % 3`.
fn tenant_plan(tenant: usize, mods: u32) -> UpdatePlan {
    let mut plan = UpdatePlan::new();
    for r in 0..mods.min(254) {
        let id = r as u64 + 1;
        plan.add(
            id,
            tenant % 3,
            FlowMod::add(
                OfMatch::ipv4_pair(
                    Ipv4Addr::new(10, (tenant >> 8) as u8, (tenant & 0xff) as u8, r as u8 + 1),
                    Ipv4Addr::new(10, 200, 0, 1),
                ),
                100,
                vec![Action::output(1)],
            )
            .with_cookie(id),
        )
        .expect("tenant-local ids are unique");
    }
    plan
}

/// The multi-tenant variant: `n_sessions` concurrent tenants through one
/// `SessionMux` over the same loopback proxy + socket-switch topology.
/// Panics (nonzero exit) if any tenant misses a confirm, confirms out of
/// plan order, or the mux misattributes an ack.
fn run_multi_session(n_sessions: usize, n_flows: u32) {
    let mods_per_tenant = n_flows.min(254);
    let config = MuxConfig::default();
    let controller = TcpMuxController::new("127.0.0.1:0".parse().unwrap(), config, 3);
    let ctrl_handle = controller.start().expect("mux controller starts");
    println!("mux controller listening on {}", ctrl_handle.local_addr);

    let proxy = RumTcpProxy::new(
        ProxyConfig {
            listen_addr: "127.0.0.1:0".parse().unwrap(),
            controller_addr: ctrl_handle.local_addr,
        },
        RumBuilder::new(3).technique(TechniqueConfig::StaticTimeout { delay: HOLD_DOWN }),
    );
    let proxy_handle = proxy.start().expect("proxy starts");
    println!("RUM proxy listening on {}", proxy_handle.local_addr);

    let models = [
        ("S1", SwitchModel::faithful()),
        ("S2", SwitchModel::hp5406zl()),
        ("S3", SwitchModel::faithful()),
    ];
    let mut switch_handles = Vec::new();
    for (i, (label, model)) in models.into_iter().enumerate() {
        let handle = spawn_switch(proxy_handle.local_addr, model).expect("switch connects");
        assert!(
            wait_for(
                || ctrl_handle.connections() == i + 1,
                Duration::from_secs(5)
            ),
            "{label} did not reach the controller"
        );
        switch_handles.push(handle);
    }
    println!("S1, S2, S3 connected through the proxy");

    // Admit the whole tenant population up front, so every session contends
    // for the shared outstanding-window budget from the first instant.
    let sids: Vec<_> = (0..n_sessions)
        .map(|t| {
            ctrl_handle
                .submit(tenant_plan(t, mods_per_tenant))
                .expect("disjoint tenant plans all admit")
        })
        .collect();
    println!("{n_sessions} tenants admitted ({mods_per_tenant} rules each)");

    // Worst case is full serialisation of every modification, plus slack.
    let total_mods = n_sessions as u32 * mods_per_tenant;
    let budget =
        (HOLD_DOWN + Duration::from_millis(20)) * (total_mods + 20) + Duration::from_secs(5);
    assert!(
        ctrl_handle.wait_all_done(budget),
        "not every tenant finished within {budget:?}"
    );

    // Self-validation: with a per-session window of 1, each tenant's
    // confirm order is fully determined by its plan.
    let expected: Vec<u64> = (1..=mods_per_tenant as u64).collect();
    for (t, sid) in sids.iter().enumerate() {
        let order = ctrl_handle.confirmed_order(*sid);
        assert_eq!(order, expected, "tenant {t} confirmed out of plan order");
    }
    let strays = ctrl_handle.with_mux(|m| m.stray_acks());
    assert_eq!(strays, 0, "the mux misattributed {strays} acks");

    ctrl_handle.shutdown();
    proxy_handle.shutdown();
    println!(
        "\nall {n_sessions} tenants completed; every per-session confirm order matches\n\
         its plan ([1..{mods_per_tenant}]), and every ack was attributed (0 strays) —\n\
         one SessionMux, one proxy, {total_mods} rule installs."
    );
}

fn main() {
    let mut n_flows: u32 = 10;
    let mut telemetry = false;
    let mut sessions: usize = 0;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--telemetry" {
            telemetry = true;
        } else if arg == "--sessions" {
            sessions = args
                .next()
                .and_then(|s| s.parse().ok())
                .expect("--sessions needs a tenant count");
        } else if let Ok(n) = arg.parse() {
            n_flows = n;
        }
    }

    if sessions > 0 {
        println!(
            "Multi-tenant mode: {sessions} concurrent sessions of {n_flows} rules each,\n\
             one sessiond::SessionMux over loopback TCP, RUM static timeout {HOLD_DOWN:?}\n"
        );
        run_multi_session(sessions, n_flows);
        return;
    }
    println!(
        "Consistent triangle migration of {n_flows} flows (install at S2, then flip S1),\n\
         window K = {WINDOW}, RUM static timeout {HOLD_DOWN:?}, AckMode::RumAcks\n"
    );

    println!("--- run 1: simulator driver ---");
    let sim_order = run_simnet(n_flows);
    println!("confirmed {} modifications\n", sim_order.len());

    println!("--- run 2: TCP driver (loopback sockets) ---");
    let tcp_order = run_tcp(n_flows, telemetry);
    println!("confirmed {} modifications\n", tcp_order.len());

    assert_eq!(
        sim_order, tcp_order,
        "the two drivers must confirm in the same order"
    );
    println!(
        "confirm ordering is IDENTICAL across drivers ({} confirmations):",
        sim_order.len()
    );
    let shown: Vec<String> = sim_order.iter().take(6).map(|id| id.to_string()).collect();
    println!(
        "  [{}{}]",
        shown.join(", "),
        if sim_order.len() > 6 { ", ..." } else { "" }
    );
    println!(
        "\nSame plan, same session, same RUM engine — one driver is a discrete-event\n\
         simulator, the other is real sockets; every ordering decision lives in the\n\
         sans-IO cores, so the executions agree exactly."
    );
}
