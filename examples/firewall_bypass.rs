//! The security-violation scenario of Figure 2: a theoretically safe update
//! ("install X only after Y and Z") opens a transient hole when the switch
//! acknowledges Y and Z before they reach its data plane.
//!
//! Topology:  HOST — A — B — { S3 (trusted sink), FW (firewall) }
//!
//! * rule Y at B: traffic from 10.0.0.1            -> S3
//! * rule Z at B: HTTP traffic from 10.0.0.1       -> FIREWALL  (higher priority)
//! * rule X at A: traffic from 10.0.0.1            -> B
//!
//! The update plan orders X after both Y and Z.  With honest acknowledgments
//! no HTTP packet can ever bypass the firewall; with a buggy switch B there
//! is a window in which HTTP traffic flows to S3 directly.
//!
//! Run with `cargo run --release --example firewall_bypass`.

use rum_repro::prelude::*;
use rum_repro::simnet::traffic::{FlowSpec, Host};
use rum_repro::simnet::FlowId;
use std::net::Ipv4Addr;

const HTTP_FLOW: u64 = 1;
const OTHER_FLOW: u64 = 2;

fn run(technique: Option<TechniqueConfig>) -> (u64, u64, usize) {
    let mut sim = Simulator::new(7);

    let client_ip = Ipv4Addr::new(10, 0, 0, 1);
    let server_ip = Ipv4Addr::new(10, 9, 0, 1);
    let http = PacketHeader::ipv4_tcp(
        openflow::MacAddr::from_id(1),
        openflow::MacAddr::from_id(2),
        client_ip,
        server_ip,
        34_567,
        80,
    );
    let other = PacketHeader::ipv4_udp(
        openflow::MacAddr::from_id(1),
        openflow::MacAddr::from_id(2),
        client_ip,
        server_ip,
        34_568,
        9_000,
    );

    // Hosts: the client, the trusted sink behind S3, and the firewall box.
    let mut client = Host::new("client");
    for (id, header) in [(HTTP_FLOW, http), (OTHER_FLOW, other)] {
        client.add_tx_flow(FlowSpec::constant_rate(
            FlowId(id),
            header,
            1,
            500,
            SimTime::ZERO,
            SimTime::from_secs(3),
        ));
    }
    let mut sink = Host::new("sink-S3");
    sink.expect_flow(&http, FlowId(HTTP_FLOW));
    sink.expect_flow(&other, FlowId(OTHER_FLOW));
    let mut firewall = Host::new("firewall");
    firewall.expect_flow(&http, FlowId(HTTP_FLOW));

    let client_id = sim.add_node(client);
    let sink_id = sim.add_node(sink);
    let fw_id = sim.add_node(firewall);

    // Switches A and B; B uses the buggy model.
    let mut sw_a = OpenFlowSwitch::new(
        "A",
        openflow::DatapathId::new(0xa),
        2,
        SwitchModel::faithful(),
    );
    let mut sw_b = OpenFlowSwitch::new(
        "B",
        openflow::DatapathId::new(0xb),
        3,
        SwitchModel::hp5406zl(),
    );
    for sw in [&mut sw_a, &mut sw_b] {
        sw.preinstall(
            &openflow::messages::FlowMod::add(OfMatch::wildcard_all(), 0, vec![]).with_cookie(1),
        );
    }
    let a_id = sim.add_node(sw_a);
    let b_id = sim.add_node(sw_b);

    let lat = SimTime::from_micros(50);
    let topo = sim.topology_mut();
    topo.add_link(client_id, 1, a_id, 1, lat); // client - A
    topo.add_link(a_id, 2, b_id, 1, lat); // A - B
    topo.add_link(b_id, 2, sink_id, 1, lat); // B - S3 (sink)
    topo.add_link(b_id, 3, fw_id, 1, lat); // B - firewall

    // The update plan of Figure 2.
    let from_client = OfMatch::wildcard_all().with_nw_src_prefix(client_ip, 32);
    let http_from_client = from_client
        .with_nw_proto(openflow::constants::IPPROTO_TCP)
        .with_tp_dst(80);
    let mut plan = UpdatePlan::new();
    let y = plan
        .add(
            10,
            1, // switch B
            openflow::messages::FlowMod::add(from_client, 100, vec![Action::output(2)]),
        )
        .expect("unique id");
    let z = plan
        .add(
            11,
            1,
            openflow::messages::FlowMod::add(http_from_client, 200, vec![Action::output(3)]),
        )
        .expect("unique id");
    plan.add_with_deps(
        12,
        0, // switch A
        openflow::messages::FlowMod::add(from_client, 100, vec![Action::output(2)]),
        vec![y, z],
    )
    .expect("unique id");

    let controller = Controller::new(
        "ctrl",
        plan,
        AckMode::RumAcks,
        10,
        SimTime::from_millis(200),
    );
    let ctrl_id = sim.add_node(controller);
    let switches = [a_id, b_id];
    match technique {
        Some(tech) => {
            let builder = RumBuilder::new(switches.len()).technique(tech);
            let (proxies, _) = deploy(&mut sim, builder, ctrl_id, &switches);
            sim.node_mut::<Controller>(ctrl_id)
                .unwrap()
                .set_connections(proxies.clone());
            for (i, sw) in switches.iter().enumerate() {
                sim.node_mut::<OpenFlowSwitch>(*sw)
                    .unwrap()
                    .connect_controller(proxies[i]);
            }
        }
        None => unreachable!("always run through RUM in this example"),
    }

    sim.run_until(SimTime::from_secs(4));

    // HTTP packets that reached the sink directly bypassed the firewall.
    let bypassed = sim
        .trace()
        .events()
        .iter()
        .filter(|e| {
            matches!(e, simnet::TraceEvent::PacketDelivered { node, flow, .. }
                if *node == sink_id && *flow == FlowId(HTTP_FLOW))
        })
        .count() as u64;
    let filtered = sim
        .trace()
        .events()
        .iter()
        .filter(|e| {
            matches!(e, simnet::TraceEvent::PacketDelivered { node, flow, .. }
                if *node == fw_id && *flow == FlowId(HTTP_FLOW))
        })
        .count() as u64;
    (bypassed, filtered, sim.trace().dropped_packets(None))
}

fn main() {
    println!("Figure 2 — transient firewall bypass during a 'safe' update\n");
    let (bypassed, filtered, _) = run(Some(TechniqueConfig::BarrierBaseline));
    println!(
        "barriers (baseline):  {bypassed:>4} HTTP packets bypassed the firewall, {filtered} filtered correctly"
    );
    let (bypassed, filtered, _) = run(Some(TechniqueConfig::default_general()));
    println!(
        "RUM general probing:  {bypassed:>4} HTTP packets bypassed the firewall, {filtered} filtered correctly"
    );
    println!(
        "\nWith trusted acknowledgments rule X at switch A is only installed after the firewall \
         rule Z is active in B's data plane, so no HTTP packet can slip through."
    );
}
