//! The prototype deployment (paper §4): RUM as a TCP proxy between an
//! OpenFlow switch and its controller, here demonstrated fully in-process
//! with a scripted controller and a scripted switch speaking real OpenFlow
//! 1.0 over loopback TCP.
//!
//! Run with `cargo run --release --example tcp_proxy`.

use openflow::messages::FlowMod;
use openflow::{Action, OfCodec, OfMatch, OfMessage};
use rum::{RumBuilder, SwitchId, TechniqueConfig};
use rum_tcp::{ProxyConfig, RumTcpProxy};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

fn main() {
    // The "real" controller: a listener that will send one flow-mod followed
    // by a barrier and measure when the reply comes back.
    let controller_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let controller_addr = controller_listener.local_addr().unwrap();

    // RUM in between, running the SAME sans-IO engine the simulator uses —
    // here with the static-timeout technique (300 ms, the paper's bound for
    // the HP 5406zl) and the reliable-barrier layer.
    let proxy = RumTcpProxy::new(
        ProxyConfig {
            listen_addr: "127.0.0.1:0".parse().unwrap(),
            controller_addr,
        },
        RumBuilder::new(1)
            .technique(TechniqueConfig::StaticTimeout {
                delay: Duration::from_millis(300),
            })
            .fine_grained_acks(false),
    );
    let handle = proxy.start().expect("start proxy");
    println!("RUM TCP proxy listening on {}", handle.local_addr);

    // The "switch": connects to the proxy and answers barriers immediately —
    // the buggy behaviour RUM compensates for.
    let proxy_addr = handle.local_addr;
    let switch = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(proxy_addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(3)))
            .unwrap();
        let mut codec = OfCodec::new();
        let mut buf = [0u8; 2048];
        let mut flow_mods = 0;
        loop {
            let n = match stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => n,
            };
            codec.feed(&buf[..n]);
            while let Ok(Some(msg)) = codec.next_message() {
                match msg {
                    OfMessage::FlowMod { .. } => flow_mods += 1,
                    OfMessage::BarrierRequest { xid } => {
                        // Reply instantly, long before any data plane would
                        // have caught up.
                        stream
                            .write_all(&OfMessage::BarrierReply { xid }.encode_to_vec().unwrap())
                            .unwrap();
                    }
                    _ => {}
                }
            }
        }
        flow_mods
    });

    // Accept the proxy's upstream connection and play controller.
    let (mut ctrl, _) = controller_listener.accept().unwrap();
    ctrl.set_read_timeout(Some(Duration::from_secs(3))).unwrap();
    let flow_mod = OfMessage::FlowMod {
        xid: 1,
        body: FlowMod::add(
            OfMatch::ipv4_pair("10.0.0.1".parse().unwrap(), "10.0.0.2".parse().unwrap()),
            100,
            vec![Action::output(2)],
        ),
    };
    let barrier = OfMessage::BarrierRequest { xid: 2 };
    let started = Instant::now();
    ctrl.write_all(&flow_mod.encode_to_vec().unwrap()).unwrap();
    ctrl.write_all(&barrier.encode_to_vec().unwrap()).unwrap();
    println!("controller: sent FlowMod + BarrierRequest");

    let mut codec = OfCodec::new();
    let mut buf = [0u8; 2048];
    'outer: loop {
        let n = match ctrl.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        codec.feed(&buf[..n]);
        while let Ok(Some(msg)) = codec.next_message() {
            if let OfMessage::BarrierReply { xid } = msg {
                println!(
                    "controller: BarrierReply (xid {xid}) arrived after {:?} — the switch answered \
                     immediately, the RUM engine held the reply until the 300 ms hold-down confirmed the rule",
                    started.elapsed()
                );
                break 'outer;
            }
        }
    }

    let stats = handle.stats(SwitchId::new(0));
    println!(
        "engine stats: {} controller flow-mod(s), {} barrier(s) held and released",
        stats.controller_flow_mods, stats.barrier_replies_released
    );
    drop(ctrl);
    handle.shutdown();
    let flow_mods = switch.join().unwrap();
    println!("switch saw {flow_mods} flow modification(s) through the proxy");
}
