//! The simulator driver for the sans-IO [`SessionMux`].
//!
//! [`MuxController`] is to the mux what `controller::Controller` is to a
//! single [`controller::UpdateSession`]: a thin `simnet` node translating
//! simulator events into [`MuxInput`]s and executing the returned
//! [`MuxEffect`]s through the simulator [`Context`].  Plans are registered
//! before the run and submitted together when the start timer fires, so a
//! whole tenant population contends from the first instant — the
//! "millions of users" regime in miniature.

use crate::mux::{
    AdmitError, MuxConfig, MuxEffect, MuxInput, MuxTimerToken, SessionId, SessionMux,
};
use controller::{ConnId, UpdatePlan};
use openflow::OfMessage;
use simnet::{Context, EventPayload, Node, NodeId, SimTime, TraceEvent};
use std::any::Any;

/// Timer token used to start the run; mux timers are offset by one.
const TOKEN_START: u64 = 0;

/// A controller node that submits many tenant plans to a [`SessionMux`] and
/// drives the mux inside the simulator.
pub struct MuxController {
    label: String,
    mux: SessionMux,
    /// Plans queued for submission when the start timer fires.
    pending_plans: Vec<UpdatePlan>,
    /// Per-plan submission results, in registration order.
    submissions: Vec<Result<SessionId, AdmitError>>,
    connections: Vec<NodeId>,
    control_latency: SimTime,
    start_at: SimTime,
    started: bool,
    /// PacketIns from nodes outside the configured connections.
    stray_packet_ins: u64,
}

impl MuxController {
    /// Creates a mux controller that starts submitting at `start_at`.
    pub fn new(label: impl Into<String>, config: MuxConfig, start_at: SimTime) -> Self {
        MuxController {
            label: label.into(),
            mux: SessionMux::new(config),
            pending_plans: Vec::new(),
            submissions: Vec::new(),
            connections: Vec::new(),
            control_latency: SimTime::from_micros(200),
            start_at,
            started: false,
            stray_packet_ins: 0,
        }
    }

    /// Registers one tenant plan for submission at start time.  Returns the
    /// registration index; pair it with [`MuxController::submission_results`]
    /// after the run to find the tenant's [`SessionId`] (or admission error).
    pub fn add_plan(&mut self, plan: UpdatePlan) -> usize {
        self.pending_plans.push(plan);
        self.pending_plans.len() - 1
    }

    /// Sets the nodes terminating each switch connection (index = the
    /// `SwitchRef` used in the plans).
    pub fn set_connections(&mut self, connections: Vec<NodeId>) {
        self.connections = connections;
    }

    /// Sets the one-way control-channel latency used for outgoing messages.
    pub fn set_control_latency(&mut self, latency: SimTime) {
        self.control_latency = latency;
    }

    /// Read access to the mux (per-session state, outcomes, counters).
    pub fn mux(&self) -> &SessionMux {
        &self.mux
    }

    /// Mutable access to the mux, e.g. to attach metrics before the run.
    pub fn mux_mut(&mut self) -> &mut SessionMux {
        &mut self.mux
    }

    /// One result per registered plan, in registration order.  Empty until
    /// the start timer fires.
    pub fn submission_results(&self) -> &[Result<SessionId, AdmitError>] {
        &self.submissions
    }

    /// PacketIn messages received across the mux and unmapped senders.
    pub fn packet_ins_received(&self) -> u64 {
        self.mux.packet_ins() + self.stray_packet_ins
    }

    /// Executes mux effects through the simulator context.
    fn execute(&mut self, effects: Vec<MuxEffect>, ctx: &mut Context<'_>) {
        for effect in effects {
            match effect {
                MuxEffect::Send { conn, message } => {
                    let Some(&node) = self.connections.get(conn.index()) else {
                        continue;
                    };
                    if let OfMessage::FlowMod { ref body, .. } = message {
                        ctx.record(TraceEvent::FlowModSent {
                            cookie: body.cookie,
                            time: ctx.now(),
                        });
                    }
                    ctx.send_control(node, message, self.control_latency);
                }
                MuxEffect::ArmTimer { delay, token } => {
                    ctx.set_timer(delay.into(), token.raw() + 1);
                }
                MuxEffect::Confirmed { session, id } => {
                    // Record the wire cookie so data-plane activation joins
                    // (which see wire cookies) line up.
                    let global = self.mux.base(session).unwrap_or(0) + id;
                    ctx.record(TraceEvent::ControlPlaneConfirmed {
                        cookie: global,
                        time: ctx.now(),
                    });
                }
                MuxEffect::Rejected {
                    session,
                    id,
                    err_type,
                    code,
                } => {
                    ctx.record(TraceEvent::Marker {
                        label: format!(
                            "{}: {session} mod {id} rejected (type {err_type}, code {code})",
                            self.label
                        ),
                        time: ctx.now(),
                    });
                }
                MuxEffect::SessionStarted { session } => {
                    ctx.record(TraceEvent::Marker {
                        label: format!("{}: {session} started (conflicts cleared)", self.label),
                        time: ctx.now(),
                    });
                }
                MuxEffect::SessionCompleted { session, .. } => {
                    ctx.record(TraceEvent::Marker {
                        label: format!("{}: {session} complete", self.label),
                        time: ctx.now(),
                    });
                }
                MuxEffect::SessionAborted { session, report } => {
                    ctx.record(TraceEvent::Marker {
                        label: format!(
                            "{}: {session} aborted (mod {} failed, {} cancelled)",
                            self.label,
                            report.failed,
                            report.cancelled.len()
                        ),
                        time: ctx.now(),
                    });
                }
            }
        }
    }

    /// Feeds one input into the mux and executes the effects.
    fn drive(&mut self, input: MuxInput, ctx: &mut Context<'_>) {
        let mut effects = Vec::new();
        self.mux.handle(ctx.now().into(), input, &mut effects);
        self.execute(effects, ctx);
    }
}

impl Node for MuxController {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer(self.start_at, TOKEN_START);
    }

    fn handle(&mut self, event: EventPayload, ctx: &mut Context<'_>) {
        match event {
            EventPayload::Timer { token: TOKEN_START } if !self.started => {
                self.started = true;
                assert!(
                    !self.connections.is_empty() || self.pending_plans.is_empty(),
                    "mux controller {} has no switch connections configured",
                    self.label
                );
                ctx.record(TraceEvent::Marker {
                    label: format!(
                        "{}: submitting {} tenant plans",
                        self.label,
                        self.pending_plans.len()
                    ),
                    time: ctx.now(),
                });
                let plans = std::mem::take(&mut self.pending_plans);
                for plan in plans {
                    let mut effects = Vec::new();
                    let result = self.mux.submit(plan, ctx.now().into(), &mut effects);
                    self.submissions.push(result);
                    self.execute(effects, ctx);
                }
            }
            EventPayload::Timer { token } if token > TOKEN_START => {
                self.drive(
                    MuxInput::TimerFired {
                        token: MuxTimerToken::from_raw(token - 1),
                    },
                    ctx,
                );
            }
            EventPayload::Timer { .. } => {}
            EventPayload::Control { from, message } => {
                match self.connections.iter().position(|&n| n == from) {
                    Some(index) => self.drive(
                        MuxInput::FromSwitch {
                            conn: ConnId::new(index),
                            message,
                        },
                        ctx,
                    ),
                    None => match message {
                        OfMessage::PacketIn { .. } => self.stray_packet_ins += 1,
                        OfMessage::EchoRequest { xid, data } => ctx.send_control(
                            from,
                            OfMessage::EchoReply { xid, data },
                            self.control_latency,
                        ),
                        OfMessage::Hello { xid } => {
                            ctx.send_control(from, OfMessage::Hello { xid }, self.control_latency)
                        }
                        other => self.drive(
                            MuxInput::FromSwitch {
                                conn: ConnId::new(usize::MAX),
                                message: other,
                            },
                            ctx,
                        ),
                    },
                }
            }
            EventPayload::Packet { .. } => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mux::SessionState;
    use ofswitch::SwitchModel;
    use openflow::messages::FlowMod;
    use openflow::{Action, DatapathId, OfMatch};
    use simnet::{OpenFlowSwitch, Simulator};
    use std::net::Ipv4Addr;

    fn tenant_plan(tenant: u8, n: u8) -> UpdatePlan {
        let mut plan = UpdatePlan::new();
        for i in 0..n {
            plan.add(
                u64::from(i) + 1,
                0,
                FlowMod::add(
                    OfMatch::ipv4_pair(
                        Ipv4Addr::new(10, tenant, 0, i + 1),
                        Ipv4Addr::new(10, 200, 0, 1),
                    ),
                    100,
                    vec![Action::output(2)],
                ),
            )
            .unwrap();
        }
        plan
    }

    /// Many tenants over one faithful switch with barrier acks: everything
    /// completes inside the simulator, through the real Node plumbing.
    #[test]
    fn tenants_complete_against_a_simulated_switch() {
        let mut sim = Simulator::new(3);
        let mut ctrl = MuxController::new(
            "muxd",
            MuxConfig {
                ack_mode: controller::AckMode::Barriers { batch: 1 },
                session_window: 2,
                global_window: 4,
                quantum: 1,
                ..MuxConfig::default()
            },
            SimTime::from_millis(1),
        );
        for t in 0..6 {
            ctrl.add_plan(tenant_plan(t, 3));
        }
        let ctrl_id = sim.add_node(ctrl);
        let mut sw = OpenFlowSwitch::new("s1", DatapathId::new(1), 4, SwitchModel::faithful());
        sw.connect_controller(ctrl_id);
        let sw_id = sim.add_node(sw);
        sim.node_mut::<MuxController>(ctrl_id)
            .unwrap()
            .set_connections(vec![sw_id]);
        sim.run_until(SimTime::from_secs(5));

        let ctrl = sim.node_ref::<MuxController>(ctrl_id).unwrap();
        assert_eq!(ctrl.submission_results().len(), 6);
        assert!(ctrl.mux().all_done());
        for result in ctrl.submission_results() {
            let sid = *result.as_ref().expect("disjoint plans all admit");
            assert_eq!(ctrl.mux().state(sid), Some(&SessionState::Done));
            assert!(
                ctrl.mux().session(sid).unwrap().is_complete(),
                "{sid} did not complete"
            );
        }
        assert_eq!(ctrl.mux().stray_acks(), 0);
    }

    /// Conflicting plans serialize through the simulator run and still all
    /// complete, in submission order.
    #[test]
    fn conflicting_tenants_serialize_and_complete() {
        let mut sim = Simulator::new(3);
        let mut ctrl = MuxController::new(
            "muxd",
            MuxConfig {
                ack_mode: controller::AckMode::Barriers { batch: 1 },
                session_window: 4,
                global_window: 8,
                ..MuxConfig::default()
            },
            SimTime::from_millis(1),
        );
        // Three identical plans — total overlap, strict serialization.
        for _ in 0..3 {
            ctrl.add_plan(tenant_plan(1, 2));
        }
        let ctrl_id = sim.add_node(ctrl);
        let mut sw = OpenFlowSwitch::new("s1", DatapathId::new(1), 4, SwitchModel::faithful());
        sw.connect_controller(ctrl_id);
        let sw_id = sim.add_node(sw);
        sim.node_mut::<MuxController>(ctrl_id)
            .unwrap()
            .set_connections(vec![sw_id]);
        sim.run_until(SimTime::from_secs(5));

        let ctrl = sim.node_ref::<MuxController>(ctrl_id).unwrap();
        assert!(ctrl.mux().all_done());
        // Completion times respect submission order (FIFO serialization).
        let done_at: Vec<_> = ctrl
            .submission_results()
            .iter()
            .map(|r| {
                let sid = *r.as_ref().unwrap();
                ctrl.mux()
                    .session(sid)
                    .unwrap()
                    .completed_at()
                    .expect("completed")
            })
            .collect();
        assert!(done_at[0] < done_at[1] && done_at[1] < done_at[2]);
    }
}
