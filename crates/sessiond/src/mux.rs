//! [`SessionMux`]: the sans-IO session multiplexer.
//!
//! One mux owns many [`UpdateSession`]s (tenants).  Each tenant keeps its own
//! dependency gating, acknowledgment mode and per-session window; the mux
//! adds the three cross-tenant concerns — namespace isolation, conflict
//! admission and fair scheduling of the shared outstanding-window budget —
//! and translates between each session's local id space and the wire.
//!
//! # Namespace layout
//!
//! Tenant `i` owns the block `base_i = (i + 1) << namespace_bits` of the
//! shared u64 cookie space (and, truncated, of the u32 xid space):
//!
//! ```text
//! 0 ............ local ids (< 2^bits, per tenant, rejected otherwise)
//! base_i + id .. tenant i's flow-mod cookies AND xids on the wire
//! 0x4000_0000 .. mux-allocated barrier xids (translated per tenant)
//! 0x8000_0000 .. reserved by the RUM proxy (never generated here)
//! ```
//!
//! Flow-mod xids stay below `0x4000_0000`, which caps the tenant count at
//! `2^(30 - bits) - 1` ([`AdmitError::NamespaceExhausted`] beyond that —
//! 1023 tenants at the default 20 bits, plenty for a soak of hundreds).
//! Barrier xids cannot use a static per-tenant offset (every session starts
//! its barrier counter at the same `0x4000_0000`), so the mux allocates
//! globally-unique barrier xids and keeps a translation table.

use controller::{
    AbortReport, AckMode, ConnId, FailurePolicy, SessionEffect, SessionInput, SessionOutcome,
    SessionTimerToken, UpdatePlan, UpdateSession,
};
use openflow::{OfMatch, OfMessage, Xid};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;
use telemetry::{AtomicHistogram, Counter, Gauge, Registry};

/// Default width of each tenant's cookie/xid block (2^20 local ids).
pub const DEFAULT_NAMESPACE_BITS: u32 = 20;

/// First mux-allocated barrier xid.  The block up to the RUM proxy's
/// reserved range (`0x8000_0000`) is the mux's to hand out.
const MUX_BARRIER_BASE: Xid = 0x4000_0000;

/// Identifies one tenant session owned by a [`SessionMux`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(usize);

impl SessionId {
    /// The dense tenant index (submission order).
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// What to do when a submitted plan's `(switch, match, priority)` cells
/// overlap a plan already in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictPolicy {
    /// Queue the later plan; it starts when every conflicting predecessor
    /// (running or queued earlier) has finished.  FIFO — a queued plan is
    /// never overtaken by a later conflicting one.
    Serialize,
    /// Refuse admission with [`AdmitError::Conflict`]; the caller retries or
    /// repartitions its rule space.
    Reject,
}

/// Why a plan was not admitted.  These are typed errors, not assertions:
/// colliding cookie/xid namespaces and contested rule cells are expected
/// tenant behaviour, and the mux's job is to make them unrepresentable on
/// the wire rather than to crash on them.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmitError {
    /// The plan touches a `(switch, match, priority)` cell owned by another
    /// in-flight session and the policy is [`ConflictPolicy::Reject`].
    Conflict {
        /// The session owning the contested cell.
        with: SessionId,
        /// The contested switch (plan `SwitchRef`).
        target: usize,
        /// The contested match.
        match_: OfMatch,
        /// The contested priority.
        priority: u16,
    },
    /// A modification id does not fit the tenant's namespace block; ids must
    /// be `< 2^namespace_bits`.
    IdOutOfNamespace {
        /// The offending plan id.
        id: u64,
        /// The exclusive id bound (`2^namespace_bits`).
        capacity: u64,
    },
    /// Every namespace block is in use; no further session can be isolated.
    NamespaceExhausted {
        /// The maximum number of sessions this mux can ever hold.
        max_sessions: usize,
    },
}

impl fmt::Display for AdmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmitError::Conflict {
                with,
                target,
                match_,
                priority,
            } => write!(
                f,
                "plan conflicts with session {with} on switch {target} \
                 ({match_:?}, priority {priority})"
            ),
            AdmitError::IdOutOfNamespace { id, capacity } => write!(
                f,
                "modification id {id} does not fit the per-session namespace \
                 (ids must be < {capacity})"
            ),
            AdmitError::NamespaceExhausted { max_sessions } => {
                write!(f, "all {max_sessions} session namespaces are in use")
            }
        }
    }
}

impl std::error::Error for AdmitError {}

/// Where a submitted session currently stands.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionState {
    /// Admitted under [`ConflictPolicy::Serialize`] and waiting for a
    /// conflicting predecessor to finish.
    Queued,
    /// Executing.
    Running,
    /// Finished (completed or aborted); see the session's outcome.
    Done,
}

/// Mux-wide configuration.  Every tenant session is created with the same
/// acknowledgment mode, per-session window and failure policy; the
/// cross-tenant knobs (global window, quantum, policy, namespace width) are
/// the mux's own.
#[derive(Debug, Clone, Copy)]
pub struct MuxConfig {
    /// Acknowledgment mode for every tenant session.
    pub ack_mode: AckMode,
    /// Per-session outstanding window (the paper's K, per tenant).
    pub session_window: usize,
    /// Shared outstanding-window budget: released-but-unconfirmed flow-mods
    /// across *all* tenants never exceed this.
    pub global_window: usize,
    /// Deficit round-robin quantum: flow-mods a tenant may release per
    /// scheduling visit (before yielding to the next tenant).
    pub quantum: u64,
    /// What to do with plans whose rule cells overlap an in-flight plan.
    pub conflict_policy: ConflictPolicy,
    /// Width of each tenant's cookie/xid block (local ids must be
    /// `< 2^namespace_bits`).
    pub namespace_bits: u32,
    /// Failure policy for every tenant session.  Note that a session's
    /// per-modification clock starts when the session *stages* the send; a
    /// mux that holds a staged modification past the timeout will trigger
    /// spurious retries, so pair an enabled policy with a generous timeout.
    pub failure_policy: FailurePolicy,
    /// How many tenants get their own `sessiond.t{i}.*` metric series (the
    /// rest still feed every shared `sessiond.*` aggregate); bounds snapshot
    /// cardinality when soaking hundreds of sessions.
    pub per_tenant_metrics: usize,
}

impl Default for MuxConfig {
    fn default() -> Self {
        MuxConfig {
            ack_mode: AckMode::RumAcks,
            session_window: 1,
            global_window: 32,
            quantum: 2,
            conflict_policy: ConflictPolicy::Serialize,
            namespace_bits: DEFAULT_NAMESPACE_BITS,
            failure_policy: FailurePolicy::disabled(),
            per_tenant_metrics: 32,
        }
    }
}

/// An opaque handle to a timer the mux asked its driver to arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MuxTimerToken(u64);

impl MuxTimerToken {
    /// The raw value, for drivers that serialise tokens.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs a token from [`MuxTimerToken::raw`].
    pub const fn from_raw(raw: u64) -> Self {
        MuxTimerToken(raw)
    }
}

/// Everything a driver can feed into the mux.
#[derive(Debug, Clone, PartialEq)]
pub enum MuxInput {
    /// The switch behind `conn` sent `message`.
    FromSwitch {
        /// The connection that carried the message.
        conn: ConnId,
        /// The decoded message.
        message: OfMessage,
    },
    /// A timer previously requested via [`MuxEffect::ArmTimer`] expired.
    TimerFired {
        /// The token from the arming effect.
        token: MuxTimerToken,
    },
    /// The clock advanced with nothing else to report.
    Tick,
}

/// Everything the mux can ask a driver to do.
#[derive(Debug, Clone, PartialEq)]
pub enum MuxEffect {
    /// Send `message` (already rewritten into wire namespaces) on `conn`.
    Send {
        /// The destination connection.
        conn: ConnId,
        /// The message to send.
        message: OfMessage,
    },
    /// Arm a timer: feed [`MuxInput::TimerFired`] with `token` back after
    /// `delay`.
    ArmTimer {
        /// How long to wait.
        delay: Duration,
        /// Token identifying the timer.
        token: MuxTimerToken,
    },
    /// A queued (serialized) session's conflicts cleared and it started.
    SessionStarted {
        /// The session that started.
        session: SessionId,
    },
    /// One modification of one session confirmed (local plan id).
    Confirmed {
        /// The owning session.
        session: SessionId,
        /// The confirmed modification's local id.
        id: u64,
    },
    /// A switch rejected one modification of one session (local plan id).
    Rejected {
        /// The owning session.
        session: SessionId,
        /// The rejected modification's local id.
        id: u64,
        /// The OpenFlow error type.
        err_type: u16,
        /// The OpenFlow error code.
        code: u16,
    },
    /// A session confirmed its whole plan.
    SessionCompleted {
        /// The completed session.
        session: SessionId,
        /// Time (driver epoch) of the final confirmation.
        at: Duration,
    },
    /// A session's failure policy gave up.
    SessionAborted {
        /// The aborted session.
        session: SessionId,
        /// What failed, what was cancelled, what was rolled back.
        report: AbortReport,
    },
}

/// One rule cell two plans could collide on.
type ConflictKey = (usize, OfMatch, u16);

/// Telemetry handles published under `sessiond.*` when metrics are attached.
struct MuxMetrics {
    registry: Arc<Registry>,
    active: Arc<Gauge>,
    queued: Arc<Gauge>,
    admitted: Arc<Counter>,
    rejected_conflict: Arc<Counter>,
    serialized_conflict: Arc<Counter>,
    completed: Arc<Counter>,
    aborted: Arc<Counter>,
    stray_acks: Arc<Counter>,
    in_flight: Arc<Gauge>,
    confirm_latency_us: Arc<AtomicHistogram>,
}

impl MuxMetrics {
    fn new(registry: &Arc<Registry>) -> Self {
        MuxMetrics {
            registry: Arc::clone(registry),
            active: registry.gauge("sessiond.active"),
            queued: registry.gauge("sessiond.queued"),
            admitted: registry.counter("sessiond.admitted"),
            rejected_conflict: registry.counter("sessiond.rejected_conflict"),
            serialized_conflict: registry.counter("sessiond.serialized_conflict"),
            completed: registry.counter("sessiond.completed"),
            aborted: registry.counter("sessiond.aborted"),
            stray_acks: registry.counter("sessiond.stray_acks"),
            in_flight: registry.gauge("sessiond.in_flight"),
            confirm_latency_us: registry.histogram("sessiond.confirm_latency_us"),
        }
    }
}

/// Per-tenant bookkeeping around one owned [`UpdateSession`].
struct Tenant {
    session: UpdateSession,
    /// First wire cookie/xid of this tenant's namespace block.
    base: u64,
    /// The plan's rule cells (deduplicated), for conflict admission.
    keys: Vec<ConflictKey>,
    /// Rewritten sends awaiting release by the scheduler, FIFO.
    staged: VecDeque<(ConnId, OfMessage)>,
    /// Deficit round-robin credit (flow-mods this tenant may release).
    deficit: u64,
    /// Wire cookies released to the driver and not yet confirmed or
    /// rejected — this set (summed over tenants) is the global window.
    released_unconfirmed: HashSet<u64>,
    state: SessionState,
    /// Per-tenant metric handles, for the first `per_tenant_metrics`
    /// tenants.
    m_in_flight: Option<Arc<Gauge>>,
    m_confirmed: Option<Arc<Counter>>,
}

impl Tenant {
    fn record_in_flight(&self) {
        if let Some(g) = &self.m_in_flight {
            g.set(self.released_unconfirmed.len() as i64);
        }
    }
}

/// The session multiplexer: admission (namespaces + conflicts), fair
/// scheduling of the shared window, and wire-namespace translation for many
/// concurrent [`UpdateSession`]s.  Pure state machine; see the crate docs.
pub struct SessionMux {
    config: MuxConfig,
    tenants: Vec<Tenant>,
    /// Sessions queued by [`ConflictPolicy::Serialize`], FIFO.
    waiters: VecDeque<SessionId>,
    /// Rule cells of running sessions → owner.
    active_keys: HashMap<ConflictKey, SessionId>,
    /// Mux barrier xid → (tenant, the tenant's local barrier xid).
    barrier_map: HashMap<Xid, (SessionId, Xid)>,
    next_barrier_xid: Xid,
    /// Mux timer token → (tenant, the tenant's local token).
    timer_map: HashMap<u64, (SessionId, SessionTimerToken)>,
    next_timer_token: u64,
    /// Released-but-unconfirmed flow-mods across all tenants.
    global_in_flight: usize,
    /// Round-robin scan start, persisted across pumps so service rotates.
    rr_cursor: usize,
    /// Acknowledgments (or barrier replies) that decoded to no tenant.
    stray_acks: u64,
    /// PacketIns absorbed at the mux (probes leaking past RUM, punts).
    packet_ins: u64,
    metrics: Option<MuxMetrics>,
}

impl SessionMux {
    /// Creates an empty mux.
    ///
    /// # Panics
    ///
    /// Panics if the config is degenerate: a zero global window or
    /// `namespace_bits` outside `1..=29` (flow-mod xids must stay below the
    /// mux barrier range at `0x4000_0000`).
    pub fn new(config: MuxConfig) -> Self {
        assert!(config.global_window > 0, "global window must be at least 1");
        assert!(
            (1..=29).contains(&config.namespace_bits),
            "namespace_bits must be in 1..=29"
        );
        SessionMux {
            config,
            tenants: Vec::new(),
            waiters: VecDeque::new(),
            active_keys: HashMap::new(),
            barrier_map: HashMap::new(),
            next_barrier_xid: MUX_BARRIER_BASE,
            timer_map: HashMap::new(),
            next_timer_token: 0,
            global_in_flight: 0,
            rr_cursor: 0,
            stray_acks: 0,
            packet_ins: 0,
            metrics: None,
        }
    }

    /// Publishes mux progress into `registry` under `sessiond.*`; the first
    /// [`MuxConfig::per_tenant_metrics`] tenants additionally get
    /// `sessiond.t{i}.*` series.  Attach before the first submission.
    pub fn attach_metrics(&mut self, registry: &Arc<Registry>) {
        self.metrics = Some(MuxMetrics::new(registry));
    }

    /// The mux configuration.
    pub fn config(&self) -> &MuxConfig {
        &self.config
    }

    /// How many sessions this mux can ever isolate: flow-mod xids must stay
    /// below the barrier range, so `2^(30 - bits) - 1` blocks exist.
    pub fn max_sessions(&self) -> usize {
        ((u64::from(MUX_BARRIER_BASE) >> self.config.namespace_bits) - 1) as usize
    }

    /// Exclusive upper bound on local plan ids (`2^namespace_bits`).
    pub fn id_capacity(&self) -> u64 {
        1u64 << self.config.namespace_bits
    }

    /// Total sessions ever submitted (running, queued and finished).
    pub fn session_count(&self) -> usize {
        self.tenants.len()
    }

    /// Sessions currently executing.
    pub fn running_sessions(&self) -> usize {
        self.tenants
            .iter()
            .filter(|t| t.state == SessionState::Running)
            .count()
    }

    /// Sessions queued behind a conflict.
    pub fn queued_sessions(&self) -> usize {
        self.waiters.len()
    }

    /// True once no session is running or queued.
    pub fn all_done(&self) -> bool {
        self.tenants.iter().all(|t| t.state == SessionState::Done)
    }

    /// Where `session` currently stands.
    pub fn state(&self, session: SessionId) -> Option<&SessionState> {
        self.tenants.get(session.0).map(|t| &t.state)
    }

    /// Read access to one tenant's session (local-id view: confirmed order,
    /// timestamps, outcome).
    pub fn session(&self, session: SessionId) -> Option<&UpdateSession> {
        self.tenants.get(session.0).map(|t| &t.session)
    }

    /// One tenant's terminal outcome, once it has one.
    pub fn outcome(&self, session: SessionId) -> Option<&SessionOutcome> {
        self.session(session).and_then(|s| s.outcome())
    }

    /// Released-but-unconfirmed flow-mods across all tenants (never exceeds
    /// [`MuxConfig::global_window`]).
    pub fn global_in_flight(&self) -> usize {
        self.global_in_flight
    }

    /// Acknowledgments and barrier replies that decoded to no tenant.
    pub fn stray_acks(&self) -> u64 {
        self.stray_acks
    }

    /// PacketIns absorbed at the mux.
    pub fn packet_ins(&self) -> u64 {
        self.packet_ins
    }

    /// First wire cookie of `session`'s namespace block; wire cookie =
    /// `base + local id` for every modification of the session.
    pub fn base(&self, session: SessionId) -> Option<u64> {
        self.tenants.get(session.0).map(|t| t.base)
    }

    // ------------------------------------------------------------------
    // Admission
    // ------------------------------------------------------------------

    /// Submits one plan as a new tenant session.  On admission the session
    /// starts immediately (effects appended); under
    /// [`ConflictPolicy::Serialize`] a conflicting plan is queued instead
    /// and starts — with a [`MuxEffect::SessionStarted`] — once its
    /// conflicts clear.
    pub fn submit(
        &mut self,
        plan: UpdatePlan,
        now: Duration,
        effects: &mut Vec<MuxEffect>,
    ) -> Result<SessionId, AdmitError> {
        if self.tenants.len() >= self.max_sessions() {
            return Err(AdmitError::NamespaceExhausted {
                max_sessions: self.max_sessions(),
            });
        }
        let capacity = self.id_capacity();
        for m in plan.mods() {
            if m.id >= capacity {
                return Err(AdmitError::IdOutOfNamespace { id: m.id, capacity });
            }
        }
        let mut keys: Vec<ConflictKey> = plan
            .mods()
            .iter()
            .map(|m| (m.target, m.flow_mod.match_, m.flow_mod.priority))
            .collect();
        keys.sort_unstable_by_key(|k| (k.0, k.2, format!("{:?}", k.1)));
        keys.dedup();

        let conflict = self.first_conflict(&keys);
        if let Some(err) = conflict {
            match self.config.conflict_policy {
                ConflictPolicy::Reject => {
                    if let Some(m) = &self.metrics {
                        m.rejected_conflict.inc();
                    }
                    return Err(err);
                }
                ConflictPolicy::Serialize => {
                    let sid = self.new_tenant(plan, keys, SessionState::Queued);
                    self.waiters.push_back(sid);
                    if let Some(m) = &self.metrics {
                        m.serialized_conflict.inc();
                        m.admitted.inc();
                        m.queued.set(self.waiters.len() as i64);
                    }
                    return Ok(sid);
                }
            }
        }

        let sid = self.new_tenant(plan, keys, SessionState::Running);
        self.activate(sid);
        if let Some(m) = &self.metrics {
            m.admitted.inc();
        }
        self.drive(sid, SessionInput::Started, now, effects);
        self.pump(effects);
        Ok(sid)
    }

    /// The first rule cell of `keys` contested by a running session or an
    /// earlier-queued waiter, as the typed error a rejection would carry.
    fn first_conflict(&self, keys: &[ConflictKey]) -> Option<AdmitError> {
        for &key in keys {
            if let Some(&with) = self.active_keys.get(&key) {
                return Some(AdmitError::Conflict {
                    with,
                    target: key.0,
                    match_: key.1,
                    priority: key.2,
                });
            }
        }
        // Under Serialize, queued predecessors also own their cells: a later
        // conflicting plan must not overtake them.
        for &waiter in &self.waiters {
            let t = &self.tenants[waiter.0];
            for key in keys {
                if t.keys.contains(key) {
                    return Some(AdmitError::Conflict {
                        with: waiter,
                        target: key.0,
                        match_: key.1,
                        priority: key.2,
                    });
                }
            }
        }
        None
    }

    fn new_tenant(
        &mut self,
        plan: UpdatePlan,
        keys: Vec<ConflictKey>,
        state: SessionState,
    ) -> SessionId {
        let index = self.tenants.len();
        let base = (index as u64 + 1) << self.config.namespace_bits;
        let mut session =
            UpdateSession::new(plan, self.config.ack_mode, self.config.session_window);
        session.set_failure_policy(self.config.failure_policy);
        let (m_in_flight, m_confirmed) = match &self.metrics {
            Some(m) if index < self.config.per_tenant_metrics => (
                Some(m.registry.gauge(&format!("sessiond.t{index}.in_flight"))),
                Some(m.registry.counter(&format!("sessiond.t{index}.confirmed"))),
            ),
            _ => (None, None),
        };
        self.tenants.push(Tenant {
            session,
            base,
            keys,
            staged: VecDeque::new(),
            deficit: 0,
            released_unconfirmed: HashSet::new(),
            state,
            m_in_flight,
            m_confirmed,
        });
        SessionId(index)
    }

    /// Marks `sid` running and claims its rule cells.
    fn activate(&mut self, sid: SessionId) {
        for &key in &self.tenants[sid.0].keys {
            self.active_keys.insert(key, sid);
        }
        self.tenants[sid.0].state = SessionState::Running;
        if let Some(m) = &self.metrics {
            m.active.set(self.running_sessions() as i64);
        }
    }

    // ------------------------------------------------------------------
    // Input handling
    // ------------------------------------------------------------------

    /// Feeds one input into the mux, appending the effects the driver must
    /// execute (in order).
    pub fn handle(&mut self, now: Duration, input: MuxInput, effects: &mut Vec<MuxEffect>) {
        match input {
            MuxInput::FromSwitch { conn, message } => {
                self.on_switch_msg(conn, message, now, effects)
            }
            MuxInput::TimerFired { token } => {
                if let Some((sid, local)) = self.timer_map.remove(&token.raw()) {
                    self.drive(sid, SessionInput::TimerFired { token: local }, now, effects);
                }
            }
            MuxInput::Tick => {
                for i in 0..self.tenants.len() {
                    if self.tenants[i].state == SessionState::Running {
                        self.drive(SessionId(i), SessionInput::Tick, now, effects);
                    }
                }
            }
        }
        self.pump(effects);
    }

    /// Decodes a wire cookie/xid back to its owning tenant and local id.
    fn decode(&self, global: u64) -> Option<(SessionId, u64)> {
        let block = (global >> self.config.namespace_bits) as usize;
        if block == 0 || block > self.tenants.len() {
            return None;
        }
        let local = global & (self.id_capacity() - 1);
        Some((SessionId(block - 1), local))
    }

    fn on_switch_msg(
        &mut self,
        conn: ConnId,
        message: OfMessage,
        now: Duration,
        effects: &mut Vec<MuxEffect>,
    ) {
        match message {
            OfMessage::BarrierReply { xid } => match self.barrier_map.remove(&xid) {
                Some((sid, local)) => self.drive(
                    sid,
                    SessionInput::FromSwitch {
                        conn,
                        message: OfMessage::BarrierReply { xid: local },
                    },
                    now,
                    effects,
                ),
                None => self.count_stray(),
            },
            OfMessage::Error { xid, ref body } => {
                let is_ack = message.as_rum_ack().is_some();
                let global = match message.as_rum_ack() {
                    Some(acked) => u64::from(acked),
                    None => u64::from(xid),
                };
                match self.decode(global) {
                    Some((sid, local)) => {
                        let local_msg = if is_ack {
                            OfMessage::rum_ack(local as Xid)
                        } else {
                            OfMessage::Error {
                                xid: local as Xid,
                                body: body.clone(),
                            }
                        };
                        self.drive(
                            sid,
                            SessionInput::FromSwitch {
                                conn,
                                message: local_msg,
                            },
                            now,
                            effects,
                        );
                    }
                    None => self.count_stray(),
                }
            }
            OfMessage::EchoRequest { xid, data } => effects.push(MuxEffect::Send {
                conn,
                message: OfMessage::EchoReply { xid, data },
            }),
            OfMessage::Hello { xid } => effects.push(MuxEffect::Send {
                conn,
                message: OfMessage::Hello { xid },
            }),
            OfMessage::PacketIn { .. } => self.packet_ins += 1,
            _ => {}
        }
    }

    fn count_stray(&mut self) {
        self.stray_acks += 1;
        if let Some(m) = &self.metrics {
            m.stray_acks.inc();
        }
    }

    // ------------------------------------------------------------------
    // Session effect translation
    // ------------------------------------------------------------------

    /// Feeds one input into tenant `sid`'s session and translates every
    /// returned effect into the mux's wire namespaces.
    fn drive(
        &mut self,
        sid: SessionId,
        input: SessionInput,
        now: Duration,
        effects: &mut Vec<MuxEffect>,
    ) {
        let fx = self.tenants[sid.0].session.handle(now, input);
        for effect in fx {
            self.apply_effect(sid, effect, now, effects);
        }
    }

    fn apply_effect(
        &mut self,
        sid: SessionId,
        effect: SessionEffect,
        now: Duration,
        effects: &mut Vec<MuxEffect>,
    ) {
        let base = self.tenants[sid.0].base;
        match effect {
            SessionEffect::Send { conn, message } => {
                let rewritten = match message {
                    OfMessage::FlowMod { xid, mut body } => {
                        body.cookie += base;
                        OfMessage::FlowMod {
                            xid: (base + u64::from(xid)) as Xid,
                            body,
                        }
                    }
                    OfMessage::BarrierRequest { xid } => {
                        let global = self.next_barrier_xid;
                        self.next_barrier_xid += 1;
                        self.barrier_map.insert(global, (sid, xid));
                        OfMessage::BarrierRequest { xid: global }
                    }
                    other => other,
                };
                self.tenants[sid.0].staged.push_back((conn, rewritten));
            }
            SessionEffect::ArmTimer { delay, token } => {
                let global = self.next_timer_token;
                self.next_timer_token += 1;
                self.timer_map.insert(global, (sid, token));
                effects.push(MuxEffect::ArmTimer {
                    delay,
                    token: MuxTimerToken(global),
                });
            }
            SessionEffect::Confirmed { id } => {
                self.settle(sid, base + id);
                let t = &self.tenants[sid.0];
                if let Some(c) = &t.m_confirmed {
                    c.inc();
                }
                if let Some(m) = &self.metrics {
                    if let Some(&sent_at) = t.session.send_times().get(&id) {
                        m.confirm_latency_us
                            .record(now.saturating_sub(sent_at).as_micros() as u64);
                    }
                }
                effects.push(MuxEffect::Confirmed { session: sid, id });
            }
            SessionEffect::Rejected { id, err_type, code } => {
                self.settle(sid, base + id);
                effects.push(MuxEffect::Rejected {
                    session: sid,
                    id,
                    err_type,
                    code,
                });
            }
            SessionEffect::Completed { at } => {
                effects.push(MuxEffect::SessionCompleted { session: sid, at });
                self.finish(sid, true, now, effects);
            }
            SessionEffect::Aborted { report } => {
                effects.push(MuxEffect::SessionAborted {
                    session: sid,
                    report,
                });
                self.finish(sid, false, now, effects);
            }
        }
    }

    /// A wire cookie was confirmed or rejected: release its budget slot.
    fn settle(&mut self, sid: SessionId, global: u64) {
        if self.tenants[sid.0].released_unconfirmed.remove(&global) {
            self.global_in_flight -= 1;
            self.tenants[sid.0].record_in_flight();
            if let Some(m) = &self.metrics {
                m.in_flight.set(self.global_in_flight as i64);
            }
        }
    }

    /// A session reached its terminal outcome: free its rule cells and
    /// budget, then admit any waiters whose conflicts cleared.
    fn finish(
        &mut self,
        sid: SessionId,
        completed: bool,
        now: Duration,
        effects: &mut Vec<MuxEffect>,
    ) {
        let freed = self.tenants[sid.0].released_unconfirmed.len();
        self.global_in_flight -= freed;
        self.tenants[sid.0].released_unconfirmed.clear();
        self.tenants[sid.0].record_in_flight();
        self.tenants[sid.0].state = SessionState::Done;
        self.active_keys.retain(|_, owner| *owner != sid);
        if let Some(m) = &self.metrics {
            if completed {
                m.completed.inc();
            } else {
                m.aborted.inc();
            }
            m.active.set(self.running_sessions() as i64);
            m.in_flight.set(self.global_in_flight as i64);
        }
        self.admit_waiters(now, effects);
    }

    /// Starts every queued session whose cells are now free, in FIFO order;
    /// a still-blocked waiter keeps blocking later conflicting waiters.
    fn admit_waiters(&mut self, now: Duration, effects: &mut Vec<MuxEffect>) {
        let mut blocked_cells: HashSet<ConflictKey> = HashSet::new();
        let mut admitted = Vec::new();
        let mut still_waiting = VecDeque::new();
        for &sid in &self.waiters {
            let t = &self.tenants[sid.0];
            let free = t
                .keys
                .iter()
                .all(|k| !self.active_keys.contains_key(k) && !blocked_cells.contains(k));
            if free {
                // Claim eagerly so later waiters see the cells as taken.
                for &key in &t.keys {
                    blocked_cells.insert(key);
                }
                admitted.push(sid);
            } else {
                for &key in &t.keys {
                    blocked_cells.insert(key);
                }
                still_waiting.push_back(sid);
            }
        }
        self.waiters = still_waiting;
        if let Some(m) = &self.metrics {
            m.queued.set(self.waiters.len() as i64);
        }
        for sid in admitted {
            self.activate(sid);
            effects.push(MuxEffect::SessionStarted { session: sid });
            self.drive(sid, SessionInput::Started, now, effects);
        }
    }

    // ------------------------------------------------------------------
    // Fair scheduling
    // ------------------------------------------------------------------

    /// Releases staged sends under deficit round-robin: each visit grants a
    /// tenant `quantum` flow-mod credits; flow-mods additionally need a free
    /// slot in the global window; everything else (barriers, echo replies)
    /// rides along at zero cost in FIFO order.  Loops until a full cycle
    /// makes no progress.
    fn pump(&mut self, effects: &mut Vec<MuxEffect>) {
        let n = self.tenants.len();
        if n == 0 {
            return;
        }
        let mut since_progress = 0;
        let mut i = self.rr_cursor % n;
        while since_progress < n {
            if self.service(i, effects) {
                since_progress = 0;
            } else {
                since_progress += 1;
            }
            i = (i + 1) % n;
        }
        self.rr_cursor = i;
    }

    /// One scheduling visit to tenant `idx`; true if anything was released.
    fn service(&mut self, idx: usize, effects: &mut Vec<MuxEffect>) -> bool {
        if self.tenants[idx].staged.is_empty() {
            self.tenants[idx].deficit = 0;
            return false;
        }
        let quantum = self.config.quantum.max(1);
        // Accrue one quantum per visit, capped so a long stall behind the
        // global window cannot bank an unbounded burst.
        self.tenants[idx].deficit =
            (self.tenants[idx].deficit + quantum).min(quantum.saturating_mul(4));
        let mut progressed = false;
        while let Some((_, front)) = self.tenants[idx].staged.front() {
            let is_mod = matches!(front, OfMessage::FlowMod { .. });
            if is_mod
                && (self.tenants[idx].deficit == 0
                    || self.global_in_flight >= self.config.global_window)
            {
                break;
            }
            let (conn, message) = self.tenants[idx].staged.pop_front().expect("front exists");
            if is_mod {
                self.tenants[idx].deficit -= 1;
                if let OfMessage::FlowMod { xid, .. } = &message {
                    let global = u64::from(*xid);
                    let local = global - self.tenants[idx].base;
                    // Only cookies still awaiting a confirmation occupy a
                    // budget slot: NoWait mods confirm at stage time, and
                    // rollback deletes reuse the id of an already-settled
                    // modification.
                    let awaiting = self.tenants[idx]
                        .session
                        .confirmation_times()
                        .get(&local)
                        .is_none()
                        && !self.tenants[idx].session.failed().contains(&local);
                    if awaiting && self.tenants[idx].released_unconfirmed.insert(global) {
                        self.global_in_flight += 1;
                        self.tenants[idx].record_in_flight();
                        if let Some(m) = &self.metrics {
                            m.in_flight.set(self.global_in_flight as i64);
                        }
                    }
                }
            }
            effects.push(MuxEffect::Send { conn, message });
            progressed = true;
        }
        if self.tenants[idx].staged.is_empty() {
            self.tenants[idx].deficit = 0;
        }
        progressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::messages::FlowMod;
    use openflow::{Action, OfMatch};
    use std::net::Ipv4Addr;

    fn m(tenant: u8, i: u8) -> OfMatch {
        OfMatch::ipv4_pair(
            Ipv4Addr::new(10, tenant, 0, i),
            Ipv4Addr::new(10, 200, 0, 1),
        )
    }

    fn plan_of(tenant: u8, n: u8) -> UpdatePlan {
        let mut plan = UpdatePlan::new();
        for i in 0..n {
            plan.add(
                u64::from(i) + 1,
                0,
                FlowMod::add(m(tenant, i + 1), 100, vec![Action::output(2)]),
            )
            .unwrap();
        }
        plan
    }

    fn sent_mod_xids(effects: &[MuxEffect]) -> Vec<u64> {
        effects
            .iter()
            .filter_map(|e| match e {
                MuxEffect::Send {
                    message: OfMessage::FlowMod { xid, .. },
                    ..
                } => Some(u64::from(*xid)),
                _ => None,
            })
            .collect()
    }

    fn ack(mux: &mut SessionMux, global: u64, at_ms: u64) -> Vec<MuxEffect> {
        let mut fx = Vec::new();
        mux.handle(
            Duration::from_millis(at_ms),
            MuxInput::FromSwitch {
                conn: ConnId::new(0),
                message: OfMessage::rum_ack(global as Xid),
            },
            &mut fx,
        );
        fx
    }

    fn config() -> MuxConfig {
        MuxConfig {
            session_window: 2,
            global_window: 3,
            quantum: 1,
            ..MuxConfig::default()
        }
    }

    #[test]
    fn namespaces_are_disjoint_and_decoded_back() {
        let mut mux = SessionMux::new(config());
        let mut fx = Vec::new();
        let a = mux.submit(plan_of(1, 2), Duration::ZERO, &mut fx).unwrap();
        let b = mux.submit(plan_of(2, 2), Duration::ZERO, &mut fx).unwrap();
        let base_a = mux.base(a).unwrap();
        let base_b = mux.base(b).unwrap();
        assert_eq!(base_a, 1 << DEFAULT_NAMESPACE_BITS);
        assert_eq!(base_b, 2 << DEFAULT_NAMESPACE_BITS);
        let xids = sent_mod_xids(&fx);
        assert!(xids.contains(&(base_a + 1)), "{xids:?}");
        assert!(xids.contains(&(base_b + 1)), "{xids:?}");
        // Acks route back to the right tenant by namespace alone.
        let fx = ack(&mut mux, base_b + 1, 1);
        assert!(fx
            .iter()
            .any(|e| matches!(e, MuxEffect::Confirmed { session, id: 1 } if *session == b)));
        assert_eq!(mux.session(a).unwrap().confirmed_count(), 0);
        assert_eq!(mux.session(b).unwrap().confirmed_count(), 1);
    }

    #[test]
    fn oversized_plan_ids_are_rejected_typed() {
        let mut mux = SessionMux::new(config());
        let mut plan = UpdatePlan::new();
        let capacity = mux.id_capacity();
        plan.add(capacity, 0, FlowMod::add(m(1, 1), 100, vec![]))
            .unwrap();
        let err = mux
            .submit(plan, Duration::ZERO, &mut Vec::new())
            .unwrap_err();
        assert_eq!(
            err,
            AdmitError::IdOutOfNamespace {
                id: capacity,
                capacity
            }
        );
        assert_eq!(mux.session_count(), 0, "nothing was admitted");
    }

    #[test]
    fn namespace_exhaustion_is_a_typed_error() {
        // 4 bits above the barrier base leave (0x4000_0000 >> 26) - 1 = 15
        // blocks; the 16th submission must fail crisply.
        let mut mux = SessionMux::new(MuxConfig {
            namespace_bits: 26,
            ..config()
        });
        assert_eq!(mux.max_sessions(), 15);
        let mut fx = Vec::new();
        for t in 0..15 {
            mux.submit(plan_of(t, 1), Duration::ZERO, &mut fx).unwrap();
        }
        let err = mux
            .submit(plan_of(101, 1), Duration::ZERO, &mut fx)
            .unwrap_err();
        assert_eq!(err, AdmitError::NamespaceExhausted { max_sessions: 15 });
    }

    #[test]
    fn reject_policy_surfaces_the_conflicting_session() {
        let mut mux = SessionMux::new(MuxConfig {
            conflict_policy: ConflictPolicy::Reject,
            ..config()
        });
        let mut fx = Vec::new();
        let a = mux.submit(plan_of(1, 3), Duration::ZERO, &mut fx).unwrap();
        // Same tenant-1 matches → same (switch, match, priority) cells.
        let err = mux
            .submit(plan_of(1, 2), Duration::ZERO, &mut fx)
            .unwrap_err();
        match err {
            AdmitError::Conflict {
                with,
                target,
                priority,
                ..
            } => {
                assert_eq!(with, a);
                assert_eq!(target, 0);
                assert_eq!(priority, 100);
            }
            other => panic!("expected a conflict, got {other:?}"),
        }
        // Disjoint matches are admitted just fine.
        mux.submit(plan_of(2, 2), Duration::ZERO, &mut fx).unwrap();
    }

    #[test]
    fn serialize_policy_queues_then_starts_in_fifo_order() {
        let mut mux = SessionMux::new(config());
        let mut fx = Vec::new();
        let a = mux.submit(plan_of(1, 2), Duration::ZERO, &mut fx).unwrap();
        let b = mux.submit(plan_of(1, 2), Duration::ZERO, &mut fx).unwrap();
        let c = mux.submit(plan_of(1, 1), Duration::ZERO, &mut fx).unwrap();
        assert_eq!(mux.state(b), Some(&SessionState::Queued));
        assert_eq!(mux.state(c), Some(&SessionState::Queued));
        assert_eq!(mux.queued_sessions(), 2);
        let base_a = mux.base(a).unwrap();

        // Finish A: B (not C — FIFO, same cells) starts.
        ack(&mut mux, base_a + 1, 1);
        let fx = ack(&mut mux, base_a + 2, 2);
        assert!(fx
            .iter()
            .any(|e| matches!(e, MuxEffect::SessionCompleted { session, .. } if *session == a)));
        assert!(fx
            .iter()
            .any(|e| matches!(e, MuxEffect::SessionStarted { session } if *session == b)));
        assert!(
            !fx.iter()
                .any(|e| matches!(e, MuxEffect::SessionStarted { session } if *session == c)),
            "C must not overtake B"
        );
        assert_eq!(mux.state(b), Some(&SessionState::Running));
        assert_eq!(mux.state(c), Some(&SessionState::Queued));

        // Finish B: C starts.
        let base_b = mux.base(b).unwrap();
        ack(&mut mux, base_b + 1, 3);
        let fx = ack(&mut mux, base_b + 2, 4);
        assert!(fx
            .iter()
            .any(|e| matches!(e, MuxEffect::SessionStarted { session } if *session == c)));
        let base_c = mux.base(c).unwrap();
        ack(&mut mux, base_c + 1, 5);
        assert!(mux.all_done());
    }

    #[test]
    fn global_window_caps_released_mods_across_tenants() {
        // 4 tenants × window 2 = 8 staged mods, but only 3 budget slots.
        let mut mux = SessionMux::new(config());
        let mut fx = Vec::new();
        for t in 0..4 {
            mux.submit(plan_of(t, 4), Duration::ZERO, &mut fx).unwrap();
        }
        assert_eq!(sent_mod_xids(&fx).len(), 3);
        assert_eq!(mux.global_in_flight(), 3);
        // Each confirmation frees exactly one slot.
        let released = sent_mod_xids(&fx);
        let fx = ack(&mut mux, released[0], 1);
        assert_eq!(sent_mod_xids(&fx).len(), 1);
        assert_eq!(mux.global_in_flight(), 3);
    }

    #[test]
    fn round_robin_interleaves_a_large_and_a_small_tenant() {
        // One 8-mod plan and one 2-mod plan, global window 2, quantum 1.
        // The scheduler is work-conserving (the big plan, alone at first,
        // takes both slots), but once both tenants contend, freed slots
        // must rotate: the small tenant finishes well before the big one,
        // instead of waiting for its whole backlog.
        let mut mux = SessionMux::new(MuxConfig {
            session_window: 8,
            global_window: 2,
            quantum: 1,
            ..MuxConfig::default()
        });
        let mut fx = Vec::new();
        let big = mux.submit(plan_of(1, 8), Duration::ZERO, &mut fx).unwrap();
        let small = mux.submit(plan_of(2, 2), Duration::ZERO, &mut fx).unwrap();
        let base_small = mux.base(small).unwrap();
        // Ack strictly in release order and record the release sequence.
        let mut release_order: Vec<u64> = sent_mod_xids(&fx);
        let mut next = 0;
        let mut at = 1;
        while next < release_order.len() {
            let x = release_order[next];
            next += 1;
            let fx = ack(&mut mux, x, at);
            release_order.extend(sent_mod_xids(&fx));
            at += 1;
        }
        assert!(mux.all_done());
        assert!(mux.session(big).unwrap().is_complete());
        assert!(mux.session(small).unwrap().is_complete());
        // Both of small's mods were released before big's last three: the
        // rotation granted small a freed slot while big still had backlog.
        let last_small = release_order
            .iter()
            .rposition(|&x| x >= base_small)
            .expect("small tenant released something");
        assert!(
            release_order.len() - last_small > 3,
            "small tenant starved behind the big plan: {release_order:?}"
        );
    }

    #[test]
    fn barrier_xids_are_translated_per_tenant() {
        let mut mux = SessionMux::new(MuxConfig {
            ack_mode: AckMode::Barriers { batch: 1 },
            session_window: 2,
            global_window: 8,
            ..MuxConfig::default()
        });
        let mut fx = Vec::new();
        let a = mux.submit(plan_of(1, 1), Duration::ZERO, &mut fx).unwrap();
        let b = mux.submit(plan_of(2, 1), Duration::ZERO, &mut fx).unwrap();
        let barriers: Vec<Xid> = fx
            .iter()
            .filter_map(|e| match e {
                MuxEffect::Send {
                    message: OfMessage::BarrierRequest { xid },
                    ..
                } => Some(*xid),
                _ => None,
            })
            .collect();
        assert_eq!(barriers.len(), 2);
        assert_ne!(barriers[0], barriers[1], "wire barrier xids must differ");
        // Replying to B's barrier confirms B's mod, not A's.
        let mut fx = Vec::new();
        mux.handle(
            Duration::from_millis(1),
            MuxInput::FromSwitch {
                conn: ConnId::new(0),
                message: OfMessage::BarrierReply { xid: barriers[1] },
            },
            &mut fx,
        );
        assert!(fx
            .iter()
            .any(|e| matches!(e, MuxEffect::Confirmed { session, id: 1 } if *session == b)));
        assert_eq!(mux.session(a).unwrap().confirmed_count(), 0);
    }

    #[test]
    fn stray_acks_are_counted_not_misattributed() {
        let mut mux = SessionMux::new(config());
        let mut fx = Vec::new();
        mux.submit(plan_of(1, 1), Duration::ZERO, &mut fx).unwrap();
        // An ack below every tenant base, and one beyond the last tenant.
        ack(&mut mux, 7, 1);
        ack(&mut mux, 5 << DEFAULT_NAMESPACE_BITS, 2);
        // A barrier reply nobody asked for.
        let mut fx = Vec::new();
        mux.handle(
            Duration::from_millis(3),
            MuxInput::FromSwitch {
                conn: ConnId::new(0),
                message: OfMessage::BarrierReply { xid: 0x4000_0007 },
            },
            &mut fx,
        );
        assert_eq!(mux.stray_acks(), 3);
        assert_eq!(mux.session(SessionId(0)).unwrap().confirmed_count(), 0);
    }

    #[test]
    fn metrics_track_admission_and_completion() {
        let registry = Arc::new(Registry::new());
        let mut mux = SessionMux::new(MuxConfig {
            conflict_policy: ConflictPolicy::Serialize,
            ..config()
        });
        mux.attach_metrics(&registry);
        let mut fx = Vec::new();
        let a = mux.submit(plan_of(1, 1), Duration::ZERO, &mut fx).unwrap();
        mux.submit(plan_of(1, 1), Duration::ZERO, &mut fx).unwrap();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["sessiond.admitted"], 2);
        assert_eq!(snap.counters["sessiond.serialized_conflict"], 1);
        assert_eq!(snap.gauges["sessiond.active"], 1);
        assert_eq!(snap.gauges["sessiond.queued"], 1);
        let base_a = mux.base(a).unwrap();
        ack(&mut mux, base_a + 1, 1);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["sessiond.completed"], 1);
        assert_eq!(snap.gauges["sessiond.queued"], 0);
        assert_eq!(snap.counters["sessiond.t0.confirmed"], 1);
        assert!(snap.histograms["sessiond.confirm_latency_us"].count >= 1);
    }

    #[test]
    fn echo_and_hello_are_answered_at_the_mux() {
        let mut mux = SessionMux::new(config());
        let mut fx = Vec::new();
        mux.handle(
            Duration::ZERO,
            MuxInput::FromSwitch {
                conn: ConnId::new(2),
                message: OfMessage::EchoRequest {
                    xid: 9,
                    data: vec![1],
                },
            },
            &mut fx,
        );
        assert!(matches!(
            fx.as_slice(),
            [MuxEffect::Send {
                conn,
                message: OfMessage::EchoReply { xid: 9, .. },
            }] if conn.index() == 2
        ));
    }
}
