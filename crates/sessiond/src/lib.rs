//! The multi-tenant session plane: many concurrent [`controller::UpdateSession`]s
//! multiplexed over one shared switch fleet.
//!
//! The paper (and every experiment up to this crate) runs *one* update plan
//! at a time.  The "millions of users" regime the ROADMAP aims at is
//! different: hundreds of independent tenants each pushing their own plan
//! through the same RUM proxy, with overlapping matches, a contended
//! confirmation window and sustained churn.  [`SessionMux`] is the sans-IO
//! core of that regime:
//!
//! * **Disjoint namespaces** — tenant *i* owns the cookie/xid block
//!   `(i+1) << namespace_bits`; every flow-mod xid and cookie is rewritten
//!   into the tenant's block on the way out and decoded back on the way in,
//!   so two plans can never collide on an acknowledgment.  Plans whose local
//!   ids do not fit the block are rejected with a typed
//!   [`AdmitError::IdOutOfNamespace`] — misattribution is unrepresentable,
//!   not merely checked.
//! * **Conflict detection** — two in-flight plans touching the same
//!   `(switch, match, priority)` cell would race on the rule itself.  The
//!   configurable [`ConflictPolicy`] either **serializes** the later plan
//!   (FIFO, no overtaking) or **rejects** it with
//!   [`AdmitError::Conflict`].
//! * **Fair scheduling** — a shared outstanding-window budget is divided by
//!   deficit round-robin over each tenant's staged modifications, so one
//!   4000-rule plan cannot starve a 3-rule tenant.
//!
//! Like every core in this workspace, the mux performs no I/O: drivers feed
//! [`MuxInput`]s and execute [`MuxEffect`]s.  Two drivers ship:
//! [`MuxController`] for the deterministic simulator and
//! `rum_tcp::TcpMuxController` for real sockets — the cross-driver equality
//! tests hold per session, exactly as they do for the single-session plane.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mux;
pub mod sim_driver;

pub use mux::{
    AdmitError, ConflictPolicy, MuxConfig, MuxEffect, MuxInput, MuxTimerToken, SessionId,
    SessionMux, SessionState, DEFAULT_NAMESPACE_BITS,
};
pub use sim_driver::MuxController;
