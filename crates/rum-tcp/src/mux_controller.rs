//! The TCP driver for the sans-IO [`SessionMux`]: many concurrent tenant
//! sessions multiplexed over one set of real switch connections.
//!
//! [`TcpMuxController`] is the multi-session sibling of
//! [`crate::TcpUpdateController`].  The socket plumbing is identical —
//! accept-order [`ConnId`] slots, reader threads batching decoded frames, a
//! writer thread per connection coalescing each drain into one write, a
//! timer thread — but the state machine behind the lock is a
//! [`SessionMux`], and plans are **submitted at runtime** through
//! [`TcpMuxHandle::submit`]: the churn interface a soak harness streams
//! hundreds of plans through.  Admission (namespace isolation, conflict
//! policy) happens synchronously in `submit`, so a rejected plan surfaces as
//! a typed [`AdmitError`] to the submitting thread, not as a late failure.

use crate::legacy::{reader_loop, writer_loop, Route};
use crate::timer::TimerQueue;
use controller::{ConnId, UpdatePlan};
use sessiond::{AdmitError, MuxConfig, MuxEffect, MuxInput, MuxTimerToken, SessionId, SessionMux};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

struct MuxState {
    mux: SessionMux,
    routes: Vec<Route>,
    /// Reusable per-connection encode buffers (one socket write per drain).
    send_bufs: Vec<Vec<u8>>,
    /// Reusable effects buffer for mux drains.
    effects: Vec<MuxEffect>,
    /// Which `ConnId` slots currently have a live connection.
    attached: Vec<bool>,
    /// Per-slot attach generation (see `TcpUpdateController`).
    generation: Vec<u64>,
    /// Total connections ever attached (reconnects included).
    total_accepted: usize,
}

struct Inner {
    state: Mutex<MuxState>,
    /// Notified whenever any session reaches a terminal outcome.
    done: Condvar,
    timers: TimerQueue,
    stop: AtomicBool,
    epoch: Instant,
}

impl Inner {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    /// Feeds one input under the lock and executes the returned effects.
    fn drive(self: &Arc<Self>, input: MuxInput) {
        self.drive_batch(std::iter::once(input));
    }

    /// Feeds a batch of inputs under a single lock acquisition.
    fn drive_batch(self: &Arc<Self>, inputs: impl IntoIterator<Item = MuxInput>) {
        let now = self.now();
        let mut st = self.state.lock().unwrap();
        let st = &mut *st;
        st.effects.clear();
        for input in inputs {
            st.mux.handle(now, input, &mut st.effects);
        }
        let effects = std::mem::take(&mut st.effects);
        self.execute(st, effects);
    }

    /// Executes mux effects against the socket routes; must be called with
    /// the state borrowed from the lock guard.  Timer arming and completion
    /// notification happen inline (the timer queue and condvar are not
    /// behind the state lock).
    fn execute(self: &Arc<Self>, st: &mut MuxState, mut effects: Vec<MuxEffect>) {
        let mut finished = false;
        let arm_base = Instant::now();
        for effect in effects.drain(..) {
            match effect {
                MuxEffect::Send { conn, message } => {
                    let Some(buf) = st.send_bufs.get_mut(conn.index()) else {
                        continue;
                    };
                    let len_before = buf.len();
                    if message.encode_into(buf).is_err() {
                        buf.truncate(len_before);
                    }
                }
                MuxEffect::ArmTimer { delay, token } => {
                    self.timers.arm(arm_base + delay, token.raw());
                }
                MuxEffect::SessionCompleted { .. } | MuxEffect::SessionAborted { .. } => {
                    finished = true;
                }
                MuxEffect::SessionStarted { .. }
                | MuxEffect::Confirmed { .. }
                | MuxEffect::Rejected { .. } => {}
            }
        }
        for (route, buf) in st.routes.iter_mut().zip(st.send_bufs.iter_mut()) {
            if !buf.is_empty() {
                route.send_bytes(std::mem::take(buf));
            }
        }
        // Keep the (emptied) allocation for the next drain.
        st.effects = effects;
        if finished {
            self.done.notify_all();
        }
    }
}

/// A multi-tenant update controller serving a [`SessionMux`] over TCP.
///
/// Switch connections attach in accept order ([`ConnId`] 0 first), exactly
/// like [`crate::TcpUpdateController`]; plans arrive afterwards through
/// [`TcpMuxHandle::submit`].
pub struct TcpMuxController {
    listen_addr: SocketAddr,
    mux: SessionMux,
    n_connections: usize,
    epoch: Instant,
}

impl TcpMuxController {
    /// Creates a mux controller expecting `n_connections` switch
    /// connections on `listen_addr`.
    pub fn new(listen_addr: SocketAddr, config: MuxConfig, n_connections: usize) -> Self {
        Self::new_with_epoch(listen_addr, config, n_connections, Instant::now())
    }

    /// Like [`TcpMuxController::new`] but measuring mux time against an
    /// explicit `epoch` — share one `Instant` with the switch hosts so
    /// confirmation times and data-plane activation times are comparable.
    pub fn new_with_epoch(
        listen_addr: SocketAddr,
        config: MuxConfig,
        n_connections: usize,
        epoch: Instant,
    ) -> Self {
        TcpMuxController {
            listen_addr,
            mux: SessionMux::new(config),
            n_connections,
            epoch,
        }
    }

    /// Mutable access to the mux before the run starts, e.g. to attach a
    /// telemetry registry.
    pub fn mux_mut(&mut self) -> &mut SessionMux {
        &mut self.mux
    }

    /// Binds the listener and starts accepting connections on background
    /// threads.  Plans submitted before a connection attaches buffer in the
    /// pending route and flush on attach.
    pub fn start(self) -> std::io::Result<TcpMuxHandle> {
        let listener = TcpListener::bind(self.listen_addr)?;
        let local_addr = listener.local_addr()?;
        let n_connections = self.n_connections;
        let inner = Arc::new(Inner {
            state: Mutex::new(MuxState {
                mux: self.mux,
                routes: (0..n_connections)
                    .map(|_| Route::Pending(Vec::new()))
                    .collect(),
                send_bufs: (0..n_connections).map(|_| Vec::new()).collect(),
                effects: Vec::new(),
                attached: vec![false; n_connections],
                generation: vec![0; n_connections],
                total_accepted: 0,
            }),
            done: Condvar::new(),
            timers: TimerQueue::new(),
            stop: AtomicBool::new(false),
            epoch: self.epoch,
        });

        let timer_thread = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || {
                let fire_inner = Arc::clone(&inner);
                inner.timers.run(&inner.stop, move |token| {
                    fire_inner.drive(MuxInput::TimerFired {
                        token: MuxTimerToken::from_raw(token),
                    });
                });
            })
        };

        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::spawn(move || {
            for incoming in listener.incoming() {
                if accept_inner.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = incoming else {
                    continue;
                };
                let (conn, generation) = {
                    let mut st = accept_inner.state.lock().unwrap();
                    // Lowest free slot; restarts reattach under their
                    // original ConnId (positional, like the single-session
                    // controller).
                    let Some(slot) = st.attached.iter().position(|&a| !a) else {
                        continue;
                    };
                    st.attached[slot] = true;
                    st.generation[slot] += 1;
                    st.total_accepted += 1;
                    (ConnId::new(slot), st.generation[slot])
                };
                attach_connection(&accept_inner, conn, generation, stream);
            }
        });

        Ok(TcpMuxHandle {
            local_addr,
            inner,
            accept_thread: Some(accept_thread),
            timer_thread: Some(timer_thread),
        })
    }
}

/// Wires one accepted switch connection (same shape as the single-session
/// controller: writer thread + reader thread, generation-guarded detach).
fn attach_connection(inner: &Arc<Inner>, conn: ConnId, generation: u64, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let reader = stream.try_clone().expect("clone switch stream");
    let (tx, rx) = channel::<Vec<u8>>();
    inner.state.lock().unwrap().routes[conn.index()].connect(tx);
    {
        let inner = Arc::clone(inner);
        std::thread::spawn(move || {
            writer_loop(rx, stream, None);
            detach_connection(&inner, conn, generation);
        });
    }
    {
        let inner = Arc::clone(inner);
        std::thread::spawn(move || {
            reader_loop(reader, |msgs| {
                inner.drive_batch(
                    msgs.drain(..)
                        .map(|message| MuxInput::FromSwitch { conn, message }),
                );
            });
            detach_connection(&inner, conn, generation);
        });
    }
}

/// Frees one slot after its connection died (generation-guarded).
fn detach_connection(inner: &Arc<Inner>, conn: ConnId, generation: u64) {
    let mut st = inner.state.lock().unwrap();
    if !st.attached[conn.index()] || st.generation[conn.index()] != generation {
        return;
    }
    st.attached[conn.index()] = false;
    st.routes[conn.index()] = Route::Pending(Vec::new());
}

/// A handle to a running TCP mux controller.
pub struct TcpMuxHandle {
    /// The address the controller actually listens on (useful with port 0).
    pub local_addr: SocketAddr,
    inner: Arc<Inner>,
    accept_thread: Option<JoinHandle<()>>,
    timer_thread: Option<JoinHandle<()>>,
}

impl TcpMuxHandle {
    /// Number of switch connections accepted so far (reconnects included).
    pub fn connections(&self) -> usize {
        self.inner.state.lock().unwrap().total_accepted
    }

    /// Submits one tenant plan.  Admission is synchronous: a conflict under
    /// [`sessiond::ConflictPolicy::Reject`], an oversized id or namespace
    /// exhaustion comes back as a typed [`AdmitError`] right here.  On
    /// admission the session's first window of sends goes out (or buffers
    /// on not-yet-attached routes) before this returns.
    pub fn submit(&self, plan: UpdatePlan) -> Result<SessionId, AdmitError> {
        let now = self.inner.now();
        let mut st = self.inner.state.lock().unwrap();
        let st = &mut *st;
        st.effects.clear();
        let result = st.mux.submit(plan, now, &mut st.effects);
        let effects = std::mem::take(&mut st.effects);
        self.inner.execute(st, effects);
        result
    }

    /// Runs `f` against the mux under the lock — the unified inspection
    /// surface (per-session state, confirm orders, outcomes, counters).
    pub fn with_mux<R>(&self, f: impl FnOnce(&SessionMux) -> R) -> R {
        f(&self.inner.state.lock().unwrap().mux)
    }

    /// One session's confirmation order (local plan ids).
    pub fn confirmed_order(&self, session: SessionId) -> Vec<u64> {
        self.with_mux(|m| {
            m.session(session)
                .map(|s| s.confirmed_order().to_vec())
                .unwrap_or_default()
        })
    }

    /// Blocks until every submitted session reached a terminal outcome or
    /// `timeout` elapses; true if all sessions are done.
    pub fn wait_all_done(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if st.mux.all_done() {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self.inner.done.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }

    /// Asks the accept and timer loops to stop and waits for them.
    pub fn shutdown(mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.timers.wake();
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.timer_thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use controller::AckMode;
    use openflow::messages::FlowMod;
    use openflow::{Action, OfCodec, OfMatch, OfMessage};
    use sessiond::{ConflictPolicy, SessionState};
    use std::io::{Read, Write};
    use std::net::Ipv4Addr;

    fn tenant_plan(tenant: u8, n: u8) -> UpdatePlan {
        let mut plan = UpdatePlan::new();
        for i in 0..n {
            plan.add(
                u64::from(i) + 1,
                0,
                FlowMod::add(
                    OfMatch::ipv4_pair(
                        Ipv4Addr::new(10, tenant, 0, i + 1),
                        Ipv4Addr::new(10, 200, 0, 1),
                    ),
                    100,
                    vec![Action::output(2)],
                ),
            )
            .unwrap();
        }
        plan
    }

    /// A scripted in-process switch acking every flow-mod RUM-style.
    fn acking_switch(addr: SocketAddr) -> JoinHandle<Vec<u64>> {
        std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect to controller");
            stream
                .set_read_timeout(Some(Duration::from_secs(3)))
                .unwrap();
            let mut codec = OfCodec::new();
            let mut buf = [0u8; 4096];
            let mut acks = Vec::new();
            let mut seen = Vec::new();
            'conn: loop {
                let n = match stream.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => n,
                };
                codec.feed(&buf[..n]);
                acks.clear();
                while let Ok(Some(msg)) = codec.next_message() {
                    if let OfMessage::FlowMod { xid, .. } = msg {
                        seen.push(u64::from(xid));
                        OfMessage::rum_ack(xid)
                            .encode_into(&mut acks)
                            .expect("encodable ack");
                    }
                }
                if !acks.is_empty() && stream.write_all(&acks).is_err() {
                    break 'conn;
                }
            }
            seen
        })
    }

    #[test]
    fn concurrent_tenants_complete_over_real_sockets() {
        let ctrl = TcpMuxController::new(
            "127.0.0.1:0".parse().unwrap(),
            MuxConfig {
                ack_mode: AckMode::RumAcks,
                session_window: 2,
                global_window: 8,
                quantum: 2,
                ..MuxConfig::default()
            },
            1,
        );
        let handle = ctrl.start().expect("controller starts");
        let switch = acking_switch(handle.local_addr);

        let mut sessions = Vec::new();
        for t in 0..5u8 {
            sessions.push(handle.submit(tenant_plan(t, 4)).expect("disjoint plans"));
        }
        assert!(
            handle.wait_all_done(Duration::from_secs(5)),
            "all tenants must finish"
        );
        for (t, sid) in sessions.iter().enumerate() {
            assert_eq!(
                handle.confirmed_order(*sid),
                vec![1, 2, 3, 4],
                "tenant {t} confirm order"
            );
            assert_eq!(
                handle.with_mux(|m| m.state(*sid).cloned()),
                Some(SessionState::Done)
            );
        }
        assert_eq!(handle.with_mux(|m| m.stray_acks()), 0);
        handle.shutdown();
        let wire = switch.join().unwrap();
        // 5 tenants × 4 mods, every wire xid unique (disjoint namespaces).
        assert_eq!(wire.len(), 20);
        let unique: std::collections::HashSet<_> = wire.iter().collect();
        assert_eq!(unique.len(), 20);
    }

    #[test]
    fn conflicting_submission_is_rejected_synchronously() {
        let ctrl = TcpMuxController::new(
            "127.0.0.1:0".parse().unwrap(),
            MuxConfig {
                conflict_policy: ConflictPolicy::Reject,
                ..MuxConfig::default()
            },
            1,
        );
        let handle = ctrl.start().unwrap();
        let switch = acking_switch(handle.local_addr);
        let first = handle.submit(tenant_plan(1, 2)).expect("first plan admits");
        let err = handle.submit(tenant_plan(1, 2)).unwrap_err();
        assert!(
            matches!(err, AdmitError::Conflict { with, .. } if with == first),
            "got {err:?}"
        );
        assert!(handle.wait_all_done(Duration::from_secs(5)));
        handle.shutdown();
        drop(switch);
    }
}
