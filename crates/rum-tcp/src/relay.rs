//! Message-level relay policies for the TCP proxy.

use openflow::OfMessage;
use std::time::Duration;

/// What to do with a message that crossed the proxy.
#[derive(Debug, Clone, PartialEq)]
pub enum RelayVerdict {
    /// Forward the message immediately.
    Forward,
    /// Forward the message after the given delay.
    Delay(Duration),
    /// Swallow the message (it is proxy-internal).
    Drop,
    /// Forward this message and then also send the additional messages to the
    /// same destination.
    ForwardAnd(Vec<OfMessage>),
}

/// A per-switch-connection relay policy.
///
/// The proxy calls these hooks from the relay threads; implementations must
/// be `Send` because each direction runs on its own thread.
pub trait MessageRelay: Send {
    /// A message travelling controller → switch.
    fn on_controller_to_switch(&mut self, msg: &OfMessage) -> RelayVerdict;
    /// A message travelling switch → controller.
    fn on_switch_to_controller(&mut self, msg: &OfMessage) -> RelayVerdict;
    /// A human-readable policy name (for logs).
    fn name(&self) -> &'static str;
}

/// Forwards everything untouched (a transparent TCP proxy).
#[derive(Debug, Default, Clone, Copy)]
pub struct PassthroughRelay;

impl MessageRelay for PassthroughRelay {
    fn on_controller_to_switch(&mut self, _msg: &OfMessage) -> RelayVerdict {
        RelayVerdict::Forward
    }
    fn on_switch_to_controller(&mut self, _msg: &OfMessage) -> RelayVerdict {
        RelayVerdict::Forward
    }
    fn name(&self) -> &'static str {
        "passthrough"
    }
}

/// The "delaying barrier acknowledgments" technique (paper §3.1): barrier
/// replies from the switch are held for a fixed, pre-measured bound before
/// being released to the controller, so the acknowledgment can no longer
/// precede the data plane by more than measurement error.
#[derive(Debug, Clone)]
pub struct DelayedBarrierRelay {
    delay: Duration,
    /// Statistics: barrier replies delayed so far.
    pub delayed_replies: u64,
    /// Statistics: flow modifications observed so far.
    pub flow_mods_seen: u64,
}

impl DelayedBarrierRelay {
    /// Creates the policy with the given post-reply delay (the paper uses
    /// 300 ms for the HP 5406zl).
    pub fn new(delay: Duration) -> Self {
        DelayedBarrierRelay {
            delay,
            delayed_replies: 0,
            flow_mods_seen: 0,
        }
    }

    /// The configured delay.
    pub fn delay(&self) -> Duration {
        self.delay
    }
}

impl MessageRelay for DelayedBarrierRelay {
    fn on_controller_to_switch(&mut self, msg: &OfMessage) -> RelayVerdict {
        if matches!(msg, OfMessage::FlowMod { .. }) {
            self.flow_mods_seen += 1;
        }
        RelayVerdict::Forward
    }

    fn on_switch_to_controller(&mut self, msg: &OfMessage) -> RelayVerdict {
        match msg {
            OfMessage::BarrierReply { .. } => {
                self.delayed_replies += 1;
                RelayVerdict::Delay(self.delay)
            }
            _ => RelayVerdict::Forward,
        }
    }

    fn name(&self) -> &'static str {
        "delayed-barriers"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_forwards_everything() {
        let mut relay = PassthroughRelay;
        assert_eq!(
            relay.on_controller_to_switch(&OfMessage::Hello { xid: 1 }),
            RelayVerdict::Forward
        );
        assert_eq!(
            relay.on_switch_to_controller(&OfMessage::BarrierReply { xid: 1 }),
            RelayVerdict::Forward
        );
        assert_eq!(relay.name(), "passthrough");
    }

    #[test]
    fn delayed_barrier_relay_holds_only_barrier_replies() {
        let mut relay = DelayedBarrierRelay::new(Duration::from_millis(300));
        assert_eq!(relay.delay(), Duration::from_millis(300));
        assert_eq!(
            relay.on_switch_to_controller(&OfMessage::EchoReply {
                xid: 1,
                data: vec![]
            }),
            RelayVerdict::Forward
        );
        assert_eq!(
            relay.on_switch_to_controller(&OfMessage::BarrierReply { xid: 2 }),
            RelayVerdict::Delay(Duration::from_millis(300))
        );
        assert_eq!(relay.delayed_replies, 1);
        relay.on_controller_to_switch(&OfMessage::FlowMod {
            xid: 3,
            body: openflow::messages::FlowMod::delete(openflow::OfMatch::wildcard_all()),
        });
        assert_eq!(relay.flow_mods_seen, 1);
        assert_eq!(relay.name(), "delayed-barriers");
    }
}
