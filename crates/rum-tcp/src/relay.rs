//! The sans-IO half of the TCP deployment: [`EngineRelay`] adapts the
//! deployment-agnostic [`RumEngine`] to the shape a socket proxy needs.
//!
//! The relay owns the engine and a wall-clock epoch.  Socket threads hand it
//! decoded messages; it returns [`RelayEffects`] — plain data describing
//! which endpoint each outgoing message belongs to, which timers to schedule
//! and which rules were confirmed.  No sockets or threads appear here, which
//! is what makes the whole message-level policy of the TCP proxy unit
//! testable without opening a single connection (see the tests below).

use openflow::OfMessage;
use rum::{Effect, Input, RumEngine, SwitchId, TimerToken};
use std::time::{Duration, Instant};

/// One side of one proxied connection pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// The controller-facing connection impersonating this switch.
    Controller(SwitchId),
    /// The connection to this switch.
    Switch(SwitchId),
}

/// What the socket layer must do after feeding the relay one event.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct RelayEffects {
    /// Messages to write, in order, each tagged with its destination.
    pub messages: Vec<(Endpoint, OfMessage)>,
    /// Timers to schedule: feed [`EngineRelay::on_timer`] after each delay.
    pub timers: Vec<(Duration, TimerToken)>,
    /// Rules confirmed active in the data plane (observational).
    pub confirmed: Vec<(SwitchId, u64)>,
}

impl RelayEffects {
    /// True when nothing needs doing.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty() && self.timers.is_empty() && self.confirmed.is_empty()
    }

    /// Empties the effect lists, keeping their allocations for reuse.
    pub fn clear(&mut self) {
        self.messages.clear();
        self.timers.clear();
        self.confirmed.clear();
    }
}

/// Drives a [`RumEngine`] from wall-clock time and decoded socket messages.
///
/// The `*_into` methods *append* into a caller-owned [`RelayEffects`], so a
/// driver can drain every message decoded from one socket read into a single
/// effects batch (and a single write per destination socket) with no
/// per-message allocation; the plain methods are conveniences that return a
/// fresh batch.
pub struct EngineRelay {
    engine: RumEngine,
    epoch: Instant,
    /// Reusable buffer for raw engine effects between dispatch and
    /// translation.
    scratch: Vec<Effect>,
}

impl EngineRelay {
    /// Wraps an engine; `now` is measured from this call.
    pub fn new(engine: RumEngine) -> Self {
        EngineRelay::with_epoch(engine, Instant::now())
    }

    /// Wraps an engine measuring `now` from an explicit epoch.  The sharded
    /// proxy wraps each shard's engine in its own relay; sharing one epoch
    /// across them keeps every shard's notion of model time identical, so
    /// cross-shard timer deadlines and confirmation timestamps compare.
    pub fn with_epoch(engine: RumEngine, epoch: Instant) -> Self {
        EngineRelay {
            engine,
            epoch,
            scratch: Vec::new(),
        }
    }

    /// Read access to the engine (stats, configuration).
    pub fn engine(&self) -> &RumEngine {
        &self.engine
    }

    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn dispatch(&mut self, input: Input, out: &mut RelayEffects) {
        let now = self.now();
        self.scratch.clear();
        self.engine.handle_into(now, input, &mut self.scratch);
        translate_into(&mut self.scratch, out);
    }

    /// Feeds one pre-routed [`Input`] to the engine, appending the effects
    /// to `out`.  The sharded proxy routes inputs with a [`rum::ShardRouter`]
    /// first and then drives whichever shard relay owns them through this
    /// single entry point; the typed `on_*` methods below are equivalent
    /// conveniences for drivers that construct inputs in place.
    pub fn handle_into(&mut self, input: Input, out: &mut RelayEffects) {
        self.dispatch(input, out);
    }

    /// Starts the engine (catch rules, initial timers).  Idempotent.
    pub fn start(&mut self) -> RelayEffects {
        let mut out = RelayEffects::default();
        self.start_into(&mut out);
        out
    }

    /// Starts the engine, appending the start-up effects to `out`.
    pub fn start_into(&mut self, out: &mut RelayEffects) {
        let now = self.now();
        let mut effects = self.engine.start(now);
        translate_into(&mut effects, out);
    }

    /// The controller sent `message` on `switch`'s impersonated connection.
    pub fn on_controller_message(&mut self, switch: SwitchId, message: OfMessage) -> RelayEffects {
        let mut out = RelayEffects::default();
        self.on_controller_message_into(switch, message, &mut out);
        out
    }

    /// Appending form of [`EngineRelay::on_controller_message`].
    pub fn on_controller_message_into(
        &mut self,
        switch: SwitchId,
        message: OfMessage,
        out: &mut RelayEffects,
    ) {
        self.dispatch(Input::FromController { switch, message }, out);
    }

    /// Switch `switch` sent `message` towards the controller.
    pub fn on_switch_message(&mut self, switch: SwitchId, message: OfMessage) -> RelayEffects {
        let mut out = RelayEffects::default();
        self.on_switch_message_into(switch, message, &mut out);
        out
    }

    /// Appending form of [`EngineRelay::on_switch_message`].
    pub fn on_switch_message_into(
        &mut self,
        switch: SwitchId,
        message: OfMessage,
        out: &mut RelayEffects,
    ) {
        self.dispatch(Input::FromSwitch { switch, message }, out);
    }

    /// Switch `switch` re-established its control connection after a
    /// restart: the engine re-installs its rules and re-issues unconfirmed
    /// modifications (see [`rum::Input::SwitchReconnected`]).
    pub fn on_switch_reconnected_into(&mut self, switch: SwitchId, out: &mut RelayEffects) {
        self.dispatch(Input::SwitchReconnected { switch }, out);
    }

    /// A timer scheduled from an earlier [`RelayEffects`] expired.
    pub fn on_timer(&mut self, token: TimerToken) -> RelayEffects {
        let mut out = RelayEffects::default();
        self.on_timer_into(token, &mut out);
        out
    }

    /// Appending form of [`EngineRelay::on_timer`].
    pub fn on_timer_into(&mut self, token: TimerToken, out: &mut RelayEffects) {
        self.dispatch(Input::TimerFired { token }, out);
    }

    /// Periodic liveness tick (optional; timers carry all hard deadlines).
    pub fn on_tick(&mut self) -> RelayEffects {
        let mut out = RelayEffects::default();
        self.dispatch(Input::Tick, &mut out);
        out
    }
}

fn translate_into(effects: &mut Vec<Effect>, out: &mut RelayEffects) {
    for effect in effects.drain(..) {
        match effect {
            Effect::ToController { via, message } => {
                out.messages.push((Endpoint::Controller(via), message));
            }
            Effect::ToSwitch { switch, message } | Effect::InjectVia { switch, message } => {
                out.messages.push((Endpoint::Switch(switch), message));
            }
            Effect::ArmTimer { delay, token } => out.timers.push((delay, token)),
            Effect::Confirmed { switch, cookie } => out.confirmed.push((switch, cookie)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::messages::FlowMod;
    use openflow::{Action, OfMatch};
    use rum::{RumBuilder, TechniqueConfig};
    use std::net::Ipv4Addr;

    fn relay(delay_ms: u64) -> EngineRelay {
        EngineRelay::new(
            RumBuilder::new(1)
                .technique(TechniqueConfig::StaticTimeout {
                    delay: Duration::from_millis(delay_ms),
                })
                .fine_grained_acks(false)
                .build(),
        )
    }

    fn flow_mod(xid: u32) -> OfMessage {
        OfMessage::FlowMod {
            xid,
            body: FlowMod::add(
                OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 1, 0, 1)),
                100,
                vec![Action::output(2)],
            ),
        }
    }

    /// The full "delayed barrier acknowledgment" flow of the old bespoke TCP
    /// relay, now expressed purely through the shared engine — no sockets.
    #[test]
    fn delayed_barrier_flow_without_sockets() {
        let sw = SwitchId::new(0);
        let mut r = relay(300);
        assert!(r.start().is_empty());

        // Controller: flow-mod. Forwarded + proxy barrier appended.
        let fx = r.on_controller_message(sw, flow_mod(5));
        assert!(fx
            .messages
            .iter()
            .all(|(ep, _)| *ep == Endpoint::Switch(sw)));
        let proxy_barrier = fx
            .messages
            .iter()
            .find_map(|(_, m)| match m {
                OfMessage::BarrierRequest { xid } => Some(*xid),
                _ => None,
            })
            .expect("proxy barrier");

        // Controller: its own barrier. Forwarded to the switch, reply held.
        let fx = r.on_controller_message(sw, OfMessage::BarrierRequest { xid: 9 });
        assert_eq!(fx.messages.len(), 1);
        assert!(fx.confirmed.is_empty());

        // Switch answers both barriers immediately (the buggy behaviour);
        // the engine arms the hold-down timer instead of confirming.
        let fx = r.on_switch_message(sw, OfMessage::BarrierReply { xid: proxy_barrier });
        let (delay, token) = fx.timers[0];
        assert_eq!(delay, Duration::from_millis(300));
        let fx = r.on_switch_message(sw, OfMessage::BarrierReply { xid: 9 });
        assert!(fx.is_empty(), "controller barrier must still be held");

        // Timer expiry confirms the rule and releases the held barrier.
        let fx = r.on_timer(token);
        assert_eq!(fx.confirmed, vec![(sw, 5)]);
        assert!(fx
            .messages
            .contains(&(Endpoint::Controller(sw), OfMessage::BarrierReply { xid: 9 })));
        assert_eq!(r.engine().stats(sw).barrier_replies_released, 1);
        assert!(r.on_tick().is_empty());
    }

    #[test]
    fn non_barrier_traffic_passes_straight_through() {
        let sw = SwitchId::new(0);
        let mut r = relay(300);
        r.start();
        let fx = r.on_switch_message(
            sw,
            OfMessage::EchoReply {
                xid: 1,
                data: vec![],
            },
        );
        assert_eq!(fx.messages.len(), 1);
        assert_eq!(fx.messages[0].0, Endpoint::Controller(sw));
        let fx = r.on_controller_message(sw, OfMessage::Hello { xid: 2 });
        assert_eq!(
            fx.messages,
            vec![(Endpoint::Switch(sw), OfMessage::Hello { xid: 2 })]
        );
    }
}
