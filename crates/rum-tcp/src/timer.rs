//! A monotonic timer queue shared by the socket deployments.
//!
//! Both the RUM proxy and the TCP update controller drive a sans-IO engine
//! that asks for timers via "arm" effects; this queue turns those requests
//! into callbacks on a dedicated thread.  Tokens are opaque `u64`s (the
//! engines' raw timer tokens).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A pending timer: deadline plus the engine's raw token.
type TimerEntry = Reverse<(Instant, u64)>;

/// A thread-safe deadline heap with a condition variable for wake-ups.
pub(crate) struct TimerQueue {
    heap: Mutex<BinaryHeap<TimerEntry>>,
    cv: Condvar,
}

impl TimerQueue {
    /// Creates an empty queue.
    pub(crate) fn new() -> Self {
        TimerQueue {
            heap: Mutex::new(BinaryHeap::new()),
            cv: Condvar::new(),
        }
    }

    /// Schedules `token` to fire at `deadline` and wakes the runner.
    pub(crate) fn arm(&self, deadline: Instant, token: u64) {
        self.heap.lock().unwrap().push(Reverse((deadline, token)));
        self.cv.notify_one();
    }

    /// Wakes the runner unconditionally (used for shutdown).
    pub(crate) fn wake(&self) {
        self.cv.notify_all();
    }

    /// Runs the timer loop until `stop` becomes true, invoking `fire` for
    /// every expired token.  `fire` is called without the queue lock held,
    /// so it may arm further timers.
    pub(crate) fn run(&self, stop: &AtomicBool, mut fire: impl FnMut(u64)) {
        let mut heap = self.heap.lock().unwrap();
        loop {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            match heap.peek().copied() {
                None => {
                    let (h, _) = self
                        .cv
                        .wait_timeout(heap, Duration::from_millis(100))
                        .unwrap();
                    heap = h;
                }
                Some(Reverse((deadline, token))) => {
                    let now = Instant::now();
                    if deadline <= now {
                        heap.pop();
                        drop(heap);
                        fire(token);
                        heap = self.heap.lock().unwrap();
                    } else {
                        let (h, _) = self.cv.wait_timeout(heap, deadline - now).unwrap();
                        heap = h;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn fires_in_deadline_order_and_stops() {
        let q = Arc::new(TimerQueue::new());
        let stop = Arc::new(AtomicBool::new(false));
        let now = Instant::now();
        q.arm(now + Duration::from_millis(30), 2);
        q.arm(now + Duration::from_millis(10), 1);
        let fired = Arc::new(Mutex::new(Vec::new()));
        let runner = {
            let (q, stop, fired) = (Arc::clone(&q), Arc::clone(&stop), Arc::clone(&fired));
            std::thread::spawn(move || q.run(&stop, |t| fired.lock().unwrap().push(t)))
        };
        std::thread::sleep(Duration::from_millis(80));
        stop.store(true, Ordering::SeqCst);
        q.wake();
        runner.join().unwrap();
        assert_eq!(*fired.lock().unwrap(), vec![1, 2]);
    }
}
