//! The pre-shard, thread-per-connection TCP proxy — retained verbatim as
//! the conformance oracle and the honest in-run baseline for the sharded
//! event-loop proxy in [`crate::proxy`].
//!
//! Wiring (per accepted switch, mirroring the paper's proxy chain):
//!
//! ```text
//! switch ──reader──▶ EngineRelay ──▶ outbox ──writer──▶ controller
//! switch ◀──writer── (one shared   ◀── outbox ◀──reader── controller
//!                     RumEngine)
//!            timer thread ──▶ TimerFired inputs
//! ```
//!
//! Every accepted switch costs four threads (two readers, two writers) and
//! every engine drain funnels through one global mutex — the architecture
//! the sharded proxy replaces.  It is kept because:
//!
//! * cross-driver conformance tests replay identical scenarios through this
//!   proxy and the sharded one and require byte-identical per-switch
//!   confirmation orders (`tests/shard_cross_driver.rs`);
//! * the end-to-end `wire_e2e` throughput benchmark measures its speedup
//!   against this implementation *in the same run*, so the committed
//!   baseline is honest, not a stale number.
//!
//! The module also hosts the shared connection plumbing (`Route`,
//! `writer_loop`, `reader_loop`) still used by the controller-side
//! harnesses, which keep their thread-based design.

use crate::proxy::{ProxyConfig, ProxyCounters};
use crate::relay::{Endpoint, EngineRelay, RelayEffects};
use crate::timer::TimerQueue;
use openflow::{OfCodec, OfMessage};
use rum::{ProxyStats, RumBuilder, SwitchId};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use telemetry::{Gauge, Registry};

/// Where encoded bytes for one endpoint go: buffered until the connection
/// exists, then straight into its writer thread's queue as whole batches.
pub(crate) enum Route {
    /// No connection yet; encoded bytes queue up and flush on attach.
    Pending(Vec<u8>),
    /// A live connection's writer-thread inbox (one chunk per drain batch).
    Connected(Sender<Vec<u8>>),
}

impl Route {
    /// Hands one encoded batch to the endpoint.  Returns `true` when the
    /// chunk was enqueued on a live connection's outbox (so callers can
    /// track queue depth), `false` when it was buffered or dropped.
    pub(crate) fn send_bytes(&mut self, bytes: Vec<u8>) -> bool {
        if bytes.is_empty() {
            return false;
        }
        match self {
            Route::Pending(q) => {
                q.extend_from_slice(&bytes);
                false
            }
            Route::Connected(tx) => {
                // A closed channel means the connection died; the engine's
                // timers will cope, exactly as with a lossy control channel.
                tx.send(bytes).is_ok()
            }
        }
    }

    /// Returns `true` when buffered pending bytes were flushed onto the
    /// fresh connection as one chunk.
    pub(crate) fn connect(&mut self, tx: Sender<Vec<u8>>) -> bool {
        if let Route::Pending(q) = std::mem::replace(self, Route::Connected(tx.clone())) {
            if !q.is_empty() {
                return tx.send(q).is_ok();
            }
        }
        false
    }
}

struct SwitchRoutes {
    to_switch: Route,
    to_controller: Route,
    /// Reusable encode buffers: one drain's messages for each endpoint are
    /// laid out back-to-back and shipped as a single chunk.
    switch_buf: Vec<u8>,
    controller_buf: Vec<u8>,
    /// Chunks queued on each writer's outbox but not yet written.
    switch_outbox_depth: Arc<Gauge>,
    controller_outbox_depth: Arc<Gauge>,
}

impl SwitchRoutes {
    fn new(registry: &Registry, index: usize) -> Self {
        SwitchRoutes {
            to_switch: Route::Pending(Vec::new()),
            to_controller: Route::Pending(Vec::new()),
            switch_buf: Vec::new(),
            controller_buf: Vec::new(),
            switch_outbox_depth: registry.gauge(&format!("proxy.sw{index}.switch_outbox_depth")),
            controller_outbox_depth: registry
                .gauge(&format!("proxy.sw{index}.controller_outbox_depth")),
        }
    }
}

struct RelayState {
    relay: EngineRelay,
    routes: Vec<SwitchRoutes>,
    /// Which switch slots currently have a live connection pair.
    attached: Vec<bool>,
    /// Per-slot attach generation.  Each of a connection pair's four
    /// threads detaches with the generation it was attached under, so a
    /// thread outliving its connection (e.g. a writer waking up after the
    /// switch already reconnected) cannot tear down the slot's *new*
    /// connection.
    generation: Vec<u64>,
    /// Reusable effects buffer for [`Inner::apply`] drains.
    fx: RelayEffects,
}

struct Inner {
    state: Mutex<RelayState>,
    timers: TimerQueue,
    counters: ProxyCounters,
    /// Telemetry registry shared with the engine: `rum.sw*.*` (engine) and
    /// `proxy.*` (transport) metrics all land here.
    registry: Arc<Registry>,
    stop: AtomicBool,
}

impl Inner {
    /// Feeds the relay under the lock and executes the resulting effects:
    /// every message of the drain is encoded into its endpoint's batch
    /// buffer, and each non-empty batch is handed to its writer as one
    /// chunk → one socket write.
    fn apply(self: &Arc<Self>, f: impl FnOnce(&mut EngineRelay, &mut RelayEffects)) {
        let mut timers: Vec<(Duration, rum::TimerToken)> = Vec::new();
        self.counters.drains.inc();
        {
            let mut st = self.state.lock().unwrap();
            let st = &mut *st;
            st.fx.clear();
            f(&mut st.relay, &mut st.fx);
            for (endpoint, message) in st.fx.messages.drain(..) {
                let (counter, bytes_counter, buf) = match endpoint {
                    Endpoint::Switch(sw) => (
                        &self.counters.to_switch,
                        &self.counters.to_switch_bytes,
                        &mut st.routes[sw.index()].switch_buf,
                    ),
                    Endpoint::Controller(sw) => (
                        &self.counters.to_controller,
                        &self.counters.to_controller_bytes,
                        &mut st.routes[sw.index()].controller_buf,
                    ),
                };
                let len_before = buf.len();
                if message.encode_into(buf).is_ok() {
                    counter.inc();
                    bytes_counter.add((buf.len() - len_before) as u64);
                } else {
                    buf.truncate(len_before);
                }
            }
            for routes in st.routes.iter_mut() {
                if !routes.switch_buf.is_empty() {
                    let chunk = std::mem::take(&mut routes.switch_buf);
                    if routes.to_switch.send_bytes(chunk) {
                        routes.switch_outbox_depth.inc();
                    }
                }
                if !routes.controller_buf.is_empty() {
                    let chunk = std::mem::take(&mut routes.controller_buf);
                    if routes.to_controller.send_bytes(chunk) {
                        routes.controller_outbox_depth.inc();
                    }
                }
            }
            timers.append(&mut st.fx.timers);
        }
        if !timers.is_empty() {
            let now = Instant::now();
            for (delay, token) in timers {
                self.timers.arm(now + delay, token.raw());
            }
        }
    }

    fn timer_loop(self: Arc<Self>) {
        self.timers.run(&self.stop, |token| {
            self.counters.timers_fired.inc();
            self.apply(|r, fx| r.on_timer_into(rum::TimerToken::from_raw(token), fx));
        });
    }
}

/// A handle to a running legacy proxy; dropping it does not stop the proxy,
/// call [`LegacyProxyHandle::shutdown`] for a clean stop.
pub struct LegacyProxyHandle {
    /// The address the proxy actually listens on (useful with port 0).
    pub local_addr: SocketAddr,
    inner: Arc<Inner>,
    accept_thread: Option<JoinHandle<()>>,
    timer_thread: Option<JoinHandle<()>>,
}

impl LegacyProxyHandle {
    /// Transport-level counters.
    pub fn counters(&self) -> &ProxyCounters {
        &self.inner.counters
    }

    /// Engine statistics for one monitored switch — the same unified
    /// [`ProxyStats`] surface the simulator deployment reports.
    pub fn stats(&self, switch: SwitchId) -> ProxyStats {
        self.inner
            .state
            .lock()
            .unwrap()
            .relay
            .engine()
            .stats(switch)
    }

    /// Number of switch slots the proxy was built for.
    pub fn n_switches(&self) -> usize {
        self.inner.state.lock().unwrap().relay.engine().n_switches()
    }

    /// Aggregated engine statistics across every switch.
    pub fn total_stats(&self) -> ProxyStats {
        self.inner
            .state
            .lock()
            .unwrap()
            .relay
            .engine()
            .total_stats()
    }

    /// Per-switch confirmation order recorded by the engine (empty unless
    /// [`rum::RumBuilder::record_confirmations`] is on) — the conformance
    /// oracle the sharded proxy is checked against.
    pub fn confirmed_order_for(&self, switch: SwitchId) -> Vec<u64> {
        self.inner
            .state
            .lock()
            .unwrap()
            .relay
            .engine()
            .confirmations()
            .iter()
            .filter(|r| r.switch == switch)
            .map(|r| r.cookie)
            .collect()
    }

    /// The telemetry registry backing this proxy.
    pub fn metrics(&self) -> Arc<Registry> {
        self.inner.registry.clone()
    }

    /// Asks the accept and timer loops to stop and waits for them.
    /// Established relay threads terminate when their sockets close.
    pub fn shutdown(mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.timers.wake();
        // Unblock the accept loop with a throw-away connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.timer_thread.take() {
            let _ = t.join();
        }
    }
}

/// The pre-shard RUM TCP proxy: accepts switch connections, connects onward
/// to the real controller impersonating each switch, and drives every byte
/// through one shared, globally-locked sans-IO [`rum::RumEngine`] with a
/// reader/writer thread pair per connection.
///
/// Accepted connections are assigned [`SwitchId`]s in accept order; the
/// engine must be built for the number of switches expected to connect, and
/// surplus connections are refused.
pub struct LegacyRumTcpProxy {
    config: ProxyConfig,
    builder: RumBuilder,
}

impl LegacyRumTcpProxy {
    /// Creates a proxy running the engine described by `builder`.
    pub fn new(config: ProxyConfig, builder: RumBuilder) -> Self {
        LegacyRumTcpProxy { config, builder }
    }

    /// Binds the listener, starts the engine and begins accepting
    /// connections on background threads.
    pub fn start(self) -> std::io::Result<LegacyProxyHandle> {
        let listener = TcpListener::bind(self.config.listen_addr)?;
        let local_addr = listener.local_addr()?;
        let engine = self.builder.build();
        let registry = engine.metrics().clone();
        let n_switches = engine.n_switches();
        let routes = (0..n_switches)
            .map(|i| SwitchRoutes::new(&registry, i))
            .collect();
        let inner = Arc::new(Inner {
            state: Mutex::new(RelayState {
                relay: EngineRelay::new(engine),
                routes,
                attached: vec![false; n_switches],
                generation: vec![0; n_switches],
                fx: RelayEffects::default(),
            }),
            timers: TimerQueue::new(),
            counters: ProxyCounters::new(&registry),
            registry,
            stop: AtomicBool::new(false),
        });

        // Start-up effects (probe-catch rules, initial technique timers) are
        // buffered per switch and flushed when that switch connects.
        inner.apply(|r, fx| r.start_into(fx));

        let timer_thread = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || inner.timer_loop())
        };

        let accept_inner = Arc::clone(&inner);
        let controller_addr = self.config.controller_addr;
        let accept_thread = std::thread::spawn(move || {
            for incoming in listener.incoming() {
                if accept_inner.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(switch_stream) = incoming else {
                    continue;
                };
                // Claim the lowest free switch slot; a switch that
                // disconnected frees its slot for the reconnect.
                let (slot, generation) = {
                    let mut st = accept_inner.state.lock().unwrap();
                    match st.attached.iter().position(|a| !a) {
                        Some(i) => {
                            st.attached[i] = true;
                            st.generation[i] += 1;
                            (i, st.generation[i])
                        }
                        // More switches than the engine was built for.
                        None => continue,
                    }
                };
                let Ok(controller_stream) = TcpStream::connect(controller_addr) else {
                    // Controller unavailable: free the slot and drop the
                    // switch connection so it retries, like any proxy would.
                    // Roll the generation back too — this claim never became
                    // an attach, and a generation > 1 on the next successful
                    // attach would be misread as a restart reconnect.
                    let mut st = accept_inner.state.lock().unwrap();
                    st.attached[slot] = false;
                    st.generation[slot] -= 1;
                    continue;
                };
                accept_inner.counters.connections.inc();
                attach_connection(
                    &accept_inner,
                    SwitchId::new(slot),
                    generation,
                    switch_stream,
                    controller_stream,
                );
                if generation > 1 {
                    // The slot was attached before: this is a restarted
                    // switch reattaching.  Tell the engine so it re-installs
                    // its catch/probe rules and re-issues every unconfirmed
                    // controller modification on the fresh channel.
                    let switch = SwitchId::new(slot);
                    accept_inner.apply(|r, fx| r.on_switch_reconnected_into(switch, fx));
                }
            }
        });

        Ok(LegacyProxyHandle {
            local_addr,
            inner,
            accept_thread: Some(accept_thread),
            timer_thread: Some(timer_thread),
        })
    }
}

/// Wires one switch/controller connection pair into the relay: two writer
/// threads draining outboxes, two reader threads feeding the engine.
fn attach_connection(
    inner: &Arc<Inner>,
    switch: SwitchId,
    generation: u64,
    switch_stream: TcpStream,
    controller_stream: TcpStream,
) {
    let _ = switch_stream.set_nodelay(true);
    let _ = controller_stream.set_nodelay(true);
    let switch_reader = switch_stream.try_clone().expect("clone switch stream");
    let controller_reader = controller_stream
        .try_clone()
        .expect("clone controller stream");

    let (switch_tx, switch_rx) = channel::<Vec<u8>>();
    let (controller_tx, controller_rx) = channel::<Vec<u8>>();
    let (switch_depth, controller_depth) = {
        let mut st = inner.state.lock().unwrap();
        let routes = &mut st.routes[switch.index()];
        if routes.to_switch.connect(switch_tx) {
            routes.switch_outbox_depth.inc();
        }
        if routes.to_controller.connect(controller_tx) {
            routes.controller_outbox_depth.inc();
        }
        (
            routes.switch_outbox_depth.clone(),
            routes.controller_outbox_depth.clone(),
        )
    };

    // Writer failures (peer hung up mid-write) detach the connection pair
    // just like reader EOFs do, freeing the slot for a reconnect and
    // re-routing queued messages into the pending buffer.
    {
        let inner = Arc::clone(inner);
        std::thread::spawn(move || {
            writer_loop(switch_rx, switch_stream, Some(switch_depth));
            detach_connection(&inner, switch, generation);
        });
    }
    {
        let inner = Arc::clone(inner);
        std::thread::spawn(move || {
            writer_loop(controller_rx, controller_stream, Some(controller_depth));
            detach_connection(&inner, switch, generation);
        });
    }
    {
        let inner = Arc::clone(inner);
        std::thread::spawn(move || {
            reader_loop(switch_reader, |msgs| {
                inner.apply(|r, fx| {
                    for msg in msgs.drain(..) {
                        r.on_switch_message_into(switch, msg, fx);
                    }
                });
            });
            detach_connection(&inner, switch, generation);
        });
    }
    {
        let inner = Arc::clone(inner);
        std::thread::spawn(move || {
            reader_loop(controller_reader, |msgs| {
                inner.apply(|r, fx| {
                    for msg in msgs.drain(..) {
                        r.on_controller_message_into(switch, msg, fx);
                    }
                });
            });
            detach_connection(&inner, switch, generation);
        });
    }
}

/// Tears down one switch's connection pair: resets the routes — dropping
/// the writer channels, which lets each writer thread drain what was
/// already routed, shut its socket down (unblocking the peers' readers)
/// and exit — and frees the slot so the switch can reconnect.  Idempotent —
/// whichever of the pair's four threads exits first wins, and a thread from
/// a previous attach (stale `generation`) is a no-op so it can never tear
/// down a newer connection on the same slot.  Engine state (pending
/// barriers, unconfirmed rules) survives the reconnect.
fn detach_connection(inner: &Arc<Inner>, switch: SwitchId, generation: u64) {
    let mut st = inner.state.lock().unwrap();
    if !st.attached[switch.index()] || st.generation[switch.index()] != generation {
        return;
    }
    st.attached[switch.index()] = false;
    st.routes[switch.index()].to_switch = Route::Pending(Vec::new());
    st.routes[switch.index()].to_controller = Route::Pending(Vec::new());
}

/// Stop coalescing queued chunks into one write past this size; the
/// remainder simply becomes the next write.
const MAX_COALESCED_WRITE: usize = 256 * 1024;

/// Drains an outbox of encoded chunks into a socket until either side goes
/// away.  Chunks that queued up while the previous write was in flight are
/// coalesced into a single `write_all`, so a burst of engine drains costs
/// one syscall, not one per drain.  A failed write ends the loop gracefully
/// (the caller detaches the connection and the reconnect logic takes over).
///
/// On exit the socket is shut down in both directions.  This is
/// load-bearing for reconnects: dropping the stream alone leaves the fd
/// open through the reader's clone, so the *peer* would never see EOF and
/// never free its slot.  And because an mpsc receiver keeps yielding queued
/// messages after every sender is dropped, a detach (which drops the
/// sender) lets the writer drain everything already routed — e.g. the acks
/// for barrier replies a restarting switch flushed with its dying breath —
/// before the FIN goes out.
pub(crate) fn writer_loop(rx: Receiver<Vec<u8>>, mut stream: TcpStream, depth: Option<Arc<Gauge>>) {
    let consumed = |n: i64| {
        if let Some(g) = &depth {
            g.add(-n);
        }
    };
    // `recv` keeps yielding queued chunks after the senders are dropped
    // (detach), then errors — that is the drain.
    while let Ok(mut pending) = rx.recv() {
        let mut chunks = 1i64;
        // The first chunk is written from its own allocation (no copy —
        // the common keeping-up case); only chunks that queued up behind
        // an in-flight write get appended to it.
        while pending.len() < MAX_COALESCED_WRITE {
            match rx.try_recv() {
                Ok(chunk) => {
                    pending.extend_from_slice(&chunk);
                    chunks += 1;
                }
                Err(_) => break,
            }
        }
        consumed(chunks);
        if stream.write_all(&pending).is_err() {
            break;
        }
    }
    // Chunks abandoned by a failed write still count as consumed: the
    // gauge tracks what a live connection has queued, not lost bytes.
    while rx.try_recv().is_ok() {
        consumed(1);
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Reads OpenFlow frames off a socket and hands every batch decoded from
/// one read to `sink` at once, so the receiver can drain the whole batch
/// under a single engine lock and emit a single write per destination.
pub(crate) fn reader_loop(mut stream: TcpStream, mut sink: impl FnMut(&mut Vec<OfMessage>)) {
    let mut codec = OfCodec::new();
    let mut buf = [0u8; 4096];
    let mut msgs: Vec<OfMessage> = Vec::new();
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(n) => n,
        };
        codec.feed(&buf[..n]);
        msgs.clear();
        let framing_ok = codec.drain_messages_into(&mut msgs).is_ok();
        if !msgs.is_empty() {
            sink(&mut msgs);
        }
        if !framing_ok {
            return; // framing error: give up on this connection
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proxy::wait_for;
    use rum::TechniqueConfig;

    /// A writer/reader thread from a *previous* attach that dies late (its
    /// socket lingered past the reconnect) must not tear down the slot's
    /// new connection: `detach_connection` is generation-guarded.
    #[test]
    fn stale_thread_death_cannot_detach_a_reconnected_slot() {
        let controller_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let controller_addr = controller_listener.local_addr().unwrap();
        let proxy = LegacyRumTcpProxy::new(
            ProxyConfig {
                listen_addr: "127.0.0.1:0".parse().unwrap(),
                controller_addr,
            },
            RumBuilder::new(1).technique(TechniqueConfig::BarrierBaseline),
        );
        let handle = proxy.start().unwrap();
        let sw = SwitchId::new(0);

        let first = TcpStream::connect(handle.local_addr).unwrap();
        assert!(wait_for(
            || handle.counters().connections() == 1,
            Duration::from_secs(2),
        ));
        drop(first);
        let mut second = None;
        assert!(wait_for(
            || {
                if handle.counters().connections() >= 2 {
                    return true;
                }
                second = TcpStream::connect(handle.local_addr).ok();
                false
            },
            Duration::from_secs(3),
        ));
        assert!(wait_for(
            || handle.inner.state.lock().unwrap().attached[sw.index()],
            Duration::from_secs(2),
        ));
        let gen_now = handle.inner.state.lock().unwrap().generation[sw.index()];
        assert!(gen_now >= 2, "reconnect bumped the generation");

        // A thread from the first attach (generation 1) reports its death
        // only now: the newer connection must survive.
        detach_connection(&handle.inner, sw, 1);
        {
            let st = handle.inner.state.lock().unwrap();
            assert!(st.attached[sw.index()], "stale detach must be a no-op");
            assert!(
                matches!(st.routes[sw.index()].to_switch, Route::Connected(_)),
                "the reconnected route must stay live"
            );
        }
        // The *current* generation still detaches normally.
        detach_connection(&handle.inner, sw, gen_now);
        assert!(!handle.inner.state.lock().unwrap().attached[sw.index()]);
        handle.shutdown();
    }

    /// A switch that restarts repeatedly reattaches to the same SwitchId
    /// every time, and every reattach (generation > 1) re-feeds the engine —
    /// visible as one SwitchReconnected per reconnect in the stats.
    #[test]
    fn duplicate_reconnects_from_the_same_switch_id() {
        let controller_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let controller_addr = controller_listener.local_addr().unwrap();
        let proxy = LegacyRumTcpProxy::new(
            ProxyConfig {
                listen_addr: "127.0.0.1:0".parse().unwrap(),
                controller_addr,
            },
            RumBuilder::new(1).technique(TechniqueConfig::BarrierBaseline),
        );
        let handle = proxy.start().unwrap();
        let sw = SwitchId::new(0);

        let mut conn = Some(TcpStream::connect(handle.local_addr).unwrap());
        assert!(wait_for(
            || handle.counters().connections() == 1,
            Duration::from_secs(2),
        ));
        for round in 2..=3u64 {
            drop(conn.take());
            // Wait until the proxy noticed the death and freed the slot, so
            // the next dial deterministically claims it.
            assert!(
                wait_for(
                    || !handle.inner.state.lock().unwrap().attached[sw.index()],
                    Duration::from_secs(3),
                ),
                "round {round}: the dead connection must free its slot"
            );
            conn = Some(TcpStream::connect(handle.local_addr).unwrap());
            assert!(
                wait_for(
                    || handle.counters().connections() == round,
                    Duration::from_secs(3),
                ),
                "reconnect {round} must be accepted"
            );
            assert!(wait_for(
                || handle.stats(sw).reconnects == round - 1,
                Duration::from_secs(2),
            ));
        }
        assert_eq!(handle.counters().connections(), 3);
        assert_eq!(handle.stats(sw).reconnects, 2);
        // All three attaches used the single engine slot.
        assert_eq!(handle.inner.state.lock().unwrap().generation[sw.index()], 3);
        handle.shutdown();
    }
}
