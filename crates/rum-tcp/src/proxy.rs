//! The socket half of the TCP deployment: a readiness-driven event loop
//! over nonblocking sockets, feeding per-shard sans-IO engines.
//!
//! Wiring (mirroring the paper's proxy chain, scaled to 1,000 switches):
//!
//! ```text
//!            ┌── worker 0: poll([waker, conns…]) ──▶ ShardRouter ─▶ shard k
//! switches ──┤                                              │ (EngineRelay
//!            └── worker W: poll([waker, conns…])            │  under its
//!                    ▲                                      ▼  own mutex)
//!                 wakers ◀── timer thread / other workers  outboxes
//! ```
//!
//! Compared to the pre-shard proxy (kept as [`crate::LegacyRumTcpProxy`]),
//! which spent four threads and one global engine mutex per accepted
//! switch, this implementation:
//!
//! * splits the engine by [`SwitchId`] into shards (see
//!   [`rum::ShardedEngine`]), each behind its *own* mutex, so concurrent
//!   reader input for different switches never contends on one lock;
//! * replaces every reader/writer thread pair with a handful of workers,
//!   each running `poll(2)` over its connections' nonblocking sockets (see
//!   `crate::reactor`) — 1,000 switches cost 2,000 registered fds, not
//!   4,000 threads;
//! * writes through per-connection outboxes with partial-write offset
//!   resume: a stalled or slow switch leaves residue behind `POLLOUT`
//!   interest and cannot head-of-line-block any other connection's drain;
//! * bounds per-connection reads per wakeup, so one chatty switch cannot
//!   starve the rest of a worker's poll set.
//!
//! Routing follows the [`rum::ShardRouter`]: controller traffic and timer
//! fires go to the owning shard, probe `PacketIn`s broadcast to every shard
//! (each consumes only what it owns), so per-switch confirmation order is
//! byte-identical to the single-engine proxy for the same scenario.

use crate::reactor::{poll_fds, PollFd, Waker};
use crate::relay::{Endpoint, EngineRelay, RelayEffects};
use crate::timer::TimerQueue;
use openflow::{OfCodec, OfMessage};
use rum::{Input, ProxyStats, Routing, RumBuilder, ShardRouter, SwitchId, TimerToken};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use telemetry::{Counter, Gauge, Registry};

/// Configuration of a [`RumTcpProxy`].
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Address the proxy listens on for switch connections.
    pub listen_addr: SocketAddr,
    /// Address of the real controller the proxy connects onward to.
    pub controller_addr: SocketAddr,
}

/// Transport-level counters shared across all connections of one proxy
/// instance, backed by the proxy's telemetry [`Registry`] under `proxy.*`
/// metric names.  Message-level statistics live in the engine — see
/// [`ProxyHandle::stats`].
#[derive(Debug)]
pub struct ProxyCounters {
    pub(crate) connections: Arc<Counter>,
    pub(crate) to_switch: Arc<Counter>,
    pub(crate) to_controller: Arc<Counter>,
    pub(crate) to_switch_bytes: Arc<Counter>,
    pub(crate) to_controller_bytes: Arc<Counter>,
    pub(crate) drains: Arc<Counter>,
    pub(crate) timers_fired: Arc<Counter>,
}

impl ProxyCounters {
    pub(crate) fn new(registry: &Registry) -> Self {
        ProxyCounters {
            connections: registry.counter("proxy.connections"),
            to_switch: registry.counter("proxy.to_switch_msgs"),
            to_controller: registry.counter("proxy.to_controller_msgs"),
            to_switch_bytes: registry.counter("proxy.to_switch_bytes"),
            to_controller_bytes: registry.counter("proxy.to_controller_bytes"),
            drains: registry.counter("proxy.drains"),
            timers_fired: registry.counter("proxy.timers_fired"),
        }
    }

    /// Switch connections accepted (and mapped to a [`SwitchId`]).
    pub fn connections(&self) -> u64 {
        self.connections.get()
    }

    /// Messages written towards switches.
    pub fn to_switch(&self) -> u64 {
        self.to_switch.get()
    }

    /// Messages written towards the controller.
    pub fn to_controller(&self) -> u64 {
        self.to_controller.get()
    }

    /// Encoded bytes shipped towards switches.
    pub fn to_switch_bytes(&self) -> u64 {
        self.to_switch_bytes.get()
    }

    /// Encoded bytes shipped towards the controller.
    pub fn to_controller_bytes(&self) -> u64 {
        self.to_controller_bytes.get()
    }

    /// Engine drains executed (shard-lock acquisitions that fed a relay).
    pub fn drains(&self) -> u64 {
        self.drains.get()
    }

    /// Engine timers fired.
    pub fn timers_fired(&self) -> u64 {
        self.timers_fired.get()
    }
}

/// Per-connection read budget per wakeup: a firehosing peer yields the
/// worker back to its poll set after this many bytes (level-triggered
/// readiness re-fires immediately, so nothing is lost — only interleaved).
const READ_BUDGET: usize = 256 * 1024;

/// One shard's engine relay plus its reusable effect buffers, all behind
/// one mutex.  Different shards' locks are independent — that is the point.
struct ShardState {
    relay: EngineRelay,
    fx: RelayEffects,
    /// Reusable per-endpoint encode buffers for one drain; indexed
    /// `2 * switch + {0: switch-bound, 1: controller-bound}`.  Only the
    /// entries a drain touches are visited (tracked in `dirty`).
    encode_bufs: Vec<Vec<u8>>,
    dirty: Vec<usize>,
    /// Drains of this shard (`proxy.shard{k}.drains`).
    drains: Arc<Counter>,
    /// Messages this shard emitted (`proxy.shard{k}.msgs`).
    msgs: Arc<Counter>,
}

/// The write half of one proxied connection endpoint: queued encoded
/// chunks, the partial-write offset into the front chunk, and the stream
/// to flush into (absent while the connection is down — bytes then queue
/// exactly like the legacy proxy's pending buffer and flush on attach).
struct EndpointState {
    stream: Option<TcpStream>,
    queue: VecDeque<Vec<u8>>,
    /// How much of `queue.front()` has already been written.
    offset: usize,
    /// Chunks queued on a live connection but not yet fully written
    /// (`proxy.sw{i}.*_outbox_depth`, mirroring the legacy gauges).
    depth: Arc<Gauge>,
    /// Aggregate of the owning shard (`proxy.shard{k}.outbox_depth`).
    shard_depth: Arc<Gauge>,
}

impl EndpointState {
    fn new(depth: Arc<Gauge>, shard_depth: Arc<Gauge>) -> Self {
        EndpointState {
            stream: None,
            queue: VecDeque::new(),
            offset: 0,
            depth,
            shard_depth,
        }
    }

    fn push_chunk(&mut self, chunk: Vec<u8>) {
        if chunk.is_empty() {
            return;
        }
        self.queue.push_back(chunk);
        if self.stream.is_some() {
            self.depth.inc();
            self.shard_depth.inc();
        }
    }

    /// Marks queued-while-down chunks as live outbox depth on attach.
    fn on_attach(&mut self, stream: TcpStream) {
        self.stream = Some(stream);
        let n = self.queue.len() as i64;
        self.depth.add(n);
        self.shard_depth.add(n);
    }

    /// Drops the stream and every queued chunk (the engine re-issues
    /// unconfirmed modifications on reconnect, as with the legacy proxy).
    fn on_detach(&mut self) {
        if let Some(s) = self.stream.take() {
            let _ = s.shutdown(Shutdown::Both);
        }
        let n = self.queue.len() as i64;
        self.depth.add(-n);
        self.shard_depth.add(-n);
        self.queue.clear();
        self.offset = 0;
    }

    /// True when residue needs `POLLOUT` interest.
    fn wants_write(&self) -> bool {
        self.stream.is_some() && !self.queue.is_empty()
    }

    /// Writes as much queued data as the socket accepts right now,
    /// resuming mid-chunk at the recorded offset.  Returns `true` when
    /// unflushed residue remains (register write interest).  A dead socket
    /// is shut down so the read path observes it and detaches.
    fn try_flush(&mut self) -> bool {
        let Some(stream) = self.stream.as_mut() else {
            return false;
        };
        while let Some(front) = self.queue.front() {
            match stream.write(&front[self.offset..]) {
                Ok(0) => {
                    let _ = stream.shutdown(Shutdown::Both);
                    return false;
                }
                Ok(n) => {
                    self.offset += n;
                    if self.offset == front.len() {
                        self.queue.pop_front();
                        self.offset = 0;
                        self.depth.add(-1);
                        self.shard_depth.add(-1);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Peer went away mid-write: surface it to the poll loop
                    // (read side reports the hangup) and let detach clean up.
                    let _ = stream.shutdown(Shutdown::Both);
                    return false;
                }
            }
        }
        false
    }
}

/// One switch slot's connection state: both write halves plus the attach
/// bookkeeping, behind a per-slot mutex (never held across a shard lock
/// acquisition; shard → slot is the global lock order).
struct SlotState {
    attached: bool,
    /// Per-slot attach generation; a worker detaching with a stale
    /// generation (its connection lingered past a reconnect) is a no-op.
    generation: u64,
    to_switch: EndpointState,
    to_controller: EndpointState,
}

struct Slot {
    state: Mutex<SlotState>,
}

/// A freshly accepted connection pair in transit to its worker.
struct NewConn {
    slot: usize,
    generation: u64,
    switch_stream: TcpStream,
    controller_stream: TcpStream,
}

/// A worker's cross-thread surface: its waker and adoption inbox.
struct WorkerShared {
    waker: Waker,
    inbox: Mutex<Vec<NewConn>>,
}

struct Inner {
    shards: Vec<Mutex<ShardState>>,
    router: ShardRouter,
    n_switches: usize,
    slots: Vec<Slot>,
    workers: Vec<WorkerShared>,
    timers: TimerQueue,
    counters: ProxyCounters,
    /// Telemetry registry shared with the engine shards: `rum.sw*.*`
    /// (engine), `proxy.*` (transport) and `proxy.shard*.*` (per-shard)
    /// metrics all land here.
    registry: Arc<Registry>,
    stop: AtomicBool,
}

impl Inner {
    fn worker_of(&self, slot: usize) -> usize {
        slot % self.workers.len()
    }

    /// Routes a batch of inputs (one socket read's worth) shard by shard:
    /// consecutive same-shard inputs are drained under a single shard-lock
    /// acquisition and their output coalesces into one chunk per endpoint.
    fn dispatch_batch(self: &Arc<Self>, inputs: &mut Vec<Input>) {
        let mut run: Vec<Input> = Vec::new();
        let mut run_shard: Option<usize> = None;
        for input in inputs.drain(..) {
            match self.router.route(&input) {
                Routing::Shard(k) => {
                    if run_shard != Some(k) {
                        if let Some(prev) = run_shard.take() {
                            self.feed_shard(prev, &mut run);
                        }
                        run_shard = Some(k);
                    }
                    run.push(input);
                }
                Routing::Broadcast => {
                    if let Some(prev) = run_shard.take() {
                        self.feed_shard(prev, &mut run);
                    }
                    let last = self.shards.len() - 1;
                    for k in 0..last {
                        run.push(input.clone());
                        self.feed_shard(k, &mut run);
                    }
                    run.push(input);
                    self.feed_shard(last, &mut run);
                }
            }
        }
        if let Some(k) = run_shard {
            self.feed_shard(k, &mut run);
        }
    }

    /// Convenience for single pre-routed inputs (timers, reconnects).
    fn dispatch(self: &Arc<Self>, input: Input) {
        let mut one = vec![input];
        self.dispatch_batch(&mut one);
    }

    /// Drains `inputs` into shard `k` under its lock, encodes every
    /// resulting message into its endpoint's chunk and pushes the chunks
    /// onto the destination slots' outboxes — still under the shard lock,
    /// so two batches fed to one shard can never interleave their bytes on
    /// a socket out of engine order.  Timer arming and the nonblocking
    /// flush of touched endpoints happen after the lock drops.
    fn feed_shard(self: &Arc<Self>, k: usize, inputs: &mut Vec<Input>) {
        let mut timers: Vec<(Duration, TimerToken)> = Vec::new();
        let mut touched: Vec<usize> = Vec::new();
        {
            let mut st = self.shards[k].lock().unwrap();
            let st = &mut *st;
            st.drains.inc();
            self.counters.drains.inc();
            st.fx.clear();
            for input in inputs.drain(..) {
                st.relay.handle_into(input, &mut st.fx);
            }
            for (endpoint, message) in st.fx.messages.drain(..) {
                let (buf_idx, counter, bytes_counter) = match endpoint {
                    Endpoint::Switch(sw) => (
                        2 * sw.index(),
                        &self.counters.to_switch,
                        &self.counters.to_switch_bytes,
                    ),
                    Endpoint::Controller(sw) => (
                        2 * sw.index() + 1,
                        &self.counters.to_controller,
                        &self.counters.to_controller_bytes,
                    ),
                };
                let buf = &mut st.encode_bufs[buf_idx];
                if buf.is_empty() {
                    st.dirty.push(buf_idx);
                }
                let len_before = buf.len();
                if message.encode_into(buf).is_ok() {
                    counter.inc();
                    st.msgs.inc();
                    bytes_counter.add((buf.len() - len_before) as u64);
                } else {
                    buf.truncate(len_before);
                }
            }
            for buf_idx in st.dirty.drain(..) {
                let chunk = std::mem::take(&mut st.encode_bufs[buf_idx]);
                if chunk.is_empty() {
                    continue;
                }
                let slot_idx = buf_idx / 2;
                let mut slot = self.slots[slot_idx].state.lock().unwrap();
                let ep = if buf_idx % 2 == 0 {
                    &mut slot.to_switch
                } else {
                    &mut slot.to_controller
                };
                ep.push_chunk(chunk);
                touched.push(slot_idx);
            }
            timers.append(&mut st.fx.timers);
        }
        if !timers.is_empty() {
            let now = Instant::now();
            for (delay, token) in timers {
                self.timers.arm(now + delay, token.raw());
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for slot_idx in touched {
            self.flush_slot(slot_idx);
        }
    }

    /// Nonblocking flush of both endpoints of one slot; residue leaves the
    /// bytes queued and wakes the owning worker so it registers `POLLOUT`.
    fn flush_slot(&self, slot_idx: usize) {
        let residue = {
            let mut slot = self.slots[slot_idx].state.lock().unwrap();
            let a = slot.to_switch.try_flush();
            let b = slot.to_controller.try_flush();
            a || b
        };
        if residue {
            self.workers[self.worker_of(slot_idx)].waker.wake();
        }
    }

    /// Frees a slot after its connection died.  Generation-guarded and
    /// idempotent: a stale worker entry (from before a reconnect) cannot
    /// tear down the slot's newer connection.
    fn detach(&self, slot_idx: usize, generation: u64) {
        let mut slot = self.slots[slot_idx].state.lock().unwrap();
        if !slot.attached || slot.generation != generation {
            return;
        }
        slot.attached = false;
        slot.to_switch.on_detach();
        slot.to_controller.on_detach();
    }

    fn timer_loop(self: Arc<Self>) {
        self.timers.run(&self.stop, |token| {
            self.counters.timers_fired.inc();
            self.dispatch(Input::TimerFired {
                token: TimerToken::from_raw(token),
            });
        });
    }
}

/// A handle to a running proxy; dropping it does not stop the proxy, call
/// [`ProxyHandle::shutdown`] for a clean stop.
pub struct ProxyHandle {
    /// The address the proxy actually listens on (useful with port 0).
    pub local_addr: SocketAddr,
    inner: Arc<Inner>,
    accept_thread: Option<JoinHandle<()>>,
    timer_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl ProxyHandle {
    /// Transport-level counters.
    pub fn counters(&self) -> &ProxyCounters {
        &self.inner.counters
    }

    /// Engine statistics for one monitored switch, read from its owner
    /// shard — the same unified [`ProxyStats`] surface the simulator
    /// deployment reports.
    pub fn stats(&self, switch: SwitchId) -> ProxyStats {
        let owner = self.inner.router.shard_of(switch);
        self.inner.shards[owner]
            .lock()
            .unwrap()
            .relay
            .engine()
            .stats(switch)
    }

    /// Number of switch slots the proxy was built for.
    pub fn n_switches(&self) -> usize {
        self.inner.n_switches
    }

    /// Number of engine shards serving those slots.
    pub fn n_shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// Aggregated engine statistics across every switch, each read from
    /// its owner shard.
    pub fn total_stats(&self) -> ProxyStats {
        let mut total = ProxyStats::default();
        for i in 0..self.inner.n_switches {
            total += self.stats(SwitchId::new(i));
        }
        total
    }

    /// Per-switch confirmation cookie order recorded by the owner shard
    /// (empty unless [`rum::RumBuilder::record_confirmations`] is on) —
    /// the sequence the cross-driver conformance tests compare.
    pub fn confirmed_order_for(&self, switch: SwitchId) -> Vec<u64> {
        let owner = self.inner.router.shard_of(switch);
        self.inner.shards[owner]
            .lock()
            .unwrap()
            .relay
            .engine()
            .confirmations()
            .iter()
            .filter(|r| r.switch == switch)
            .map(|r| r.cookie)
            .collect()
    }

    /// The telemetry registry backing this proxy: engine metrics
    /// (`rum.sw*.*`), transport metrics (`proxy.*`) and per-shard metrics
    /// (`proxy.shard*.*`) in one place — hand it to [`telemetry::serve`]
    /// to expose live snapshots.
    pub fn metrics(&self) -> Arc<Registry> {
        self.inner.registry.clone()
    }

    /// Asks the accept, timer and worker loops to stop and waits for them.
    /// Workers shut their connections down on exit, so attached peers see
    /// EOF promptly.
    pub fn shutdown(mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.timers.wake();
        for w in &self.inner.workers {
            w.waker.wake();
        }
        // Unblock the accept loop with a throw-away connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.timer_thread.take() {
            let _ = t.join();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// The RUM TCP proxy: accepts switch connections, connects onward to the
/// real controller impersonating each switch, and drives every byte
/// through the sharded sans-IO [`rum::ShardedEngine`] from a readiness
/// event loop.
///
/// Accepted connections are assigned [`SwitchId`]s in accept order; the
/// engine must be built for the number of switches expected to connect,
/// and surplus connections are refused.  Shard count comes from
/// [`rum::RumBuilder::shards`] (default 1 — single-engine behaviour,
/// byte-identical to the legacy proxy's confirmation order).
pub struct RumTcpProxy {
    config: ProxyConfig,
    builder: RumBuilder,
}

impl RumTcpProxy {
    /// Creates a proxy running the engine described by `builder`.
    pub fn new(config: ProxyConfig, builder: RumBuilder) -> Self {
        RumTcpProxy { config, builder }
    }

    /// Binds the listener, starts the engine shards and begins accepting
    /// connections on background threads.
    pub fn start(self) -> std::io::Result<ProxyHandle> {
        let listener = TcpListener::bind(self.config.listen_addr)?;
        let local_addr = listener.local_addr()?;
        let sharded = self.builder.build_sharded();
        let registry = sharded.metrics().clone();
        let n_switches = sharded.n_switches();
        let (engines, router) = sharded.into_parts();
        let n_shards = engines.len();

        // All shard relays share one epoch: one wall clock, many engines.
        let epoch = Instant::now();
        let shards: Vec<Mutex<ShardState>> = engines
            .into_iter()
            .enumerate()
            .map(|(k, engine)| {
                Mutex::new(ShardState {
                    relay: EngineRelay::with_epoch(engine, epoch),
                    fx: RelayEffects::default(),
                    encode_bufs: vec![Vec::new(); 2 * n_switches],
                    dirty: Vec::new(),
                    drains: registry.counter(&format!("proxy.shard{k}.drains")),
                    msgs: registry.counter(&format!("proxy.shard{k}.msgs")),
                })
            })
            .collect();

        let slots: Vec<Slot> = (0..n_switches)
            .map(|i| {
                let shard_depth =
                    registry.gauge(&format!("proxy.shard{}.outbox_depth", i % n_shards));
                Slot {
                    state: Mutex::new(SlotState {
                        attached: false,
                        generation: 0,
                        to_switch: EndpointState::new(
                            registry.gauge(&format!("proxy.sw{i}.switch_outbox_depth")),
                            shard_depth.clone(),
                        ),
                        to_controller: EndpointState::new(
                            registry.gauge(&format!("proxy.sw{i}.controller_outbox_depth")),
                            shard_depth,
                        ),
                    }),
                }
            })
            .collect();

        let n_workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 8);
        let workers: Vec<WorkerShared> = (0..n_workers)
            .map(|_| {
                Ok(WorkerShared {
                    waker: Waker::new()?,
                    inbox: Mutex::new(Vec::new()),
                })
            })
            .collect::<std::io::Result<_>>()?;

        let inner = Arc::new(Inner {
            shards,
            router,
            n_switches,
            slots,
            workers,
            timers: TimerQueue::new(),
            counters: ProxyCounters::new(&registry),
            registry,
            stop: AtomicBool::new(false),
        });

        // Start-up effects (probe-catch rules, initial technique timers)
        // queue per endpoint and flush when that switch connects.  Feed
        // every shard its start through the relay.
        {
            let mut timers: Vec<(Duration, TimerToken)> = Vec::new();
            for k in 0..inner.shards.len() {
                let msgs: Vec<(Endpoint, OfMessage)> = {
                    let mut guard = inner.shards[k].lock().unwrap();
                    let st = &mut *guard;
                    st.fx.clear();
                    st.relay.start_into(&mut st.fx);
                    timers.append(&mut st.fx.timers);
                    st.fx.messages.drain(..).collect()
                };
                // Encode outside the drain path helper: start-up is once,
                // clarity beats reuse here.
                for (endpoint, message) in msgs {
                    let (slot_idx, is_switch) = match endpoint {
                        Endpoint::Switch(sw) => (sw.index(), true),
                        Endpoint::Controller(sw) => (sw.index(), false),
                    };
                    let mut chunk = Vec::new();
                    if message.encode_into(&mut chunk).is_err() {
                        continue;
                    }
                    if is_switch {
                        inner.counters.to_switch.inc();
                        inner.counters.to_switch_bytes.add(chunk.len() as u64);
                    } else {
                        inner.counters.to_controller.inc();
                        inner.counters.to_controller_bytes.add(chunk.len() as u64);
                    }
                    let mut slot = inner.slots[slot_idx].state.lock().unwrap();
                    let ep = if is_switch {
                        &mut slot.to_switch
                    } else {
                        &mut slot.to_controller
                    };
                    ep.push_chunk(chunk);
                }
            }
            let now = Instant::now();
            for (delay, token) in timers {
                inner.timers.arm(now + delay, token.raw());
            }
        }

        let timer_thread = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || inner.timer_loop())
        };

        let worker_threads: Vec<JoinHandle<()>> = (0..n_workers)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner, w))
            })
            .collect();

        let accept_inner = Arc::clone(&inner);
        let controller_addr = self.config.controller_addr;
        let accept_thread = std::thread::spawn(move || {
            for incoming in listener.incoming() {
                if accept_inner.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(switch_stream) = incoming else {
                    continue;
                };
                // Claim the lowest free switch slot; a switch that
                // disconnected frees its slot for the reconnect.  Only this
                // thread claims, so the scan is race-free.
                let claimed = (0..accept_inner.n_switches).find(|&i| {
                    let mut slot = accept_inner.slots[i].state.lock().unwrap();
                    if slot.attached {
                        return false;
                    }
                    slot.attached = true;
                    slot.generation += 1;
                    true
                });
                let Some(slot_idx) = claimed else {
                    // More switches than the engine was built for.
                    continue;
                };
                let Ok(controller_stream) = TcpStream::connect(controller_addr) else {
                    // Controller unavailable: free the slot and drop the
                    // switch connection so it retries.  Roll the generation
                    // back too — this claim never became an attach, and a
                    // generation > 1 on the next successful attach would be
                    // misread as a restart reconnect.
                    let mut slot = accept_inner.slots[slot_idx].state.lock().unwrap();
                    slot.attached = false;
                    slot.generation -= 1;
                    continue;
                };
                accept_inner.counters.connections.inc();
                let generation = attach(&accept_inner, slot_idx, switch_stream, controller_stream);
                if generation > 1 {
                    // The slot was attached before: this is a restarted
                    // switch reattaching.  Tell the engine so it re-installs
                    // its catch/probe rules and re-issues every unconfirmed
                    // controller modification on the fresh channel.
                    accept_inner.dispatch(Input::SwitchReconnected {
                        switch: SwitchId::new(slot_idx),
                    });
                }
            }
        });

        Ok(ProxyHandle {
            local_addr,
            inner,
            accept_thread: Some(accept_thread),
            timer_thread: Some(timer_thread),
            worker_threads,
        })
    }
}

/// Wires one accepted switch/controller pair into its slot and hands the
/// read halves to the owning worker.  Returns the attach generation.
fn attach(
    inner: &Arc<Inner>,
    slot_idx: usize,
    switch_stream: TcpStream,
    controller_stream: TcpStream,
) -> u64 {
    let _ = switch_stream.set_nodelay(true);
    let _ = controller_stream.set_nodelay(true);
    // O_NONBLOCK lives on the file description, so the write clones below
    // share it: every read and write on this pair is nonblocking.
    let _ = switch_stream.set_nonblocking(true);
    let _ = controller_stream.set_nonblocking(true);
    let switch_writer = switch_stream.try_clone().expect("clone switch stream");
    let controller_writer = controller_stream
        .try_clone()
        .expect("clone controller stream");

    let generation = {
        let mut slot = inner.slots[slot_idx].state.lock().unwrap();
        slot.to_switch.on_attach(switch_writer);
        slot.to_controller.on_attach(controller_writer);
        slot.generation
    };
    // Flush whatever queued while the slot was down (catch rules from
    // start-up, messages engines emitted between detach and reattach).
    inner.flush_slot(slot_idx);

    let w = inner.worker_of(slot_idx);
    inner.workers[w].inbox.lock().unwrap().push(NewConn {
        slot: slot_idx,
        generation,
        switch_stream,
        controller_stream,
    });
    inner.workers[w].waker.wake();
    generation
}

/// The read half of one endpoint owned by a worker: the nonblocking stream
/// plus its framing state.
struct IoHalf {
    stream: TcpStream,
    codec: OfCodec,
}

struct ConnIo {
    slot: usize,
    generation: u64,
    switch: IoHalf,
    controller: IoHalf,
}

/// One worker's event loop: poll its waker plus both sockets of every
/// connection it owns; drain readable sockets into the shard router,
/// flush writable outbox residue, detach dead pairs.
fn worker_loop(inner: &Arc<Inner>, w: usize) {
    let mut conns: Vec<ConnIo> = Vec::new();
    let mut fds: Vec<PollFd> = Vec::new();
    // fds[1 + j] belongs to fd_of[j] = (conn index, is_switch_side).
    let mut fd_of: Vec<(usize, bool)> = Vec::new();
    let mut read_buf = vec![0u8; 64 * 1024];
    let mut msgs: Vec<OfMessage> = Vec::new();
    let mut inputs: Vec<Input> = Vec::new();
    let mut dead: Vec<usize> = Vec::new();

    loop {
        if inner.stop.load(Ordering::SeqCst) {
            for conn in &conns {
                let _ = conn.switch.stream.shutdown(Shutdown::Both);
                let _ = conn.controller.stream.shutdown(Shutdown::Both);
            }
            return;
        }
        // Adopt connections the accept thread handed over.
        {
            let mut inbox = inner.workers[w].inbox.lock().unwrap();
            for nc in inbox.drain(..) {
                conns.push(ConnIo {
                    slot: nc.slot,
                    generation: nc.generation,
                    switch: IoHalf {
                        stream: nc.switch_stream,
                        codec: OfCodec::new(),
                    },
                    controller: IoHalf {
                        stream: nc.controller_stream,
                        codec: OfCodec::new(),
                    },
                });
            }
        }

        // Build the poll set: waker first, then each connection's sockets
        // with write interest only where outbox residue exists.
        fds.clear();
        fd_of.clear();
        fds.push(PollFd::new(inner.workers[w].waker.fd(), true, false));
        for (ci, conn) in conns.iter().enumerate() {
            let (sw_w, ct_w) = {
                let slot = inner.slots[conn.slot].state.lock().unwrap();
                (
                    slot.to_switch.wants_write(),
                    slot.to_controller.wants_write(),
                )
            };
            fds.push(PollFd::new(conn.switch.stream.as_raw_fd(), true, sw_w));
            fd_of.push((ci, true));
            fds.push(PollFd::new(conn.controller.stream.as_raw_fd(), true, ct_w));
            fd_of.push((ci, false));
        }

        // A finite timeout keeps the stop flag honoured even if a wake is
        // lost; all real work arrives through readiness or the waker.
        poll_fds(&mut fds, 500);
        if fds[0].readable() {
            inner.workers[w].waker.drain();
        }

        dead.clear();
        for (j, &(ci, is_switch)) in fd_of.iter().enumerate() {
            let pfd = fds[1 + j];
            if pfd.writable() {
                inner.flush_slot(conns[ci].slot);
            }
            if pfd.readable() || pfd.hangup() {
                let alive = service_read(
                    inner,
                    &mut conns[ci],
                    is_switch,
                    &mut read_buf,
                    &mut msgs,
                    &mut inputs,
                );
                if !alive {
                    dead.push(ci);
                }
            }
        }
        if !dead.is_empty() {
            dead.sort_unstable();
            dead.dedup();
            // Highest index first so earlier removals don't shift later ones;
            // swap_remove is safe because the moved element's index is > ci.
            for &ci in dead.iter().rev() {
                let conn = conns.swap_remove(ci);
                let _ = conn.switch.stream.shutdown(Shutdown::Both);
                let _ = conn.controller.stream.shutdown(Shutdown::Both);
                inner.detach(conn.slot, conn.generation);
            }
        }
    }
}

/// Drains one endpoint's socket (bounded per wakeup for fairness across
/// the poll set), decodes frames and routes the batch into the shards.
/// Returns `false` when the connection is dead (EOF, error, bad framing).
fn service_read(
    inner: &Arc<Inner>,
    conn: &mut ConnIo,
    is_switch: bool,
    buf: &mut [u8],
    msgs: &mut Vec<OfMessage>,
    inputs: &mut Vec<Input>,
) -> bool {
    let switch = SwitchId::new(conn.slot);
    let half = if is_switch {
        &mut conn.switch
    } else {
        &mut conn.controller
    };
    let mut total = 0usize;
    loop {
        let n = match half.stream.read(buf) {
            Ok(0) => return false,
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        };
        half.codec.feed(&buf[..n]);
        msgs.clear();
        let framing_ok = half.codec.drain_messages_into(msgs).is_ok();
        if !msgs.is_empty() {
            inputs.clear();
            inputs.extend(msgs.drain(..).map(|message| {
                if is_switch {
                    Input::FromSwitch { switch, message }
                } else {
                    Input::FromController { switch, message }
                }
            }));
            inner.dispatch_batch(inputs);
        }
        if !framing_ok {
            return false; // framing error: give up on this connection
        }
        total += n;
        if total >= READ_BUDGET {
            // Yield to the rest of the poll set; level-triggered readiness
            // brings us straight back if more is pending.
            return true;
        }
        if n < buf.len() {
            return true; // drained the socket
        }
    }
}

/// Convenience: waits until `predicate` becomes true or `timeout` elapses.
pub fn wait_for(mut predicate: impl FnMut() -> bool, timeout: Duration) -> bool {
    let start = std::time::Instant::now();
    while start.elapsed() < timeout {
        if predicate() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    predicate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::messages::FlowMod;
    use openflow::OfMatch;
    use rum::TechniqueConfig;
    use std::time::Instant;

    /// A minimal in-process "switch": connects to the proxy, answers every
    /// barrier request immediately (the buggy behaviour) and every echo.
    fn spawn_fake_switch(proxy_addr: SocketAddr) -> JoinHandle<u64> {
        std::thread::spawn(move || {
            let mut stream = TcpStream::connect(proxy_addr).expect("connect to proxy");
            let mut codec = OfCodec::new();
            let mut buf = [0u8; 2048];
            let mut replies = Vec::new();
            let mut handled = 0u64;
            stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .unwrap();
            'conn: loop {
                let n = match stream.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => n,
                };
                codec.feed(&buf[..n]);
                replies.clear();
                while let Ok(Some(msg)) = codec.next_message() {
                    handled += 1;
                    let reply = match msg {
                        OfMessage::BarrierRequest { xid } => Some(OfMessage::BarrierReply { xid }),
                        OfMessage::EchoRequest { xid, data } => {
                            Some(OfMessage::EchoReply { xid, data })
                        }
                        OfMessage::Hello { xid } => Some(OfMessage::Hello { xid }),
                        _ => None,
                    };
                    if let Some(r) = reply {
                        r.encode_into(&mut replies).expect("encodable reply");
                    }
                }
                // One write per read batch; a failed write means the proxy
                // hung up — stop serving instead of panicking.
                if !replies.is_empty() && stream.write_all(&replies).is_err() {
                    break 'conn;
                }
            }
            handled
        })
    }

    /// The engine-driven proxy makes barriers honest over real sockets: the
    /// controller's barrier reply is withheld until the hold-down timer has
    /// confirmed the preceding flow-mod, even though the fake switch answers
    /// barriers instantly.
    #[test]
    fn proxy_holds_barrier_reply_until_engine_confirms() {
        // "Controller": a plain listener the proxy connects to.
        let controller_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let controller_addr = controller_listener.local_addr().unwrap();

        let delay = Duration::from_millis(120);
        let proxy = RumTcpProxy::new(
            ProxyConfig {
                listen_addr: "127.0.0.1:0".parse().unwrap(),
                controller_addr,
            },
            RumBuilder::new(1)
                .technique(TechniqueConfig::StaticTimeout { delay })
                .fine_grained_acks(false),
        );
        let handle = proxy.start().expect("proxy starts");
        assert_eq!(handle.n_switches(), 1);

        // The "switch" connects to the proxy; the proxy then connects to us.
        let switch = spawn_fake_switch(handle.local_addr);
        let (mut ctrl_stream, _) = controller_listener.accept().expect("proxy dialled us");
        ctrl_stream
            .set_read_timeout(Some(Duration::from_secs(3)))
            .unwrap();

        // Controller sends hello + flow-mod + barrier request.
        let messages = vec![
            OfMessage::Hello { xid: 1 },
            OfMessage::FlowMod {
                xid: 2,
                body: FlowMod::add(
                    OfMatch::wildcard_all(),
                    1,
                    vec![openflow::Action::output(1)],
                ),
            },
            OfMessage::BarrierRequest { xid: 3 },
        ];
        let start = Instant::now();
        let mut wire = Vec::new();
        for m in &messages {
            m.encode_into(&mut wire).unwrap();
        }
        ctrl_stream.write_all(&wire).unwrap();

        // Read until the barrier reply arrives.
        let mut codec = OfCodec::new();
        let mut buf = [0u8; 2048];
        let mut got_barrier_at = None;
        while got_barrier_at.is_none() {
            let n = match ctrl_stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => n,
            };
            codec.feed(&buf[..n]);
            while let Ok(Some(msg)) = codec.next_message() {
                if matches!(msg, OfMessage::BarrierReply { xid: 3 }) {
                    got_barrier_at = Some(start.elapsed());
                }
            }
        }
        let elapsed = got_barrier_at.expect("barrier reply must arrive");
        assert!(
            elapsed >= delay,
            "barrier reply arrived after {elapsed:?}, before the configured {delay:?} hold-down"
        );

        // The unified stats surface reports the same run.
        let sw = SwitchId::new(0);
        let stats = handle.stats(sw);
        assert_eq!(stats.controller_flow_mods, 1);
        assert_eq!(stats.controller_barriers, 1);
        assert_eq!(stats.barrier_replies_released, 1);
        assert_eq!(stats.unconfirmed, 0);
        assert!(handle.counters().to_switch() >= 3);
        assert!(handle.counters().to_controller() >= 1);
        assert!(handle.counters().timers_fired() >= 1);
        assert_eq!(handle.counters().connections(), 1);

        drop(ctrl_stream);
        handle.shutdown();
        let _ = switch.join();
    }

    /// The same hold-down flow with the engine split across 2 shards and 3
    /// switches: per-switch behaviour is identical, and shard metrics show
    /// both shards did work.
    #[test]
    fn sharded_proxy_serves_multiple_switches() {
        let controller_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let controller_addr = controller_listener.local_addr().unwrap();

        let delay = Duration::from_millis(60);
        let proxy = RumTcpProxy::new(
            ProxyConfig {
                listen_addr: "127.0.0.1:0".parse().unwrap(),
                controller_addr,
            },
            RumBuilder::new(3)
                .shards(2)
                .technique(TechniqueConfig::StaticTimeout { delay })
                .fine_grained_acks(false),
        );
        let handle = proxy.start().expect("proxy starts");
        assert_eq!(handle.n_switches(), 3);
        assert_eq!(handle.n_shards(), 2);

        let mut switches = Vec::new();
        let mut ctrl_streams = Vec::new();
        for i in 1..=3u64 {
            switches.push(spawn_fake_switch(handle.local_addr));
            let (ctrl, _) = controller_listener.accept().expect("proxy dialled us");
            ctrl.set_read_timeout(Some(Duration::from_secs(3))).unwrap();
            ctrl_streams.push(ctrl);
            assert!(wait_for(
                || handle.counters().connections() == i,
                Duration::from_secs(2),
            ));
        }

        // Push a flow-mod + barrier through every switch's channel.
        for ctrl in ctrl_streams.iter_mut() {
            let mut wire = Vec::new();
            OfMessage::FlowMod {
                xid: 2,
                body: FlowMod::add(
                    OfMatch::wildcard_all(),
                    1,
                    vec![openflow::Action::output(1)],
                ),
            }
            .encode_into(&mut wire)
            .unwrap();
            OfMessage::BarrierRequest { xid: 3 }
                .encode_into(&mut wire)
                .unwrap();
            ctrl.write_all(&wire).unwrap();
        }
        for ctrl in ctrl_streams.iter_mut() {
            let mut codec = OfCodec::new();
            let mut buf = [0u8; 2048];
            let mut got = false;
            while !got {
                let n = match ctrl.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => n,
                };
                codec.feed(&buf[..n]);
                while let Ok(Some(msg)) = codec.next_message() {
                    if matches!(msg, OfMessage::BarrierReply { xid: 3 }) {
                        got = true;
                    }
                }
            }
            assert!(got, "each controller channel gets its barrier reply");
        }
        for i in 0..3 {
            let stats = handle.stats(SwitchId::new(i));
            assert_eq!(stats.controller_flow_mods, 1, "switch {i}");
            assert_eq!(stats.barrier_replies_released, 1, "switch {i}");
        }
        let totals = handle.total_stats();
        assert_eq!(totals.controller_flow_mods, 3);
        // Both shards drained inputs (slots 0,2 → shard 0; slot 1 → shard 1).
        let snapshot = handle.metrics().snapshot();
        for k in 0..2 {
            let name = format!("proxy.shard{k}.drains");
            let drains = snapshot.counters.get(&name).copied().unwrap_or(0);
            assert!(drains > 0, "shard {k} must have drained");
        }
        drop(ctrl_streams);
        handle.shutdown();
        for s in switches {
            let _ = s.join();
        }
    }

    #[test]
    fn surplus_connections_are_refused() {
        let controller_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let controller_addr = controller_listener.local_addr().unwrap();
        let proxy = RumTcpProxy::new(
            ProxyConfig {
                listen_addr: "127.0.0.1:0".parse().unwrap(),
                controller_addr,
            },
            RumBuilder::new(1).technique(TechniqueConfig::BarrierBaseline),
        );
        let handle = proxy.start().unwrap();
        let _first = TcpStream::connect(handle.local_addr).unwrap();
        assert!(wait_for(
            || handle.counters().connections() == 1,
            Duration::from_secs(2),
        ));
        // A second switch has no engine slot: accepted at TCP level but
        // never attached.
        let _second = TcpStream::connect(handle.local_addr).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(handle.counters().connections(), 1);
        handle.shutdown();
    }

    /// A switch that loses its TCP connection frees its slot; the reconnect
    /// is attached to the same [`SwitchId`] instead of being refused.
    #[test]
    fn reconnect_reuses_the_freed_slot() {
        let controller_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let controller_addr = controller_listener.local_addr().unwrap();
        let proxy = RumTcpProxy::new(
            ProxyConfig {
                listen_addr: "127.0.0.1:0".parse().unwrap(),
                controller_addr,
            },
            RumBuilder::new(1).technique(TechniqueConfig::BarrierBaseline),
        );
        let handle = proxy.start().unwrap();
        let first = TcpStream::connect(handle.local_addr).unwrap();
        assert!(wait_for(
            || handle.counters().connections() == 1,
            Duration::from_secs(2),
        ));
        drop(first);
        // Detachment is asynchronous (the worker must observe EOF); keep
        // re-dialling until the freed slot is claimed again.
        let mut second = None;
        assert!(wait_for(
            || {
                if handle.counters().connections() >= 2 {
                    return true;
                }
                second = TcpStream::connect(handle.local_addr).ok();
                false
            },
            Duration::from_secs(3),
        ));
        assert_eq!(handle.counters().connections(), 2);
        handle.shutdown();
    }

    #[test]
    fn wait_for_times_out() {
        assert!(!wait_for(|| false, Duration::from_millis(30)));
        assert!(wait_for(|| true, Duration::from_millis(30)));
    }
}
