//! The TCP listener / relay machinery.

use crate::relay::{MessageRelay, RelayVerdict};
use openflow::{OfCodec, OfMessage};
use parking_lot::Mutex;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Configuration of a [`RumTcpProxy`].
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Address the proxy listens on for switch connections.
    pub listen_addr: SocketAddr,
    /// Address of the real controller the proxy connects onward to.
    pub controller_addr: SocketAddr,
}

/// Counters shared across all connections of one proxy instance.
#[derive(Debug, Default)]
pub struct ProxyCounters {
    /// Switch connections accepted.
    pub connections: AtomicU64,
    /// Messages relayed controller → switch.
    pub to_switch: AtomicU64,
    /// Messages relayed switch → controller.
    pub to_controller: AtomicU64,
    /// Messages held back by the relay policy before forwarding.
    pub delayed: AtomicU64,
    /// Messages swallowed by the relay policy.
    pub dropped: AtomicU64,
}

/// A handle to a running proxy; dropping it does not stop the proxy, call
/// [`ProxyHandle::shutdown`] for a clean stop.
pub struct ProxyHandle {
    /// The address the proxy actually listens on (useful with port 0).
    pub local_addr: SocketAddr,
    counters: Arc<ProxyCounters>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ProxyHandle {
    /// Shared relay counters.
    pub fn counters(&self) -> &ProxyCounters {
        &self.counters
    }

    /// Asks the accept loop to stop and waits for it to finish.  Established
    /// relay threads terminate when their sockets close.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throw-away connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// The RUM TCP proxy: accepts switch connections and relays them to the
/// controller through a [`MessageRelay`] policy.
pub struct RumTcpProxy<F> {
    config: ProxyConfig,
    relay_factory: F,
}

impl<F, R> RumTcpProxy<F>
where
    F: Fn() -> R + Send + Sync + 'static,
    R: MessageRelay + 'static,
{
    /// Creates a proxy; `relay_factory` builds one relay policy instance per
    /// accepted switch connection.
    pub fn new(config: ProxyConfig, relay_factory: F) -> Self {
        RumTcpProxy {
            config,
            relay_factory,
        }
    }

    /// Binds the listener and starts accepting connections on a background
    /// thread.
    pub fn start(self) -> std::io::Result<ProxyHandle> {
        let listener = TcpListener::bind(self.config.listen_addr)?;
        let local_addr = listener.local_addr()?;
        let counters = Arc::new(ProxyCounters::default());
        let stop = Arc::new(AtomicBool::new(false));
        let controller_addr = self.config.controller_addr;
        let relay_factory = Arc::new(self.relay_factory);

        let accept_counters = Arc::clone(&counters);
        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            for incoming in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(switch_stream) = incoming else { continue };
                let Ok(controller_stream) = TcpStream::connect(controller_addr) else {
                    // Controller unavailable: drop the switch connection so it
                    // retries, like any proxy would.
                    continue;
                };
                accept_counters.connections.fetch_add(1, Ordering::SeqCst);
                let relay = Arc::new(Mutex::new((relay_factory)()));
                spawn_relay_pair(
                    switch_stream,
                    controller_stream,
                    relay,
                    Arc::clone(&accept_counters),
                );
            }
        });

        Ok(ProxyHandle {
            local_addr,
            counters,
            stop,
            accept_thread: Some(accept_thread),
        })
    }
}

/// Spawns the two relay threads for one switch/controller connection pair.
fn spawn_relay_pair<R: MessageRelay + 'static>(
    switch_stream: TcpStream,
    controller_stream: TcpStream,
    relay: Arc<Mutex<R>>,
    counters: Arc<ProxyCounters>,
) {
    let switch_reader = switch_stream.try_clone().expect("clone switch stream");
    let controller_writer = controller_stream
        .try_clone()
        .expect("clone controller stream");
    let controller_reader = controller_stream;
    let switch_writer = switch_stream;

    // switch -> controller
    {
        let relay = Arc::clone(&relay);
        let counters = Arc::clone(&counters);
        std::thread::spawn(move || {
            relay_direction(switch_reader, controller_writer, counters, move |msg, c| {
                let verdict = relay.lock().on_switch_to_controller(msg);
                c.to_controller.fetch_add(1, Ordering::SeqCst);
                verdict
            });
        });
    }
    // controller -> switch
    {
        std::thread::spawn(move || {
            relay_direction(controller_reader, switch_writer, counters, move |msg, c| {
                let verdict = relay.lock().on_controller_to_switch(msg);
                c.to_switch.fetch_add(1, Ordering::SeqCst);
                verdict
            });
        });
    }
}

/// Pumps one direction: reads OpenFlow messages from `reader`, consults the
/// policy, and writes to `writer`.
fn relay_direction(
    mut reader: TcpStream,
    mut writer: TcpStream,
    counters: Arc<ProxyCounters>,
    mut policy: impl FnMut(&OfMessage, &ProxyCounters) -> RelayVerdict,
) {
    let _ = reader.set_nodelay(true);
    let _ = writer.set_nodelay(true);
    let mut codec = OfCodec::new();
    let mut buf = [0u8; 4096];
    loop {
        let n = match reader.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        codec.feed(&buf[..n]);
        loop {
            let msg = match codec.next_message() {
                Ok(Some(m)) => m,
                Ok(None) => break,
                Err(_) => return, // framing error: give up on this connection
            };
            let verdict = policy(&msg, &counters);
            let outgoing: Vec<OfMessage> = match verdict {
                RelayVerdict::Forward => vec![msg],
                RelayVerdict::Delay(d) => {
                    counters.delayed.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(d);
                    vec![msg]
                }
                RelayVerdict::Drop => {
                    counters.dropped.fetch_add(1, Ordering::SeqCst);
                    vec![]
                }
                RelayVerdict::ForwardAnd(extra) => {
                    let mut v = vec![msg];
                    v.extend(extra);
                    v
                }
            };
            for m in outgoing {
                let Ok(bytes) = m.encode_to_vec() else { continue };
                if writer.write_all(&bytes).is_err() {
                    return;
                }
            }
        }
    }
}

/// Convenience: waits until `predicate` becomes true or `timeout` elapses.
pub fn wait_for(mut predicate: impl FnMut() -> bool, timeout: Duration) -> bool {
    let start = std::time::Instant::now();
    while start.elapsed() < timeout {
        if predicate() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    predicate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relay::DelayedBarrierRelay;
    use openflow::messages::FlowMod;
    use openflow::OfMatch;
    use std::time::Instant;

    /// A minimal in-process "switch": connects to the proxy, answers every
    /// barrier request immediately (the buggy behaviour) and every echo.
    fn spawn_fake_switch(proxy_addr: SocketAddr) -> JoinHandle<u64> {
        std::thread::spawn(move || {
            let mut stream = TcpStream::connect(proxy_addr).expect("connect to proxy");
            let mut codec = OfCodec::new();
            let mut buf = [0u8; 2048];
            let mut handled = 0u64;
            stream
                .set_read_timeout(Some(Duration::from_secs(2)))
                .unwrap();
            loop {
                let n = match stream.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => n,
                };
                codec.feed(&buf[..n]);
                while let Ok(Some(msg)) = codec.next_message() {
                    handled += 1;
                    let reply = match msg {
                        OfMessage::BarrierRequest { xid } => {
                            Some(OfMessage::BarrierReply { xid })
                        }
                        OfMessage::EchoRequest { xid, data } => {
                            Some(OfMessage::EchoReply { xid, data })
                        }
                        OfMessage::Hello { xid } => Some(OfMessage::Hello { xid }),
                        _ => None,
                    };
                    if let Some(r) = reply {
                        stream.write_all(&r.encode_to_vec().unwrap()).unwrap();
                    }
                }
            }
            handled
        })
    }

    #[test]
    fn proxy_relays_and_delays_barrier_replies() {
        // "Controller": a plain listener the proxy connects to.
        let controller_listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let controller_addr = controller_listener.local_addr().unwrap();

        let delay = Duration::from_millis(120);
        let proxy = RumTcpProxy::new(
            ProxyConfig {
                listen_addr: "127.0.0.1:0".parse().unwrap(),
                controller_addr,
            },
            move || DelayedBarrierRelay::new(delay),
        );
        let handle = proxy.start().expect("proxy starts");

        // The "switch" connects to the proxy; the proxy then connects to us.
        let switch = spawn_fake_switch(handle.local_addr);
        let (mut ctrl_stream, _) = controller_listener.accept().expect("proxy dialled us");
        ctrl_stream
            .set_read_timeout(Some(Duration::from_secs(3)))
            .unwrap();

        // Controller sends hello + flow-mod + barrier request.
        let messages = vec![
            OfMessage::Hello { xid: 1 },
            OfMessage::FlowMod {
                xid: 2,
                body: FlowMod::add(
                    OfMatch::wildcard_all(),
                    1,
                    vec![openflow::Action::output(1)],
                ),
            },
            OfMessage::BarrierRequest { xid: 3 },
        ];
        let start = Instant::now();
        for m in &messages {
            ctrl_stream.write_all(&m.encode_to_vec().unwrap()).unwrap();
        }

        // Read until the barrier reply arrives.
        let mut codec = OfCodec::new();
        let mut buf = [0u8; 2048];
        let mut got_barrier_at = None;
        while got_barrier_at.is_none() {
            let n = match ctrl_stream.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => n,
            };
            codec.feed(&buf[..n]);
            while let Ok(Some(msg)) = codec.next_message() {
                if matches!(msg, OfMessage::BarrierReply { xid: 3 }) {
                    got_barrier_at = Some(start.elapsed());
                }
            }
        }
        let elapsed = got_barrier_at.expect("barrier reply must arrive");
        assert!(
            elapsed >= delay,
            "barrier reply arrived after {elapsed:?}, before the configured {delay:?} hold-down"
        );
        assert!(handle.counters().to_switch.load(Ordering::SeqCst) >= 3);
        assert!(handle.counters().to_controller.load(Ordering::SeqCst) >= 1);
        assert_eq!(handle.counters().delayed.load(Ordering::SeqCst), 1);
        assert_eq!(handle.counters().connections.load(Ordering::SeqCst), 1);

        drop(ctrl_stream);
        handle.shutdown();
        let _ = switch.join();
    }

    #[test]
    fn wait_for_times_out() {
        assert!(!wait_for(|| false, Duration::from_millis(30)));
        assert!(wait_for(|| true, Duration::from_millis(30)));
    }
}
