//! The TCP driver for the sans-IO [`UpdateSession`]: the paper's
//! consistent-update controller, running over real sockets.
//!
//! [`TcpUpdateController`] listens for its switch connections (usually the
//! RUM proxy impersonating the switches), assigns them [`ConnId`]s in accept
//! order, and — once every expected connection is up — feeds the session
//! [`SessionInput::Started`].  From then on it is a pure message pump: reader
//! threads decode OpenFlow frames into [`SessionInput::FromSwitch`], a timer
//! thread replays [`SessionInput::TimerFired`], and every
//! [`SessionEffect`] the session returns is executed mechanically (writes,
//! timer arming).  All consistency logic — dependency gating, the window,
//! acknowledgment modes, the failure policy — lives in the session, which is
//! the exact state machine the simulator's `controller::Controller` drives.

use crate::legacy::{reader_loop, writer_loop, Route};
use crate::timer::TimerQueue;
use controller::{
    is_resync_token, ConnId, Reconciler, ResyncConfig, ResyncEffect, ResyncInput, SessionEffect,
    SessionInput, SessionOutcome, UpdateSession,
};
use openflow::OfMessage;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

struct ControllerState {
    session: UpdateSession,
    /// Optional reconciliation engine; a mid-run Hello on an attached
    /// connection is the reconnect signal (the switch host replays the
    /// handshake on reattach and the RUM proxy forwards it), mirroring the
    /// simulator driver exactly.
    resync: Option<Reconciler>,
    routes: Vec<Route>,
    /// Reusable per-connection encode buffers: all sends of one drain are
    /// coalesced into a single chunk (→ one socket write) per connection.
    send_bufs: Vec<Vec<u8>>,
    /// Reusable effects buffer for session drains.
    effects: Vec<SessionEffect>,
    /// Which `ConnId` slots currently have a live connection.  A switch
    /// that drops its connection (e.g. the restart fault) frees its slot;
    /// the reconnect claims the lowest free slot again, so a single
    /// restarted switch reattaches under its original `ConnId`.
    attached: Vec<bool>,
    /// Per-slot attach generation, so a thread outliving its connection
    /// cannot tear down the slot's newer connection.
    generation: Vec<u64>,
    /// Total connections ever attached (reconnects included).
    total_accepted: usize,
    started: bool,
}

struct Inner {
    state: Mutex<ControllerState>,
    /// Notified whenever the session reaches a terminal outcome.
    done: Condvar,
    timers: TimerQueue,
    stop: AtomicBool,
    epoch: Instant,
}

impl Inner {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    /// Feeds one input under the lock and executes the returned effects.
    fn drive(self: &Arc<Self>, input: SessionInput) {
        self.drive_batch(std::iter::once(input));
    }

    /// Feeds a batch of inputs (e.g. every message decoded from one socket
    /// read) under a single lock acquisition, encoding all resulting sends
    /// into per-connection buffers flushed as one chunk each — one write
    /// per connection per drain, no per-effect allocation.
    fn drive_batch(self: &Arc<Self>, inputs: impl IntoIterator<Item = SessionInput>) {
        let now = self.now();
        let mut timers = Vec::new();
        let mut notify = false;
        {
            let mut st = self.state.lock().unwrap();
            let st = &mut *st;
            for input in inputs {
                notify |= apply_session(st, now, input, &mut timers);
            }
            flush_routes(st);
        }
        self.arm_timers(timers);
        if notify {
            self.done.notify_all();
        }
    }

    /// Feeds one input into the reconciler (when enabled) and executes the
    /// effects: same lock, same coalesced writes as session inputs.
    fn drive_resync(self: &Arc<Self>, input: ResyncInput) {
        let now = self.now();
        let mut timers = Vec::new();
        let notify;
        {
            let mut st = self.state.lock().unwrap();
            let st = &mut *st;
            notify = apply_resync(st, now, input, &mut timers);
            flush_routes(st);
        }
        self.arm_timers(timers);
        if notify {
            self.done.notify_all();
        }
    }

    /// Routes every message decoded from one socket read to the engine it
    /// belongs to — the session while it is live; the reconciler for
    /// reconnect Hellos, FlowRemoved notifications and everything after the
    /// session settles — under a single lock acquisition.
    fn drive_conn_messages(self: &Arc<Self>, conn: ConnId, msgs: &mut Vec<OfMessage>) {
        let now = self.now();
        let mut timers = Vec::new();
        let mut notify = false;
        {
            let mut st = self.state.lock().unwrap();
            let st = &mut *st;
            for message in msgs.drain(..) {
                if st.resync.is_some() {
                    match message {
                        // A mid-run Hello means the switch behind this
                        // connection restarted and replayed its handshake:
                        // answer it (completing the handshake) and flag the
                        // reconnect.
                        OfMessage::Hello { xid } => {
                            let buf = &mut st.send_bufs[conn.index()];
                            let _ = OfMessage::Hello { xid }.encode_into(buf);
                            notify |= apply_resync(
                                st,
                                now,
                                ResyncInput::SwitchReconnected { conn },
                                &mut timers,
                            );
                            continue;
                        }
                        // Aged-out rules leave the desired store no matter
                        // which engine is currently live.
                        OfMessage::FlowRemoved { .. } => {
                            apply_resync(
                                st,
                                now,
                                ResyncInput::FromSwitch { conn, message },
                                &mut timers,
                            );
                            continue;
                        }
                        _ => {}
                    }
                    if st.session.outcome().is_some() {
                        notify |= apply_resync(
                            st,
                            now,
                            ResyncInput::FromSwitch { conn, message },
                            &mut timers,
                        );
                        continue;
                    }
                }
                notify |= apply_session(
                    st,
                    now,
                    SessionInput::FromSwitch { conn, message },
                    &mut timers,
                );
            }
            flush_routes(st);
        }
        self.arm_timers(timers);
        if notify {
            self.done.notify_all();
        }
    }

    fn arm_timers(&self, timers: Vec<(Duration, u64)>) {
        let now = Instant::now();
        for (delay, token) in timers {
            self.timers.arm(now + delay, token);
        }
    }

    /// Starts the update once all expected connections are attached.
    fn maybe_start(self: &Arc<Self>) {
        let ready = {
            let mut st = self.state.lock().unwrap();
            if st.attached.iter().all(|&a| a) && !st.started {
                st.started = true;
                true
            } else {
                false
            }
        };
        if ready {
            self.drive(SessionInput::Started);
        }
    }
}

/// Feeds one input into the session and executes its effects against the
/// shared state: sends encode into the per-connection buffers (flushed by
/// [`flush_routes`]), timers are collected as `(delay, raw token)` pairs
/// for arming outside the lock.  When resync is enabled, confirmations feed
/// the desired store and a terminal outcome opens the reconciliation gate
/// under the same lock acquisition — no switch message can race in between.
/// Returns whether the `done` condvar should be notified.
fn apply_session(
    st: &mut ControllerState,
    now: Duration,
    input: SessionInput,
    timers: &mut Vec<(Duration, u64)>,
) -> bool {
    let mut finished = false;
    st.effects.clear();
    let mut effects = std::mem::take(&mut st.effects);
    st.session
        .drain_into(now, std::iter::once(input), &mut effects);
    for effect in effects.drain(..) {
        match effect {
            SessionEffect::Send { conn, message } => {
                let buf = &mut st.send_bufs[conn.index()];
                let len_before = buf.len();
                if message.encode_into(buf).is_err() {
                    buf.truncate(len_before);
                }
            }
            SessionEffect::ArmTimer { delay, token } => {
                timers.push((delay, token.raw()));
            }
            SessionEffect::Confirmed { id } => {
                if let Some(resync) = st.resync.as_mut() {
                    if let Some(m) = st.session.plan().get(id) {
                        resync.store_mut().note_confirmed(m.target, &m.flow_mod);
                    }
                }
            }
            SessionEffect::Rejected { .. } => {}
            SessionEffect::Completed { .. } | SessionEffect::Aborted { .. } => {
                finished = true;
            }
        }
    }
    st.effects = effects;
    if finished {
        apply_resync(st, now, ResyncInput::SessionSettled, timers);
    }
    finished
}

/// Feeds one input into the reconciler (no-op while resync is disabled) and
/// executes its effects the same way [`apply_session`] does.  Returns
/// whether a switch reached a terminal resync state (converged or gave up)
/// — waiters on the `done` condvar re-check their counts.
fn apply_resync(
    st: &mut ControllerState,
    now: Duration,
    input: ResyncInput,
    timers: &mut Vec<(Duration, u64)>,
) -> bool {
    let Some(resync) = st.resync.as_mut() else {
        return false;
    };
    let mut terminal = false;
    for effect in resync.handle(now, input) {
        match effect {
            ResyncEffect::Send { conn, message } => {
                let buf = &mut st.send_bufs[conn.index()];
                let len_before = buf.len();
                if message.encode_into(buf).is_err() {
                    buf.truncate(len_before);
                }
            }
            ResyncEffect::ArmTimer { delay, token } => timers.push((delay, token)),
            ResyncEffect::Converged { .. } | ResyncEffect::GaveUp { .. } => terminal = true,
        }
    }
    terminal
}

/// Flushes every non-empty per-connection buffer as one chunk — one socket
/// write per connection per drain.
fn flush_routes(st: &mut ControllerState) {
    for (route, buf) in st.routes.iter_mut().zip(st.send_bufs.iter_mut()) {
        if !buf.is_empty() {
            route.send_bytes(std::mem::take(buf));
        }
    }
}

/// A consistent-update controller serving an [`UpdateSession`] over TCP.
///
/// Switch connections attach in accept order: the first accepted socket
/// becomes [`ConnId`] 0 (= plan `SwitchRef` 0) and so on, which matches how
/// the RUM proxy dials one upstream connection per switch as that switch
/// connects.  Deployments that need a deterministic mapping connect the
/// switches one at a time (see [`TcpControllerHandle::connections`]).
pub struct TcpUpdateController {
    listen_addr: SocketAddr,
    session: UpdateSession,
    resync: Option<Reconciler>,
    n_connections: usize,
    epoch: Instant,
}

impl TcpUpdateController {
    /// Creates a controller executing `session` once `n_connections` switch
    /// connections have been accepted on `listen_addr`.
    ///
    /// # Panics
    ///
    /// Panics if the session's plan targets a `SwitchRef` outside
    /// `0..n_connections` — its modifications could never be sent.
    pub fn new(listen_addr: SocketAddr, session: UpdateSession, n_connections: usize) -> Self {
        Self::new_with_epoch(listen_addr, session, n_connections, Instant::now())
    }

    /// Like [`TcpUpdateController::new`] but measuring session time against
    /// an explicit `epoch` — share one `Instant` with the switch hosts so
    /// confirmation times and data-plane activation times are comparable.
    pub fn new_with_epoch(
        listen_addr: SocketAddr,
        session: UpdateSession,
        n_connections: usize,
        epoch: Instant,
    ) -> Self {
        let max_target = session.plan().targets().into_iter().max();
        if let Some(max) = max_target {
            assert!(
                max < n_connections,
                "plan targets switch {max} but only {n_connections} connections are expected"
            );
        }
        TcpUpdateController {
            listen_addr,
            session,
            resync: None,
            n_connections,
            epoch,
        }
    }

    /// Enables declarative resync: every confirmed modification is recorded
    /// in a desired store, and once the session settles, any switch that
    /// replays its handshake (i.e. restarted and reconnected) is read back
    /// and repaired until its flow table matches the store.  Returns the
    /// reconciler so callers can seed the desired store (pre-installed
    /// rules) before [`TcpUpdateController::start`].
    pub fn enable_resync(&mut self, config: ResyncConfig) -> &mut Reconciler {
        self.resync.insert(Reconciler::new(config))
    }

    /// Binds the listener and starts accepting connections on background
    /// threads.  The update begins automatically once all expected
    /// connections are up.
    pub fn start(self) -> std::io::Result<TcpControllerHandle> {
        let listener = TcpListener::bind(self.listen_addr)?;
        let local_addr = listener.local_addr()?;
        let n_connections = self.n_connections;
        let inner = Arc::new(Inner {
            state: Mutex::new(ControllerState {
                session: self.session,
                resync: self.resync,
                routes: (0..n_connections)
                    .map(|_| Route::Pending(Vec::new()))
                    .collect(),
                send_bufs: (0..n_connections).map(|_| Vec::new()).collect(),
                effects: Vec::new(),
                attached: vec![false; n_connections],
                generation: vec![0; n_connections],
                total_accepted: 0,
                started: false,
            }),
            done: Condvar::new(),
            timers: TimerQueue::new(),
            stop: AtomicBool::new(false),
            epoch: self.epoch,
        });

        let timer_thread = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || {
                let fire_inner = Arc::clone(&inner);
                inner.timers.run(&inner.stop, move |token| {
                    // Session and resync timers share one queue; the token
                    // namespaces are disjoint by construction.
                    if is_resync_token(token) {
                        fire_inner.drive_resync(ResyncInput::TimerFired { token });
                    } else {
                        fire_inner.drive(SessionInput::TimerFired {
                            token: controller::SessionTimerToken::from_raw(token),
                        });
                    }
                });
            })
        };

        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::spawn(move || {
            for incoming in listener.incoming() {
                if accept_inner.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = incoming else {
                    continue;
                };
                let (conn, generation) = {
                    let mut st = accept_inner.state.lock().unwrap();
                    // Claim the lowest free slot; a switch that dropped its
                    // connection (switch restart) reattaches under its
                    // original ConnId.  Surplus connections are dropped.
                    //
                    // Limitation: the mapping is positional, not
                    // authenticated — with several switches down at once,
                    // whoever re-dials first gets the lowest freed slot.
                    // Deployments that restart more than one switch
                    // concurrently need datapath-id re-identification from
                    // a features handshake, which this prototype (like the
                    // paper's) does not perform.
                    let Some(slot) = st.attached.iter().position(|&a| !a) else {
                        continue;
                    };
                    st.attached[slot] = true;
                    st.generation[slot] += 1;
                    st.total_accepted += 1;
                    (ConnId::new(slot), st.generation[slot])
                };
                attach_connection(&accept_inner, conn, generation, stream);
                accept_inner.maybe_start();
            }
        });

        Ok(TcpControllerHandle {
            local_addr,
            inner,
            accept_thread: Some(accept_thread),
            timer_thread: Some(timer_thread),
        })
    }
}

/// Wires one accepted switch connection: a writer thread draining the
/// conn's outbox and a reader thread feeding the session.  Either thread
/// ending detaches the slot so a restarted switch can reconnect under the
/// same `ConnId`; messages sent meanwhile buffer in the pending route and
/// flush on reattach.
fn attach_connection(inner: &Arc<Inner>, conn: ConnId, generation: u64, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let reader = stream.try_clone().expect("clone switch stream");
    let (tx, rx) = channel::<Vec<u8>>();
    inner.state.lock().unwrap().routes[conn.index()].connect(tx);
    // A failed write ends the writer loop gracefully; the session-level
    // failure policy (timeout → retry → abort) handles the silent switch.
    {
        let inner = Arc::clone(inner);
        std::thread::spawn(move || {
            writer_loop(rx, stream, None);
            detach_connection(&inner, conn, generation);
        });
    }
    {
        let inner = Arc::clone(inner);
        std::thread::spawn(move || {
            reader_loop(reader, |msgs| {
                inner.drive_conn_messages(conn, msgs);
            });
            detach_connection(&inner, conn, generation);
        });
    }
}

/// Frees one slot after its connection died: resets the route to buffering
/// mode (the writer thread drains what was already queued, shuts the socket
/// down and exits — see `writer_loop`) and marks the slot free for a
/// reconnect.  Generation-guarded and idempotent.
fn detach_connection(inner: &Arc<Inner>, conn: ConnId, generation: u64) {
    let mut st = inner.state.lock().unwrap();
    if !st.attached[conn.index()] || st.generation[conn.index()] != generation {
        return;
    }
    st.attached[conn.index()] = false;
    st.routes[conn.index()] = Route::Pending(Vec::new());
}

/// A handle to a running TCP update controller.
pub struct TcpControllerHandle {
    /// The address the controller actually listens on (useful with port 0).
    pub local_addr: SocketAddr,
    inner: Arc<Inner>,
    accept_thread: Option<JoinHandle<()>>,
    timer_thread: Option<JoinHandle<()>>,
}

impl TcpControllerHandle {
    /// Number of switch connections accepted so far (reconnects included).
    pub fn connections(&self) -> usize {
        self.inner.state.lock().unwrap().total_accepted
    }

    /// Runs `f` against the session under the lock — the unified inspection
    /// surface (confirm counts, timestamps, outcome), identical to what the
    /// simulator driver exposes.
    pub fn with_session<R>(&self, f: impl FnOnce(&UpdateSession) -> R) -> R {
        f(&self.inner.state.lock().unwrap().session)
    }

    /// Every confirmation the session recorded, in order.
    pub fn confirmed_order(&self) -> Vec<u64> {
        self.with_session(|s| s.confirmed_order().to_vec())
    }

    /// Runs `f` against the reconciler under the lock — `None` when resync
    /// was never enabled.  The same inspection surface (status, trace,
    /// desired store) the simulator driver exposes.
    pub fn with_reconciler<R>(&self, f: impl FnOnce(&Reconciler) -> R) -> Option<R> {
        self.inner.state.lock().unwrap().resync.as_ref().map(f)
    }

    /// Blocks until at least `n` switches have reached a terminal resync
    /// state (converged or gave up) or `timeout` elapses; returns whether
    /// they did.
    pub fn wait_for_resync(&self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if st.resync.as_ref().is_some_and(|r| r.terminal_count() >= n) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = self.inner.done.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }

    /// Blocks until the session reaches a terminal outcome (completed or
    /// aborted) or `timeout` elapses; returns the outcome if there is one.
    pub fn wait_for_outcome(&self, timeout: Duration) -> Option<SessionOutcome> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if let Some(outcome) = st.session.outcome() {
                return Some(outcome.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.inner.done.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }

    /// Asks the accept and timer loops to stop and waits for them.
    /// Established connection threads terminate when their sockets close.
    pub fn shutdown(mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.timers.wake();
        // Unblock the accept loop with a throw-away connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.timer_thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use controller::{AckMode, FailurePolicy, UpdatePlan};
    use openflow::messages::FlowMod;
    use openflow::{Action, OfCodec, OfMatch, OfMessage};
    use std::io::{Read, Write};
    use std::net::Ipv4Addr;

    fn plan(n: u64) -> UpdatePlan {
        let mut plan = UpdatePlan::new();
        for i in 0..n {
            plan.add(
                i + 1,
                0,
                FlowMod::add(
                    OfMatch::ipv4_pair(
                        Ipv4Addr::new(10, 0, 0, i as u8 + 1),
                        Ipv4Addr::new(10, 1, 0, 1),
                    ),
                    100,
                    vec![Action::output(2)],
                ),
            )
            .unwrap();
        }
        plan
    }

    /// A scripted in-process switch: acks every flow-mod with a RUM-style
    /// fine-grained acknowledgment, which is what the proxy would send.
    fn acking_switch(addr: SocketAddr) -> JoinHandle<Vec<u64>> {
        std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect to controller");
            stream
                .set_read_timeout(Some(Duration::from_secs(3)))
                .unwrap();
            let mut codec = OfCodec::new();
            let mut buf = [0u8; 2048];
            let mut acks = Vec::new();
            let mut seen = Vec::new();
            'conn: loop {
                let n = match stream.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => n,
                };
                codec.feed(&buf[..n]);
                acks.clear();
                while let Ok(Some(msg)) = codec.next_message() {
                    if let OfMessage::FlowMod { xid, .. } = msg {
                        seen.push(u64::from(xid));
                        OfMessage::rum_ack(xid)
                            .encode_into(&mut acks)
                            .expect("encodable ack");
                    }
                }
                // One write per read batch; a failed write means the
                // controller hung up — stop acking instead of panicking.
                if !acks.is_empty() && stream.write_all(&acks).is_err() {
                    break 'conn;
                }
            }
            seen
        })
    }

    #[test]
    fn session_completes_over_real_sockets() {
        let session = UpdateSession::new(plan(6), AckMode::RumAcks, 2);
        let ctrl = TcpUpdateController::new("127.0.0.1:0".parse().unwrap(), session, 1);
        let handle = ctrl.start().expect("controller starts");
        let switch = acking_switch(handle.local_addr);
        let outcome = handle
            .wait_for_outcome(Duration::from_secs(5))
            .expect("update finishes");
        assert!(matches!(outcome, SessionOutcome::Completed { .. }));
        assert_eq!(handle.confirmed_order(), vec![1, 2, 3, 4, 5, 6]);
        assert!(handle.with_session(|s| s.is_complete()));
        handle.shutdown();
        let sent = switch.join().unwrap();
        assert_eq!(sent, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn silent_switch_triggers_the_failure_policy() {
        let mut session = UpdateSession::new(plan(2), AckMode::RumAcks, 1);
        session.set_failure_policy(FailurePolicy::retry(Duration::from_millis(40), 1));
        let ctrl = TcpUpdateController::new("127.0.0.1:0".parse().unwrap(), session, 1);
        let handle = ctrl.start().unwrap();
        // A switch that swallows everything: never acks.
        let stream = TcpStream::connect(handle.local_addr).unwrap();
        let outcome = handle
            .wait_for_outcome(Duration::from_secs(5))
            .expect("the policy must abort the stalled update");
        match outcome {
            SessionOutcome::Aborted { report } => assert_eq!(report.failed, 1),
            other => panic!("expected abort, got {other:?}"),
        }
        drop(stream);
        handle.shutdown();
    }

    /// The reconciliation loop end to end over real sockets: a restart
    /// fault wipes the switch (pre-installed rule included), the reattach
    /// Hello triggers a resync, and the readback-verified table converges
    /// to exactly the desired store — the socket twin of the simulator's
    /// `resync_restores_wiped_rules_after_restart`.
    #[test]
    fn resync_restores_wiped_rules_over_real_sockets() {
        use crate::switch_host::{spawn_switch_with, SwitchHostOptions};
        use controller::{BackoffPolicy, ResyncConfig};
        use ofswitch::{FaultPlan, SwitchModel};

        let drop_all = FlowMod::add(OfMatch::wildcard_all(), 0, Vec::new()).with_cookie(1);
        let session = UpdateSession::new(plan(6), AckMode::NoWait, 16);
        let mut ctrl = TcpUpdateController::new("127.0.0.1:0".parse().unwrap(), session, 1);
        let reconciler = ctrl.enable_resync(ResyncConfig {
            backoff: BackoffPolicy::new(Duration::from_millis(20), Duration::from_millis(160)),
            max_rounds: 6,
            ack_mode: AckMode::Barriers { batch: 4 },
            window: 8,
            failure_policy: FailurePolicy::retry(Duration::from_millis(100), 2),
        });
        reconciler.store_mut().note_confirmed(0, &drop_all);
        let handle = ctrl.start().expect("controller starts");

        let sw = spawn_switch_with(
            handle.local_addr,
            SwitchModel::faithful(),
            SwitchHostOptions {
                faults: FaultPlan::seeded(7).with_restart_after(3),
                preinstall: vec![drop_all],
                reconnect_delay: Some(Duration::from_millis(50)),
                ..Default::default()
            },
        )
        .expect("switch connects");

        // The no-wait session settles immediately; the interesting part is
        // what happens after the restart.
        let outcome = handle
            .wait_for_outcome(Duration::from_secs(5))
            .expect("session settles");
        assert!(matches!(outcome, SessionOutcome::Completed { .. }));
        assert!(
            handle.wait_for_resync(1, Duration::from_secs(10)),
            "resync must reach a terminal state"
        );

        let (status, desired, last_round) = handle
            .with_reconciler(|r| {
                (
                    r.status(0).cloned().expect("resync ran"),
                    r.store().len(0),
                    r.trace(0).last().copied().expect("at least one round"),
                )
            })
            .expect("resync enabled");
        assert!(status.converged, "status: {status:?}");
        assert_eq!(status.final_diff, 0);
        assert!(
            status.rounds >= 2,
            "a wiped table cannot converge in one round"
        );
        // All 7 desired rules (6 planned + the preinstalled drop-all) were
        // wiped and re-issued; the final readback saw them all and no diff.
        assert_eq!(status.delta_mods, 7);
        assert_eq!(desired, 7);
        assert_eq!(last_round.actual, 7);
        assert_eq!(last_round.diff(), 0);

        sw.stop();
        handle.shutdown();
        let report = sw.join();
        assert_eq!(
            report.control_rules, desired,
            "table equals the desired store"
        );
    }

    #[test]
    #[should_panic(expected = "plan targets switch 1")]
    fn undersized_connection_count_is_rejected() {
        let mut p = UpdatePlan::new();
        p.add(
            1,
            1,
            FlowMod::add(OfMatch::wildcard_all(), 1, vec![Action::output(1)]),
        )
        .unwrap();
        let session = UpdateSession::new(p, AckMode::NoWait, 1);
        TcpUpdateController::new("127.0.0.1:0".parse().unwrap(), session, 1);
    }
}
