//! The TCP driver for the sans-IO [`UpdateSession`]: the paper's
//! consistent-update controller, running over real sockets.
//!
//! [`TcpUpdateController`] listens for its switch connections (usually the
//! RUM proxy impersonating the switches), assigns them [`ConnId`]s in accept
//! order, and — once every expected connection is up — feeds the session
//! [`SessionInput::Started`].  From then on it is a pure message pump: reader
//! threads decode OpenFlow frames into [`SessionInput::FromSwitch`], a timer
//! thread replays [`SessionInput::TimerFired`], and every
//! [`SessionEffect`] the session returns is executed mechanically (writes,
//! timer arming).  All consistency logic — dependency gating, the window,
//! acknowledgment modes, the failure policy — lives in the session, which is
//! the exact state machine the simulator's `controller::Controller` drives.

use crate::proxy::{reader_loop, writer_loop, Route};
use crate::timer::TimerQueue;
use controller::{ConnId, SessionEffect, SessionInput, SessionOutcome, UpdateSession};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

struct ControllerState {
    session: UpdateSession,
    routes: Vec<Route>,
    /// Reusable per-connection encode buffers: all sends of one drain are
    /// coalesced into a single chunk (→ one socket write) per connection.
    send_bufs: Vec<Vec<u8>>,
    /// Reusable effects buffer for session drains.
    effects: Vec<SessionEffect>,
    /// Which `ConnId` slots currently have a live connection.  A switch
    /// that drops its connection (e.g. the restart fault) frees its slot;
    /// the reconnect claims the lowest free slot again, so a single
    /// restarted switch reattaches under its original `ConnId`.
    attached: Vec<bool>,
    /// Per-slot attach generation, so a thread outliving its connection
    /// cannot tear down the slot's newer connection.
    generation: Vec<u64>,
    /// Total connections ever attached (reconnects included).
    total_accepted: usize,
    started: bool,
}

struct Inner {
    state: Mutex<ControllerState>,
    /// Notified whenever the session reaches a terminal outcome.
    done: Condvar,
    timers: TimerQueue,
    stop: AtomicBool,
    epoch: Instant,
}

impl Inner {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    /// Feeds one input under the lock and executes the returned effects.
    fn drive(self: &Arc<Self>, input: SessionInput) {
        self.drive_batch(std::iter::once(input));
    }

    /// Feeds a batch of inputs (e.g. every message decoded from one socket
    /// read) under a single lock acquisition, encoding all resulting sends
    /// into per-connection buffers flushed as one chunk each — one write
    /// per connection per drain, no per-effect allocation.
    fn drive_batch(self: &Arc<Self>, inputs: impl IntoIterator<Item = SessionInput>) {
        let now = self.now();
        let mut timers = Vec::new();
        let mut finished = false;
        {
            let mut st = self.state.lock().unwrap();
            let st = &mut *st;
            st.effects.clear();
            st.session.drain_into(now, inputs, &mut st.effects);
            for effect in st.effects.drain(..) {
                match effect {
                    SessionEffect::Send { conn, message } => {
                        let buf = &mut st.send_bufs[conn.index()];
                        let len_before = buf.len();
                        if message.encode_into(buf).is_err() {
                            buf.truncate(len_before);
                        }
                    }
                    SessionEffect::ArmTimer { delay, token } => {
                        timers.push((delay, token.raw()));
                    }
                    SessionEffect::Confirmed { .. } | SessionEffect::Rejected { .. } => {}
                    SessionEffect::Completed { .. } | SessionEffect::Aborted { .. } => {
                        finished = true;
                    }
                }
            }
            for (route, buf) in st.routes.iter_mut().zip(st.send_bufs.iter_mut()) {
                if !buf.is_empty() {
                    route.send_bytes(std::mem::take(buf));
                }
            }
        }
        let now = Instant::now();
        for (delay, token) in timers {
            self.timers.arm(now + delay, token);
        }
        if finished {
            self.done.notify_all();
        }
    }

    /// Starts the update once all expected connections are attached.
    fn maybe_start(self: &Arc<Self>) {
        let ready = {
            let mut st = self.state.lock().unwrap();
            if st.attached.iter().all(|&a| a) && !st.started {
                st.started = true;
                true
            } else {
                false
            }
        };
        if ready {
            self.drive(SessionInput::Started);
        }
    }
}

/// A consistent-update controller serving an [`UpdateSession`] over TCP.
///
/// Switch connections attach in accept order: the first accepted socket
/// becomes [`ConnId`] 0 (= plan `SwitchRef` 0) and so on, which matches how
/// the RUM proxy dials one upstream connection per switch as that switch
/// connects.  Deployments that need a deterministic mapping connect the
/// switches one at a time (see [`TcpControllerHandle::connections`]).
pub struct TcpUpdateController {
    listen_addr: SocketAddr,
    session: UpdateSession,
    n_connections: usize,
    epoch: Instant,
}

impl TcpUpdateController {
    /// Creates a controller executing `session` once `n_connections` switch
    /// connections have been accepted on `listen_addr`.
    ///
    /// # Panics
    ///
    /// Panics if the session's plan targets a `SwitchRef` outside
    /// `0..n_connections` — its modifications could never be sent.
    pub fn new(listen_addr: SocketAddr, session: UpdateSession, n_connections: usize) -> Self {
        Self::new_with_epoch(listen_addr, session, n_connections, Instant::now())
    }

    /// Like [`TcpUpdateController::new`] but measuring session time against
    /// an explicit `epoch` — share one `Instant` with the switch hosts so
    /// confirmation times and data-plane activation times are comparable.
    pub fn new_with_epoch(
        listen_addr: SocketAddr,
        session: UpdateSession,
        n_connections: usize,
        epoch: Instant,
    ) -> Self {
        let max_target = session.plan().targets().into_iter().max();
        if let Some(max) = max_target {
            assert!(
                max < n_connections,
                "plan targets switch {max} but only {n_connections} connections are expected"
            );
        }
        TcpUpdateController {
            listen_addr,
            session,
            n_connections,
            epoch,
        }
    }

    /// Binds the listener and starts accepting connections on background
    /// threads.  The update begins automatically once all expected
    /// connections are up.
    pub fn start(self) -> std::io::Result<TcpControllerHandle> {
        let listener = TcpListener::bind(self.listen_addr)?;
        let local_addr = listener.local_addr()?;
        let n_connections = self.n_connections;
        let inner = Arc::new(Inner {
            state: Mutex::new(ControllerState {
                session: self.session,
                routes: (0..n_connections)
                    .map(|_| Route::Pending(Vec::new()))
                    .collect(),
                send_bufs: (0..n_connections).map(|_| Vec::new()).collect(),
                effects: Vec::new(),
                attached: vec![false; n_connections],
                generation: vec![0; n_connections],
                total_accepted: 0,
                started: false,
            }),
            done: Condvar::new(),
            timers: TimerQueue::new(),
            stop: AtomicBool::new(false),
            epoch: self.epoch,
        });

        let timer_thread = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || {
                let fire_inner = Arc::clone(&inner);
                inner.timers.run(&inner.stop, move |token| {
                    fire_inner.drive(SessionInput::TimerFired {
                        token: controller::SessionTimerToken::from_raw(token),
                    });
                });
            })
        };

        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::spawn(move || {
            for incoming in listener.incoming() {
                if accept_inner.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = incoming else {
                    continue;
                };
                let (conn, generation) = {
                    let mut st = accept_inner.state.lock().unwrap();
                    // Claim the lowest free slot; a switch that dropped its
                    // connection (switch restart) reattaches under its
                    // original ConnId.  Surplus connections are dropped.
                    //
                    // Limitation: the mapping is positional, not
                    // authenticated — with several switches down at once,
                    // whoever re-dials first gets the lowest freed slot.
                    // Deployments that restart more than one switch
                    // concurrently need datapath-id re-identification from
                    // a features handshake, which this prototype (like the
                    // paper's) does not perform.
                    let Some(slot) = st.attached.iter().position(|&a| !a) else {
                        continue;
                    };
                    st.attached[slot] = true;
                    st.generation[slot] += 1;
                    st.total_accepted += 1;
                    (ConnId::new(slot), st.generation[slot])
                };
                attach_connection(&accept_inner, conn, generation, stream);
                accept_inner.maybe_start();
            }
        });

        Ok(TcpControllerHandle {
            local_addr,
            inner,
            accept_thread: Some(accept_thread),
            timer_thread: Some(timer_thread),
        })
    }
}

/// Wires one accepted switch connection: a writer thread draining the
/// conn's outbox and a reader thread feeding the session.  Either thread
/// ending detaches the slot so a restarted switch can reconnect under the
/// same `ConnId`; messages sent meanwhile buffer in the pending route and
/// flush on reattach.
fn attach_connection(inner: &Arc<Inner>, conn: ConnId, generation: u64, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let reader = stream.try_clone().expect("clone switch stream");
    let (tx, rx) = channel::<Vec<u8>>();
    inner.state.lock().unwrap().routes[conn.index()].connect(tx);
    // A failed write ends the writer loop gracefully; the session-level
    // failure policy (timeout → retry → abort) handles the silent switch.
    {
        let inner = Arc::clone(inner);
        std::thread::spawn(move || {
            writer_loop(rx, stream, None);
            detach_connection(&inner, conn, generation);
        });
    }
    {
        let inner = Arc::clone(inner);
        std::thread::spawn(move || {
            reader_loop(reader, |msgs| {
                inner.drive_batch(
                    msgs.drain(..)
                        .map(|message| SessionInput::FromSwitch { conn, message }),
                );
            });
            detach_connection(&inner, conn, generation);
        });
    }
}

/// Frees one slot after its connection died: resets the route to buffering
/// mode (the writer thread drains what was already queued, shuts the socket
/// down and exits — see `writer_loop`) and marks the slot free for a
/// reconnect.  Generation-guarded and idempotent.
fn detach_connection(inner: &Arc<Inner>, conn: ConnId, generation: u64) {
    let mut st = inner.state.lock().unwrap();
    if !st.attached[conn.index()] || st.generation[conn.index()] != generation {
        return;
    }
    st.attached[conn.index()] = false;
    st.routes[conn.index()] = Route::Pending(Vec::new());
}

/// A handle to a running TCP update controller.
pub struct TcpControllerHandle {
    /// The address the controller actually listens on (useful with port 0).
    pub local_addr: SocketAddr,
    inner: Arc<Inner>,
    accept_thread: Option<JoinHandle<()>>,
    timer_thread: Option<JoinHandle<()>>,
}

impl TcpControllerHandle {
    /// Number of switch connections accepted so far (reconnects included).
    pub fn connections(&self) -> usize {
        self.inner.state.lock().unwrap().total_accepted
    }

    /// Runs `f` against the session under the lock — the unified inspection
    /// surface (confirm counts, timestamps, outcome), identical to what the
    /// simulator driver exposes.
    pub fn with_session<R>(&self, f: impl FnOnce(&UpdateSession) -> R) -> R {
        f(&self.inner.state.lock().unwrap().session)
    }

    /// Every confirmation the session recorded, in order.
    pub fn confirmed_order(&self) -> Vec<u64> {
        self.with_session(|s| s.confirmed_order().to_vec())
    }

    /// Blocks until the session reaches a terminal outcome (completed or
    /// aborted) or `timeout` elapses; returns the outcome if there is one.
    pub fn wait_for_outcome(&self, timeout: Duration) -> Option<SessionOutcome> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock().unwrap();
        loop {
            if let Some(outcome) = st.session.outcome() {
                return Some(outcome.clone());
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.inner.done.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }

    /// Asks the accept and timer loops to stop and waits for them.
    /// Established connection threads terminate when their sockets close.
    pub fn shutdown(mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.timers.wake();
        // Unblock the accept loop with a throw-away connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if let Some(t) = self.timer_thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use controller::{AckMode, FailurePolicy, UpdatePlan};
    use openflow::messages::FlowMod;
    use openflow::{Action, OfCodec, OfMatch, OfMessage};
    use std::io::{Read, Write};
    use std::net::Ipv4Addr;

    fn plan(n: u64) -> UpdatePlan {
        let mut plan = UpdatePlan::new();
        for i in 0..n {
            plan.add(
                i + 1,
                0,
                FlowMod::add(
                    OfMatch::ipv4_pair(
                        Ipv4Addr::new(10, 0, 0, i as u8 + 1),
                        Ipv4Addr::new(10, 1, 0, 1),
                    ),
                    100,
                    vec![Action::output(2)],
                ),
            )
            .unwrap();
        }
        plan
    }

    /// A scripted in-process switch: acks every flow-mod with a RUM-style
    /// fine-grained acknowledgment, which is what the proxy would send.
    fn acking_switch(addr: SocketAddr) -> JoinHandle<Vec<u64>> {
        std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect to controller");
            stream
                .set_read_timeout(Some(Duration::from_secs(3)))
                .unwrap();
            let mut codec = OfCodec::new();
            let mut buf = [0u8; 2048];
            let mut acks = Vec::new();
            let mut seen = Vec::new();
            'conn: loop {
                let n = match stream.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => n,
                };
                codec.feed(&buf[..n]);
                acks.clear();
                while let Ok(Some(msg)) = codec.next_message() {
                    if let OfMessage::FlowMod { xid, .. } = msg {
                        seen.push(u64::from(xid));
                        OfMessage::rum_ack(xid)
                            .encode_into(&mut acks)
                            .expect("encodable ack");
                    }
                }
                // One write per read batch; a failed write means the
                // controller hung up — stop acking instead of panicking.
                if !acks.is_empty() && stream.write_all(&acks).is_err() {
                    break 'conn;
                }
            }
            seen
        })
    }

    #[test]
    fn session_completes_over_real_sockets() {
        let session = UpdateSession::new(plan(6), AckMode::RumAcks, 2);
        let ctrl = TcpUpdateController::new("127.0.0.1:0".parse().unwrap(), session, 1);
        let handle = ctrl.start().expect("controller starts");
        let switch = acking_switch(handle.local_addr);
        let outcome = handle
            .wait_for_outcome(Duration::from_secs(5))
            .expect("update finishes");
        assert!(matches!(outcome, SessionOutcome::Completed { .. }));
        assert_eq!(handle.confirmed_order(), vec![1, 2, 3, 4, 5, 6]);
        assert!(handle.with_session(|s| s.is_complete()));
        handle.shutdown();
        let sent = switch.join().unwrap();
        assert_eq!(sent, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn silent_switch_triggers_the_failure_policy() {
        let mut session = UpdateSession::new(plan(2), AckMode::RumAcks, 1);
        session.set_failure_policy(FailurePolicy::retry(Duration::from_millis(40), 1));
        let ctrl = TcpUpdateController::new("127.0.0.1:0".parse().unwrap(), session, 1);
        let handle = ctrl.start().unwrap();
        // A switch that swallows everything: never acks.
        let stream = TcpStream::connect(handle.local_addr).unwrap();
        let outcome = handle
            .wait_for_outcome(Duration::from_secs(5))
            .expect("the policy must abort the stalled update");
        match outcome {
            SessionOutcome::Aborted { report } => assert_eq!(report.failed, 1),
            other => panic!("expected abort, got {other:?}"),
        }
        drop(stream);
        handle.shutdown();
    }

    #[test]
    #[should_panic(expected = "plan targets switch 1")]
    fn undersized_connection_count_is_rejected() {
        let mut p = UpdatePlan::new();
        p.add(
            1,
            1,
            FlowMod::add(OfMatch::wildcard_all(), 1, vec![Action::output(1)]),
        )
        .unwrap();
        let session = UpdateSession::new(p, AckMode::NoWait, 1);
        TcpUpdateController::new("127.0.0.1:0".parse().unwrap(), session, 1);
    }
}
