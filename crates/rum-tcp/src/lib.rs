//! TCP proxy deployment of RUM — the paper's prototype form (§4).
//!
//! *"We implement a RUM prototype that works as a TCP proxy between the
//! switches and the controller.  The switches connect to the proxy as if it
//! was a controller, and the proxy then connects to a real controller using
//! multiple connections, impersonating the switches."*
//!
//! This crate is a thin **driver** for the deployment-agnostic
//! [`rum::RumEngine`]: the same sans-IO core that powers the simulator
//! experiments runs here over real sockets.  The crate splits cleanly in
//! two:
//!
//! * [`relay::EngineRelay`] — the sans-IO adapter: takes decoded OpenFlow
//!   messages plus wall-clock time, returns endpoint-tagged messages, timer
//!   requests and confirmations.  Fully unit-testable without sockets.
//! * [`proxy::RumTcpProxy`] — the socket machinery: listener, one upstream
//!   controller connection per accepted switch, reader/writer threads with
//!   [`openflow::OfCodec`] framing, and a timer thread feeding engine
//!   timeouts back in.
//!
//! Since the consistent-update controller became sans-IO too
//! (`controller::UpdateSession`), this crate also completes the paper's
//! prototype chain on real sockets:
//!
//! * [`controller::TcpUpdateController`] — the TCP driver of the update
//!   session: executes a dependency-ordered plan over accepted switch
//!   connections, with the same window/ack-mode/failure-policy logic as the
//!   simulator controller.
//! * [`switch_host`] — `ofswitch` flow tables and behaviour models hosted
//!   behind a TCP client, emulating buggy (early barrier reply) or faithful
//!   switches.
//!
//! Every acknowledgment technique the engine supports (barriers, static
//! timeout, adaptive delay, sequential and general probing) is therefore
//! available over TCP by construction — select one with
//! [`rum::RumBuilder::technique`].  The probing techniques additionally need
//! port maps describing the physical testbed (see
//! [`rum::RumBuilder::port_map`]).
//!
//! The crate is self-contained and synchronous: std networking plus a
//! hand-rolled `poll(2)` reactor (the `reactor` module, the only one allowed to
//! touch FFI).  The sharded proxy serves 1,000 switches from a handful of
//! event-loop workers; the original thread-per-connection proxy survives as
//! [`legacy::LegacyRumTcpProxy`] — the conformance oracle and the honest
//! in-run baseline the sharded proxy's speedup is measured against.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod legacy;
pub mod mux_controller;
pub mod proxy;
pub(crate) mod reactor;
pub mod relay;
pub mod switch_host;
mod timer;

pub use controller::{TcpControllerHandle, TcpUpdateController};
pub use legacy::{LegacyProxyHandle, LegacyRumTcpProxy};
pub use mux_controller::{TcpMuxController, TcpMuxHandle};
pub use proxy::{wait_for, ProxyConfig, ProxyCounters, ProxyHandle, RumTcpProxy};
pub use relay::{Endpoint, EngineRelay, RelayEffects};
pub use switch_host::{
    spawn_switch, spawn_switch_with, Fabric, SocketSwitchHandle, SwitchCounters, SwitchHostOptions,
    SwitchReport,
};
