//! TCP proxy deployment of RUM — the paper's prototype form (§4).
//!
//! *"We implement a RUM prototype that works as a TCP proxy between the
//! switches and the controller.  The switches connect to the proxy as if it
//! was a controller, and the proxy then connects to a real controller using
//! multiple connections, impersonating the switches."*
//!
//! This crate provides that deployment shape on real sockets, built from the
//! same OpenFlow codec as the rest of the workspace:
//!
//! * [`relay::MessageRelay`] — the per-connection message-level policy.  The
//!   shipped policy is the control-plane "delayed barrier acknowledgment"
//!   technique (§3.1): barrier replies from the switch are withheld for a
//!   configurable bound so the controller never hears "done" before the
//!   switch's data plane has had time to catch up.  The data-plane probing
//!   techniques need visibility into neighbouring switches and are exercised
//!   in the simulator (`rum::proxy`); the TCP layer is deliberately
//!   policy-pluggable so they can be slotted in against a real testbed.
//! * [`proxy::RumTcpProxy`] — the listener/relay machinery: one upstream
//!   controller connection per accepted switch, one thread per direction,
//!   [`openflow::OfCodec`] framing on both sides.
//!
//! The crate is self-contained and synchronous (std networking + threads):
//! the proxy handles a handful of switch connections, each with modest
//! message rates, so per-connection threads are the simplest correct design —
//! the same choice the POX prototype made.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proxy;
pub mod relay;

pub use proxy::{ProxyConfig, ProxyHandle, RumTcpProxy};
pub use relay::{DelayedBarrierRelay, MessageRelay, PassthroughRelay, RelayVerdict};
