//! A socket-hosted OpenFlow switch: the shared `ofswitch::Behavior` engine
//! served over a real TCP connection.
//!
//! This is the second driver of the same behaviour state machine the
//! simulator node (`simnet::OpenFlowSwitch`) runs: flow-table semantics,
//! the lagging data plane, barrier modes and the seedable [`FaultPlan`] all
//! live in the engine; this module only moves bytes.  The serve loop:
//!
//! * decodes OpenFlow frames and feeds flow-mods/barriers into the engine;
//! * executes [`BehaviorAction`]s — replies carry an earliest-send time
//!   (control-plane busy time, faithful-barrier data-plane horizon), so the
//!   loop holds them in a small deadline heap instead of sleeping on the
//!   socket;
//! * wakes for the engine's `next_deadline` (data-plane syncs, in-flight
//!   TCAM batches) so activations happen at model time, not read time.
//!
//! For the probing techniques, switch hosts can additionally be wired into
//! an in-process [`Fabric`]: a registry of (switch, port) → (switch, port)
//! links emulating the physical cables of the paper's testbed.  A RUM probe
//! then takes the real path — `PacketOut` to a neighbour, data-plane lookup
//! at each hop (against the *lagging* table), and a `PacketIn` from
//! whichever switch's catch rule fires — all over genuine sockets on the
//! control side.

use crate::reactor::{poll_fds, PollFd, Waker};
use ofswitch::{Behavior, BehaviorAction, FaultPlan, GroundTruth, SwitchModel};
use openflow::constants::{packet_in_reason, port as of_port};
use openflow::messages::{FlowMod, PacketIn, PacketOut, StatsRequest};
use openflow::{Action, OfCodec, OfMessage, PacketHeader, PortNo};
use std::collections::{BinaryHeap, HashMap};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Live message counters of a hosted switch.
#[derive(Debug, Default)]
pub struct SwitchCounters {
    /// Flow modifications accepted by the control plane.
    pub flow_mods: AtomicU64,
    /// Barrier requests answered.
    pub barriers: AtomicU64,
    /// Echo requests answered.
    pub echos: AtomicU64,
    /// Modifications rejected with an error.
    pub errors: AtomicU64,
}

/// Final state of a hosted switch after its connection closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchReport {
    /// Rules in the control-plane table at disconnect.
    pub control_rules: usize,
    /// Rules visible in the (emulated) data-plane table at disconnect.
    pub data_rules: usize,
    /// The full control-plane table at disconnect, in installation order —
    /// lets a harness check table *contents* (not just counts) against a
    /// desired state, e.g. after a resync.
    pub control_entries: Vec<ofswitch::FlowEntry>,
    /// The data-plane timeline (activations, removals, wedged rules) — the
    /// ground truth confirmations are classified against.
    pub truth: GroundTruth,
}

/// A handle to a switch served on a background thread.
pub struct SocketSwitchHandle {
    counters: Arc<SwitchCounters>,
    stop: Arc<AtomicBool>,
    thread: JoinHandle<SwitchReport>,
}

impl SocketSwitchHandle {
    /// Live counters (updated by the serving thread).
    pub fn counters(&self) -> &SwitchCounters {
        &self.counters
    }

    /// Asks the serve loop to exit at its next poll (≤ one poll interval);
    /// [`SocketSwitchHandle::join`] then returns promptly even though the
    /// peer still holds the connection open.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Waits for the connection to close and returns the final tables and
    /// ground truth.
    pub fn join(self) -> SwitchReport {
        self.thread.join().expect("switch thread panicked")
    }
}

// ---------------------------------------------------------------------
// The data-plane fabric
// ---------------------------------------------------------------------

/// An in-process emulation of the physical links between socket-hosted
/// switches: `(switch index, port) → (switch index, port)`.  Packets put on
/// a link appear in the peer switch's inbox and go through its (lagging)
/// data-plane table, exactly like the simulator topology — this is what
/// lets RUM's probe packets travel switch-to-switch in the TCP deployment.
#[derive(Clone, Default)]
pub struct Fabric {
    inner: Arc<FabricInner>,
}

#[derive(Default)]
struct FabricInner {
    links: Mutex<HashMap<(usize, PortNo), (usize, PortNo)>>,
    inboxes: Mutex<HashMap<usize, Sender<(PacketHeader, PortNo)>>>,
    /// Per-switch wake-ups: a serve loop blocked in `poll` on its socket is
    /// interrupted the instant a packet lands in its inbox, so probe hops
    /// are event-driven instead of bounded below by a poll quantum.
    wakers: Mutex<HashMap<usize, Arc<Waker>>>,
}

impl Fabric {
    /// An empty fabric.
    pub fn new() -> Self {
        Fabric::default()
    }

    /// Adds a bidirectional link between `(a, port_a)` and `(b, port_b)`.
    pub fn link(&self, a: usize, port_a: PortNo, b: usize, port_b: PortNo) {
        let mut links = self.inner.links.lock().unwrap();
        links.insert((a, port_a), (b, port_b));
        links.insert((b, port_b), (a, port_a));
    }

    /// The linked ports of switch `idx` (for FLOOD handling).
    pub fn ports_of(&self, idx: usize) -> Vec<PortNo> {
        let links = self.inner.links.lock().unwrap();
        let mut ports: Vec<PortNo> = links
            .keys()
            .filter(|(sw, _)| *sw == idx)
            .map(|(_, p)| *p)
            .collect();
        ports.sort_unstable();
        ports
    }

    fn attach(&self, idx: usize) -> Receiver<(PacketHeader, PortNo)> {
        let (tx, rx) = channel();
        self.inner.inboxes.lock().unwrap().insert(idx, tx);
        rx
    }

    /// Registers the waker a serve loop polls alongside its socket, so
    /// [`Fabric::send`] can interrupt the peer's sleep the moment a packet
    /// arrives.
    fn register_waker(&self, idx: usize, waker: Arc<Waker>) {
        self.inner.wakers.lock().unwrap().insert(idx, waker);
    }

    /// Puts `header` on switch `from`'s `out_port`; it arrives at the peer
    /// (if the port is linked and the peer is attached) and wakes the
    /// peer's serve loop immediately.
    fn send(&self, from: usize, out_port: PortNo, header: PacketHeader) {
        let Some(&(peer, peer_port)) = self.inner.links.lock().unwrap().get(&(from, out_port))
        else {
            return;
        };
        if let Some(tx) = self.inner.inboxes.lock().unwrap().get(&peer) {
            let _ = tx.send((header, peer_port));
        }
        if let Some(waker) = self.inner.wakers.lock().unwrap().get(&peer) {
            waker.wake();
        }
    }
}

/// Configuration of one socket-hosted switch beyond its timing model.
#[derive(Clone)]
pub struct SwitchHostOptions {
    /// Fault plan driven by the shared behaviour engine.
    pub faults: FaultPlan,
    /// Epoch all behaviour times are measured against.  Share one `Instant`
    /// across the controller and every switch of an experiment so
    /// confirmation times and data-plane activation times are comparable.
    pub epoch: Option<Instant>,
    /// Data-plane wiring: the fabric and this switch's index in it.
    pub fabric: Option<(Fabric, usize)>,
    /// Rules installed in both tables before serving (the paper pre-installs
    /// drop-all and initial-path rules the same way).
    pub preinstall: Vec<FlowMod>,
    /// After the restart fault tears the connection down, how long the
    /// switch stays down before it re-dials the same address, reattaches
    /// the behaviour engine and replays the OpenFlow handshake.  `None`
    /// (the default) leaves it down forever — the pre-reconnect behaviour.
    pub reconnect_delay: Option<Duration>,
}

impl Default for SwitchHostOptions {
    fn default() -> Self {
        SwitchHostOptions {
            faults: FaultPlan::none(),
            epoch: None,
            fabric: None,
            preinstall: Vec::new(),
            reconnect_delay: None,
        }
    }
}

/// Connects to `addr` (the RUM proxy or a controller) and serves a
/// fault-free OpenFlow switch with the given behaviour model until the peer
/// closes the connection.
pub fn spawn_switch(addr: SocketAddr, model: SwitchModel) -> std::io::Result<SocketSwitchHandle> {
    spawn_switch_with(addr, model, SwitchHostOptions::default())
}

/// Connects to `addr` and serves a switch with explicit options (fault
/// plan, shared epoch, data-plane fabric, pre-installed rules).
pub fn spawn_switch_with(
    addr: SocketAddr,
    model: SwitchModel,
    options: SwitchHostOptions,
) -> std::io::Result<SocketSwitchHandle> {
    let stream = TcpStream::connect(addr)?;
    let counters = Arc::new(SwitchCounters::default());
    let stop = Arc::new(AtomicBool::new(false));
    let thread = {
        let counters = Arc::clone(&counters);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || run(stream, addr, model, options, &counters, &stop))
    };
    Ok(SocketSwitchHandle {
        counters,
        stop,
        thread,
    })
}

/// A reply the behaviour engine scheduled for the future.
struct DeferredReply {
    at: Duration,
    seq: u64,
    message: OfMessage,
}

impl PartialEq for DeferredReply {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for DeferredReply {}
impl PartialOrd for DeferredReply {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DeferredReply {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on (at, seq).
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Host {
    behavior: Behavior,
    epoch: Instant,
    fabric: Option<(Fabric, usize)>,
    fabric_rx: Option<Receiver<(PacketHeader, PortNo)>>,
    /// Polled alongside the socket when a fabric is wired: `Fabric::send`
    /// into this switch's inbox interrupts the serve loop's sleep, so hop
    /// delivery latency is wake-driven, not quantised by a poll interval.
    fabric_waker: Option<Arc<Waker>>,
    deferred: BinaryHeap<DeferredReply>,
    next_defer_seq: u64,
    actions: Vec<BehaviorAction>,
    reply_buf: Vec<u8>,
    disconnect: bool,
    /// True between our reattach `Hello` going out and the peer's `Hello`
    /// coming back; that reply completes the handshake and must not be
    /// answered with yet another `Hello` (the two sides would ping-pong).
    hello_pending: bool,
}

impl Host {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    /// Queues a fresh switch-side handshake `Hello` for the next
    /// connection (used when a re-dial attempt died before delivering the
    /// one the reattach queued).
    fn queue_hello(&mut self) {
        let seq = self.next_defer_seq;
        self.next_defer_seq += 1;
        self.deferred.push(DeferredReply {
            at: self.now(),
            seq,
            message: OfMessage::Hello { xid: 0 },
        });
    }

    /// Drains engine actions into the deferred-reply heap.
    fn absorb_actions(&mut self) {
        for action in std::mem::take(&mut self.actions) {
            match action {
                BehaviorAction::Reply { at, message } => {
                    let seq = self.next_defer_seq;
                    self.next_defer_seq += 1;
                    self.deferred.push(DeferredReply { at, seq, message });
                }
                BehaviorAction::Activated { .. } | BehaviorAction::Deactivated { .. } => {
                    // Recorded in the engine's ground truth; nothing to send.
                }
                BehaviorAction::Restarted { at } => {
                    // Replies the serial control plane emitted *before* the
                    // reboot instant logically left the switch already —
                    // they sit in the deferred heap only because wall time
                    // lags model time.  Flush them ahead of the close (the
                    // simulator delivers them the same way); anything later
                    // dies with the reboot.
                    while self.deferred.peek().is_some_and(|r| r.at <= at) {
                        let r = self.deferred.pop().expect("peeked");
                        let _ = r.message.encode_into(&mut self.reply_buf);
                    }
                    self.deferred.clear();
                    self.disconnect = true;
                }
            }
        }
    }

    fn advance(&mut self) {
        let now = self.now();
        let mut actions = std::mem::take(&mut self.actions);
        self.behavior.advance(now, &mut actions);
        self.actions = actions;
        self.absorb_actions();
    }

    /// Encodes every due deferred reply into `reply_buf`, in schedule order.
    fn flush_due_replies(&mut self) {
        let now = self.now();
        while self.deferred.peek().is_some_and(|r| r.at <= now) {
            let r = self.deferred.pop().expect("peeked");
            let _ = r.message.encode_into(&mut self.reply_buf);
        }
    }

    /// How long the serve loop may sleep before something needs attention.
    /// Fabric packets no longer bound this: they arrive through the waker,
    /// so the only deadlines are the engine's and the deferred replies'.
    fn poll_timeout(&self) -> Duration {
        let mut horizon: Option<Duration> = self.behavior.next_deadline();
        if let Some(r) = self.deferred.peek() {
            horizon = Some(horizon.map_or(r.at, |h| h.min(r.at)));
        }
        let cap = Duration::from_millis(50);
        match horizon {
            Some(at) => at
                .saturating_sub(self.now())
                .clamp(Duration::from_micros(500), cap),
            None => cap,
        }
    }

    fn emit_packet_in(&mut self, header: &PacketHeader, in_port: PortNo, reason: u8) {
        let data = header.to_bytes();
        let body = PacketIn {
            buffer_id: openflow::constants::NO_BUFFER,
            total_len: data.len() as u16,
            in_port,
            reason,
            data,
        };
        let _ = OfMessage::PacketIn { xid: 0, body }.encode_into(&mut self.reply_buf);
    }

    /// Sends `header` out of `port`, interpreting OpenFlow special ports.
    fn output(&mut self, header: &PacketHeader, in_port: PortNo, port: PortNo) {
        match port {
            of_port::CONTROLLER => {
                self.emit_packet_in(header, in_port, packet_in_reason::ACTION);
            }
            of_port::IN_PORT => {
                if let Some((fabric, idx)) = &self.fabric {
                    fabric.send(*idx, in_port, *header);
                }
            }
            of_port::FLOOD | of_port::ALL => {
                if let Some((fabric, idx)) = self.fabric.clone() {
                    for p in fabric.ports_of(idx) {
                        if p != in_port {
                            fabric.send(idx, p, *header);
                        }
                    }
                }
            }
            of_port::TABLE | of_port::NORMAL | of_port::LOCAL | of_port::NONE => {}
            physical => {
                if let Some((fabric, idx)) = &self.fabric {
                    fabric.send(*idx, physical, *header);
                }
            }
        }
    }

    /// A packet arriving on the data plane (from the fabric or OFPP_TABLE):
    /// look it up in the lagging data-plane table and forward.
    fn forward_via_table(&mut self, header: PacketHeader, in_port: PortNo) {
        let now = self.now();
        let verdict = self.behavior.classify_packet(now, &header, in_port, 64);
        if !verdict.matched {
            return; // no miss_send_len plumbing on the TCP host
        }
        let rewritten = verdict.rewritten;
        for port in verdict.outputs {
            self.output(&rewritten, in_port, port);
        }
    }

    /// Executes a `PacketOut` from the controller/proxy (probe injection).
    fn execute_packet_out(&mut self, po: PacketOut) {
        let Ok(header) = PacketHeader::from_bytes(&po.data) else {
            return;
        };
        let now = self.now();
        let cost = self.behavior.model().packet_out_time;
        self.behavior.consume_cpu(now, cost);
        let (rewritten, outputs) = Action::apply_list(&po.actions, &header);
        let in_port = if po.in_port == of_port::NONE {
            0
        } else {
            po.in_port
        };
        for port in outputs {
            if port == of_port::TABLE {
                self.forward_via_table(rewritten, in_port);
            } else {
                self.output(&rewritten, in_port, port);
            }
        }
    }
}

/// Sleeps for `delay` in small slices, returning early when `stop` is set.
fn interruptible_sleep(delay: Duration, stop: &AtomicBool) {
    let deadline = Instant::now() + delay;
    while Instant::now() < deadline && !stop.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(2).min(deadline - Instant::now()));
    }
}

/// The switch's whole life: serve one connection until it ends; when the
/// ending was the restart fault and a reconnect delay is configured, stay
/// down for that long, reattach the behaviour engine (which replays the
/// switch-side `Hello`), re-dial the same address and keep serving — the
/// same switch identity, rebooted with empty tables.
fn run(
    first_stream: TcpStream,
    addr: SocketAddr,
    model: SwitchModel,
    options: SwitchHostOptions,
    counters: &SwitchCounters,
    stop: &AtomicBool,
) -> SwitchReport {
    let epoch = options.epoch.unwrap_or_else(Instant::now);
    let mut behavior = Behavior::new(model, options.faults.clone());
    for fm in &options.preinstall {
        behavior.preinstall(fm);
    }
    let fabric_rx = options
        .fabric
        .as_ref()
        .map(|(fabric, idx)| fabric.attach(*idx));
    let fabric_waker = options.fabric.as_ref().and_then(|(fabric, idx)| {
        let waker = Arc::new(Waker::new().ok()?);
        fabric.register_waker(*idx, Arc::clone(&waker));
        Some(waker)
    });
    let mut host = Host {
        behavior,
        epoch,
        fabric: options.fabric.clone(),
        fabric_rx,
        fabric_waker,
        deferred: BinaryHeap::new(),
        next_defer_seq: 0,
        actions: Vec::new(),
        reply_buf: Vec::new(),
        disconnect: false,
        hello_pending: false,
    };

    let mut stream = Some(first_stream);
    // Consecutive post-reboot connections that died before a single message
    // was exchanged: the listener accepted and immediately dropped us
    // because the old connection's slot was not freed yet.  Bounded so a
    // peer that is genuinely gone ends the loop (~3 s of attempts).
    let mut barren_redials: u32 = 0;
    while let Some(conn) = stream.take() {
        let got_any = serve_conn(conn, &mut host, counters, stop);
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if host.disconnect {
            // The restart fault: stay down for the reboot, reattach the
            // engine (queueing the handshake Hello for the next
            // connection), then re-dial below.
            let Some(delay) = options.reconnect_delay else {
                break;
            };
            host.disconnect = false;
            barren_redials = 0;
            interruptible_sleep(delay, stop);
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let mut actions = std::mem::take(&mut host.actions);
            host.behavior.reattach(host.now(), &mut actions);
            host.actions = actions;
            host.absorb_actions();
        } else if host.behavior.counters().reattaches > 0 && !got_any && barren_redials < 300 {
            // A freshly re-dialed connection died silently: the peer's
            // accept loop found no free slot (the old pair's teardown had
            // not finished) and dropped us.  Queue a fresh handshake Hello
            // — the previous one went into the dead socket — and dial
            // again shortly.
            barren_redials += 1;
            interruptible_sleep(Duration::from_millis(10), stop);
            if stop.load(Ordering::SeqCst) {
                break;
            }
            host.queue_hello();
        } else {
            break;
        }
        host.hello_pending = true;
        while !stop.load(Ordering::SeqCst) {
            match TcpStream::connect(addr) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(_) => interruptible_sleep(Duration::from_millis(10), stop),
            }
        }
    }
    // Settle the data plane so the report reflects everything the control
    // plane accepted (minus wedged rules, which never apply by design) —
    // including batches whose synchronisation was burst-delayed far beyond
    // the nominal worst case.
    if !host.disconnect {
        let mut actions = Vec::new();
        host.behavior.settle(host.now(), &mut actions);
    }
    SwitchReport {
        control_rules: host.behavior.control_table().len(),
        data_rules: host.behavior.data_table().len(),
        control_entries: host.behavior.control_table().entries().cloned().collect(),
        truth: host.behavior.ground_truth().clone(),
    }
}

/// Serves one TCP connection of the switch's life; returns when the peer
/// hangs up, `stop` is set, or the restart fault fires (`host.disconnect`).
/// The return value is true when at least one OpenFlow message arrived on
/// this connection — false distinguishes an accepted-then-dropped dial
/// (peer had no free slot yet) from a served connection that later died.
fn serve_conn(
    mut stream: TcpStream,
    host: &mut Host,
    counters: &SwitchCounters,
    stop: &AtomicBool,
) -> bool {
    let _ = stream.set_nodelay(true);
    // Safety net only: the readiness gating below means reads should not
    // block, but a spurious wakeup must never stall the engine's deadlines.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut codec = OfCodec::new();
    let mut buf = [0u8; 4096];
    let mut msgs: Vec<OfMessage> = Vec::new();
    let mut pfds: Vec<PollFd> = Vec::with_capacity(2);
    let mut got_any = false;

    'serve: loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // 1. Let the engine catch up (syncs, TCAM batches, barrier horizons).
        host.advance();

        // 2. Drain the data-plane inbox (probe packets hopping the fabric).
        if let Some(rx) = host.fabric_rx.take() {
            while let Ok((header, in_port)) = rx.try_recv() {
                host.forward_via_table(header, in_port);
            }
            host.fabric_rx = Some(rx);
        }

        // 3. Ship every reply whose schedule time has come, as one write.
        host.flush_due_replies();
        if !host.reply_buf.is_empty() {
            let flushed = stream.write_all(&host.reply_buf).is_ok();
            host.reply_buf.clear();
            if !flushed {
                break 'serve;
            }
        }
        if host.disconnect {
            // The restart fault: tear the control channel down.  The caller
            // decides whether the switch comes back.
            let _ = stream.shutdown(std::net::Shutdown::Both);
            break 'serve;
        }

        // 4. Sleep until socket bytes arrive, a fabric packet wakes us, or
        //    the next engine deadline passes — whichever comes first.
        let timeout = host.poll_timeout();
        let timeout_ms = timeout.as_micros().div_ceil(1000) as i32;
        pfds.clear();
        pfds.push(PollFd::new(stream.as_raw_fd(), true, false));
        if let Some(waker) = &host.fabric_waker {
            pfds.push(PollFd::new(waker.fd(), true, false));
        }
        poll_fds(&mut pfds, timeout_ms);
        if pfds.len() > 1 && pfds[1].readable() {
            if let Some(waker) = &host.fabric_waker {
                waker.drain();
            }
        }
        if !pfds[0].readable() {
            // Deadline or fabric wake-up: the loop top drains the inbox
            // and flushes due replies.
            continue;
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        codec.feed(&buf[..n]);
        msgs.clear();
        let framing_ok = codec.drain_messages_into(&mut msgs).is_ok();
        got_any |= !msgs.is_empty();
        for msg in msgs.drain(..) {
            let now = host.now();
            match msg {
                OfMessage::FlowMod { xid, body } => {
                    let mut actions = std::mem::take(&mut host.actions);
                    host.behavior.on_flow_mod(now, xid, body, &mut actions);
                    host.actions = actions;
                    host.absorb_actions();
                }
                OfMessage::BarrierRequest { xid } => {
                    let mut actions = std::mem::take(&mut host.actions);
                    host.behavior.on_barrier(now, xid, &mut actions);
                    host.actions = actions;
                    host.absorb_actions();
                }
                OfMessage::StatsRequest {
                    xid,
                    body: StatsRequest::Flow { ref match_, .. },
                } => {
                    let mut actions = std::mem::take(&mut host.actions);
                    host.behavior.on_flow_stats(now, xid, match_, &mut actions);
                    host.actions = actions;
                    host.absorb_actions();
                }
                OfMessage::EchoRequest { xid, data } => {
                    counters.echos.fetch_add(1, Ordering::SeqCst);
                    let _ = OfMessage::EchoReply { xid, data }.encode_into(&mut host.reply_buf);
                }
                OfMessage::Hello { xid } => {
                    // A Hello answering our reattach Hello completes the
                    // handshake; answering it again would ping-pong forever.
                    if host.hello_pending {
                        host.hello_pending = false;
                    } else {
                        let _ = OfMessage::Hello { xid }.encode_into(&mut host.reply_buf);
                    }
                }
                OfMessage::PacketOut { body, .. } => host.execute_packet_out(body),
                _ => {}
            }
        }
        counters
            .flow_mods
            .store(host.behavior.counters().flow_mods, Ordering::SeqCst);
        counters
            .barriers
            .store(host.behavior.counters().barriers, Ordering::SeqCst);
        counters
            .errors
            .store(host.behavior.counters().errors, Ordering::SeqCst);
        if !framing_ok {
            break;
        }
    }
    got_any
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::messages::FlowMod;
    use openflow::{Action, OfMatch};
    use std::net::TcpListener;

    /// A buggy-model switch answers a barrier long before its emulated data
    /// plane would have activated the preceding modification.
    #[test]
    fn early_reply_switch_answers_barriers_instantly() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = spawn_switch(addr, SwitchModel::hp5406zl()).unwrap();
        let (mut peer, _) = listener.accept().unwrap();
        peer.set_read_timeout(Some(Duration::from_secs(3))).unwrap();

        let fm = OfMessage::FlowMod {
            xid: 1,
            body: FlowMod::add(OfMatch::wildcard_all(), 10, vec![Action::output(1)])
                .with_cookie(77),
        };
        let started = Instant::now();
        // The flow-mod and the barrier go out as one batched write, the way
        // the proxy's writer coalesces a drain burst.
        let mut wire = Vec::new();
        fm.encode_into(&mut wire).unwrap();
        OfMessage::BarrierRequest { xid: 2 }
            .encode_into(&mut wire)
            .unwrap();
        peer.write_all(&wire).unwrap();

        let mut codec = OfCodec::new();
        let mut buf = [0u8; 512];
        let reply_at = loop {
            let n = peer.read(&mut buf).unwrap();
            codec.feed(&buf[..n]);
            if let Ok(Some(OfMessage::BarrierReply { xid: 2 })) = codec.next_message() {
                break started.elapsed();
            }
        };
        // The HP model's data plane lags by >= 100 ms; the buggy barrier
        // reply must arrive way earlier.
        assert!(
            reply_at < Duration::from_millis(90),
            "buggy switch replied after {reply_at:?}"
        );
        assert_eq!(handle.counters().flow_mods.load(Ordering::SeqCst), 1);
        assert_eq!(handle.counters().barriers.load(Ordering::SeqCst), 1);
        drop(peer);
        let report = handle.join();
        assert_eq!(report.control_rules, 1);
        // The ground truth shows the rule activating after the early reply.
        let act = report.truth.first_activation(77).expect("rule activated");
        assert!(act > reply_at, "activation {act:?} vs barrier {reply_at:?}");
    }

    /// Two fabric-linked switches forward a PacketOut-injected packet from
    /// one data plane to the other, where a to-controller rule punts it back
    /// over TCP — the probe path of the probing techniques.
    #[test]
    fn fabric_carries_packets_between_switch_hosts() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let fabric = Fabric::new();
        fabric.link(0, 2, 1, 1);

        let epoch = Instant::now();
        // Switch 0 forwards everything out port 2; switch 1 punts everything
        // to the controller.
        let a = spawn_switch_with(
            addr,
            SwitchModel::faithful(),
            SwitchHostOptions {
                fabric: Some((fabric.clone(), 0)),
                epoch: Some(epoch),
                preinstall: vec![
                    FlowMod::add(OfMatch::wildcard_all(), 1, vec![Action::output(2)])
                        .with_cookie(1),
                ],
                ..Default::default()
            },
        )
        .unwrap();
        let (mut peer_a, _) = listener.accept().unwrap();
        let b = spawn_switch_with(
            addr,
            SwitchModel::faithful(),
            SwitchHostOptions {
                fabric: Some((fabric.clone(), 1)),
                epoch: Some(epoch),
                preinstall: vec![FlowMod::add(
                    OfMatch::wildcard_all(),
                    1,
                    vec![Action::to_controller()],
                )
                .with_cookie(2)],
                ..Default::default()
            },
        )
        .unwrap();
        let (mut peer_b, _) = listener.accept().unwrap();
        peer_b
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();

        // Inject a packet at switch 0 via OFPP_TABLE: its table sends it out
        // port 2, the fabric carries it to switch 1 port 1, whose rule punts
        // it to the controller — i.e. back to us on switch 1's socket.
        let header = PacketHeader::ipv4_udp(
            openflow::MacAddr::from_id(1),
            openflow::MacAddr::from_id(2),
            std::net::Ipv4Addr::new(10, 0, 0, 1),
            std::net::Ipv4Addr::new(10, 0, 0, 2),
            7,
            8,
        );
        let po = OfMessage::PacketOut {
            xid: 5,
            body: PacketOut::via_table(header.to_bytes()),
        };
        let mut wire = Vec::new();
        po.encode_into(&mut wire).unwrap();
        peer_a.write_all(&wire).unwrap();

        let mut codec = OfCodec::new();
        let mut buf = [0u8; 2048];
        let mut got = None;
        while got.is_none() {
            let n = match peer_b.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => n,
            };
            codec.feed(&buf[..n]);
            while let Ok(Some(msg)) = codec.next_message() {
                if let OfMessage::PacketIn { body, .. } = msg {
                    got = Some(body);
                }
            }
        }
        let packet_in = got.expect("PacketIn from switch 1");
        assert_eq!(packet_in.in_port, 1, "arrived on switch 1's port 1");
        let punted = PacketHeader::from_bytes(&packet_in.data).unwrap();
        assert_eq!(punted.nw_src, header.nw_src);

        drop(peer_a);
        drop(peer_b);
        let _ = a.join();
        let _ = b.join();
    }

    /// Fabric hop delivery is wake-driven: the median latency of a packet
    /// crossing a two-hop chain (inject at switch 0, forward through
    /// switch 1, punt to the controller from switch 2) sits below the old
    /// 2 ms-per-hop poll quantum.  Before the fabric waker, every hop
    /// waited out a slice of the peer's fixed 2 ms read timeout, putting a
    /// ~2 ms floor under the p50 of this chain.
    #[test]
    fn fabric_hops_are_event_driven_not_poll_quantised() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let fabric = Fabric::new();
        fabric.link(0, 2, 1, 1);
        fabric.link(1, 2, 2, 1);
        let epoch = Instant::now();
        let forward_out = |port| {
            vec![
                FlowMod::add(OfMatch::wildcard_all(), 1, vec![Action::output(port)]).with_cookie(1),
            ]
        };
        let a = spawn_switch_with(
            addr,
            SwitchModel::faithful(),
            SwitchHostOptions {
                fabric: Some((fabric.clone(), 0)),
                epoch: Some(epoch),
                preinstall: forward_out(2),
                ..Default::default()
            },
        )
        .unwrap();
        let (mut peer_a, _) = listener.accept().unwrap();
        let b = spawn_switch_with(
            addr,
            SwitchModel::faithful(),
            SwitchHostOptions {
                fabric: Some((fabric.clone(), 1)),
                epoch: Some(epoch),
                preinstall: forward_out(2),
                ..Default::default()
            },
        )
        .unwrap();
        let (_peer_b, _) = listener.accept().unwrap();
        let c = spawn_switch_with(
            addr,
            SwitchModel::faithful(),
            SwitchHostOptions {
                fabric: Some((fabric.clone(), 2)),
                epoch: Some(epoch),
                preinstall: vec![FlowMod::add(
                    OfMatch::wildcard_all(),
                    1,
                    vec![Action::to_controller()],
                )
                .with_cookie(2)],
                ..Default::default()
            },
        )
        .unwrap();
        let (mut peer_c, _) = listener.accept().unwrap();
        peer_c
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();

        let header = PacketHeader::ipv4_udp(
            openflow::MacAddr::from_id(1),
            openflow::MacAddr::from_id(2),
            std::net::Ipv4Addr::new(10, 0, 0, 1),
            std::net::Ipv4Addr::new(10, 0, 0, 2),
            7,
            8,
        );
        let mut codec = OfCodec::new();
        let mut buf = [0u8; 2048];
        let mut samples: Vec<Duration> = Vec::new();
        for round in 0..21 {
            let po = OfMessage::PacketOut {
                xid: round,
                body: PacketOut::via_table(header.to_bytes()),
            };
            let mut wire = Vec::new();
            po.encode_into(&mut wire).unwrap();
            let injected = Instant::now();
            peer_a.write_all(&wire).unwrap();
            'wait: loop {
                let n = match peer_c.read(&mut buf) {
                    Ok(0) | Err(_) => panic!("switch 2 went away mid-measurement"),
                    Ok(n) => n,
                };
                codec.feed(&buf[..n]);
                while let Ok(Some(msg)) = codec.next_message() {
                    if matches!(msg, OfMessage::PacketIn { .. }) {
                        samples.push(injected.elapsed());
                        break 'wait;
                    }
                }
            }
        }
        samples.sort_unstable();
        let p50 = samples[samples.len() / 2];
        assert!(
            p50 < Duration::from_millis(2),
            "two fabric hops took {p50:?} at p50 — hop delivery is being poll-quantised"
        );

        drop(peer_a);
        drop(_peer_b);
        drop(peer_c);
        let _ = a.join();
        let _ = b.join();
        let _ = c.join();
    }

    /// The restart fault closes the connection from the switch side and the
    /// report shows wiped tables.
    #[test]
    fn restart_fault_disconnects_and_wipes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = spawn_switch_with(
            addr,
            SwitchModel::faithful(),
            SwitchHostOptions {
                faults: FaultPlan::seeded(1).with_restart_after(2),
                ..Default::default()
            },
        )
        .unwrap();
        let (mut peer, _) = listener.accept().unwrap();
        peer.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

        let mut wire = Vec::new();
        for i in 0..3u32 {
            OfMessage::FlowMod {
                xid: i,
                body: FlowMod::add(
                    OfMatch::ipv4_pair(
                        std::net::Ipv4Addr::new(10, 0, 0, i as u8 + 1),
                        std::net::Ipv4Addr::new(10, 1, 0, 1),
                    ),
                    100,
                    vec![Action::output(2)],
                )
                .with_cookie(u64::from(i)),
            }
            .encode_into(&mut wire)
            .unwrap();
        }
        peer.write_all(&wire).unwrap();
        // The switch restarts after the 2nd mod: it hangs up on us.
        let mut buf = [0u8; 256];
        let eof = loop {
            match peer.read(&mut buf) {
                Ok(0) => break true,
                Ok(_) => continue,
                Err(_) => break false,
            }
        };
        assert!(eof, "switch must close the connection on restart");
        let report = handle.join();
        assert_eq!(report.control_rules, 0, "tables wiped");
        assert_eq!(report.data_rules, 0);
    }
}
