//! A socket-hosted OpenFlow switch: the `ofswitch` flow-table and behaviour
//! model served over a real TCP connection.
//!
//! The simulator's `ofswitch::OpenFlowSwitch` is a `simnet` node; this
//! module hosts the same flow-table semantics ([`ofswitch::FlowTable`]) and
//! the same timing/behaviour knobs ([`ofswitch::SwitchModel`]) behind a TCP
//! client, so the paper's prototype chain — controller → RUM proxy →
//! switches — can run end to end on loopback sockets.  The barrier
//! behaviour is the interesting part:
//!
//! * early-reply models answer `BarrierRequest` immediately, long before the
//!   emulated data plane has synchronised — the bug RUM exists to paper
//!   over;
//! * the faithful model answers only after every accepted modification's
//!   data-plane activation time has passed.

use ofswitch::{FlowTable, SwitchModel};
use openflow::messages::ErrorMsg;
use openflow::{OfCodec, OfMessage};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Live message counters of a hosted switch.
#[derive(Debug, Default)]
pub struct SwitchCounters {
    /// Flow modifications accepted by the control plane.
    pub flow_mods: AtomicU64,
    /// Barrier requests answered.
    pub barriers: AtomicU64,
    /// Echo requests answered.
    pub echos: AtomicU64,
    /// Modifications rejected with an error.
    pub errors: AtomicU64,
}

/// Final state of a hosted switch after its connection closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchReport {
    /// Rules in the control-plane table at disconnect.
    pub control_rules: usize,
    /// Rules visible in the (emulated) data-plane table at disconnect.
    pub data_rules: usize,
}

/// A handle to a switch served on a background thread.
pub struct SocketSwitchHandle {
    counters: Arc<SwitchCounters>,
    thread: JoinHandle<SwitchReport>,
}

impl SocketSwitchHandle {
    /// Live counters (updated by the serving thread).
    pub fn counters(&self) -> &SwitchCounters {
        &self.counters
    }

    /// Waits for the connection to close and returns the final tables.
    pub fn join(self) -> SwitchReport {
        self.thread.join().expect("switch thread panicked")
    }
}

/// Connects to `addr` (the RUM proxy or a controller) and serves an
/// OpenFlow switch with the given behaviour model until the peer closes the
/// connection.
pub fn spawn_switch(addr: SocketAddr, model: SwitchModel) -> std::io::Result<SocketSwitchHandle> {
    let stream = TcpStream::connect(addr)?;
    let counters = Arc::new(SwitchCounters::default());
    let thread = {
        let counters = Arc::clone(&counters);
        std::thread::spawn(move || serve(stream, model, &counters))
    };
    Ok(SocketSwitchHandle { counters, thread })
}

/// One modification accepted by the control plane, waiting for the data
/// plane to pick it up.
struct PendingOp {
    active_at: Instant,
    flow_mod: openflow::messages::FlowMod,
}

fn serve(mut stream: TcpStream, model: SwitchModel, counters: &SwitchCounters) -> SwitchReport {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let epoch = Instant::now();
    let mut codec = OfCodec::new();
    let mut buf = [0u8; 4096];
    // Replies for all messages decoded from one read are encoded
    // back-to-back here and flushed with a single write.
    let mut reply_buf: Vec<u8> = Vec::new();
    let mut control = FlowTable::new(model.table_capacity);
    let mut data = FlowTable::new(model.table_capacity);
    let mut pending: Vec<PendingOp> = Vec::new();
    // The control plane is serial: each modification occupies it for a
    // model-dependent time, and the data plane activates the rule only at
    // the next synchronisation point after that.
    let mut busy_until = Instant::now();

    let base_mod: Duration = model.base_mod_time.into();
    let per_rule: Duration = model.per_rule_slowdown.into();
    let sync: Duration =
        Duration::from(model.dataplane_sync_period) + Duration::from(model.dataplane_sync_latency);

    loop {
        // Lazily synchronise the emulated data plane.
        let now = Instant::now();
        pending.retain(|op| {
            if op.active_at <= now {
                let _ = data.apply(&op.flow_mod, epoch.elapsed().into());
                false
            } else {
                true
            }
        });

        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        codec.feed(&buf[..n]);
        reply_buf.clear();
        let mut conn_done = false;
        loop {
            let msg = match codec.next_message() {
                Ok(Some(msg)) => msg,
                Ok(None) => break,
                Err(_) => {
                    conn_done = true;
                    break;
                }
            };
            let reply = match msg {
                OfMessage::FlowMod { xid, body } => {
                    let accepted_at =
                        busy_until.max(Instant::now()) + base_mod + per_rule * control.len() as u32;
                    busy_until = accepted_at;
                    match control.apply(&body, epoch.elapsed().into()) {
                        Ok(_) => {
                            counters.flow_mods.fetch_add(1, Ordering::SeqCst);
                            pending.push(PendingOp {
                                active_at: accepted_at + sync,
                                flow_mod: body,
                            });
                            None
                        }
                        Err(e) => {
                            counters.errors.fetch_add(1, Ordering::SeqCst);
                            Some(OfMessage::Error {
                                xid,
                                body: ErrorMsg {
                                    err_type: openflow::constants::error_type::FLOW_MOD_FAILED,
                                    code: e.error_code(),
                                    data: vec![],
                                },
                            })
                        }
                    }
                }
                OfMessage::BarrierRequest { xid } => {
                    counters.barriers.fetch_add(1, Ordering::SeqCst);
                    if !model.barrier_mode.replies_early() {
                        // Replies already owed (earlier barriers in this
                        // batch, echoes) must hit the wire before this
                        // barrier blocks on the data-plane horizon —
                        // batching must not skew their observed timing.
                        if !reply_buf.is_empty() {
                            let flushed = stream.write_all(&reply_buf).is_ok();
                            // Cleared on failure too: the end-of-batch flush
                            // must not re-send (a partial copy of) the same
                            // bytes on this socket.
                            reply_buf.clear();
                            if !flushed {
                                conn_done = true;
                                break;
                            }
                        }
                        // Faithful: wait for the data plane to catch up
                        // before answering (a barrier is a sync point, so
                        // blocking the control plane is the semantics).
                        if let Some(latest) = pending.iter().map(|op| op.active_at).max() {
                            let now = Instant::now();
                            if latest > now {
                                std::thread::sleep(latest - now);
                            }
                        }
                        let now = Instant::now();
                        pending.retain(|op| {
                            if op.active_at <= now {
                                let _ = data.apply(&op.flow_mod, epoch.elapsed().into());
                                false
                            } else {
                                true
                            }
                        });
                    }
                    Some(OfMessage::BarrierReply { xid })
                }
                OfMessage::EchoRequest { xid, data } => {
                    counters.echos.fetch_add(1, Ordering::SeqCst);
                    Some(OfMessage::EchoReply { xid, data })
                }
                OfMessage::Hello { xid } => Some(OfMessage::Hello { xid }),
                _ => None,
            };
            if let Some(reply) = reply {
                reply.encode_into(&mut reply_buf).expect("encodable reply");
            }
        }
        // One write per read batch; a failed write means the peer dropped
        // the connection — return the final report instead of panicking.
        if !reply_buf.is_empty() && stream.write_all(&reply_buf).is_err() {
            break;
        }
        if conn_done {
            break;
        }
    }
    SwitchReport {
        control_rules: control.len(),
        data_rules: data.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::messages::FlowMod;
    use openflow::{Action, OfMatch};
    use std::net::TcpListener;

    /// A buggy-model switch answers a barrier long before its emulated data
    /// plane would have activated the preceding modification.
    #[test]
    fn early_reply_switch_answers_barriers_instantly() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = spawn_switch(addr, SwitchModel::hp5406zl()).unwrap();
        let (mut peer, _) = listener.accept().unwrap();
        peer.set_read_timeout(Some(Duration::from_secs(3))).unwrap();

        let fm = OfMessage::FlowMod {
            xid: 1,
            body: FlowMod::add(OfMatch::wildcard_all(), 10, vec![Action::output(1)]),
        };
        let started = Instant::now();
        // The flow-mod and the barrier go out as one batched write, the way
        // the proxy's writer coalesces a drain burst.
        let mut wire = Vec::new();
        fm.encode_into(&mut wire).unwrap();
        OfMessage::BarrierRequest { xid: 2 }
            .encode_into(&mut wire)
            .unwrap();
        peer.write_all(&wire).unwrap();

        let mut codec = OfCodec::new();
        let mut buf = [0u8; 512];
        let reply_at = loop {
            let n = peer.read(&mut buf).unwrap();
            codec.feed(&buf[..n]);
            if let Ok(Some(OfMessage::BarrierReply { xid: 2 })) = codec.next_message() {
                break started.elapsed();
            }
        };
        // The HP model's data plane lags by >= 100 ms; the buggy barrier
        // reply must arrive way earlier.
        assert!(
            reply_at < Duration::from_millis(90),
            "buggy switch replied after {reply_at:?}"
        );
        assert_eq!(handle.counters().flow_mods.load(Ordering::SeqCst), 1);
        assert_eq!(handle.counters().barriers.load(Ordering::SeqCst), 1);
        drop(peer);
        let report = handle.join();
        assert_eq!(report.control_rules, 1);
    }
}
