//! A minimal readiness reactor over `poll(2)` — the event-loop substrate of
//! the sharded proxy and the fabric-wired switch hosts.
//!
//! The standard library exposes blocking sockets only, and the workspace
//! deliberately carries no external event-loop dependency, so this module
//! hand-rolls the two primitives a readiness-driven design needs:
//!
//! * [`poll_fds`] — a safe wrapper over the `poll(2)` syscall, taking a
//!   reusable [`PollFd`] slice and a millisecond timeout;
//! * [`Waker`] — a self-pipe (a nonblocking `UnixStream` pair) whose read
//!   end joins a poll set, so any thread can interrupt a sleeping event
//!   loop with a 1-byte write.
//!
//! All unsafety in the crate is confined to the tiny `sys` module below:
//! one struct layout and one foreign function, matching the kernel ABI
//! used by libc on every platform this workspace targets.

use std::io::{Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;

/// The `poll(2)` FFI surface.  Kept to the absolute minimum: the `pollfd`
/// struct layout and the syscall wrapper, both straight from POSIX.
#[allow(unsafe_code)]
mod sys {
    use std::os::raw::{c_int, c_short, c_ulong};

    #[repr(C)]
    pub(super) struct PollFdRaw {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    pub(super) const POLLIN: c_short = 0x001;
    pub(super) const POLLOUT: c_short = 0x004;
    pub(super) const POLLERR: c_short = 0x008;
    pub(super) const POLLHUP: c_short = 0x010;
    pub(super) const POLLNVAL: c_short = 0x020;

    extern "C" {
        fn poll(fds: *mut PollFdRaw, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Polls `fds` for up to `timeout_ms` (negative = forever).  Returns
    /// the number of descriptors with events, 0 on timeout.
    pub(super) fn poll_raw(fds: &mut [PollFdRaw], timeout_ms: c_int) -> std::io::Result<usize> {
        // SAFETY: `fds` is a valid, exclusively-borrowed slice of
        // `#[repr(C)]` pollfd structs for the duration of the call, and the
        // length is passed alongside; `poll` writes only `revents` fields.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc < 0 {
            Err(std::io::Error::last_os_error())
        } else {
            Ok(rc as usize)
        }
    }
}

/// One entry of a poll set: a descriptor, the readiness to wait for, and
/// (after [`poll_fds`] returns) the readiness observed.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PollFd {
    fd: RawFd,
    want_read: bool,
    want_write: bool,
    readable: bool,
    writable: bool,
    hangup: bool,
}

impl PollFd {
    /// An entry waiting for the given readiness on `fd`.
    pub(crate) fn new(fd: RawFd, want_read: bool, want_write: bool) -> Self {
        PollFd {
            fd,
            want_read,
            want_write,
            readable: false,
            writable: false,
            hangup: false,
        }
    }

    /// The descriptor became readable (or reached EOF — a read will tell).
    pub(crate) fn readable(&self) -> bool {
        self.readable
    }

    /// The descriptor became writable.
    pub(crate) fn writable(&self) -> bool {
        self.writable
    }

    /// The peer hung up or the descriptor is in an error state; the owner
    /// should read/write to collect the actual error and tear down.
    pub(crate) fn hangup(&self) -> bool {
        self.hangup
    }
}

/// Waits until at least one entry of `fds` is ready or `timeout_ms`
/// elapses (negative = wait forever).  Readiness is reported through the
/// entries' accessor methods; entries from a previous call are reset.
/// `EINTR` is treated as a zero-ready timeout so callers simply loop.
pub(crate) fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> usize {
    let mut raw: Vec<sys::PollFdRaw> = fds
        .iter()
        .map(|p| sys::PollFdRaw {
            fd: p.fd,
            events: (if p.want_read { sys::POLLIN } else { 0 })
                | (if p.want_write { sys::POLLOUT } else { 0 }),
            revents: 0,
        })
        .collect();
    let n = match sys::poll_raw(&mut raw, timeout_ms) {
        Ok(n) => n,
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => 0,
        Err(e) => panic!("poll(2) failed: {e}"),
    };
    for (p, r) in fds.iter_mut().zip(raw.iter()) {
        p.readable = r.revents & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) != 0;
        p.writable = r.revents & (sys::POLLOUT | sys::POLLERR) != 0;
        p.hangup = r.revents & (sys::POLLHUP | sys::POLLERR | sys::POLLNVAL) != 0;
    }
    n
}

/// A self-pipe waker: the read end sits in a poll set; [`Waker::wake`]
/// from any thread makes that poll return immediately.  Writes and reads
/// are nonblocking — a full pipe means a wake-up is already pending, which
/// is all a level-triggered loop needs.
#[derive(Debug)]
pub(crate) struct Waker {
    read_end: UnixStream,
    write_end: UnixStream,
}

impl Waker {
    pub(crate) fn new() -> std::io::Result<Self> {
        let (read_end, write_end) = UnixStream::pair()?;
        read_end.set_nonblocking(true)?;
        write_end.set_nonblocking(true)?;
        Ok(Waker {
            read_end,
            write_end,
        })
    }

    /// The descriptor to include (read-interest) in a poll set.
    pub(crate) fn fd(&self) -> RawFd {
        self.read_end.as_raw_fd()
    }

    /// Interrupts the owning poll loop.  Callable from any thread through a
    /// shared reference; a `WouldBlock` (pipe already full) means the loop
    /// is guaranteed to wake anyway.
    pub(crate) fn wake(&self) {
        let _ = (&self.write_end).write(&[1u8]);
    }

    /// Consumes pending wake-ups so the next poll sleeps again.  Call after
    /// every poll return that reported the waker readable.
    pub(crate) fn drain(&self) {
        let mut buf = [0u8; 64];
        while let Ok(n) = (&self.read_end).read(&mut buf) {
            if n == 0 {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn waker_interrupts_a_sleeping_poll() {
        let waker = Arc::new(Waker::new().unwrap());
        let remote = Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake();
        });
        let mut fds = [PollFd::new(waker.fd(), true, false)];
        let start = Instant::now();
        // Without the wake this would sleep the full 5 s.
        let n = poll_fds(&mut fds, 5_000);
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        assert!(start.elapsed() < Duration::from_secs(2));
        waker.drain();
        // Drained: an immediate re-poll times out instead of spinning.
        let n = poll_fds(&mut fds, 0);
        assert_eq!(n, 0, "drained waker must not stay readable");
        t.join().unwrap();
    }

    #[test]
    fn repeated_wakes_coalesce() {
        let waker = Waker::new().unwrap();
        for _ in 0..10_000 {
            waker.wake(); // must never block, even with no reader
        }
        let mut fds = [PollFd::new(waker.fd(), true, false)];
        assert_eq!(poll_fds(&mut fds, 0), 1);
        waker.drain();
        assert_eq!(poll_fds(&mut fds, 0), 0);
    }

    #[test]
    fn poll_reports_writability_and_timeout() {
        let (a, _b) = UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(a.as_raw_fd(), true, true)];
        let n = poll_fds(&mut fds, 100);
        assert_eq!(n, 1);
        assert!(fds[0].writable(), "fresh socket must be writable");
        assert!(!fds[0].readable(), "nothing was sent");

        let mut fds = [PollFd::new(a.as_raw_fd(), true, false)];
        let start = Instant::now();
        assert_eq!(poll_fds(&mut fds, 50), 0);
        assert!(start.elapsed() >= Duration::from_millis(45));
    }
}
