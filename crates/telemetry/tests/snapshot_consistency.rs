//! Concurrency test for the registry's snapshot path: recorder threads
//! hammer counters, gauges and a histogram while the main thread takes
//! snapshots — no snapshot may ever observe torn or regressing state, and
//! the final totals must be exact.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use telemetry::{Recorder, Registry};

const THREADS: usize = 4;
const INCREMENTS: u64 = 40_000;
/// Every recorded latency is this value, so quantiles are fully determined.
const VALUE: u64 = 7;

#[test]
fn concurrent_recorders_never_tear_snapshots() {
    let registry = Arc::new(Registry::new());
    // Register the metrics before spawning, so the snapshot loop below
    // never races the workers' first registration (indexing the snapshot
    // maps would panic on a missing key).
    registry.counter("work.ops");
    registry.gauge("work.active");
    registry.histogram("work.latency_us");
    let go = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..THREADS)
        .map(|i| {
            let registry = Arc::clone(&registry);
            let go = Arc::clone(&go);
            std::thread::spawn(move || {
                let counter = registry.counter("work.ops");
                let gauge = registry.gauge("work.active");
                let mut recorder = Recorder::new(registry.histogram("work.latency_us"));
                while !go.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                gauge.inc();
                for n in 0..INCREMENTS {
                    counter.inc();
                    recorder.record(VALUE);
                    // Flush at thread-specific strides so merges interleave
                    // with snapshots instead of clustering at the end.
                    if n % (1_000 + i as u64) == 0 {
                        recorder.flush();
                    }
                }
                gauge.dec();
                // Recorder flushes its remainder on drop.
            })
        })
        .collect();

    go.store(true, Ordering::Release);
    let total = THREADS as u64 * INCREMENTS;
    let mut last_ops = 0u64;
    let mut last_latency_count = 0u64;
    // Snapshot continuously while the workers run.
    while last_ops < total {
        let snap = registry.snapshot();
        let ops = snap.counters["work.ops"];
        assert!(
            ops >= last_ops,
            "counter went backwards: {ops} < {last_ops}"
        );
        assert!(ops <= total, "counter overshot: {ops} > {total}");
        let active = snap.gauges["work.active"];
        assert!(
            (0..=THREADS as i64).contains(&active),
            "gauge out of range: {active}"
        );
        if let Some(lat) = snap.histograms.get("work.latency_us") {
            assert!(
                lat.count >= last_latency_count,
                "histogram count went backwards: {} < {last_latency_count}",
                lat.count
            );
            assert!(lat.count <= total);
            if lat.count > 0 {
                // Only one distinct value is ever recorded, so any torn
                // bucket/extremum state would surface immediately.  (The
                // mean is exempt mid-run: the running sum is a separate
                // relaxed atomic and may trail the buckets by design.)
                assert_eq!(lat.min, VALUE);
                assert_eq!(lat.max, VALUE);
                assert_eq!(lat.p50, VALUE);
                assert_eq!(lat.p999, VALUE);
            }
            last_latency_count = lat.count;
        }
        last_ops = ops;
        std::thread::sleep(Duration::from_micros(200));
    }

    for w in workers {
        w.join().expect("worker thread panicked");
    }

    // The sum of everything the threads did equals the final totals.
    let snap = registry.snapshot();
    assert_eq!(snap.counters["work.ops"], total);
    assert_eq!(snap.gauges["work.active"], 0);
    let lat = &snap.histograms["work.latency_us"];
    assert_eq!(lat.count, total, "dropped recorders must have flushed");
    assert_eq!(lat.min, VALUE);
    assert_eq!(lat.max, VALUE);
    assert_eq!(lat.mean, VALUE as f64);
}
