//! Property tests for the log-bucketed histogram: quantile estimates are
//! compared against the exact sorted-sample quantile of the same data, and
//! merge must behave like recording the union of the samples.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use telemetry::{bucket_index, Histogram};

/// The exact quantile under the same rank convention the histogram uses:
/// rank `ceil(q * n)` clamped to `[1, n]`, 1-indexed into the sorted data.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// A sample drawn from a mixture of scales so all histogram regimes are
/// exercised: the exact low range, mid-size values, and the full 64 bits.
fn sample(rng: &mut SmallRng) -> u64 {
    match rng.gen_index(4) {
        0 => rng.gen_range_u64(32),
        1 => rng.gen_range_u64(10_000),
        2 => rng.gen_range_u64(1 << 40),
        _ => rng.next_u64(),
    }
}

/// The headline property: for every quantile, the histogram's estimate
/// lands in the same (or an adjacent) bucket as the exact sorted-sample
/// quantile, and never overshoots the exact value.
#[test]
fn quantile_estimates_stay_within_one_bucket_of_exact() {
    for seed in 0..25u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 1 + rng.gen_index(2_000);
        let mut hist = Histogram::new();
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let v = sample(&mut rng);
            samples.push(v);
            hist.record(v);
        }
        samples.sort_unstable();
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&samples, q);
            let estimate = hist.quantile(q);
            assert!(
                estimate <= exact,
                "seed {seed} q {q}: estimate {estimate} overshoots exact {exact}"
            );
            let distance = bucket_index(estimate).abs_diff(bucket_index(exact));
            assert!(
                distance <= 1,
                "seed {seed} q {q}: estimate {estimate} is {distance} buckets from exact {exact}"
            );
        }
    }
}

/// Merging histograms is associative and commutative, and equals recording
/// the concatenated samples directly.
#[test]
fn merge_is_associative_and_matches_direct_recording() {
    let mut rng = SmallRng::seed_from_u64(99);
    let parts: Vec<Vec<u64>> = (0..3)
        .map(|_| (0..500).map(|_| sample(&mut rng)).collect())
        .collect();
    let hist_of = |chunks: &[&[u64]]| {
        let mut h = Histogram::new();
        for chunk in chunks {
            for &v in *chunk {
                h.record(v);
            }
        }
        h
    };
    let [a, b, c] = [
        hist_of(&[&parts[0]]),
        hist_of(&[&parts[1]]),
        hist_of(&[&parts[2]]),
    ];

    // (a + b) + c
    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);
    // a + (b + c)
    let mut right_inner = b.clone();
    right_inner.merge(&c);
    let mut right = a.clone();
    right.merge(&right_inner);
    // c + b + a (commutativity)
    let mut reversed = c.clone();
    reversed.merge(&b);
    reversed.merge(&a);
    // all samples recorded directly
    let direct = hist_of(&[&parts[0], &parts[1], &parts[2]]);

    for (label, h) in [("left", &left), ("right", &right), ("reversed", &reversed)] {
        assert_eq!(h.buckets(), direct.buckets(), "{label}: bucket mismatch");
        assert_eq!(h.count(), direct.count(), "{label}");
        assert_eq!(h.min(), direct.min(), "{label}");
        assert_eq!(h.max(), direct.max(), "{label}");
        assert_eq!(h.mean(), direct.mean(), "{label}");
    }
}

/// Merging an empty histogram is the identity in both directions.
#[test]
fn merging_empty_is_identity() {
    let mut rng = SmallRng::seed_from_u64(5);
    let mut h = Histogram::new();
    for _ in 0..100 {
        h.record(sample(&mut rng));
    }
    let before = h.clone();
    h.merge(&Histogram::new());
    assert_eq!(h.buckets(), before.buckets());
    assert_eq!(h.count(), before.count());
    assert_eq!(h.min(), before.min());
    assert_eq!(h.max(), before.max());

    let mut empty = Histogram::new();
    empty.merge(&before);
    assert_eq!(empty.buckets(), before.buckets());
    assert_eq!(empty.count(), before.count());
}
