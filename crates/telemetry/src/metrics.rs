//! Sharded lock-free counters and gauges.

use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of cache-line-padded shards per counter.  Eight covers the thread
/// counts this workspace ever runs (proxy reader/writer threads plus a
/// handful of benchmark workers) without false sharing between them.
const SHARDS: usize = 8;

/// Monotonically assigns each thread a shard slot the first time it touches
/// any counter.
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SHARD: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

fn thread_shard() -> usize {
    THREAD_SHARD.with(|s| *s)
}

/// One cache line per shard so two threads incrementing the same counter
/// never contend on a line.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A monotone event counter: lock-free, sharded per thread, relaxed
/// ordering.  Increments cost one uncontended `fetch_add`; reads sum the
/// shards.  Because every shard is monotone, the value read by
/// [`Counter::get`] is monotone across successive reads even while other
/// threads are incrementing.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[thread_shard()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// The current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A point-in-time signed value (queue depth, in-flight count).  A single
/// relaxed atomic: gauges are low-rate and have no hot-path shard pressure.
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_sums_across_threads() {
        let counter = Arc::new(Counter::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(counter.get(), 40_000);
    }

    #[test]
    fn counter_add_and_debug() {
        let c = Counter::new();
        c.add(41);
        c.inc();
        assert_eq!(c.get(), 42);
        assert_eq!(format!("{c:?}"), "Counter(42)");
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(5);
        g.add(-2);
        g.inc();
        g.dec();
        assert_eq!(g.get(), 3);
        assert_eq!(format!("{g:?}"), "Gauge(3)");
    }
}
