//! Log-bucketed (HDR-style) latency histograms.
//!
//! Values are mapped to log-linear buckets: the first `2^SUB_BITS` values
//! get exact buckets, then every power-of-two octave is split into
//! `2^(SUB_BITS-1)` sub-buckets, so the relative quantisation error is
//! bounded by `1/2^(SUB_BITS-1)` (6.25% with the resolution used here)
//! across the full `u64` range with a fixed, small bucket array.
//!
//! Three flavours share the same bucket math:
//!
//! * [`Histogram`] — plain, single-threaded, mergeable;
//! * [`AtomicHistogram`] — lock-free shared recording (relaxed atomics);
//! * [`Recorder`] — a per-thread [`Histogram`] that flushes into a shared
//!   [`AtomicHistogram`], for hot paths where even an uncontended atomic
//!   per event is too much.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sub-bucket resolution bits: 2^5 exact low buckets, 16 sub-buckets per
/// octave above, relative error ≤ 1/16.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const HALF: usize = 1 << (SUB_BITS - 1);

/// Total number of buckets needed to span all of `u64`.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 2) * HALF;

/// The bucket index recording value `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < (1 << SUB_BITS) {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let shift = exp - (SUB_BITS - 1);
    shift as usize * HALF + (v >> shift) as usize
}

/// The smallest value mapping to bucket `index` (the inverse of
/// [`bucket_index`] up to quantisation).
#[inline]
pub fn bucket_lower_bound(index: usize) -> u64 {
    if index < (1 << SUB_BITS) {
        return index as u64;
    }
    let shift = index / HALF - 1;
    let sub = (index - shift * HALF) as u64;
    sub << shift
}

/// A plain mergeable log-bucketed histogram.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation of `v`.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Resets the histogram to empty.
    pub fn clear(&mut self) {
        self.buckets.fill(0);
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Folds `other` into `self`.  Merging is associative and commutative:
    /// per-thread recorders can flush in any order and any grouping.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The quantile-`q` estimate: the lower bound of the bucket holding the
    /// `ceil(q·count)`-th smallest observation, clamped into the recorded
    /// `[min, max]` range.  The estimate is always within one bucket of the
    /// exact sorted-sample quantile.  Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_lower_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Raw bucket counts (test and merge support).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

/// A lock-free histogram shared between threads.  Recording is one relaxed
/// `fetch_add` per bucket plus running min/max/sum updates; snapshots read
/// the buckets and derive the count from their sum, so a snapshot can never
/// observe a count that disagrees with its buckets (there is no separate
/// total to tear).
#[derive(Debug, Default)]
pub struct AtomicHistogram {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        AtomicHistogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation of `v`.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Folds a plain histogram in (the [`Recorder`] flush path).
    pub fn merge_from(&self, other: &Histogram) {
        for (bucket, &n) in self.buckets.iter().zip(other.buckets()) {
            if n > 0 {
                bucket.fetch_add(n, Ordering::Relaxed);
            }
        }
        if other.count() > 0 {
            self.sum.fetch_add(other.sum as u64, Ordering::Relaxed);
            self.min.fetch_min(other.min, Ordering::Relaxed);
            self.max.fetch_max(other.max, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy.  The copy's count equals the sum of its
    /// buckets by construction; min/max/sum are read independently and may
    /// trail concurrent recordings by a few events.
    pub fn snapshot(&self) -> Histogram {
        let mut out = Histogram::new();
        let mut count = 0u64;
        for (dst, src) in out.buckets.iter_mut().zip(&self.buckets) {
            let n = src.load(Ordering::Relaxed);
            *dst = n;
            count += n;
        }
        out.count = count;
        out.sum = self.sum.load(Ordering::Relaxed) as u128;
        out.min = self.min.load(Ordering::Relaxed);
        out.max = self.max.load(Ordering::Relaxed);
        if count > 0 {
            // A racing recorder can bump a bucket before publishing its
            // min/max; fall back to the non-empty bucket range so quantiles
            // (which clamp to [min, max]) never collapse to stale extrema.
            if out.min == u64::MAX {
                let first = out.buckets.iter().position(|&b| b > 0).unwrap_or(0);
                out.min = bucket_lower_bound(first);
            }
            let last = out.buckets.iter().rposition(|&b| b > 0).unwrap_or(0);
            out.max = out.max.max(bucket_lower_bound(last));
        }
        out
    }
}

/// A per-thread recorder: records into a private [`Histogram`] and flushes
/// into a shared [`AtomicHistogram`] in batches (and on drop), so the hot
/// path touches no shared memory at all between flushes.
#[derive(Debug)]
pub struct Recorder {
    local: Histogram,
    target: Arc<AtomicHistogram>,
}

impl Recorder {
    /// Creates a recorder flushing into `target`.
    pub fn new(target: Arc<AtomicHistogram>) -> Self {
        Recorder {
            local: Histogram::new(),
            target,
        }
    }

    /// Records one observation locally.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.local.record(v);
    }

    /// Number of locally buffered (unflushed) observations.
    pub fn pending(&self) -> u64 {
        self.local.count()
    }

    /// Publishes buffered observations into the shared histogram.
    pub fn flush(&mut self) {
        if self.local.count() > 0 {
            self.target.merge_from(&self.local);
            self.local.clear();
        }
    }
}

impl Drop for Recorder {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_values_map_exactly() {
        for v in 0..(1 << SUB_BITS) {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
    }

    #[test]
    fn indices_are_contiguous_and_monotone() {
        let mut last = bucket_index(0);
        let mut probe = |v: u64| {
            let i = bucket_index(v);
            assert!(
                i == last || i == last + 1,
                "index jumped from {last} to {i} at value {v}"
            );
            last = i;
        };
        for v in 1..=4096 {
            probe(v);
        }
    }

    #[test]
    fn full_range_fits() {
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(0), 0);
    }

    #[test]
    fn lower_bound_inverts_index() {
        for i in 0..NUM_BUCKETS {
            let lb = bucket_lower_bound(i);
            assert_eq!(bucket_index(lb), i, "lower bound of bucket {i}");
            if lb > 0 {
                assert!(bucket_index(lb - 1) == i - 1, "value below bucket {i}");
            }
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for &v in &[100u64, 999, 12_345, 1 << 33, u64::MAX / 3] {
            let lb = bucket_lower_bound(bucket_index(v));
            let err = (v - lb) as f64 / v as f64;
            assert!(err <= 1.0 / HALF as f64, "value {v}: error {err}");
        }
    }

    #[test]
    fn recorder_flushes_on_drop() {
        let shared = Arc::new(AtomicHistogram::new());
        {
            let mut rec = Recorder::new(Arc::clone(&shared));
            rec.record(5);
            rec.record(500);
            assert_eq!(rec.pending(), 2);
            assert_eq!(shared.snapshot().count(), 0);
        }
        let snap = shared.snapshot();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.min(), 5);
        assert_eq!(snap.max(), 500);
    }
}
