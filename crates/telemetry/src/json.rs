//! A minimal self-contained JSON encoder/parser for snapshot lines.
//!
//! crates.io is unreachable from the build environment, so — like the
//! `crates/shims` stand-ins — the wire format is hand-rolled: just enough
//! JSON for `{"counters":{..},"gauges":{..},"histograms":{..}}` lines
//! (objects, strings, integers, floats).

use std::collections::BTreeMap;

/// A parsed JSON value (the subset snapshots use).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// An integer (no fraction or exponent in the source text).
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an `i64`, truncating floats.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::Float(f) => Some(*f as i64),
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as a JSON string literal.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `f` in a JSON-compatible spelling (finite decimal, never
/// `NaN`/`inf`, which JSON cannot represent).
pub fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // `{}` on a whole f64 prints no decimal point; keep it a float so
        // the round-trip preserves the variant.
        if !s.contains('.') && !s.contains('e') {
            out.push_str(".0");
        }
    } else {
        out.push('0');
    }
}

/// Parses a complete JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(format!(
                "expected '{}' at byte {}, found '{}'",
                b as char,
                self.pos - 1,
                got as char
            )),
            None => Err(format!("expected '{}', found end of input", b as char)),
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected '{}' at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(map)),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos - 1)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err("bad escape in string".into()),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode a multi-byte UTF-8 sequence from the source.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "bad UTF-8 in string".to_string())?;
                    out.push_str(chunk);
                    self.pos = end;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| format!("bad number '{text}': {e}"))
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| format!("bad number '{text}': {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_objects_and_numbers() {
        let v = parse(r#"{"a":{"b":1,"c":-2},"d":3.5,"e":"hi"}"#).unwrap();
        let obj = v.as_obj().unwrap();
        let a = obj["a"].as_obj().unwrap();
        assert_eq!(a["b"], Value::Int(1));
        assert_eq!(a["c"], Value::Int(-2));
        assert_eq!(obj["d"], Value::Float(3.5));
        assert_eq!(obj["e"], Value::Str("hi".into()));
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut out = String::new();
        write_string(&mut out, "a\"b\\c\nd\te");
        let v = parse(&format!("{{{out}:1}}")).unwrap();
        assert!(v.as_obj().unwrap().contains_key("a\"b\\c\nd\te"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse(r#"{"a"}"#).is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn whole_floats_keep_their_point() {
        let mut out = String::new();
        write_f64(&mut out, 4.0);
        assert_eq!(out, "4.0");
        assert_eq!(parse("4.0").unwrap(), Value::Float(4.0));
    }
}
