//! Live telemetry plane for the RUM reproduction.
//!
//! The experiment pipeline already produces rich *post-hoc* evidence —
//! `GroundTruth` timelines, `ProxyStats`, timestamped confirmation records —
//! but a running proxy was a black box.  This crate is the missing
//! operational surface:
//!
//! * a **lock-free metrics core** — sharded atomic [`Counter`]s, [`Gauge`]s
//!   and log-bucketed (HDR-style) latency [`Histogram`]s with mergeable
//!   per-thread [`Recorder`]s — cheap enough for the zero-alloc hot path
//!   (one relaxed `fetch_add` per event, no locks, no allocation);
//! * a **[`Registry`]** that names metrics and produces consistent
//!   [`Snapshot`]s (a counter read in a snapshot is monotone across
//!   snapshots, and a histogram's count always equals the sum of its
//!   buckets — there is no separately-updated total to tear);
//! * a **snapshot/streaming endpoint** — [`serve`] runs a tiny hand-rolled
//!   TCP line-protocol server emitting JSON snapshots, [`scrape`] is the
//!   matching one-shot client.  No external dependencies: the JSON encoder
//!   and parser live in this crate, like the other `crates/shims` stand-ins.
//!
//! # Line protocol
//!
//! The endpoint speaks newline-delimited commands:
//!
//! | request           | response                                        |
//! |-------------------|-------------------------------------------------|
//! | `snapshot`        | one JSON object on one line                     |
//! | `stream <ms>`     | a JSON line every `<ms>` milliseconds           |
//! | `quit`            | connection closed                               |
//!
//! Every JSON line has the shape
//! `{"counters":{..},"gauges":{..},"histograms":{name:{count,min,max,mean,p50,p90,p99,p999}}}`.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use telemetry::Registry;
//!
//! let registry = Arc::new(Registry::new());
//! let acks = registry.counter("rum.sw0.acks_sent");
//! let latency = registry.histogram("rum.sw0.confirm_latency_us");
//! acks.inc();
//! latency.record(1_250);
//!
//! let server = telemetry::serve("127.0.0.1:0", Arc::clone(&registry)).unwrap();
//! let snap = telemetry::scrape(server.local_addr(), std::time::Duration::from_secs(5)).unwrap();
//! assert_eq!(snap.counters["rum.sw0.acks_sent"], 1);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod json;
mod metrics;
mod registry;
mod server;

pub use hist::{
    bucket_index, bucket_lower_bound, AtomicHistogram, Histogram, Recorder, NUM_BUCKETS,
};
pub use metrics::{Counter, Gauge};
pub use registry::{HistogramSummary, Registry, Snapshot};
pub use server::{scrape, serve, ServerHandle};
