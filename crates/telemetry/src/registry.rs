//! The named-metric registry and its consistent snapshots.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::hist::{AtomicHistogram, Histogram};
use crate::json::{self, Value};
use crate::metrics::{Counter, Gauge};

/// A process-wide collection of named metrics.
///
/// Registration (name → handle) takes a mutex, but that is the *cold* path:
/// callers look a metric up once and keep the returned `Arc` handle; every
/// subsequent increment/record is lock-free.  Names are dotted paths, e.g.
/// `rum.sw0.acks_sent` or `proxy.switch.bytes_out`.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<AtomicHistogram>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("registry poisoned");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("registry poisoned");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<AtomicHistogram> {
        let mut map = self.histograms.lock().expect("registry poisoned");
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(AtomicHistogram::new())),
        )
    }

    /// A point-in-time copy of every metric.  Counter reads are monotone
    /// across snapshots and histogram counts equal the sum of their buckets
    /// by construction.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, h)| (name.clone(), HistogramSummary::of(&h.snapshot())))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Registry")
            .field("counters", &snap.counters.len())
            .field("gauges", &snap.gauges.len())
            .field("histograms", &snap.histograms.len())
            .finish()
    }
}

/// The summary statistics of one histogram at snapshot time.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Arithmetic mean (0.0 when empty).
    pub mean: f64,
    /// 50th-percentile estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// 99.9th-percentile estimate.
    pub p999: u64,
}

impl HistogramSummary {
    /// Summarises a histogram.
    pub fn of(h: &Histogram) -> Self {
        HistogramSummary {
            count: h.count(),
            min: h.min(),
            max: h.max(),
            mean: h.mean(),
            p50: h.quantile(0.50),
            p90: h.quantile(0.90),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
        }
    }
}

/// A point-in-time copy of a [`Registry`], serialisable as one JSON line.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl Snapshot {
    /// Encodes the snapshot as a single JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, name);
            out.push(':');
            out.push_str(&value.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, name);
            out.push(':');
            out.push_str(&value.to_string());
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, name);
            out.push_str(":{\"count\":");
            out.push_str(&h.count.to_string());
            out.push_str(",\"min\":");
            out.push_str(&h.min.to_string());
            out.push_str(",\"max\":");
            out.push_str(&h.max.to_string());
            out.push_str(",\"mean\":");
            json::write_f64(&mut out, h.mean);
            out.push_str(",\"p50\":");
            out.push_str(&h.p50.to_string());
            out.push_str(",\"p90\":");
            out.push_str(&h.p90.to_string());
            out.push_str(",\"p99\":");
            out.push_str(&h.p99.to_string());
            out.push_str(",\"p999\":");
            out.push_str(&h.p999.to_string());
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// Parses a JSON line produced by [`Snapshot::to_json_line`].
    pub fn parse(line: &str) -> Result<Snapshot, String> {
        let root = json::parse(line.trim())?;
        let obj = root.as_obj().ok_or("snapshot is not an object")?;
        let mut snap = Snapshot::default();
        if let Some(counters) = obj.get("counters").and_then(Value::as_obj) {
            for (name, v) in counters {
                let n = v.as_i64().ok_or_else(|| format!("counter {name}"))?;
                snap.counters.insert(name.clone(), n.max(0) as u64);
            }
        }
        if let Some(gauges) = obj.get("gauges").and_then(Value::as_obj) {
            for (name, v) in gauges {
                let n = v.as_i64().ok_or_else(|| format!("gauge {name}"))?;
                snap.gauges.insert(name.clone(), n);
            }
        }
        if let Some(hists) = obj.get("histograms").and_then(Value::as_obj) {
            for (name, v) in hists {
                let h = v
                    .as_obj()
                    .ok_or_else(|| format!("histogram {name} is not an object"))?;
                let field = |key: &str| -> Result<u64, String> {
                    h.get(key)
                        .and_then(Value::as_i64)
                        .map(|n| n.max(0) as u64)
                        .ok_or_else(|| format!("histogram {name} missing {key}"))
                };
                snap.histograms.insert(
                    name.clone(),
                    HistogramSummary {
                        count: field("count")?,
                        min: field("min")?,
                        max: field("max")?,
                        mean: h
                            .get("mean")
                            .and_then(Value::as_f64)
                            .ok_or_else(|| format!("histogram {name} missing mean"))?,
                        p50: field("p50")?,
                        p90: field("p90")?,
                        p99: field("p99")?,
                        p999: field("p999")?,
                    },
                );
            }
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared() {
        let registry = Registry::new();
        let a = registry.counter("x");
        let b = registry.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(registry.counter("x").get(), 3);
        assert_eq!(registry.snapshot().counters["x"], 3);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let registry = Registry::new();
        registry.counter("rum.sw0.acks_sent").add(7);
        registry.gauge("session.in_flight").set(-3);
        let h = registry.histogram("rum.sw0.confirm_latency_us");
        for v in [100, 200, 300, 40_000] {
            h.record(v);
        }
        let snap = registry.snapshot();
        let line = snap.to_json_line();
        let parsed = Snapshot::parse(&line).expect("round trip parses");
        assert_eq!(parsed, snap);
        assert_eq!(parsed.histograms["rum.sw0.confirm_latency_us"].count, 4);
    }

    #[test]
    fn empty_registry_is_valid_json() {
        let snap = Registry::new().snapshot();
        let parsed = Snapshot::parse(&snap.to_json_line()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn debug_is_compact() {
        let registry = Registry::new();
        registry.counter("a");
        let s = format!("{registry:?}");
        assert!(s.contains("counters: 1"), "got {s}");
    }
}
