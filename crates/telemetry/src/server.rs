//! The TCP snapshot/streaming endpoint and its one-shot client.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::registry::{Registry, Snapshot};

/// How often the accept loop and idle client readers poll the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// A running telemetry endpoint; dropping or [`ServerHandle::shutdown`]
/// stops it.
#[derive(Debug)]
pub struct ServerHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, signals client handlers to exit, and joins the
    /// accept thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Starts the telemetry endpoint on `addr`, serving snapshots of
/// `registry` over the line protocol described in the crate docs.
pub fn serve(addr: impl ToSocketAddrs, registry: Arc<Registry>) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept = thread::Builder::new()
        .name("telemetry-accept".into())
        .spawn(move || loop {
            if accept_stop.load(Ordering::Relaxed) {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let registry = Arc::clone(&registry);
                    let stop = Arc::clone(&accept_stop);
                    let _ = thread::Builder::new()
                        .name("telemetry-client".into())
                        .spawn(move || serve_client(stream, &registry, &stop));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(POLL_INTERVAL);
                }
                Err(_) => thread::sleep(POLL_INTERVAL),
            }
        })?;
    Ok(ServerHandle {
        local_addr,
        stop,
        accept: Some(accept),
    })
}

/// Runs the line protocol on one client connection until it closes, asks
/// to quit, or the server shuts down.
fn serve_client(stream: TcpStream, registry: &Registry, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    while !stop.load(Ordering::Relaxed) {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(_) => return,
        }
        let cmd = line.trim();
        let (verb, arg) = match cmd.split_once(' ') {
            Some((v, a)) => (v, a.trim()),
            None => (cmd, ""),
        };
        match verb {
            "snapshot" => {
                if write_snapshot(&mut writer, registry).is_err() {
                    return;
                }
            }
            "stream" => {
                let interval = Duration::from_millis(arg.parse::<u64>().unwrap_or(1000).max(1));
                while !stop.load(Ordering::Relaxed) {
                    if write_snapshot(&mut writer, registry).is_err() {
                        return;
                    }
                    thread::sleep(interval);
                }
                return;
            }
            "quit" | "" => return,
            other => {
                if writeln!(writer, "error unknown command: {other}").is_err() {
                    return;
                }
            }
        }
    }
}

fn write_snapshot(writer: &mut TcpStream, registry: &Registry) -> io::Result<()> {
    let line = registry.snapshot().to_json_line();
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Connects to a telemetry endpoint, requests one snapshot, and parses it.
pub fn scrape(addr: SocketAddr, timeout: Duration) -> io::Result<Snapshot> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(b"snapshot\n")?;
    writer.flush()?;
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line)?;
    Snapshot::parse(&line).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad snapshot line: {e}"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_command_round_trips() {
        let registry = Arc::new(Registry::new());
        registry.counter("test.events").add(9);
        registry.gauge("test.depth").set(4);
        let server = serve("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let snap = scrape(server.local_addr(), Duration::from_secs(5)).unwrap();
        assert_eq!(snap.counters["test.events"], 9);
        assert_eq!(snap.gauges["test.depth"], 4);
        server.shutdown();
    }

    #[test]
    fn stream_emits_fresh_snapshots() {
        let registry = Arc::new(Registry::new());
        let counter = registry.counter("test.ticks");
        let server = serve("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        writer.write_all(b"stream 10\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut last = 0;
        for i in 0..3 {
            counter.add(5);
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let snap = Snapshot::parse(&line).unwrap();
            let v = snap.counters["test.ticks"];
            assert!(v >= last, "stream line {i} went backwards: {v} < {last}");
            last = v;
        }
        assert!(last > 0, "streaming never observed an increment");
        server.shutdown();
    }

    #[test]
    fn unknown_commands_get_an_error_line() {
        let registry = Arc::new(Registry::new());
        let server = serve("127.0.0.1:0", Arc::clone(&registry)).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        writer.write_all(b"bogus\nsnapshot\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("error"), "got {line:?}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(Snapshot::parse(&line).is_ok(), "got {line:?}");
        server.shutdown();
    }
}
