//! OpenFlow 1.0 flow-table semantics.

use openflow::constants::{flow_mod_failed_code, flow_mod_flags, port as of_port};
use openflow::messages::{FlowMod, FlowModCommand};
use openflow::{Action, OfMatch, PacketHeader, PortNo};
use simnet::SimTime;

/// A single installed flow entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEntry {
    /// Fields to match.
    pub match_: OfMatch,
    /// Priority (higher wins; only meaningful for wildcarded entries).
    pub priority: u16,
    /// Actions applied to matching packets (empty list = drop).
    pub actions: Vec<Action>,
    /// Controller-assigned cookie.
    pub cookie: u64,
    /// Idle timeout in seconds (0 = none).
    pub idle_timeout: u16,
    /// Hard timeout in seconds (0 = none).
    pub hard_timeout: u16,
    /// When the entry was installed.
    pub installed_at: SimTime,
    /// Packets matched so far.
    pub packet_count: u64,
    /// Bytes matched so far.
    pub byte_count: u64,
}

impl FlowEntry {
    /// Builds an entry from a flow-mod ADD.
    pub fn from_flow_mod(fm: &FlowMod, now: SimTime) -> Self {
        FlowEntry {
            match_: fm.match_,
            priority: fm.priority,
            actions: fm.actions.clone(),
            cookie: fm.cookie,
            idle_timeout: fm.idle_timeout,
            hard_timeout: fm.hard_timeout,
            installed_at: now,
            packet_count: 0,
            byte_count: 0,
        }
    }

    /// True if the entry's action list forwards to `port` (used by the
    /// `out_port` filter of DELETE commands).
    pub fn outputs_to(&self, port: PortNo) -> bool {
        Action::output_ports(&self.actions).contains(&port)
    }
}

/// What a flow-mod did to the table — the switch uses this to know which
/// cookies became active or inactive, and what to report to the trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowModOutcome {
    /// Cookies of entries that were added or whose actions changed.
    pub activated: Vec<u64>,
    /// Cookies of entries that were removed.
    pub removed: Vec<u64>,
}

/// Errors returned when a flow-mod cannot be applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowTableError {
    /// The table is full.
    TableFull,
    /// CHECK_OVERLAP was set and an overlapping entry of the same priority
    /// exists.
    Overlap,
}

impl FlowTableError {
    /// The OpenFlow error code for this failure.
    pub fn error_code(&self) -> u16 {
        match self {
            FlowTableError::TableFull => flow_mod_failed_code::ALL_TABLES_FULL,
            FlowTableError::Overlap => flow_mod_failed_code::OVERLAP,
        }
    }
}

/// An OpenFlow 1.0 flow table.
#[derive(Debug, Clone, Default)]
pub struct FlowTable {
    entries: Vec<FlowEntry>,
    max_entries: usize,
    /// Lookups performed (for table stats).
    pub lookup_count: u64,
    /// Lookups that matched (for table stats).
    pub matched_count: u64,
}

impl FlowTable {
    /// Creates a table bounded at `max_entries` rules (0 = unbounded).
    pub fn new(max_entries: usize) -> Self {
        FlowTable {
            entries: Vec::new(),
            max_entries,
            lookup_count: 0,
            matched_count: 0,
        }
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of entries (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.max_entries
    }

    /// Iterates over the installed entries.
    pub fn entries(&self) -> impl Iterator<Item = &FlowEntry> {
        self.entries.iter()
    }

    /// Finds the entry exactly matching `match_` and `priority` (strict
    /// semantics).
    pub fn find_strict(&self, match_: &OfMatch, priority: u16) -> Option<&FlowEntry> {
        self.entries
            .iter()
            .find(|e| e.priority == priority && e.match_ == *match_)
    }

    /// Looks up the highest-priority entry matching a packet.  Ties are
    /// broken by installation order (first installed wins), which mirrors
    /// what the paper's hardware switch does ("takes the rule installation
    /// order to define the rule importance").
    pub fn lookup(&mut self, pkt: &PacketHeader, in_port: PortNo) -> Option<&FlowEntry> {
        self.lookup_count += 1;
        let mut best: Option<usize> = None;
        for (i, e) in self.entries.iter().enumerate() {
            if !e.match_.matches(pkt, in_port) {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) if e.priority > self.entries[b].priority => best = Some(i),
                _ => {}
            }
        }
        if best.is_some() {
            self.matched_count += 1;
        }
        best.map(move |i| &self.entries[i])
    }

    /// Same as [`FlowTable::lookup`] but does not update statistics and does
    /// not require `&mut self` — used for read-only probing/analysis.
    pub fn peek_lookup(&self, pkt: &PacketHeader, in_port: PortNo) -> Option<&FlowEntry> {
        let mut best: Option<&FlowEntry> = None;
        for e in &self.entries {
            if !e.match_.matches(pkt, in_port) {
                continue;
            }
            match best {
                None => best = Some(e),
                Some(b) if e.priority > b.priority => best = Some(e),
                _ => {}
            }
        }
        best
    }

    /// Credits a matched packet to an entry (counters).
    pub fn account(&mut self, match_: &OfMatch, priority: u16, bytes: usize) {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.priority == priority && e.match_ == *match_)
        {
            e.packet_count += 1;
            e.byte_count += bytes as u64;
        }
    }

    /// Applies a flow-mod, returning which cookies were activated/removed.
    pub fn apply(&mut self, fm: &FlowMod, now: SimTime) -> Result<FlowModOutcome, FlowTableError> {
        match fm.command {
            FlowModCommand::Add => self.apply_add(fm, now),
            FlowModCommand::Modify => self.apply_modify(fm, now, false),
            FlowModCommand::ModifyStrict => self.apply_modify(fm, now, true),
            FlowModCommand::Delete => Ok(self.apply_delete(fm, false)),
            FlowModCommand::DeleteStrict => Ok(self.apply_delete(fm, true)),
        }
    }

    fn apply_add(&mut self, fm: &FlowMod, now: SimTime) -> Result<FlowModOutcome, FlowTableError> {
        if fm.flags & flow_mod_flags::CHECK_OVERLAP != 0 {
            let overlapping = self
                .entries
                .iter()
                .any(|e| e.priority == fm.priority && e.match_.overlaps(&fm.match_));
            if overlapping {
                return Err(FlowTableError::Overlap);
            }
        }
        // Per the spec, an ADD with an identical match and priority replaces
        // the existing entry (counters reset).
        let mut outcome = FlowModOutcome::default();
        if let Some(pos) = self
            .entries
            .iter()
            .position(|e| e.priority == fm.priority && e.match_ == fm.match_)
        {
            let old = self.entries.remove(pos);
            if old.cookie != fm.cookie {
                outcome.removed.push(old.cookie);
            }
        } else if self.max_entries != 0 && self.entries.len() >= self.max_entries {
            return Err(FlowTableError::TableFull);
        }
        outcome.activated.push(fm.cookie);
        self.entries.push(FlowEntry::from_flow_mod(fm, now));
        Ok(outcome)
    }

    fn apply_modify(
        &mut self,
        fm: &FlowMod,
        now: SimTime,
        strict: bool,
    ) -> Result<FlowModOutcome, FlowTableError> {
        let mut outcome = FlowModOutcome::default();
        let mut any = false;
        for e in self.entries.iter_mut() {
            let selected = if strict {
                e.priority == fm.priority && e.match_ == fm.match_
            } else {
                fm.match_.covers(&e.match_)
            };
            if selected {
                e.actions = fm.actions.clone();
                // MODIFY does not reset counters or timeouts, per spec.
                outcome.activated.push(fm.cookie);
                any = true;
            }
        }
        if !any {
            // A modify that matches nothing behaves like an ADD.
            return self.apply_add(fm, now);
        }
        Ok(outcome)
    }

    fn apply_delete(&mut self, fm: &FlowMod, strict: bool) -> FlowModOutcome {
        let mut outcome = FlowModOutcome::default();
        let out_port_filter = fm.out_port;
        self.entries.retain(|e| {
            let selected = if strict {
                e.priority == fm.priority && e.match_ == fm.match_
            } else {
                fm.match_.covers(&e.match_)
            };
            let port_ok = out_port_filter == of_port::NONE || e.outputs_to(out_port_filter);
            if selected && port_ok {
                outcome.removed.push(e.cookie);
                false
            } else {
                true
            }
        });
        outcome
    }

    /// Removes entries whose hard timeout expired; returns their cookies.
    pub fn expire(&mut self, now: SimTime) -> Vec<u64> {
        let mut expired = Vec::new();
        self.entries.retain(|e| {
            if e.hard_timeout != 0
                && now >= e.installed_at + SimTime::from_secs(u64::from(e.hard_timeout))
            {
                expired.push(e.cookie);
                false
            } else {
                true
            }
        });
        expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn pair(a: u8, b: u8) -> OfMatch {
        OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, a), Ipv4Addr::new(10, 0, 0, b))
    }

    fn pkt(a: u8, b: u8) -> PacketHeader {
        PacketHeader::ipv4_udp(
            openflow::MacAddr::from_id(1),
            openflow::MacAddr::from_id(2),
            Ipv4Addr::new(10, 0, 0, a),
            Ipv4Addr::new(10, 0, 0, b),
            1,
            2,
        )
    }

    fn add(m: OfMatch, prio: u16, port: PortNo, cookie: u64) -> FlowMod {
        FlowMod::add(m, prio, vec![Action::output(port)]).with_cookie(cookie)
    }

    #[test]
    fn add_and_lookup_by_priority() {
        let mut t = FlowTable::new(0);
        t.apply(&add(OfMatch::wildcard_all(), 1, 9, 100), SimTime::ZERO)
            .unwrap();
        t.apply(&add(pair(1, 2), 10, 3, 200), SimTime::ZERO)
            .unwrap();
        let hit = t.lookup(&pkt(1, 2), 1).unwrap();
        assert_eq!(hit.cookie, 200);
        let miss_to_default = t.lookup(&pkt(3, 4), 1).unwrap();
        assert_eq!(miss_to_default.cookie, 100);
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup_count, 2);
        assert_eq!(t.matched_count, 2);
    }

    #[test]
    fn lookup_miss_returns_none() {
        let mut t = FlowTable::new(0);
        t.apply(&add(pair(1, 2), 10, 3, 1), SimTime::ZERO).unwrap();
        assert!(t.lookup(&pkt(9, 9), 1).is_none());
        assert_eq!(t.matched_count, 0);
    }

    #[test]
    fn tie_break_by_installation_order() {
        let mut t = FlowTable::new(0);
        // Two rules with the same priority both matching the packet; the
        // first installed must win (installation order defines importance).
        t.apply(&add(pair(1, 2), 5, 1, 111), SimTime::ZERO).unwrap();
        t.apply(
            &add(OfMatch::wildcard_all().with_tp_dst(2), 5, 2, 222),
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(t.lookup(&pkt(1, 2), 1).unwrap().cookie, 111);
    }

    #[test]
    fn add_identical_match_replaces() {
        let mut t = FlowTable::new(0);
        t.apply(&add(pair(1, 2), 5, 1, 1), SimTime::ZERO).unwrap();
        let outcome = t
            .apply(&add(pair(1, 2), 5, 2, 2), SimTime::from_millis(1))
            .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(outcome.activated, vec![2]);
        assert_eq!(outcome.removed, vec![1]);
        assert_eq!(t.lookup(&pkt(1, 2), 1).unwrap().cookie, 2);
    }

    #[test]
    fn check_overlap_rejects_same_priority_overlap() {
        let mut t = FlowTable::new(0);
        t.apply(&add(pair(1, 2), 5, 1, 1), SimTime::ZERO).unwrap();
        let overlapping = FlowMod::add(
            OfMatch::wildcard_all().with_nw_src_prefix(Ipv4Addr::new(10, 0, 0, 0), 24),
            5,
            vec![Action::output(4)],
        )
        .with_check_overlap();
        assert_eq!(
            t.apply(&overlapping, SimTime::ZERO),
            Err(FlowTableError::Overlap)
        );
        // Different priority is fine even with CHECK_OVERLAP.
        let different_prio = FlowMod::add(
            OfMatch::wildcard_all().with_nw_src_prefix(Ipv4Addr::new(10, 0, 0, 0), 24),
            6,
            vec![Action::output(4)],
        )
        .with_check_overlap();
        assert!(t.apply(&different_prio, SimTime::ZERO).is_ok());
    }

    #[test]
    fn table_full_error() {
        let mut t = FlowTable::new(2);
        t.apply(&add(pair(1, 2), 5, 1, 1), SimTime::ZERO).unwrap();
        t.apply(&add(pair(1, 3), 5, 1, 2), SimTime::ZERO).unwrap();
        assert_eq!(
            t.apply(&add(pair(1, 4), 5, 1, 3), SimTime::ZERO),
            Err(FlowTableError::TableFull)
        );
        assert_eq!(FlowTableError::TableFull.error_code(), 0);
        assert_eq!(FlowTableError::Overlap.error_code(), 1);
    }

    #[test]
    fn strict_modify_changes_only_exact_entry() {
        let mut t = FlowTable::new(0);
        t.apply(&add(pair(1, 2), 5, 1, 1), SimTime::ZERO).unwrap();
        t.apply(&add(pair(1, 3), 5, 1, 2), SimTime::ZERO).unwrap();
        let m = FlowMod::modify_strict(pair(1, 2), 5, vec![Action::output(7)]).with_cookie(99);
        let outcome = t.apply(&m, SimTime::ZERO).unwrap();
        assert_eq!(outcome.activated, vec![99]);
        assert_eq!(
            t.lookup(&pkt(1, 2), 1).unwrap().actions,
            vec![Action::output(7)]
        );
        assert_eq!(
            t.lookup(&pkt(1, 3), 1).unwrap().actions,
            vec![Action::output(1)]
        );
    }

    #[test]
    fn loose_modify_uses_covers_semantics() {
        let mut t = FlowTable::new(0);
        t.apply(&add(pair(1, 2), 5, 1, 1), SimTime::ZERO).unwrap();
        t.apply(&add(pair(3, 4), 5, 1, 2), SimTime::ZERO).unwrap();
        // A fully wildcarded modify covers every entry.
        let m = FlowMod {
            command: FlowModCommand::Modify,
            ..FlowMod::add(OfMatch::wildcard_all(), 0, vec![Action::output(9)])
        }
        .with_cookie(50);
        let outcome = t.apply(&m, SimTime::ZERO).unwrap();
        assert_eq!(outcome.activated.len(), 2);
        assert!(t.entries().all(|e| e.actions == vec![Action::output(9)]));
    }

    #[test]
    fn modify_with_no_match_behaves_like_add() {
        let mut t = FlowTable::new(0);
        let m = FlowMod::modify_strict(pair(8, 9), 5, vec![Action::output(2)]).with_cookie(7);
        let outcome = t.apply(&m, SimTime::ZERO).unwrap();
        assert_eq!(outcome.activated, vec![7]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn strict_delete_removes_exact_entry_only() {
        let mut t = FlowTable::new(0);
        t.apply(&add(pair(1, 2), 5, 1, 1), SimTime::ZERO).unwrap();
        t.apply(&add(pair(1, 2), 6, 1, 2), SimTime::ZERO).unwrap();
        let outcome = t
            .apply(&FlowMod::delete_strict(pair(1, 2), 5), SimTime::ZERO)
            .unwrap();
        assert_eq!(outcome.removed, vec![1]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn loose_delete_removes_covered_entries() {
        let mut t = FlowTable::new(0);
        t.apply(&add(pair(1, 2), 5, 1, 1), SimTime::ZERO).unwrap();
        t.apply(&add(pair(1, 3), 7, 1, 2), SimTime::ZERO).unwrap();
        t.apply(&add(pair(2, 3), 7, 1, 3), SimTime::ZERO).unwrap();
        let del = FlowMod::delete(
            OfMatch::wildcard_all().with_nw_src_prefix(Ipv4Addr::new(10, 0, 0, 1), 32),
        );
        let outcome = t.apply(&del, SimTime::ZERO).unwrap();
        assert_eq!(outcome.removed, vec![1, 2]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_with_out_port_filter() {
        let mut t = FlowTable::new(0);
        t.apply(&add(pair(1, 2), 5, 1, 1), SimTime::ZERO).unwrap();
        t.apply(&add(pair(1, 3), 5, 2, 2), SimTime::ZERO).unwrap();
        let mut del = FlowMod::delete(OfMatch::wildcard_all());
        del.out_port = 2;
        let outcome = t.apply(&del, SimTime::ZERO).unwrap();
        assert_eq!(outcome.removed, vec![2]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn counters_account_packets() {
        let mut t = FlowTable::new(0);
        t.apply(&add(pair(1, 2), 5, 1, 1), SimTime::ZERO).unwrap();
        t.account(&pair(1, 2), 5, 100);
        t.account(&pair(1, 2), 5, 50);
        let e = t.find_strict(&pair(1, 2), 5).unwrap();
        assert_eq!(e.packet_count, 2);
        assert_eq!(e.byte_count, 150);
    }

    #[test]
    fn hard_timeout_expiry() {
        let mut t = FlowTable::new(0);
        let fm = add(pair(1, 2), 5, 1, 1).with_hard_timeout(1);
        t.apply(&fm, SimTime::from_secs(10)).unwrap();
        assert!(t.expire(SimTime::from_secs(10)).is_empty());
        let expired = t.expire(SimTime::from_secs(11));
        assert_eq!(expired, vec![1]);
        assert!(t.is_empty());
    }

    #[test]
    fn peek_lookup_matches_lookup_without_counting() {
        let mut t = FlowTable::new(0);
        t.apply(&add(pair(1, 2), 5, 1, 42), SimTime::ZERO).unwrap();
        assert_eq!(t.peek_lookup(&pkt(1, 2), 1).unwrap().cookie, 42);
        assert_eq!(t.lookup_count, 0);
    }
}
