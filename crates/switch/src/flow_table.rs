//! OpenFlow 1.0 flow-table semantics, indexed for scale.
//!
//! The table keeps three structures in sync so every hot operation is
//! sub-linear in the number of installed rules:
//!
//! * a **strict index** `(match, priority) → entry` backing `find_strict`,
//!   strict modify/delete, counter accounting and the ADD replace check —
//!   all O(1) expected;
//! * **priority buckets** (a `BTreeMap` keyed by priority) so packet lookup
//!   walks priorities from highest to lowest and stops at the first match,
//!   and `CHECK_OVERLAP` only examines rules of the colliding priority;
//! * inside each bucket, fully-exact rules live in a **canonical-key hash
//!   map** probed with one hash of the packet header, while wildcarded rules
//!   stay in an installation-ordered list that is scanned only until the
//!   exact candidate (if any) is known to win the tie-break.
//!
//! Entries are stored in a `BTreeMap` keyed by a monotonically increasing
//! installation sequence number, which preserves the observable iteration
//! and tie-break order of the original linear-scan table (first installed
//! wins; replaced entries move to the end).  That original implementation
//! survives as [`crate::oracle::LinearFlowTable`], the reference oracle the
//! property tests and benchmarks compare against.

use openflow::constants::{
    flow_mod_failed_code, flow_mod_flags, flow_removed_reason, port as of_port, OFP_VLAN_NONE,
};
use openflow::messages::{FlowMod, FlowModCommand};
use openflow::{Action, MacAddr, OfMatch, PacketHeader, PortNo};
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;
use std::time::Duration;

/// A single installed flow entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowEntry {
    /// Fields to match.
    pub match_: OfMatch,
    /// Priority (higher wins; only meaningful for wildcarded entries).
    pub priority: u16,
    /// Actions applied to matching packets (empty list = drop).
    pub actions: Vec<Action>,
    /// Controller-assigned cookie.
    pub cookie: u64,
    /// Idle timeout in seconds (0 = none).
    pub idle_timeout: u16,
    /// Hard timeout in seconds (0 = none).
    pub hard_timeout: u16,
    /// When the entry was installed.
    pub installed_at: Duration,
    /// When the entry last matched a packet (= `installed_at` until the
    /// first hit).  Drives the idle timeout.
    pub last_hit: Duration,
    /// Packets matched so far.
    pub packet_count: u64,
    /// Bytes matched so far.
    pub byte_count: u64,
    /// `OFPFF_SEND_FLOW_REM` was set on the installing flow-mod: the switch
    /// must notify the controller when this entry expires.
    pub send_flow_removed: bool,
}

impl FlowEntry {
    /// Builds an entry from a flow-mod ADD.
    pub fn from_flow_mod(fm: &FlowMod, now: Duration) -> Self {
        FlowEntry {
            match_: fm.match_,
            priority: fm.priority,
            actions: fm.actions.clone(),
            cookie: fm.cookie,
            idle_timeout: fm.idle_timeout,
            hard_timeout: fm.hard_timeout,
            installed_at: now,
            last_hit: now,
            packet_count: 0,
            byte_count: 0,
            send_flow_removed: fm.flags & flow_mod_flags::SEND_FLOW_REM != 0,
        }
    }

    /// True if the entry's action list forwards to `port` (used by the
    /// `out_port` filter of DELETE commands).
    pub fn outputs_to(&self, port: PortNo) -> bool {
        Action::output_ports(&self.actions).contains(&port)
    }

    fn hard_deadline(&self) -> Option<Duration> {
        if self.hard_timeout == 0 {
            None
        } else {
            Some(self.installed_at + Duration::from_secs(u64::from(self.hard_timeout)))
        }
    }

    fn idle_deadline(&self) -> Option<Duration> {
        if self.idle_timeout == 0 {
            None
        } else {
            Some(self.last_hit + Duration::from_secs(u64::from(self.idle_timeout)))
        }
    }

    /// The earliest instant this entry may expire: whichever of the idle and
    /// hard deadline comes first (hard wins ties — once both are due the
    /// distinction is unobservable).
    pub fn expiry_deadline(&self) -> Option<Duration> {
        match (self.hard_deadline(), self.idle_deadline()) {
            (Some(h), Some(i)) => Some(h.min(i)),
            (h, i) => h.or(i),
        }
    }

    /// The `flow_removed_reason` an expiry observed at `now` reports: the
    /// hard deadline wins when both are due (mirrors
    /// [`FlowEntry::expiry_deadline`]'s tie-break).
    pub fn expiry_reason(&self, now: Duration) -> u8 {
        match self.hard_deadline() {
            Some(h) if h <= now => flow_removed_reason::HARD_TIMEOUT,
            _ => flow_removed_reason::IDLE_TIMEOUT,
        }
    }
}

/// What a flow-mod did to the table — the switch uses this to know which
/// cookies became active or inactive, and what to report to the trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowModOutcome {
    /// Cookies of entries that were added or whose actions changed.
    pub activated: Vec<u64>,
    /// Cookies of entries that were removed.
    pub removed: Vec<u64>,
}

/// Errors returned when a flow-mod cannot be applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowTableError {
    /// The table is full.
    TableFull,
    /// CHECK_OVERLAP was set and an overlapping entry of the same priority
    /// exists.
    Overlap,
}

impl FlowTableError {
    /// The OpenFlow error code for this failure.
    pub fn error_code(&self) -> u16 {
        match self {
            FlowTableError::TableFull => flow_mod_failed_code::ALL_TABLES_FULL,
            FlowTableError::Overlap => flow_mod_failed_code::OVERLAP,
        }
    }
}

/// The key of the strict index: exact OpenFlow "strict" semantics compare
/// the match structure bit-for-bit plus the priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct StrictKey {
    match_: OfMatch,
    priority: u16,
}

impl StrictKey {
    fn of(match_: &OfMatch, priority: u16) -> Self {
        StrictKey {
            match_: *match_,
            priority,
        }
    }
}

/// Canonical identity of a fully-exact match, chosen so that key equality is
/// *exactly* "this rule matches that packet":
///
/// * the ToS byte keeps only its DSCP bits (matching masks out ECN);
/// * the VLAN priority is zeroed when no VLAN tag is present (matching
///   ignores it then).
///
/// Both an exact rule and a concrete packet header project onto this key, so
/// a single hash probe replaces a scan over every exact rule of a priority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ExactKey {
    in_port: PortNo,
    dl_src: MacAddr,
    dl_dst: MacAddr,
    dl_vlan: u16,
    dl_vlan_pcp: u8,
    dl_type: u16,
    nw_tos_dscp: u8,
    nw_proto: u8,
    nw_src: Ipv4Addr,
    nw_dst: Ipv4Addr,
    tp_src: u16,
    tp_dst: u16,
}

impl ExactKey {
    /// Projects a fully-exact match onto its canonical key.
    fn from_match(m: &OfMatch) -> Self {
        ExactKey {
            in_port: m.in_port,
            dl_src: m.dl_src,
            dl_dst: m.dl_dst,
            dl_vlan: m.dl_vlan,
            dl_vlan_pcp: if m.dl_vlan == OFP_VLAN_NONE {
                0
            } else {
                m.dl_vlan_pcp
            },
            dl_type: m.dl_type,
            nw_tos_dscp: m.nw_tos & 0xfc,
            nw_proto: m.nw_proto,
            nw_src: m.nw_src,
            nw_dst: m.nw_dst,
            tp_src: m.tp_src,
            tp_dst: m.tp_dst,
        }
    }

    /// Projects a concrete packet header onto the canonical key an exact
    /// rule matching it would have.
    fn from_packet(pkt: &PacketHeader, in_port: PortNo) -> Self {
        ExactKey {
            in_port,
            dl_src: pkt.dl_src,
            dl_dst: pkt.dl_dst,
            dl_vlan: pkt.dl_vlan,
            dl_vlan_pcp: if pkt.dl_vlan == OFP_VLAN_NONE {
                0
            } else {
                pkt.dl_vlan_pcp
            },
            dl_type: pkt.dl_type,
            nw_tos_dscp: pkt.nw_tos & 0xfc,
            nw_proto: pkt.nw_proto,
            nw_src: pkt.nw_src,
            nw_dst: pkt.nw_dst,
            tp_src: pkt.tp_src,
            tp_dst: pkt.tp_dst,
        }
    }
}

/// All entries of one priority.
#[derive(Debug, Clone, Default)]
struct Bucket {
    /// Fully-exact rules: canonical key → installation sequence numbers in
    /// install order (several distinct matches can share a canonical key,
    /// e.g. when they differ only in ECN bits).
    exact: HashMap<ExactKey, Vec<u64>>,
    /// Wildcarded rules, as installation sequence numbers in install order.
    wild: Vec<u64>,
    /// Number of rules in `exact` (the map counts keys, not rules).
    exact_len: usize,
}

impl Bucket {
    fn is_empty(&self) -> bool {
        self.exact_len == 0 && self.wild.is_empty()
    }
}

/// An OpenFlow 1.0 flow table with hash/priority indexes on the hot paths.
#[derive(Debug, Clone, Default)]
pub struct FlowTable {
    /// Entries keyed by installation sequence number; ascending iteration is
    /// installation order.
    entries: BTreeMap<u64, FlowEntry>,
    strict: HashMap<StrictKey, u64>,
    buckets: BTreeMap<u16, Bucket>,
    next_seq: u64,
    max_entries: usize,
    /// Lower bound on the earliest hard-timeout deadline of any installed
    /// entry; `None` means no entry has a hard timeout.  [`FlowTable::expire`]
    /// returns without scanning while `now` is below this bound.
    next_expiry: Option<Duration>,
    /// Lookups performed (for table stats).
    pub lookup_count: u64,
    /// Lookups that matched (for table stats).
    pub matched_count: u64,
}

impl FlowTable {
    /// Creates a table bounded at `max_entries` rules (0 = unbounded).
    pub fn new(max_entries: usize) -> Self {
        FlowTable {
            max_entries,
            ..FlowTable::default()
        }
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of entries (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.max_entries
    }

    /// Iterates over the installed entries in installation order.
    pub fn entries(&self) -> impl Iterator<Item = &FlowEntry> {
        self.entries.values()
    }

    /// Finds the entry exactly matching `match_` and `priority` (strict
    /// semantics).
    pub fn find_strict(&self, match_: &OfMatch, priority: u16) -> Option<&FlowEntry> {
        self.strict
            .get(&StrictKey::of(match_, priority))
            .map(|seq| &self.entries[seq])
    }

    /// Looks up the highest-priority entry matching a packet.  Ties are
    /// broken by installation order (first installed wins), which mirrors
    /// what the paper's hardware switch does ("takes the rule installation
    /// order to define the rule importance").
    pub fn lookup(&mut self, pkt: &PacketHeader, in_port: PortNo) -> Option<&FlowEntry> {
        self.lookup_count += 1;
        let hit = self.lookup_seq(pkt, in_port);
        if hit.is_some() {
            self.matched_count += 1;
        }
        hit.map(|seq| &self.entries[&seq])
    }

    /// Same as [`FlowTable::lookup`] but does not update statistics and does
    /// not require `&mut self` — used for read-only probing/analysis.
    pub fn peek_lookup(&self, pkt: &PacketHeader, in_port: PortNo) -> Option<&FlowEntry> {
        self.lookup_seq(pkt, in_port).map(|seq| &self.entries[&seq])
    }

    /// The matching entry's sequence number: walk priorities from highest to
    /// lowest; within a priority the earliest-installed match wins, whether
    /// it came from the exact hash probe or the wildcard scan.
    fn lookup_seq(&self, pkt: &PacketHeader, in_port: PortNo) -> Option<u64> {
        let key = ExactKey::from_packet(pkt, in_port);
        for bucket in self.buckets.values().rev() {
            let exact = bucket
                .exact
                .get(&key)
                .and_then(|seqs| seqs.first().copied());
            let mut best = exact;
            for &seq in &bucket.wild {
                // `wild` is in installation order, so once the exact
                // candidate is older than the remaining wildcards it wins.
                if exact.is_some_and(|e| e <= seq) {
                    break;
                }
                if self.entries[&seq].match_.matches(pkt, in_port) {
                    best = Some(seq);
                    break;
                }
            }
            if best.is_some() {
                return best;
            }
        }
        None
    }

    /// Credits a matched packet to an entry (counters + idle-timeout clock).
    pub fn account(&mut self, match_: &OfMatch, priority: u16, bytes: usize, now: Duration) {
        if let Some(seq) = self.strict.get(&StrictKey::of(match_, priority)) {
            let e = self.entries.get_mut(seq).expect("indexed entry exists");
            e.packet_count += 1;
            e.byte_count += bytes as u64;
            // A hit pushes the idle deadline out; `next_expiry` stays a
            // (possibly stale) lower bound, which is always safe.
            e.last_hit = e.last_hit.max(now);
        }
    }

    /// Applies a flow-mod, returning which cookies were activated/removed.
    pub fn apply(&mut self, fm: &FlowMod, now: Duration) -> Result<FlowModOutcome, FlowTableError> {
        match fm.command {
            FlowModCommand::Add => self.apply_add(fm, now),
            FlowModCommand::Modify => self.apply_modify(fm, now, false),
            FlowModCommand::ModifyStrict => self.apply_modify(fm, now, true),
            FlowModCommand::Delete => Ok(self.apply_delete(fm, false)),
            FlowModCommand::DeleteStrict => Ok(self.apply_delete(fm, true)),
        }
    }

    fn apply_add(&mut self, fm: &FlowMod, now: Duration) -> Result<FlowModOutcome, FlowTableError> {
        if fm.flags & flow_mod_flags::CHECK_OVERLAP != 0 && self.overlaps_same_priority(fm) {
            return Err(FlowTableError::Overlap);
        }
        // Per the spec, an ADD with an identical match and priority replaces
        // the existing entry (counters reset).
        let mut outcome = FlowModOutcome::default();
        if let Some(&seq) = self.strict.get(&StrictKey::of(&fm.match_, fm.priority)) {
            let old = self.remove_seq(seq);
            if old.cookie != fm.cookie {
                outcome.removed.push(old.cookie);
            }
        } else if self.max_entries != 0 && self.entries.len() >= self.max_entries {
            return Err(FlowTableError::TableFull);
        }
        outcome.activated.push(fm.cookie);
        self.insert_entry(FlowEntry::from_flow_mod(fm, now));
        Ok(outcome)
    }

    /// CHECK_OVERLAP only concerns entries of the same priority, so only the
    /// matching bucket is examined.
    fn overlaps_same_priority(&self, fm: &FlowMod) -> bool {
        let Some(bucket) = self.buckets.get(&fm.priority) else {
            return false;
        };
        bucket
            .exact
            .values()
            .flatten()
            .chain(bucket.wild.iter())
            .any(|seq| self.entries[seq].match_.overlaps(&fm.match_))
    }

    fn apply_modify(
        &mut self,
        fm: &FlowMod,
        now: Duration,
        strict: bool,
    ) -> Result<FlowModOutcome, FlowTableError> {
        let mut outcome = FlowModOutcome::default();
        let mut any = false;
        if strict {
            // The strict index makes this a single probe: at most one entry
            // can carry an identical (match, priority) pair.
            if let Some(seq) = self.strict.get(&StrictKey::of(&fm.match_, fm.priority)) {
                let e = self.entries.get_mut(seq).expect("indexed entry exists");
                e.actions = fm.actions.clone();
                // MODIFY does not reset counters or timeouts, per spec.
                outcome.activated.push(fm.cookie);
                any = true;
            }
        } else {
            for e in self.entries.values_mut() {
                if fm.match_.covers(&e.match_) {
                    e.actions = fm.actions.clone();
                    outcome.activated.push(fm.cookie);
                    any = true;
                }
            }
        }
        if !any {
            // A modify that matches nothing behaves like an ADD.
            return self.apply_add(fm, now);
        }
        Ok(outcome)
    }

    fn apply_delete(&mut self, fm: &FlowMod, strict: bool) -> FlowModOutcome {
        let mut outcome = FlowModOutcome::default();
        let out_port_filter = fm.out_port;
        if strict {
            let Some(&seq) = self.strict.get(&StrictKey::of(&fm.match_, fm.priority)) else {
                return outcome;
            };
            let port_ok =
                out_port_filter == of_port::NONE || self.entries[&seq].outputs_to(out_port_filter);
            if port_ok {
                outcome.removed.push(self.remove_seq(seq).cookie);
            }
        } else {
            let doomed: Vec<u64> = self
                .entries
                .iter()
                .filter(|(_, e)| {
                    fm.match_.covers(&e.match_)
                        && (out_port_filter == of_port::NONE || e.outputs_to(out_port_filter))
                })
                .map(|(&seq, _)| seq)
                .collect();
            for seq in doomed {
                outcome.removed.push(self.remove_seq(seq).cookie);
            }
        }
        outcome
    }

    /// Removes entries whose idle or hard timeout expired; returns their
    /// cookies.  An idle timeout fires `idle_timeout` seconds after the last
    /// packet hit ([`FlowTable::account`]); the hard deadline is absolute.
    /// Whichever comes first wins.
    ///
    /// When no installed entry's deadline can have been reached this returns
    /// an (allocation-free) empty vector without scanning the table.
    pub fn expire(&mut self, now: Duration) -> Vec<u64> {
        let mut expired = Vec::new();
        self.expire_into(now, &mut expired);
        expired
    }

    /// Like [`FlowTable::expire`] but reuses a caller-owned buffer, which is
    /// cleared first.  This is the allocation-free form drivers should call
    /// from periodic ticks.
    pub fn expire_into(&mut self, now: Duration, expired: &mut Vec<u64>) {
        expired.clear();
        self.expire_with(now, |e| expired.push(e.cookie));
    }

    /// Like [`FlowTable::expire_into`] but hands each expired entry (not just
    /// its cookie) to `on_expired` — switches use this to build the
    /// `FlowRemoved` notification for entries installed with
    /// `OFPFF_SEND_FLOW_REM`.
    pub fn expire_with<F: FnMut(&FlowEntry)>(&mut self, now: Duration, mut on_expired: F) {
        // Fast path: nothing can have expired yet.
        match self.next_expiry {
            None => return,
            Some(deadline) if now < deadline => return,
            Some(_) => {}
        }
        let mut doomed = Vec::new();
        let mut next: Option<Duration> = None;
        for (&seq, e) in &self.entries {
            let Some(deadline) = e.expiry_deadline() else {
                continue;
            };
            if now >= deadline {
                doomed.push(seq);
            } else {
                next = Some(next.map_or(deadline, |n| n.min(deadline)));
            }
        }
        for seq in doomed {
            let entry = self.remove_seq(seq);
            on_expired(&entry);
        }
        self.next_expiry = next;
    }

    /// Lower bound on the earliest instant any installed entry may expire
    /// (`None` = no entry carries a timeout).  Drivers use this to wake up
    /// for expiry instead of polling.
    pub fn next_expiry(&self) -> Option<Duration> {
        self.next_expiry
    }

    // ------------------------------------------------------------------
    // Index maintenance
    // ------------------------------------------------------------------

    fn insert_entry(&mut self, entry: FlowEntry) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(deadline) = entry.expiry_deadline() {
            self.next_expiry = Some(self.next_expiry.map_or(deadline, |n| n.min(deadline)));
        }
        self.strict
            .insert(StrictKey::of(&entry.match_, entry.priority), seq);
        let bucket = self.buckets.entry(entry.priority).or_default();
        if entry.match_.is_exact() {
            bucket
                .exact
                .entry(ExactKey::from_match(&entry.match_))
                .or_default()
                .push(seq);
            bucket.exact_len += 1;
        } else {
            bucket.wild.push(seq);
        }
        self.entries.insert(seq, entry);
    }

    fn remove_seq(&mut self, seq: u64) -> FlowEntry {
        let entry = self.entries.remove(&seq).expect("entry exists");
        self.strict
            .remove(&StrictKey::of(&entry.match_, entry.priority));
        let bucket = self
            .buckets
            .get_mut(&entry.priority)
            .expect("bucket exists");
        if entry.match_.is_exact() {
            let key = ExactKey::from_match(&entry.match_);
            let seqs = bucket.exact.get_mut(&key).expect("exact slot exists");
            seqs.retain(|&s| s != seq);
            if seqs.is_empty() {
                bucket.exact.remove(&key);
            }
            bucket.exact_len -= 1;
        } else if let Ok(pos) = bucket.wild.binary_search(&seq) {
            bucket.wild.remove(pos);
        }
        if bucket.is_empty() {
            self.buckets.remove(&entry.priority);
        }
        // `next_expiry` stays a (possibly stale) lower bound: removals never
        // make it invalid, and the next real expiry scan recomputes it.
        entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn pair(a: u8, b: u8) -> OfMatch {
        OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, a), Ipv4Addr::new(10, 0, 0, b))
    }

    fn pkt(a: u8, b: u8) -> PacketHeader {
        PacketHeader::ipv4_udp(
            openflow::MacAddr::from_id(1),
            openflow::MacAddr::from_id(2),
            Ipv4Addr::new(10, 0, 0, a),
            Ipv4Addr::new(10, 0, 0, b),
            1,
            2,
        )
    }

    fn add(m: OfMatch, prio: u16, port: PortNo, cookie: u64) -> FlowMod {
        FlowMod::add(m, prio, vec![Action::output(port)]).with_cookie(cookie)
    }

    #[test]
    fn add_and_lookup_by_priority() {
        let mut t = FlowTable::new(0);
        t.apply(&add(OfMatch::wildcard_all(), 1, 9, 100), Duration::ZERO)
            .unwrap();
        t.apply(&add(pair(1, 2), 10, 3, 200), Duration::ZERO)
            .unwrap();
        let hit = t.lookup(&pkt(1, 2), 1).unwrap();
        assert_eq!(hit.cookie, 200);
        let miss_to_default = t.lookup(&pkt(3, 4), 1).unwrap();
        assert_eq!(miss_to_default.cookie, 100);
        assert_eq!(t.len(), 2);
        assert_eq!(t.lookup_count, 2);
        assert_eq!(t.matched_count, 2);
    }

    #[test]
    fn lookup_miss_returns_none() {
        let mut t = FlowTable::new(0);
        t.apply(&add(pair(1, 2), 10, 3, 1), Duration::ZERO).unwrap();
        assert!(t.lookup(&pkt(9, 9), 1).is_none());
        assert_eq!(t.matched_count, 0);
    }

    #[test]
    fn tie_break_by_installation_order() {
        let mut t = FlowTable::new(0);
        // Two rules with the same priority both matching the packet; the
        // first installed must win (installation order defines importance).
        t.apply(&add(pair(1, 2), 5, 1, 111), Duration::ZERO)
            .unwrap();
        t.apply(
            &add(OfMatch::wildcard_all().with_tp_dst(2), 5, 2, 222),
            Duration::ZERO,
        )
        .unwrap();
        assert_eq!(t.lookup(&pkt(1, 2), 1).unwrap().cookie, 111);
    }

    #[test]
    fn exact_and_wildcard_tie_break_in_both_orders() {
        // A fully-exact rule and a wildcard rule of the same priority both
        // match; whichever was installed first must win, regardless of which
        // index (hash probe vs. scan) finds it.
        let header = pkt(1, 2);
        let exact = OfMatch::exact_from_packet(&header, 1);
        let wild = OfMatch::wildcard_all().with_tp_dst(2);

        let mut t = FlowTable::new(0);
        t.apply(&add(exact, 5, 1, 10), Duration::ZERO).unwrap();
        t.apply(&add(wild, 5, 2, 20), Duration::ZERO).unwrap();
        assert_eq!(t.lookup(&header, 1).unwrap().cookie, 10);

        let mut t = FlowTable::new(0);
        t.apply(&add(wild, 5, 2, 20), Duration::ZERO).unwrap();
        t.apply(&add(exact, 5, 1, 10), Duration::ZERO).unwrap();
        assert_eq!(t.lookup(&header, 1).unwrap().cookie, 20);
    }

    #[test]
    fn exact_lookup_ignores_ecn_bits_and_untagged_pcp() {
        // The exact index canonicalises the ToS ECN bits away, mirroring
        // the masked comparison `matches` performs.
        let mut header = pkt(1, 2);
        header.nw_tos = 0xb8;
        let rule = OfMatch::exact_from_packet(&header, 1);
        let mut t = FlowTable::new(0);
        t.apply(&add(rule, 5, 1, 7), Duration::ZERO).unwrap();
        let mut probe = header;
        probe.nw_tos = 0xbb; // same DSCP, different ECN
        assert_eq!(t.lookup(&probe, 1).unwrap().cookie, 7);
        probe.nw_tos = 0x00;
        assert!(t.lookup(&probe, 1).is_none());
    }

    #[test]
    fn add_identical_match_replaces() {
        let mut t = FlowTable::new(0);
        t.apply(&add(pair(1, 2), 5, 1, 1), Duration::ZERO).unwrap();
        let outcome = t
            .apply(&add(pair(1, 2), 5, 2, 2), Duration::from_millis(1))
            .unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(outcome.activated, vec![2]);
        assert_eq!(outcome.removed, vec![1]);
        assert_eq!(t.lookup(&pkt(1, 2), 1).unwrap().cookie, 2);
    }

    #[test]
    fn check_overlap_rejects_same_priority_overlap() {
        let mut t = FlowTable::new(0);
        t.apply(&add(pair(1, 2), 5, 1, 1), Duration::ZERO).unwrap();
        let overlapping = FlowMod::add(
            OfMatch::wildcard_all().with_nw_src_prefix(Ipv4Addr::new(10, 0, 0, 0), 24),
            5,
            vec![Action::output(4)],
        )
        .with_check_overlap();
        assert_eq!(
            t.apply(&overlapping, Duration::ZERO),
            Err(FlowTableError::Overlap)
        );
        // Different priority is fine even with CHECK_OVERLAP.
        let different_prio = FlowMod::add(
            OfMatch::wildcard_all().with_nw_src_prefix(Ipv4Addr::new(10, 0, 0, 0), 24),
            6,
            vec![Action::output(4)],
        )
        .with_check_overlap();
        assert!(t.apply(&different_prio, Duration::ZERO).is_ok());
    }

    #[test]
    fn table_full_error() {
        let mut t = FlowTable::new(2);
        t.apply(&add(pair(1, 2), 5, 1, 1), Duration::ZERO).unwrap();
        t.apply(&add(pair(1, 3), 5, 1, 2), Duration::ZERO).unwrap();
        assert_eq!(
            t.apply(&add(pair(1, 4), 5, 1, 3), Duration::ZERO),
            Err(FlowTableError::TableFull)
        );
        assert_eq!(FlowTableError::TableFull.error_code(), 0);
        assert_eq!(FlowTableError::Overlap.error_code(), 1);
    }

    #[test]
    fn strict_modify_changes_only_exact_entry() {
        let mut t = FlowTable::new(0);
        t.apply(&add(pair(1, 2), 5, 1, 1), Duration::ZERO).unwrap();
        t.apply(&add(pair(1, 3), 5, 1, 2), Duration::ZERO).unwrap();
        let m = FlowMod::modify_strict(pair(1, 2), 5, vec![Action::output(7)]).with_cookie(99);
        let outcome = t.apply(&m, Duration::ZERO).unwrap();
        assert_eq!(outcome.activated, vec![99]);
        assert_eq!(
            t.lookup(&pkt(1, 2), 1).unwrap().actions,
            vec![Action::output(7)]
        );
        assert_eq!(
            t.lookup(&pkt(1, 3), 1).unwrap().actions,
            vec![Action::output(1)]
        );
    }

    #[test]
    fn loose_modify_uses_covers_semantics() {
        let mut t = FlowTable::new(0);
        t.apply(&add(pair(1, 2), 5, 1, 1), Duration::ZERO).unwrap();
        t.apply(&add(pair(3, 4), 5, 1, 2), Duration::ZERO).unwrap();
        // A fully wildcarded modify covers every entry.
        let m = FlowMod {
            command: FlowModCommand::Modify,
            ..FlowMod::add(OfMatch::wildcard_all(), 0, vec![Action::output(9)])
        }
        .with_cookie(50);
        let outcome = t.apply(&m, Duration::ZERO).unwrap();
        assert_eq!(outcome.activated.len(), 2);
        assert!(t.entries().all(|e| e.actions == vec![Action::output(9)]));
    }

    #[test]
    fn modify_with_no_match_behaves_like_add() {
        let mut t = FlowTable::new(0);
        let m = FlowMod::modify_strict(pair(8, 9), 5, vec![Action::output(2)]).with_cookie(7);
        let outcome = t.apply(&m, Duration::ZERO).unwrap();
        assert_eq!(outcome.activated, vec![7]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn strict_delete_removes_exact_entry_only() {
        let mut t = FlowTable::new(0);
        t.apply(&add(pair(1, 2), 5, 1, 1), Duration::ZERO).unwrap();
        t.apply(&add(pair(1, 2), 6, 1, 2), Duration::ZERO).unwrap();
        let outcome = t
            .apply(&FlowMod::delete_strict(pair(1, 2), 5), Duration::ZERO)
            .unwrap();
        assert_eq!(outcome.removed, vec![1]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn loose_delete_removes_covered_entries() {
        let mut t = FlowTable::new(0);
        t.apply(&add(pair(1, 2), 5, 1, 1), Duration::ZERO).unwrap();
        t.apply(&add(pair(1, 3), 7, 1, 2), Duration::ZERO).unwrap();
        t.apply(&add(pair(2, 3), 7, 1, 3), Duration::ZERO).unwrap();
        let del = FlowMod::delete(
            OfMatch::wildcard_all().with_nw_src_prefix(Ipv4Addr::new(10, 0, 0, 1), 32),
        );
        let outcome = t.apply(&del, Duration::ZERO).unwrap();
        assert_eq!(outcome.removed, vec![1, 2]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn delete_with_out_port_filter() {
        let mut t = FlowTable::new(0);
        t.apply(&add(pair(1, 2), 5, 1, 1), Duration::ZERO).unwrap();
        t.apply(&add(pair(1, 3), 5, 2, 2), Duration::ZERO).unwrap();
        let mut del = FlowMod::delete(OfMatch::wildcard_all());
        del.out_port = 2;
        let outcome = t.apply(&del, Duration::ZERO).unwrap();
        assert_eq!(outcome.removed, vec![2]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn strict_delete_respects_out_port_filter() {
        let mut t = FlowTable::new(0);
        t.apply(&add(pair(1, 2), 5, 1, 1), Duration::ZERO).unwrap();
        let mut del = FlowMod::delete_strict(pair(1, 2), 5);
        del.out_port = 9; // entry outputs to port 1, not 9
        let outcome = t.apply(&del, Duration::ZERO).unwrap();
        assert!(outcome.removed.is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn counters_account_packets() {
        let mut t = FlowTable::new(0);
        t.apply(&add(pair(1, 2), 5, 1, 1), Duration::ZERO).unwrap();
        t.account(&pair(1, 2), 5, 100, Duration::from_secs(1));
        t.account(&pair(1, 2), 5, 50, Duration::from_secs(2));
        let e = t.find_strict(&pair(1, 2), 5).unwrap();
        assert_eq!(e.packet_count, 2);
        assert_eq!(e.byte_count, 150);
    }

    #[test]
    fn hard_timeout_expiry() {
        let mut t = FlowTable::new(0);
        let fm = add(pair(1, 2), 5, 1, 1).with_hard_timeout(1);
        t.apply(&fm, Duration::from_secs(10)).unwrap();
        assert!(t.expire(Duration::from_secs(10)).is_empty());
        let expired = t.expire(Duration::from_secs(11));
        assert_eq!(expired, vec![1]);
        assert!(t.is_empty());
    }

    #[test]
    fn idle_timeout_fires_from_last_hit_not_install() {
        let mut t = FlowTable::new(0);
        let fm = add(pair(1, 2), 5, 1, 1).with_idle_timeout(2);
        t.apply(&fm, Duration::ZERO).unwrap();
        assert_eq!(t.next_expiry(), Some(Duration::from_secs(2)));
        // A hit at t = 1.5 s pushes the idle deadline to 3.5 s.
        t.account(&pair(1, 2), 5, 64, Duration::from_millis(1500));
        assert!(t.expire(Duration::from_secs(2)).is_empty());
        assert!(t.expire(Duration::from_millis(3499)).is_empty());
        assert_eq!(t.expire(Duration::from_millis(3500)), vec![1]);
        assert!(t.is_empty());
    }

    #[test]
    fn idle_vs_hard_precedence_is_earliest_deadline() {
        // Idle (2 s, never hit) beats hard (10 s).
        let mut t = FlowTable::new(0);
        t.apply(
            &add(pair(1, 2), 5, 1, 1)
                .with_idle_timeout(2)
                .with_hard_timeout(10),
            Duration::ZERO,
        )
        .unwrap();
        assert_eq!(t.next_expiry(), Some(Duration::from_secs(2)));
        assert_eq!(t.expire(Duration::from_secs(2)), vec![1]);

        // Hard (3 s) beats idle (5 s) even when hits keep the rule warm.
        let mut t = FlowTable::new(0);
        t.apply(
            &add(pair(1, 2), 5, 1, 2)
                .with_idle_timeout(5)
                .with_hard_timeout(3),
            Duration::ZERO,
        )
        .unwrap();
        t.account(&pair(1, 2), 5, 64, Duration::from_millis(2900));
        assert!(t.expire(Duration::from_millis(2999)).is_empty());
        assert_eq!(t.expire(Duration::from_secs(3)), vec![2]);
    }

    #[test]
    fn expire_fast_path_skips_scan_and_reuses_buffer() {
        let mut t = FlowTable::new(0);
        // No timed entry: the bound is None and expiry is a no-op.
        t.apply(&add(pair(1, 2), 5, 1, 1), Duration::ZERO).unwrap();
        assert_eq!(t.next_expiry, None);
        let mut scratch = vec![99u64]; // stale content must be cleared
        t.expire_into(Duration::from_secs(100), &mut scratch);
        assert!(scratch.is_empty());

        // A timed entry arms the bound; before it, expiry returns early.
        t.apply(
            &add(pair(1, 3), 5, 1, 2).with_hard_timeout(5),
            Duration::ZERO,
        )
        .unwrap();
        assert_eq!(t.next_expiry, Some(Duration::from_secs(5)));
        t.expire_into(Duration::from_secs(4), &mut scratch);
        assert!(scratch.is_empty());
        assert_eq!(t.len(), 2);

        // Past the bound the entry goes and the bound clears.
        t.expire_into(Duration::from_secs(5), &mut scratch);
        assert_eq!(scratch, vec![2]);
        assert_eq!(t.next_expiry, None);

        // The buffer is reused, not reallocated, on the next call.
        let ptr = scratch.as_ptr();
        t.expire_into(Duration::from_secs(6), &mut scratch);
        assert!(scratch.is_empty());
        assert_eq!(scratch.as_ptr(), ptr);
    }

    #[test]
    fn expire_recomputes_bound_from_surviving_entries() {
        let mut t = FlowTable::new(0);
        t.apply(
            &add(pair(1, 2), 5, 1, 1).with_hard_timeout(1),
            Duration::ZERO,
        )
        .unwrap();
        t.apply(
            &add(pair(1, 3), 5, 1, 2).with_hard_timeout(10),
            Duration::ZERO,
        )
        .unwrap();
        assert_eq!(t.expire(Duration::from_secs(2)), vec![1]);
        assert_eq!(t.next_expiry, Some(Duration::from_secs(10)));
        assert_eq!(t.expire(Duration::from_secs(10)), vec![2]);
        assert!(t.is_empty());
    }

    #[test]
    fn peek_lookup_matches_lookup_without_counting() {
        let mut t = FlowTable::new(0);
        t.apply(&add(pair(1, 2), 5, 1, 42), Duration::ZERO).unwrap();
        assert_eq!(t.peek_lookup(&pkt(1, 2), 1).unwrap().cookie, 42);
        assert_eq!(t.lookup_count, 0);
    }
}
