//! Switch behaviour models.
//!
//! The model captures the timing characteristics the paper (and its
//! companion technical report \[7\]) measured on real hardware:
//!
//! * the control plane accepts flow modifications serially, at a rate that
//!   *decreases as the flow table fills* (roughly 250 mods/s when nearly
//!   empty, closer to 200 mods/s at 300 installed rules);
//! * the data plane (TCAM) is synchronised from the control plane
//!   *periodically*, so a rule accepted by the control plane becomes visible
//!   to traffic only at the next synchronisation point — typically 100 to
//!   300 ms later (the "three visible steps" of Figure 6 and the up-to-290 ms
//!   early barrier replies of Figure 1b);
//! * barrier replies may be sent as soon as the control plane has processed
//!   preceding messages (the buggy behaviour), only after the data plane has
//!   caught up (the faithful behaviour), or the switch may even reorder rule
//!   modifications across barriers;
//! * PacketIn and PacketOut processing is rate-limited (≈5 531/s and
//!   ≈7 006/s respectively) and steals a small amount of control-plane time
//!   from rule processing (≤13 % at a 5:1 PacketOut-to-FlowMod ratio).
//!
//! Time is plain [`std::time::Duration`]: the model is driver-agnostic and is
//! consumed both by the discrete-event simulator (`simnet` converts its
//! `SimTime` at the boundary) and by the real-socket switch host in
//! `rum-tcp`, which measures wall-clock time against its own epoch.

use std::time::Duration;

/// How the switch answers `BarrierRequest`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierMode {
    /// The specification-compliant behaviour: the reply is sent only after
    /// every preceding modification is active in the data plane.
    Faithful,
    /// The buggy-but-common behaviour: the reply is sent as soon as the
    /// control plane has processed preceding messages, even though the data
    /// plane may lag by hundreds of milliseconds.  Ordering across barriers
    /// is still respected.
    EarlyReply,
    /// The worst case: replies are early *and* the data plane may apply
    /// modifications in a different order than they were issued, even across
    /// barriers.
    EarlyReplyReordering,
}

impl BarrierMode {
    /// True if the mode honours ordering across barriers.
    pub fn preserves_order(&self) -> bool {
        !matches!(self, BarrierMode::EarlyReplyReordering)
    }

    /// True if barrier replies may precede data-plane visibility.
    pub fn replies_early(&self) -> bool {
        !matches!(self, BarrierMode::Faithful)
    }
}

/// The timing/behaviour model of an emulated switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchModel {
    /// Barrier behaviour.
    pub barrier_mode: BarrierMode,
    /// Control-plane processing time per flow modification when the table is
    /// empty.
    pub base_mod_time: Duration,
    /// Additional processing time per already-installed rule (models the
    /// occupancy-dependent slowdown).
    pub per_rule_slowdown: Duration,
    /// Interval between data-plane synchronisation points.
    pub dataplane_sync_period: Duration,
    /// Extra latency between a synchronisation point and the rules actually
    /// forwarding traffic (TCAM write + pipeline flush).
    pub dataplane_sync_latency: Duration,
    /// Maximum number of modifications pushed to the data plane per
    /// synchronisation (0 = unlimited).
    pub dataplane_sync_batch: usize,
    /// Control-plane processing time per `PacketOut`.
    pub packet_out_time: Duration,
    /// Control-plane processing time per generated `PacketIn`.
    pub packet_in_time: Duration,
    /// Minimum spacing between consecutive `PacketOut` executions
    /// (reciprocal of the maximum PacketOut rate).
    pub packet_out_interval: Duration,
    /// Minimum spacing between consecutive `PacketIn` emissions
    /// (reciprocal of the maximum PacketIn rate).
    pub packet_in_interval: Duration,
    /// One-way latency of the control channel between this switch and
    /// whatever terminates its OpenFlow connection (controller or proxy).
    pub control_latency: Duration,
    /// Flow-table capacity (0 = unbounded).
    pub table_capacity: usize,
}

impl SwitchModel {
    /// A specification-compliant switch: barriers are honest and the data
    /// plane is synchronised almost immediately.  This is the model used for
    /// the two software switches (S1, S3) in the paper's triangle testbed.
    pub fn faithful() -> Self {
        SwitchModel {
            barrier_mode: BarrierMode::Faithful,
            base_mod_time: Duration::from_micros(300),
            per_rule_slowdown: Duration::ZERO,
            dataplane_sync_period: Duration::from_micros(500),
            dataplane_sync_latency: Duration::from_micros(100),
            dataplane_sync_batch: 0,
            packet_out_time: Duration::from_micros(20),
            packet_in_time: Duration::from_micros(20),
            packet_out_interval: Duration::from_micros(30),
            packet_in_interval: Duration::from_micros(30),
            control_latency: Duration::from_micros(200),
            table_capacity: 0,
        }
    }

    /// The paper's hardware switch (HP 5406zl): early barrier replies, a
    /// ~250→200 mods/s occupancy-dependent modification rate, and a data
    /// plane that synchronises in coarse periodic steps so rules become
    /// visible 100–300 ms after the control plane accepted them.
    pub fn hp5406zl() -> Self {
        SwitchModel {
            barrier_mode: BarrierMode::EarlyReply,
            // 4 ms per modification at an empty table = 250 mods/s.
            base_mod_time: Duration::from_millis(4),
            // +1 ms at 300 rules -> 5 ms per mod = 200 mods/s, matching the
            // "adaptive 200 vs adaptive 250" behaviour of Figure 6.
            per_rule_slowdown: Duration::from_nanos(3_333),
            // Periodic data-plane sync: the source of the "steps" in Figure 6
            // and the 100–300 ms control/data-plane gap.
            dataplane_sync_period: Duration::from_millis(200),
            dataplane_sync_latency: Duration::from_millis(90),
            dataplane_sync_batch: 0,
            // 1/7006 s and 1/5531 s.
            packet_out_time: Duration::from_micros(100),
            packet_in_time: Duration::from_micros(30),
            packet_out_interval: Duration::from_nanos(142_735),
            packet_in_interval: Duration::from_nanos(180_800),
            control_latency: Duration::from_micros(500),
            table_capacity: 1500,
        }
    }

    /// A switch that reorders rule modifications across barriers in addition
    /// to replying early — the adversary the general-probing technique is
    /// designed for.
    pub fn reordering() -> Self {
        SwitchModel {
            barrier_mode: BarrierMode::EarlyReplyReordering,
            ..SwitchModel::hp5406zl()
        }
    }

    /// An HP-shaped model with every timing scaled down roughly 5x, so
    /// real-socket experiments (which run in wall-clock time) keep the same
    /// qualitative control/data-plane gap without taking minutes.  The gap
    /// (~50 ms) still dwarfs loopback socket latency by orders of magnitude.
    pub fn fast_buggy() -> Self {
        SwitchModel {
            barrier_mode: BarrierMode::EarlyReply,
            base_mod_time: Duration::from_micros(800),
            per_rule_slowdown: Duration::ZERO,
            dataplane_sync_period: Duration::from_millis(40),
            dataplane_sync_latency: Duration::from_millis(12),
            dataplane_sync_batch: 0,
            packet_out_time: Duration::from_micros(20),
            packet_in_time: Duration::from_micros(10),
            packet_out_interval: Duration::from_micros(30),
            packet_in_interval: Duration::from_micros(40),
            control_latency: Duration::from_micros(100),
            table_capacity: 1500,
        }
    }

    /// Control-plane processing time for one flow modification when
    /// `occupancy` rules are already installed.
    pub fn mod_processing_time(&self, occupancy: usize) -> Duration {
        self.base_mod_time + self.per_rule_slowdown * occupancy.min(u32::MAX as usize) as u32
    }

    /// The effective modification rate (mods/s) at a given occupancy.
    pub fn mod_rate(&self, occupancy: usize) -> f64 {
        1.0 / self.mod_processing_time(occupancy).as_secs_f64()
    }

    /// The maximum PacketOut rate implied by the model (messages/s).
    pub fn packet_out_rate(&self) -> f64 {
        1.0 / self.packet_out_interval.as_secs_f64()
    }

    /// The maximum PacketIn rate implied by the model (messages/s).
    pub fn packet_in_rate(&self) -> f64 {
        1.0 / self.packet_in_interval.as_secs_f64()
    }

    /// The worst-case lag between control-plane acceptance of a modification
    /// and its data-plane visibility (one full sync period plus the sync
    /// latency).  This is the bound the "delayed barrier acknowledgment"
    /// technique has to assume.
    pub fn worst_case_dataplane_lag(&self) -> Duration {
        self.dataplane_sync_period + self.dataplane_sync_latency
    }
}

impl Default for SwitchModel {
    fn default() -> Self {
        SwitchModel::faithful()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn barrier_mode_predicates() {
        assert!(!BarrierMode::Faithful.replies_early());
        assert!(BarrierMode::Faithful.preserves_order());
        assert!(BarrierMode::EarlyReply.replies_early());
        assert!(BarrierMode::EarlyReply.preserves_order());
        assert!(BarrierMode::EarlyReplyReordering.replies_early());
        assert!(!BarrierMode::EarlyReplyReordering.preserves_order());
    }

    #[test]
    fn hp_model_matches_published_rates() {
        let m = SwitchModel::hp5406zl();
        // ~250 mods/s on an empty table.
        assert!((m.mod_rate(0) - 250.0).abs() < 1.0);
        // ~200 mods/s once 300 rules are installed.
        let rate_at_300 = m.mod_rate(300);
        assert!(
            (195.0..=205.0).contains(&rate_at_300),
            "rate at 300 rules was {rate_at_300}"
        );
        // PacketOut/PacketIn ceilings close to the measured 7006/s and 5531/s.
        assert!((m.packet_out_rate() - 7006.0).abs() < 10.0);
        assert!((m.packet_in_rate() - 5531.0).abs() < 10.0);
        // Worst-case data-plane lag is in the observed 100–300 ms band.
        let lag = m.worst_case_dataplane_lag();
        assert!(lag >= Duration::from_millis(100) && lag <= Duration::from_millis(300));
    }

    #[test]
    fn faithful_model_is_fast_and_honest() {
        let m = SwitchModel::faithful();
        assert_eq!(m.barrier_mode, BarrierMode::Faithful);
        assert!(m.worst_case_dataplane_lag() < Duration::from_millis(1));
        assert!(m.mod_rate(0) > 1000.0);
        assert_eq!(SwitchModel::default(), m);
    }

    #[test]
    fn reordering_model_only_changes_barrier_mode() {
        let r = SwitchModel::reordering();
        let hp = SwitchModel::hp5406zl();
        assert_eq!(r.barrier_mode, BarrierMode::EarlyReplyReordering);
        assert_eq!(r.base_mod_time, hp.base_mod_time);
    }

    #[test]
    fn mod_time_grows_with_occupancy() {
        let m = SwitchModel::hp5406zl();
        assert!(m.mod_processing_time(1000) > m.mod_processing_time(0));
        assert_eq!(m.mod_processing_time(0), Duration::from_millis(4));
    }

    #[test]
    fn fast_buggy_keeps_the_qualitative_gap() {
        let m = SwitchModel::fast_buggy();
        assert!(m.barrier_mode.replies_early());
        // The control/data-plane gap must still dwarf loopback latency.
        assert!(m.worst_case_dataplane_lag() >= Duration::from_millis(20));
        assert!(m.worst_case_dataplane_lag() < SwitchModel::hp5406zl().worst_case_dataplane_lag());
    }
}
