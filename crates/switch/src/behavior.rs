//! The driver-agnostic switch behaviour engine.
//!
//! [`Behavior`] is the one place where "how does a (buggy) switch actually
//! behave" lives: the serial control plane, the periodically-synchronised
//! data plane, the three barrier modes, and a seedable [`FaultPlan`]
//! covering the paper's adversary space — silent rule drops, delayed
//! data-plane sync bursts, acknowledgment loss/duplication, and
//! control-channel disconnect with a table wipe (switch restart).
//!
//! It is a sans-IO state machine in the same style as `rum::RumEngine` and
//! `controller::UpdateSession`: drivers feed it decoded OpenFlow messages
//! plus the current time (a [`Duration`] since an arbitrary driver epoch)
//! and execute the [`BehaviorAction`]s it returns.  Two drivers share it:
//!
//! * `simnet::OpenFlowSwitch` — the discrete-event simulator node;
//! * `rum_tcp::switch_host` — the same switch served over a real TCP socket.
//!
//! Because every fault decision is a **pure hash of `(seed, cookie)`** — not
//! a draw from a sequential RNG — the same [`FaultPlan`] produces the same
//! set of silently-dropped rules and the same lost/duplicated barrier
//! replies on both drivers, regardless of their (different) message timing.
//! That is what makes cross-driver false-acknowledgment experiments
//! comparable: the adversary is identical, only the transport differs.
//!
//! The engine also keeps the **ground truth** ([`GroundTruth`]): a timeline
//! of every data-plane activation and removal.  An experiment classifies
//! each controller-side confirmation against it — a confirmation at time `t`
//! for a rule that was not active at `t` is a *false acknowledgment*, the
//! paper's headline failure mode.

use crate::flow_table::{FlowTable, FlowTableError};
use crate::model::{BarrierMode, SwitchModel};
use openflow::constants::error_type;
use openflow::messages::{
    ErrorMsg, FlowMod, FlowRemoved, FlowStatsEntry, StatsReply, StatsRequest, MAX_STATS_BODY,
};
use openflow::{Action, OfMatch, OfMessage, PacketHeader, PortNo, Xid};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::time::Duration;

// ---------------------------------------------------------------------
// Deterministic fault decisions
// ---------------------------------------------------------------------

/// SplitMix64: the finaliser is used as a keyed hash for every per-cookie
/// fault decision (order-independent), including the reordering adversary's
/// per-cookie deferrals and its application-order keys — no sequential RNG
/// remains, so the same seed misbehaves identically on both drivers
/// regardless of message timing.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Salts separating the fault decision domains.
const SALT_SILENT_DROP: u64 = 0x5D;
const SALT_ACK_LOSS: u64 = 0xAC;
const SALT_ACK_DUP: u64 = 0xD0;
const SALT_REORDER_DEFER: u64 = 0xDE;
const SALT_REORDER_KEY: u64 = 0x0D;
const SALT_STATS_DROP: u64 = 0x5A;
const SALT_STATS_TRUNC: u64 = 0x7C;

/// A deterministic, seedable description of how a switch misbehaves beyond
/// its timing model.  [`FaultPlan::none`] is a fault-free switch; every
/// field composes independently with the [`SwitchModel`]'s barrier mode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for every fault decision.  The same seed reproduces the same
    /// faults on any driver.
    pub seed: u64,
    /// Silently drop roughly one in this many accepted modifications before
    /// the data plane (0 = never).  The decision is a pure hash of
    /// `(seed, cookie)`.  Because the data-plane update queue is FIFO, the
    /// wedged modification also blocks everything accepted after it — the
    /// control plane keeps accepting and acknowledging, but nothing more
    /// reaches the TCAM until the switch restarts.  (This is the
    /// wedged-update-queue failure observed on real hardware; the control
    /// plane is none the wiser.)
    pub silent_drop_one_in: u32,
    /// Delay every n-th data-plane synchronisation by
    /// [`FaultPlan::sync_burst_extra`] (0 = never): the "delayed sync burst"
    /// where rules pile up and activate much later than any heuristic
    /// expects.
    pub sync_burst_every: u32,
    /// Extra latency applied to burst-delayed synchronisations.
    pub sync_burst_extra: Duration,
    /// Silently drop roughly one in this many barrier replies on the control
    /// channel (0 = never); hash of `(seed, xid)`.
    pub ack_loss_one_in: u32,
    /// Duplicate roughly one in this many barrier replies (0 = never); hash
    /// of `(seed, xid)`.
    pub ack_duplicate_one_in: u32,
    /// After accepting this many flow modifications, disconnect the control
    /// channel and wipe both tables — a switch restart.  `None` = never.
    pub restart_after_mods: Option<u64>,
    /// Silently swallow roughly one in this many flow-stats replies (0 =
    /// never); hash of `(seed, xid)`.  The reconciler's readback must
    /// re-request under backoff to make progress.
    pub stats_drop_one_in: u32,
    /// Truncate roughly one in this many flow-stats replies (0 = never) to
    /// the first half of their entries; hash of `(seed, xid)`.  A truncated
    /// readback makes installed rules look missing — the reconciler
    /// re-installs them (harmless) and converges on the next round.
    pub stats_truncate_one_in: u32,
    /// Answer flow-stats requests from the lagging *data-plane* table
    /// instead of the control-plane view — the stale snapshot a switch
    /// returns while a sync burst is still in flight.
    pub stats_stale_snapshot: bool,
}

impl FaultPlan {
    /// A fault-free plan (timing model only).
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            silent_drop_one_in: 0,
            sync_burst_every: 0,
            sync_burst_extra: Duration::ZERO,
            ack_loss_one_in: 0,
            ack_duplicate_one_in: 0,
            restart_after_mods: None,
            stats_drop_one_in: 0,
            stats_truncate_one_in: 0,
            stats_stale_snapshot: false,
        }
    }

    /// A fault-free plan carrying a seed (the seed still feeds the
    /// reordering shuffle of [`BarrierMode::EarlyReplyReordering`]).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::none()
        }
    }

    /// Fluent: silent drops, one in `one_in`.
    pub fn with_silent_drops(mut self, one_in: u32) -> Self {
        self.silent_drop_one_in = one_in;
        self
    }

    /// Fluent: every `every`-th sync delayed by `extra`.
    pub fn with_sync_bursts(mut self, every: u32, extra: Duration) -> Self {
        self.sync_burst_every = every;
        self.sync_burst_extra = extra;
        self
    }

    /// Fluent: barrier-reply loss, one in `one_in`.
    pub fn with_ack_loss(mut self, one_in: u32) -> Self {
        self.ack_loss_one_in = one_in;
        self
    }

    /// Fluent: barrier-reply duplication, one in `one_in`.
    pub fn with_ack_duplication(mut self, one_in: u32) -> Self {
        self.ack_duplicate_one_in = one_in;
        self
    }

    /// Fluent: restart (disconnect + table wipe) after `mods` modifications.
    pub fn with_restart_after(mut self, mods: u64) -> Self {
        self.restart_after_mods = Some(mods);
        self
    }

    /// Fluent: flow-stats-reply loss, one in `one_in`.
    pub fn with_stats_reply_loss(mut self, one_in: u32) -> Self {
        self.stats_drop_one_in = one_in;
        self
    }

    /// Fluent: flow-stats-reply truncation, one in `one_in`.
    pub fn with_stats_truncation(mut self, one_in: u32) -> Self {
        self.stats_truncate_one_in = one_in;
        self
    }

    /// Fluent: flow-stats answered from the lagging data-plane snapshot.
    pub fn with_stale_stats(mut self) -> Self {
        self.stats_stale_snapshot = true;
        self
    }

    /// Keyed per-value decision: true roughly one time in `one_in`.
    fn decide(&self, salt: u64, value: u64) -> bool {
        let one_in = match salt {
            SALT_SILENT_DROP => self.silent_drop_one_in,
            SALT_ACK_LOSS => self.ack_loss_one_in,
            SALT_ACK_DUP => self.ack_duplicate_one_in,
            SALT_STATS_DROP => self.stats_drop_one_in,
            SALT_STATS_TRUNC => self.stats_truncate_one_in,
            _ => 0,
        };
        if one_in == 0 {
            return false;
        }
        splitmix64(self.seed ^ salt.wrapping_mul(0x517C_C1B7_2722_0A95) ^ value)
            .is_multiple_of(u64::from(one_in))
    }

    /// True when the modification carrying `cookie` is silently dropped.
    pub fn drops_cookie(&self, cookie: u64) -> bool {
        self.decide(SALT_SILENT_DROP, cookie)
    }

    /// Reordering adversary: true when a ready modification is deferred to a
    /// later data-plane synchronisation on its `attempt`-th consideration
    /// (roughly one time in ten).  A pure hash of `(seed, cookie, attempt)`,
    /// so the deferral pattern — and with it the verdict grid — is identical
    /// on every driver.
    pub fn defers_cookie(&self, cookie: u64, attempt: u32) -> bool {
        splitmix64(
            self.seed
                ^ SALT_REORDER_DEFER.wrapping_mul(0x517C_C1B7_2722_0A95)
                ^ cookie
                ^ (u64::from(attempt) << 40),
        )
        .is_multiple_of(10)
    }

    /// Reordering adversary: the deterministic application-order key of a
    /// cookie within one synchronisation batch (lower key applies first).
    fn reorder_key(&self, cookie: u64) -> u64 {
        splitmix64(self.seed ^ SALT_REORDER_KEY.wrapping_mul(0x517C_C1B7_2722_0A95) ^ cookie)
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

// ---------------------------------------------------------------------
// Ground truth
// ---------------------------------------------------------------------

/// One data-plane state change, as the behaviour engine recorded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruthEvent {
    /// When it happened (driver epoch).
    pub at: Duration,
    /// The rule's cookie.
    pub cookie: u64,
    /// True = the rule became active, false = it was removed.
    pub activated: bool,
}

/// How a single confirmation compares against the data-plane ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfirmVerdict {
    /// The rule was active in the data plane when the confirmation was
    /// issued.
    TrueAck,
    /// The rule was **not** active at confirmation time (it activated later,
    /// or never) — the unreliable acknowledgment the paper is about.
    FalseAck,
}

/// The data-plane timeline of one switch: every activation and removal, in
/// order, plus the modifications the fault plan silently discarded.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroundTruth {
    /// Every activation/removal, in time order.
    pub events: Vec<TruthEvent>,
    /// Cookies accepted by the control plane that will never reach the data
    /// plane (the hash-selected wedge point, plus everything queued behind
    /// it when the run ended).
    pub wedged: Vec<u64>,
}

impl GroundTruth {
    /// True if `cookie` was active in the data plane at time `t`.
    pub fn active_at(&self, cookie: u64, t: Duration) -> bool {
        let mut active = false;
        for e in &self.events {
            if e.at > t {
                break;
            }
            if e.cookie == cookie {
                active = e.activated;
            }
        }
        active
    }

    /// First activation time of `cookie`, if it ever activated.
    pub fn first_activation(&self, cookie: u64) -> Option<Duration> {
        self.events
            .iter()
            .find(|e| e.cookie == cookie && e.activated)
            .map(|e| e.at)
    }

    /// Classifies a confirmation issued at `t` for `cookie`.
    pub fn classify(&self, cookie: u64, t: Duration) -> ConfirmVerdict {
        if self.active_at(cookie, t) {
            ConfirmVerdict::TrueAck
        } else {
            ConfirmVerdict::FalseAck
        }
    }
}

// ---------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------

/// What the engine asks its driver to do.  Actions are returned in
/// non-decreasing `at` order per call; `at` may lie in the future (control
/// plane busy time, data-plane sync latency) and the driver delivers or
/// records the action no earlier than that instant.
#[derive(Debug, Clone, PartialEq)]
pub enum BehaviorAction {
    /// Send `message` on the control channel, no earlier than `at`.
    Reply {
        /// Earliest send time (driver epoch).
        at: Duration,
        /// The message.
        message: OfMessage,
    },
    /// The rule with `cookie` became active in the data plane at `at`
    /// (observational: also recorded in [`GroundTruth`]).
    Activated {
        /// Activation time.
        at: Duration,
        /// The rule's cookie.
        cookie: u64,
    },
    /// The rule with `cookie` left the data plane at `at`.
    Deactivated {
        /// Removal time.
        at: Duration,
        /// The rule's cookie.
        cookie: u64,
    },
    /// The switch restarted: both tables were wiped, all pending work was
    /// discarded, and the control channel must be torn down by the driver.
    /// Drivers that model reconnection call [`Behavior::reattach`] later,
    /// which replays the OpenFlow handshake (the switch-side `Hello`).
    Restarted {
        /// When the restart happened.
        at: Duration,
    },
}

/// What the data plane decided about one packet.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketVerdict {
    /// The header after the matched rule's rewrites (unchanged on a miss).
    pub rewritten: PacketHeader,
    /// Output ports, in action order.  May contain OpenFlow special ports
    /// (`CONTROLLER`, `FLOOD`, ...) that the driver interprets.
    pub outputs: Vec<PortNo>,
    /// False = table miss.
    pub matched: bool,
}

/// Message counters of one behaviour instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BehaviorCounters {
    /// Flow modifications accepted by the control plane.
    pub flow_mods: u64,
    /// Modifications rejected with an error.
    pub errors: u64,
    /// Barrier requests processed.
    pub barriers: u64,
    /// Barrier replies suppressed by the ack-loss fault.
    pub replies_lost: u64,
    /// Barrier replies duplicated by the ack-duplication fault.
    pub replies_duplicated: u64,
    /// Modifications silently wedged (never to reach the data plane).
    pub silently_dropped: u64,
    /// Data-plane synchronisations delayed by a burst.
    pub sync_bursts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Reattachments after a restart ([`Behavior::reattach`]).
    pub reattaches: u64,
    /// Rules removed by an idle or hard timeout.
    pub rules_expired: u64,
    /// Flow-stats requests answered by the engine.
    pub flow_stats: u64,
    /// Flow-stats replies suppressed by the stats-loss fault.
    pub stats_replies_lost: u64,
    /// Flow-stats replies truncated by the truncation fault.
    pub stats_replies_truncated: u64,
    /// `FlowRemoved` notifications sent for expired `SEND_FLOW_REM` rules.
    pub flow_removed_sent: u64,
}

/// A modification accepted by the control plane, waiting for the data plane.
#[derive(Debug, Clone)]
struct PendingOp {
    seq: u64,
    ready_at: Duration,
    flow_mod: FlowMod,
    /// How many synchronisations have already considered (and deferred) this
    /// op — the reordering adversary's per-cookie deferral counter.
    defer_count: u32,
}

/// A barrier whose reply is withheld until the data plane catches up
/// (faithful mode only).
#[derive(Debug, Clone, Copy)]
struct PendingBarrier {
    xid: Xid,
    threshold_seq: u64,
    earliest_reply: Duration,
}

/// The shared switch-behaviour state machine (see module docs).
#[derive(Debug)]
pub struct Behavior {
    model: SwitchModel,
    faults: FaultPlan,
    control: FlowTable,
    data: FlowTable,

    pending: Vec<PendingOp>,
    in_flight: VecDeque<(Duration, Vec<PendingOp>)>,
    pending_barriers: Vec<PendingBarrier>,

    busy_until: Duration,
    next_sync_at: Duration,
    sync_count: u64,
    next_op_seq: u64,
    /// Set when a silent drop wedged the data-plane queue: ops at or past
    /// this sequence never sync.
    wedged_at_seq: Option<u64>,
    mods_accepted: u64,
    disconnected: bool,
    /// Reusable buffer for table-expiry sweeps.
    expiry_buf: Vec<u64>,

    truth: GroundTruth,
    counters: BehaviorCounters,
}

impl Behavior {
    /// Creates a behaviour instance from a timing model and a fault plan.
    pub fn new(model: SwitchModel, faults: FaultPlan) -> Self {
        let capacity = model.table_capacity;
        let next_sync_at = model.dataplane_sync_period;
        Behavior {
            model,
            faults,
            control: FlowTable::new(capacity),
            data: FlowTable::new(capacity),
            pending: Vec::new(),
            in_flight: VecDeque::new(),
            pending_barriers: Vec::new(),
            busy_until: Duration::ZERO,
            next_sync_at,
            sync_count: 0,
            next_op_seq: 0,
            wedged_at_seq: None,
            mods_accepted: 0,
            disconnected: false,
            expiry_buf: Vec::new(),
            truth: GroundTruth::default(),
            counters: BehaviorCounters::default(),
        }
    }

    /// The timing model.
    pub fn model(&self) -> &SwitchModel {
        &self.model
    }

    /// The fault plan.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The control-plane view of the flow table.
    pub fn control_table(&self) -> &FlowTable {
        &self.control
    }

    /// The data-plane view of the flow table.
    pub fn data_table(&self) -> &FlowTable {
        &self.data
    }

    /// Message counters.
    pub fn counters(&self) -> &BehaviorCounters {
        &self.counters
    }

    /// The recorded data-plane timeline.
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.truth
    }

    /// Accepted modifications not yet visible in the data plane.
    pub fn dataplane_backlog(&self) -> usize {
        self.pending.len() + self.in_flight.iter().map(|(_, v)| v.len()).sum::<usize>()
    }

    /// When the control-plane CPU becomes free.
    pub fn busy_until(&self) -> Duration {
        self.busy_until
    }

    /// True once the restart fault tore the control channel down.
    pub fn disconnected(&self) -> bool {
        self.disconnected
    }

    /// Installs a rule directly into both tables, bypassing the control
    /// channel and all timing/fault models.  Used to pre-install state
    /// before an experiment starts, like the paper pre-installs the initial
    /// paths.
    pub fn preinstall(&mut self, fm: &FlowMod) {
        let _ = self.control.apply(fm, Duration::ZERO);
        let _ = self.data.apply(fm, Duration::ZERO);
    }

    /// Reserves control-plane CPU time and returns the completion instant.
    /// Public so drivers can account driver-level work (PacketOut/PacketIn
    /// processing) against the same serial CPU.
    pub fn consume_cpu(&mut self, now: Duration, cost: Duration) -> Duration {
        let start = self.busy_until.max(now);
        self.busy_until = start + cost;
        self.busy_until
    }

    /// The next instant at which [`Behavior::advance`] has work to do, if
    /// any: a data-plane sync, an in-flight batch application, a rule
    /// timeout, or a withheld barrier becoming answerable.
    pub fn next_deadline(&self) -> Option<Duration> {
        let mut deadline: Option<Duration> = None;
        let mut consider = |d: Duration| {
            deadline = Some(deadline.map_or(d, |cur| cur.min(d)));
        };
        if !self.pending.is_empty() || !self.pending_barriers.is_empty() {
            consider(self.next_sync_at);
        }
        if let Some(&(apply_at, _)) = self.in_flight.front() {
            consider(apply_at);
        }
        if let Some(expiry) = self.data.next_expiry() {
            consider(expiry);
        }
        if let Some(expiry) = self.control.next_expiry() {
            consider(expiry);
        }
        deadline
    }

    /// Processes everything scheduled up to `now`: data-plane sync ticks,
    /// in-flight batch applications, and faithful-barrier releases.
    /// Idempotent; drivers call it before handling any input and whenever
    /// [`Behavior::next_deadline`] passes.
    pub fn advance(&mut self, now: Duration, out: &mut Vec<BehaviorAction>) {
        // Idle fast path: with nothing pending, sync ticks are pure clock
        // advancement — jump over them arithmetically instead of looping
        // (drivers may call advance after long idle gaps).
        if self.pending.is_empty()
            && self.in_flight.is_empty()
            && self.pending_barriers.is_empty()
            && self.next_sync_at <= now
        {
            let period = self
                .model
                .dataplane_sync_period
                .max(Duration::from_nanos(1));
            let steps = ((now - self.next_sync_at).as_nanos() / period.as_nanos()) as u64 + 1;
            self.sync_count += steps;
            self.next_sync_at += period * steps.min(u64::from(u32::MAX)) as u32;
        }
        loop {
            // Apply any in-flight batch due before the next sync tick, and
            // interleave rule-timeout sweeps at their exact deadlines.
            let apply_due = self
                .in_flight
                .front()
                .map(|&(at, _)| at)
                .filter(|&at| at <= now);
            let sync_due = (self.next_sync_at <= now).then_some(self.next_sync_at);
            let expiry_due = match (self.data.next_expiry(), self.control.next_expiry()) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            }
            .filter(|&at| at <= now);
            // Ties resolve apply → sync → expiry, preserving the original
            // apply/sync ordering.
            if let Some(at) = apply_due.filter(|&at| {
                sync_due.is_none_or(|t| at <= t) && expiry_due.is_none_or(|t| at <= t)
            }) {
                self.apply_front(at, out);
            } else if let Some(tick) = sync_due.filter(|&t| expiry_due.is_none_or(|e| t <= e)) {
                self.sync_tick(tick, out);
            } else if let Some(at) = expiry_due {
                self.expire_step(at, out);
            } else {
                break;
            }
        }
    }

    /// One rule-timeout sweep at absolute time `at`: the control plane drops
    /// its expired entries silently, the data plane's expirations are
    /// visible deactivations recorded in the ground truth.  The sweep time
    /// comes from the tables' own deadline bounds, so truth events carry the
    /// exact expiry instant even when the driver advances in large steps.
    fn expire_step(&mut self, at: Duration, out: &mut Vec<BehaviorAction>) {
        let mut buf = std::mem::take(&mut self.expiry_buf);
        // Control-plane expiry drives the controller-facing `FlowRemoved`
        // notification for rules installed with `OFPFF_SEND_FLOW_REM` (the
        // model lets each table age independently; their deadlines differ
        // only by the sync lag, far below the seconds-granularity timeouts).
        // Only *data-plane* expirations below are visible deactivations.
        let disconnected = self.disconnected;
        let counters = &mut self.counters;
        let removed: &mut Vec<BehaviorAction> = out;
        self.control.expire_with(at, |e| {
            if !e.send_flow_removed || disconnected {
                return;
            }
            counters.flow_removed_sent += 1;
            let alive = at.saturating_sub(e.installed_at);
            removed.push(BehaviorAction::Reply {
                at,
                message: OfMessage::FlowRemoved {
                    xid: 0,
                    body: FlowRemoved {
                        match_: e.match_,
                        cookie: e.cookie,
                        priority: e.priority,
                        reason: e.expiry_reason(at),
                        duration_sec: alive.as_secs() as u32,
                        duration_nsec: alive.subsec_nanos(),
                        idle_timeout: e.idle_timeout,
                        packet_count: e.packet_count,
                        byte_count: e.byte_count,
                    },
                },
            });
        });
        self.data.expire_into(at, &mut buf);
        for &cookie in &buf {
            self.counters.rules_expired += 1;
            self.truth.events.push(TruthEvent {
                at,
                cookie,
                activated: false,
            });
            out.push(BehaviorAction::Deactivated { at, cookie });
        }
        self.expiry_buf = buf;
    }

    /// Fast-forwards model time until every applicable (non-wedged)
    /// accepted modification has reached the data plane, and returns the
    /// instant the engine settled at.  Used by drivers at teardown so the
    /// final report reflects everything the control plane accepted — even
    /// work whose sync was burst-delayed far into the future.
    pub fn settle(&mut self, now: Duration, out: &mut Vec<BehaviorAction>) -> Duration {
        self.advance(now, out);
        let mut settled_at = now;
        loop {
            let wedge = self.wedged_at_seq.unwrap_or(u64::MAX);
            let live_pending = self.pending.iter().any(|op| op.seq < wedge);
            if self.in_flight.is_empty() && !live_pending {
                return settled_at;
            }
            let Some(deadline) = self.next_deadline() else {
                return settled_at;
            };
            settled_at = settled_at.max(deadline);
            self.advance(settled_at, out);
        }
    }

    /// One data-plane synchronisation at absolute time `tick`.
    fn sync_tick(&mut self, tick: Duration, out: &mut Vec<BehaviorAction>) {
        self.sync_count += 1;
        self.next_sync_at = tick + self.model.dataplane_sync_period;

        // Select accepted operations the control plane has digested and the
        // wedge has not swallowed.
        let wedge = self.wedged_at_seq.unwrap_or(u64::MAX);
        let mut ready: Vec<PendingOp> = Vec::new();
        let mut remaining: Vec<PendingOp> = Vec::new();
        for op in self.pending.drain(..) {
            if op.ready_at <= tick && op.seq < wedge {
                ready.push(op);
            } else {
                remaining.push(op);
            }
        }
        self.pending = remaining;

        if self.model.barrier_mode == BarrierMode::EarlyReplyReordering {
            // The reordering switch may defer a subset of ready operations
            // to a later synchronisation and applies the rest in an
            // arbitrary order — modifications can overtake each other across
            // barriers.  Both decisions are pure `(seed, cookie)` hashes
            // (the deferral additionally keyed by how often the op was
            // already considered), so the adversary — like every other fault
            // — misbehaves identically on both drivers.
            let mut kept = Vec::new();
            let mut deferred = Vec::new();
            for mut op in ready {
                if self
                    .faults
                    .defers_cookie(op.flow_mod.cookie, op.defer_count)
                {
                    op.defer_count += 1;
                    deferred.push(op);
                } else {
                    kept.push(op);
                }
            }
            kept.sort_by_key(|op| self.faults.reorder_key(op.flow_mod.cookie));
            self.pending.extend(deferred);
            ready = kept;
        } else {
            ready.sort_by_key(|op| op.seq);
        }

        if self.model.dataplane_sync_batch != 0 && ready.len() > self.model.dataplane_sync_batch {
            let overflow = ready.split_off(self.model.dataplane_sync_batch);
            self.pending.extend(overflow);
        }

        if !ready.is_empty() {
            let mut latency = self.model.dataplane_sync_latency;
            if self.faults.sync_burst_every != 0
                && self
                    .sync_count
                    .is_multiple_of(u64::from(self.faults.sync_burst_every))
            {
                // A delayed sync burst: this batch reaches the TCAM much
                // later than the model's nominal latency.
                latency += self.faults.sync_burst_extra;
                self.counters.sync_bursts += 1;
            }
            let apply_at = tick + latency;
            // Keep the in-flight queue ordered by application time (a burst
            // can overtake a later, non-burst sync otherwise — real TCAM
            // write queues do not reorder, so neither do we).
            let pos = self
                .in_flight
                .iter()
                .position(|&(at, _)| at > apply_at)
                .unwrap_or(self.in_flight.len());
            self.in_flight.insert(pos, (apply_at, ready));
        }
        // Barriers may become answerable when the backlog empties.
        self.flush_satisfied_barriers(tick, out);
    }

    /// Applies the front in-flight batch (due at `at`) to the data plane.
    fn apply_front(&mut self, at: Duration, out: &mut Vec<BehaviorAction>) {
        let Some((_, ops)) = self.in_flight.pop_front() else {
            return;
        };
        for op in ops {
            match self.data.apply(&op.flow_mod, at) {
                Ok(outcome) => {
                    for cookie in outcome.activated {
                        self.truth.events.push(TruthEvent {
                            at,
                            cookie,
                            activated: true,
                        });
                        out.push(BehaviorAction::Activated { at, cookie });
                    }
                    for cookie in outcome.removed {
                        self.truth.events.push(TruthEvent {
                            at,
                            cookie,
                            activated: false,
                        });
                        out.push(BehaviorAction::Deactivated { at, cookie });
                    }
                }
                Err(_) => {
                    // The control plane already accepted the mod; a data
                    // plane failure here would be a capacity mismatch.
                    // Nothing sensible to report beyond dropping it.
                }
            }
        }
        self.flush_satisfied_barriers(at, out);
    }

    /// Handles one control-plane message.  Returns true when the engine
    /// consumed it; liveness and driver-level messages (echo, stats,
    /// PacketOut, ...) return false and stay with the driver.
    pub fn handle_message(
        &mut self,
        now: Duration,
        msg: &OfMessage,
        out: &mut Vec<BehaviorAction>,
    ) -> bool {
        match msg {
            OfMessage::FlowMod { xid, body } => {
                self.on_flow_mod(now, *xid, body.clone(), out);
                true
            }
            OfMessage::BarrierRequest { xid } => {
                self.on_barrier(now, *xid, out);
                true
            }
            OfMessage::StatsRequest {
                xid,
                body: StatsRequest::Flow { match_, .. },
            } => {
                self.on_flow_stats(now, *xid, match_, out);
                true
            }
            _ => false,
        }
    }

    /// Answers a flow-stats request from the live table, fragmenting the
    /// reply when it overflows one message and running it through the
    /// stats-targeted faults (reply loss, truncation, stale snapshot).
    pub fn on_flow_stats(
        &mut self,
        now: Duration,
        xid: Xid,
        match_: &OfMatch,
        out: &mut Vec<BehaviorAction>,
    ) {
        if self.disconnected {
            return;
        }
        self.counters.flow_stats += 1;
        let done_at = self.consume_cpu(now, Duration::from_micros(100));
        if self.faults.decide(SALT_STATS_DROP, u64::from(xid)) {
            self.counters.stats_replies_lost += 1;
            return;
        }
        // The stale-snapshot fault reads the lagging data-plane table — what
        // a switch reports while a sync burst is still in flight.
        let table = if self.faults.stats_stale_snapshot {
            &self.data
        } else {
            &self.control
        };
        let mut entries: Vec<FlowStatsEntry> = table
            .entries()
            .filter(|e| match_.covers(&e.match_))
            .map(|e| FlowStatsEntry {
                table_id: 0,
                match_: e.match_,
                duration_sec: now.saturating_sub(e.installed_at).as_secs() as u32,
                duration_nsec: now.saturating_sub(e.installed_at).subsec_nanos(),
                priority: e.priority,
                idle_timeout: e.idle_timeout,
                hard_timeout: e.hard_timeout,
                cookie: e.cookie,
                packet_count: e.packet_count,
                byte_count: e.byte_count,
                actions: e.actions.clone(),
            })
            .collect();
        if self.faults.decide(SALT_STATS_TRUNC, u64::from(xid)) && !entries.is_empty() {
            self.counters.stats_replies_truncated += 1;
            entries.truncate(entries.len().div_ceil(2));
        }
        for message in StatsReply::flow_fragments(xid, entries, MAX_STATS_BODY) {
            out.push(BehaviorAction::Reply {
                at: done_at,
                message,
            });
        }
    }

    /// Handles a flow modification arriving at `now`.
    pub fn on_flow_mod(
        &mut self,
        now: Duration,
        xid: Xid,
        fm: FlowMod,
        out: &mut Vec<BehaviorAction>,
    ) {
        if self.disconnected {
            return;
        }
        let occupancy = self.control.len();
        let done_at = self.consume_cpu(now, self.model.mod_processing_time(occupancy));

        match self.control.apply(&fm, now) {
            Ok(_) => {
                self.counters.flow_mods += 1;
                let seq = self.next_op_seq;
                self.next_op_seq += 1;
                let cookie = fm.cookie;
                if self.wedged_at_seq.is_none() && self.faults.drops_cookie(cookie) {
                    // The wedge: this op and everything behind it never
                    // reaches the data plane (FIFO update queue).
                    self.wedged_at_seq = Some(seq);
                    self.counters.silently_dropped += 1;
                    self.truth.wedged.push(cookie);
                } else if self.wedged_at_seq.is_some() {
                    self.truth.wedged.push(cookie);
                }
                self.pending.push(PendingOp {
                    seq,
                    ready_at: done_at,
                    flow_mod: fm,
                    defer_count: 0,
                });
                self.mods_accepted += 1;
                if self.faults.restart_after_mods == Some(self.mods_accepted) {
                    self.restart(done_at, out);
                }
            }
            Err(err) => {
                self.counters.errors += 1;
                out.push(BehaviorAction::Reply {
                    at: done_at,
                    message: OfMessage::Error {
                        xid,
                        body: ErrorMsg {
                            err_type: error_type::FLOW_MOD_FAILED,
                            code: flow_table_error_code(err),
                            data: Vec::new(),
                        },
                    },
                });
            }
        }
    }

    /// Handles a barrier request arriving at `now`.
    pub fn on_barrier(&mut self, now: Duration, xid: Xid, out: &mut Vec<BehaviorAction>) {
        if self.disconnected {
            return;
        }
        self.counters.barriers += 1;
        // Processing the barrier itself is cheap but still serialised behind
        // earlier control-plane work.
        let control_done = self.consume_cpu(now, Duration::from_micros(50));
        match self.model.barrier_mode {
            BarrierMode::EarlyReply | BarrierMode::EarlyReplyReordering => {
                // The buggy behaviour: reply once the *control plane* has
                // digested earlier commands, regardless of the data plane.
                self.emit_barrier_reply(control_done, xid, out);
            }
            BarrierMode::Faithful => {
                self.pending_barriers.push(PendingBarrier {
                    xid,
                    threshold_seq: self.next_op_seq,
                    earliest_reply: control_done,
                });
                // If nothing is outstanding the reply can go out right away.
                self.flush_satisfied_barriers(now, out);
            }
        }
    }

    /// Emits a barrier reply through the ack-loss / ack-duplication faults.
    fn emit_barrier_reply(&mut self, at: Duration, xid: Xid, out: &mut Vec<BehaviorAction>) {
        if self.faults.decide(SALT_ACK_LOSS, u64::from(xid)) {
            self.counters.replies_lost += 1;
            return;
        }
        out.push(BehaviorAction::Reply {
            at,
            message: OfMessage::BarrierReply { xid },
        });
        if self.faults.decide(SALT_ACK_DUP, u64::from(xid)) {
            self.counters.replies_duplicated += 1;
            out.push(BehaviorAction::Reply {
                at,
                message: OfMessage::BarrierReply { xid },
            });
        }
    }

    fn flush_satisfied_barriers(&mut self, now: Duration, out: &mut Vec<BehaviorAction>) {
        if self.pending_barriers.is_empty() {
            return;
        }
        let min_outstanding = self
            .pending
            .iter()
            .map(|op| op.seq)
            .chain(
                self.in_flight
                    .iter()
                    .flat_map(|(_, ops)| ops.iter().map(|op| op.seq)),
            )
            .min();
        let barriers = std::mem::take(&mut self.pending_barriers);
        for b in barriers {
            let satisfied = match min_outstanding {
                None => true,
                Some(min_seq) => min_seq >= b.threshold_seq,
            };
            if satisfied {
                self.emit_barrier_reply(b.earliest_reply.max(now), b.xid, out);
            } else {
                self.pending_barriers.push(b);
            }
        }
    }

    /// The restart fault: wipe both tables, discard pending work, and ask
    /// the driver to tear the control channel down (the explicit
    /// [`BehaviorAction::Restarted`] event).
    fn restart(&mut self, at: Duration, out: &mut Vec<BehaviorAction>) {
        self.counters.restarts += 1;
        for cookie in self.wipe_tables() {
            self.truth.events.push(TruthEvent {
                at,
                cookie,
                activated: false,
            });
            out.push(BehaviorAction::Deactivated { at, cookie });
        }
        self.pending.clear();
        self.in_flight.clear();
        self.pending_barriers.clear();
        self.wedged_at_seq = None;
        self.disconnected = true;
        out.push(BehaviorAction::Restarted { at });
    }

    /// Reattaches a restarted switch at `now`: the control plane accepts
    /// messages again, the data-plane synchronisation clock restarts from
    /// the reboot instant, and the switch replays the OpenFlow handshake by
    /// emitting its side's `Hello` (drivers deliver it on the fresh control
    /// channel; the peer answers with its own `Hello`).  A no-op unless the
    /// engine is disconnected.
    pub fn reattach(&mut self, now: Duration, out: &mut Vec<BehaviorAction>) {
        if !self.disconnected {
            return;
        }
        self.disconnected = false;
        self.counters.reattaches += 1;
        self.busy_until = self.busy_until.max(now);
        self.next_sync_at = now + self.model.dataplane_sync_period;
        out.push(BehaviorAction::Reply {
            at: now,
            message: OfMessage::Hello { xid: 0 },
        });
    }

    fn wipe_tables(&mut self) -> Vec<u64> {
        let cookies: Vec<u64> = self.data.entries().map(|e| e.cookie).collect();
        let capacity = self.model.table_capacity;
        self.control = FlowTable::new(capacity);
        self.data = FlowTable::new(capacity);
        cookies
    }

    /// Data-plane lookup for one packet at time `now`: finds the matching
    /// rule (lagging data-plane view), accounts the hit — counters plus the
    /// per-rule last-hit time that drives idle timeouts — and returns the
    /// rewritten header plus output ports for the driver to interpret.
    pub fn classify_packet(
        &mut self,
        now: Duration,
        header: &PacketHeader,
        in_port: PortNo,
        size: usize,
    ) -> PacketVerdict {
        let hit = self
            .data
            .lookup(header, in_port)
            .map(|e| (e.match_, e.priority, e.actions.clone()));
        match hit {
            None => PacketVerdict {
                rewritten: *header,
                outputs: Vec::new(),
                matched: false,
            },
            Some((match_, priority, actions)) => {
                self.data.account(&match_, priority, size, now);
                // Keep the control-plane view's counters and idle clock in
                // step: flow-stats replies read the control table, and a rule
                // the data plane keeps hitting must not idle out of the
                // control plane.
                self.control.account(&match_, priority, size, now);
                let (rewritten, outputs) = Action::apply_list(&actions, header);
                PacketVerdict {
                    rewritten,
                    outputs,
                    matched: true,
                }
            }
        }
    }
}

fn flow_table_error_code(err: FlowTableError) -> u16 {
    err.error_code()
}

/// Convenience: a map from cookie to confirmation time, classified against a
/// ground truth.  Returns `(false_acks, true_acks)` cookie lists.
pub fn classify_confirmations(
    truth: &GroundTruth,
    confirmations: &HashMap<u64, Duration>,
) -> (Vec<u64>, Vec<u64>) {
    let mut false_acks = Vec::new();
    let mut true_acks = Vec::new();
    for (&cookie, &at) in confirmations {
        match truth.classify(cookie, at) {
            ConfirmVerdict::FalseAck => false_acks.push(cookie),
            ConfirmVerdict::TrueAck => true_acks.push(cookie),
        }
    }
    false_acks.sort_unstable();
    true_acks.sort_unstable();
    (false_acks, true_acks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::OfMatch;
    use std::net::Ipv4Addr;

    fn fm(i: u8, cookie: u64) -> FlowMod {
        FlowMod::add(
            OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, i), Ipv4Addr::new(10, 1, 0, i)),
            100,
            vec![Action::output(2)],
        )
        .with_cookie(cookie)
    }

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    /// Runs `b.advance` far enough in the future that everything settles.
    fn settle(b: &mut Behavior, out: &mut Vec<BehaviorAction>) {
        b.advance(Duration::from_secs(600), out);
    }

    #[test]
    fn early_reply_answers_before_data_plane_activation() {
        let mut b = Behavior::new(SwitchModel::hp5406zl(), FaultPlan::none());
        let mut out = Vec::new();
        b.on_flow_mod(ms(1), 1, fm(1, 11), &mut out);
        b.on_barrier(ms(1), 99, &mut out);
        let reply_at = out
            .iter()
            .find_map(|a| match a {
                BehaviorAction::Reply {
                    at,
                    message: OfMessage::BarrierReply { xid: 99 },
                } => Some(*at),
                _ => None,
            })
            .expect("early barrier reply");
        settle(&mut b, &mut out);
        let act_at = b.ground_truth().first_activation(11).expect("activated");
        assert!(
            reply_at < act_at,
            "buggy barrier ({reply_at:?}) must precede activation ({act_at:?})"
        );
        // The published 100-300 ms band.
        assert!(act_at - reply_at >= ms(50));
        assert!(act_at - reply_at <= ms(310));
        // And the confirmation classifier calls it out.
        assert_eq!(
            b.ground_truth().classify(11, reply_at),
            ConfirmVerdict::FalseAck
        );
        assert_eq!(
            b.ground_truth().classify(11, act_at),
            ConfirmVerdict::TrueAck
        );
    }

    #[test]
    fn faithful_barrier_waits_for_data_plane() {
        let mut b = Behavior::new(SwitchModel::faithful(), FaultPlan::none());
        let mut out = Vec::new();
        b.on_flow_mod(ms(1), 1, fm(1, 11), &mut out);
        b.on_barrier(ms(1), 99, &mut out);
        settle(&mut b, &mut out);
        let reply_at = out
            .iter()
            .find_map(|a| match a {
                BehaviorAction::Reply {
                    at,
                    message: OfMessage::BarrierReply { xid: 99 },
                } => Some(*at),
                _ => None,
            })
            .expect("faithful barrier reply");
        let act_at = b.ground_truth().first_activation(11).unwrap();
        assert!(reply_at >= act_at, "{reply_at:?} vs {act_at:?}");
        assert_eq!(
            b.ground_truth().classify(11, reply_at),
            ConfirmVerdict::TrueAck
        );
    }

    #[test]
    fn data_plane_lags_then_converges() {
        let mut b = Behavior::new(SwitchModel::hp5406zl(), FaultPlan::none());
        let mut out = Vec::new();
        for i in 0..50u64 {
            b.on_flow_mod(ms(1), i as Xid, fm(i as u8, 100 + i), &mut out);
        }
        b.advance(ms(150), &mut out);
        assert_eq!(b.control_table().len(), 50);
        assert!(b.data_table().len() < 50, "data plane must lag");
        settle(&mut b, &mut out);
        assert_eq!(b.data_table().len(), 50);
        assert_eq!(b.dataplane_backlog(), 0);
        assert_eq!(b.counters().flow_mods, 50);
    }

    #[test]
    fn silent_drop_wedges_the_update_queue_deterministically() {
        let faults = FaultPlan::seeded(7).with_silent_drops(4);
        // Find the first wedging cookie for this seed.
        let wedge = (0..64u64).find(|&c| faults.drops_cookie(c)).unwrap();
        let mut b = Behavior::new(SwitchModel::hp5406zl(), faults.clone());
        let mut out = Vec::new();
        for c in 0..=wedge + 3 {
            b.on_flow_mod(ms(1), c as Xid, fm(c as u8, c), &mut out);
        }
        settle(&mut b, &mut out);
        // Everything before the wedge activated, nothing at or after it.
        for c in 0..wedge {
            assert!(
                b.ground_truth().first_activation(c).is_some(),
                "cookie {c} (before the wedge at {wedge}) must activate"
            );
        }
        for c in wedge..=wedge + 3 {
            assert!(b.ground_truth().first_activation(c).is_none());
            assert!(b.ground_truth().wedged.contains(&c));
        }
        // Control plane is none the wiser.
        assert_eq!(b.control_table().len() as u64, wedge + 4);
        assert_eq!(b.counters().silently_dropped, 1);

        // A second instance with the same plan wedges identically.
        let mut b2 = Behavior::new(SwitchModel::hp5406zl(), faults);
        let mut out2 = Vec::new();
        // Different arrival timing, same verdicts.
        for c in 0..=wedge + 3 {
            b2.on_flow_mod(ms(5 + c), c as Xid, fm(c as u8, c), &mut out2);
        }
        settle(&mut b2, &mut out2);
        assert_eq!(b.ground_truth().wedged, b2.ground_truth().wedged);
    }

    #[test]
    fn sync_bursts_delay_activation_beyond_the_nominal_worst_case() {
        let model = SwitchModel::hp5406zl();
        let nominal = model.worst_case_dataplane_lag();
        let faults = FaultPlan::seeded(3).with_sync_bursts(1, ms(800));
        let mut b = Behavior::new(model, faults);
        let mut out = Vec::new();
        b.on_flow_mod(ms(1), 1, fm(1, 42), &mut out);
        settle(&mut b, &mut out);
        let act = b.ground_truth().first_activation(42).unwrap();
        assert!(
            act > ms(1) + nominal,
            "burst-delayed activation ({act:?}) must exceed the nominal bound ({nominal:?})"
        );
        assert!(b.counters().sync_bursts >= 1);
    }

    #[test]
    fn ack_loss_and_duplication_are_per_xid_deterministic() {
        let faults = FaultPlan::seeded(11)
            .with_ack_loss(3)
            .with_ack_duplication(3);
        let mut b = Behavior::new(SwitchModel::hp5406zl(), faults.clone());
        let mut out = Vec::new();
        for xid in 0..60u32 {
            b.on_barrier(ms(1), xid, &mut out);
        }
        let replies: Vec<Xid> = out
            .iter()
            .filter_map(|a| match a {
                BehaviorAction::Reply {
                    message: OfMessage::BarrierReply { xid },
                    ..
                } => Some(*xid),
                _ => None,
            })
            .collect();
        assert!(b.counters().replies_lost > 0, "some replies must be lost");
        assert!(
            b.counters().replies_duplicated > 0,
            "some replies must be duplicated"
        );
        assert_eq!(
            replies.len() as u64,
            60 - b.counters().replies_lost + b.counters().replies_duplicated
        );
        // Decisions depend only on (seed, xid): a fresh instance agrees.
        let mut b2 = Behavior::new(SwitchModel::hp5406zl(), faults);
        let mut out2 = Vec::new();
        for xid in (0..60u32).rev() {
            b2.on_barrier(ms(2), xid, &mut out2);
        }
        assert_eq!(b.counters().replies_lost, b2.counters().replies_lost);
        assert_eq!(
            b.counters().replies_duplicated,
            b2.counters().replies_duplicated
        );
    }

    /// `settle` must drain burst-delayed batches too: the apply time can
    /// exceed any fixed multiple of the nominal worst-case lag.
    #[test]
    fn settle_drains_burst_delayed_batches() {
        let model = SwitchModel::hp5406zl();
        let faults = FaultPlan::seeded(9).with_sync_bursts(1, Duration::from_secs(5));
        let mut b = Behavior::new(model, faults);
        let mut out = Vec::new();
        b.on_flow_mod(ms(1), 1, fm(1, 7), &mut out);
        let settled_at = b.settle(ms(2), &mut out);
        assert_eq!(b.data_table().len(), 1, "burst batch applied");
        assert_eq!(b.dataplane_backlog(), 0);
        assert!(settled_at >= Duration::from_secs(5));
        assert!(b.ground_truth().first_activation(7).is_some());

        // Wedged work does not keep settle spinning.
        let faults = FaultPlan::seeded(7).with_silent_drops(1); // wedge everything
        let mut b = Behavior::new(SwitchModel::hp5406zl(), faults);
        let mut out = Vec::new();
        b.on_flow_mod(ms(1), 1, fm(1, 8), &mut out);
        b.settle(ms(2), &mut out);
        assert_eq!(b.data_table().len(), 0);
        assert!(b.ground_truth().wedged.contains(&8));
    }

    #[test]
    fn restart_wipes_tables_and_disconnects() {
        let faults = FaultPlan::seeded(1).with_restart_after(3);
        let mut b = Behavior::new(SwitchModel::faithful(), faults);
        let mut out = Vec::new();
        for c in 0..2u64 {
            b.on_flow_mod(ms(1), c as Xid, fm(c as u8, c), &mut out);
        }
        b.advance(ms(500), &mut out);
        assert_eq!(b.data_table().len(), 2);
        b.on_flow_mod(ms(501), 2, fm(2, 2), &mut out);
        assert!(b.disconnected());
        assert!(out
            .iter()
            .any(|a| matches!(a, BehaviorAction::Restarted { .. })));
        assert_eq!(b.control_table().len(), 0);
        assert_eq!(b.data_table().len(), 0);
        assert_eq!(b.counters().restarts, 1);
        // The wipe is visible in the ground truth as deactivations.
        assert!(!b.ground_truth().active_at(0, ms(600)));
        // Further messages are ignored.
        let before = out.len();
        b.on_flow_mod(ms(700), 9, fm(9, 9), &mut out);
        b.on_barrier(ms(700), 10, &mut out);
        assert_eq!(out.len(), before);
    }

    /// Reattach replays the handshake (switch-side Hello), re-opens the
    /// control plane and restarts the sync clock; work accepted after the
    /// reattach converges into the data plane like on a fresh switch.
    #[test]
    fn reattach_replays_handshake_and_reconverges() {
        let faults = FaultPlan::seeded(1).with_restart_after(1);
        let mut b = Behavior::new(SwitchModel::faithful(), faults);
        let mut out = Vec::new();
        b.on_flow_mod(ms(1), 1, fm(1, 1), &mut out);
        assert!(b.disconnected());

        // Reattach is idempotent on a connected engine.
        out.clear();
        b.reattach(ms(900), &mut out);
        let hello = out
            .iter()
            .find_map(|a| match a {
                BehaviorAction::Reply {
                    at,
                    message: OfMessage::Hello { .. },
                } => Some(*at),
                _ => None,
            })
            .expect("reattach must replay the switch-side Hello");
        assert_eq!(hello, ms(900));
        assert!(!b.disconnected());
        assert_eq!(b.counters().reattaches, 1);
        let before = out.len();
        b.reattach(ms(901), &mut out);
        assert_eq!(
            out.len(),
            before,
            "reattach on a connected engine is a no-op"
        );
        assert_eq!(b.counters().reattaches, 1);

        // The control plane accepts modifications again and they reach the
        // data plane on the restarted sync clock.
        b.on_flow_mod(ms(910), 2, fm(2, 2), &mut out);
        b.settle(ms(911), &mut out);
        assert_eq!(b.control_table().len(), 1);
        assert_eq!(b.data_table().len(), 1);
        let act = b.ground_truth().first_activation(2).expect("reconverged");
        assert!(act >= ms(900), "activation must postdate the reattach");
        // Only one restart fires even though the mod counter keeps running.
        assert_eq!(b.counters().restarts, 1);
        assert!(!b.disconnected());
    }

    /// Idle timeouts fire from the last data-plane hit; hard timeouts from
    /// installation — whichever comes first wins, and the expiry is visible
    /// as a ground-truth deactivation at the exact deadline.
    #[test]
    fn idle_timeout_expires_unhit_rules_through_the_engine() {
        let mut b = Behavior::new(SwitchModel::faithful(), FaultPlan::none());
        let mut out = Vec::new();
        b.on_flow_mod(ms(1), 1, fm(1, 7).with_idle_timeout(2), &mut out);
        b.advance(ms(100), &mut out);
        assert_eq!(b.data_table().len(), 1);
        let deadline = b.next_deadline().expect("idle deadline armed");
        assert!(deadline >= Duration::from_secs(2));

        // A hit at t = 1.5 s pushes the idle deadline out.
        let header = PacketHeader::ipv4_udp(
            openflow::MacAddr::from_id(1),
            openflow::MacAddr::from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 1, 0, 1),
            1,
            2,
        );
        let verdict = b.classify_packet(Duration::from_millis(1500), &header, 1, 64);
        assert!(verdict.matched);
        b.advance(Duration::from_millis(3400), &mut out);
        assert_eq!(b.data_table().len(), 1, "hit must postpone the idle expiry");
        b.advance(Duration::from_secs(4), &mut out);
        assert_eq!(b.data_table().len(), 0);
        assert_eq!(b.control_table().len(), 0, "control view ages too");
        assert!(b.counters().rules_expired >= 1);
        let removal = out
            .iter()
            .find_map(|a| match a {
                BehaviorAction::Deactivated { at, cookie: 7 } => Some(*at),
                _ => None,
            })
            .expect("expiry is a visible deactivation");
        assert_eq!(removal, Duration::from_millis(3500), "last hit + 2 s");
        assert!(!b.ground_truth().active_at(7, Duration::from_secs(4)));

        // Idle-vs-hard precedence inside the engine: hard 1 s beats idle 5 s.
        let mut b = Behavior::new(SwitchModel::faithful(), FaultPlan::none());
        let mut out = Vec::new();
        b.on_flow_mod(
            ms(1),
            1,
            fm(2, 8).with_idle_timeout(5).with_hard_timeout(1),
            &mut out,
        );
        b.advance(Duration::from_secs(3), &mut out);
        let removal = out
            .iter()
            .find_map(|a| match a {
                BehaviorAction::Deactivated { at, cookie: 8 } => Some(*at),
                _ => None,
            })
            .expect("hard expiry fires");
        assert!(
            removal <= Duration::from_millis(1005),
            "hard wins: {removal:?}"
        );
    }

    #[test]
    fn reordering_applies_out_of_order_but_deterministically_per_seed() {
        let run = |seed: u64| -> Vec<u64> {
            let mut b = Behavior::new(SwitchModel::reordering(), FaultPlan::seeded(seed));
            let mut out = Vec::new();
            for c in 0..20u64 {
                b.on_flow_mod(ms(1), c as Xid, fm(c as u8, c), &mut out);
            }
            settle(&mut b, &mut out);
            out.iter()
                .filter_map(|a| match a {
                    BehaviorAction::Activated { cookie, .. } => Some(*cookie),
                    _ => None,
                })
                .collect()
        };
        let a = run(5);
        let b = run(5);
        let c = run(6);
        assert_eq!(a, b, "same seed, same order");
        assert_eq!(a.len(), 20);
        assert!(
            a != (0..20).collect::<Vec<_>>() || c != (0..20).collect::<Vec<_>>(),
            "at least one seed must visibly reorder"
        );
    }

    #[test]
    fn classify_packet_matches_and_rewrites() {
        let mut b = Behavior::new(SwitchModel::faithful(), FaultPlan::none());
        b.preinstall(&fm(1, 5));
        let header = PacketHeader::ipv4_udp(
            openflow::MacAddr::from_id(1),
            openflow::MacAddr::from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 1, 0, 1),
            1,
            2,
        );
        let verdict = b.classify_packet(Duration::ZERO, &header, 1, 64);
        assert!(verdict.matched);
        assert_eq!(verdict.outputs, vec![2]);
        let miss = b.classify_packet(
            Duration::ZERO,
            &PacketHeader::ipv4_udp(
                openflow::MacAddr::from_id(1),
                openflow::MacAddr::from_id(2),
                Ipv4Addr::new(9, 9, 9, 9),
                Ipv4Addr::new(9, 9, 9, 8),
                1,
                2,
            ),
            1,
            64,
        );
        assert!(!miss.matched);
        assert!(miss.outputs.is_empty());
    }

    #[test]
    fn table_full_produces_error_reply() {
        let mut model = SwitchModel::faithful();
        model.table_capacity = 1;
        let mut b = Behavior::new(model, FaultPlan::none());
        let mut out = Vec::new();
        b.on_flow_mod(ms(1), 1, fm(1, 1), &mut out);
        b.on_flow_mod(ms(2), 2, fm(2, 2), &mut out);
        let errors = out
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    BehaviorAction::Reply {
                        message: OfMessage::Error { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(errors, 1);
        assert_eq!(b.counters().errors, 1);
    }

    #[test]
    fn classify_confirmations_splits_true_and_false() {
        let truth = GroundTruth {
            events: vec![TruthEvent {
                at: ms(100),
                cookie: 1,
                activated: true,
            }],
            wedged: vec![2],
        };
        let mut confirmations = HashMap::new();
        confirmations.insert(1u64, ms(150)); // after activation: true
        confirmations.insert(2u64, ms(150)); // wedged: false
        let (false_acks, true_acks) = classify_confirmations(&truth, &confirmations);
        assert_eq!(false_acks, vec![2]);
        assert_eq!(true_acks, vec![1]);
    }
}
