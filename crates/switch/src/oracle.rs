//! The original linear-scan flow table, kept as a **reference oracle**.
//!
//! [`LinearFlowTable`] is the pre-index implementation of
//! [`crate::FlowTable`]: a plain `Vec` scanned on every operation.  It is
//! deliberately simple — every rule of OpenFlow 1.0 table semantics is
//! spelled out in one obvious loop — which makes it the ground truth the
//! randomized property tests compare the indexed table against, and the
//! baseline the flow-mod throughput benchmarks measure speedups from.  It is
//! not used on any production path.

use crate::flow_table::{FlowEntry, FlowModOutcome, FlowTableError};
use openflow::constants::{flow_mod_flags, port as of_port};
use openflow::messages::{FlowMod, FlowModCommand};
use openflow::{OfMatch, PacketHeader, PortNo};
use std::time::Duration;

/// An OpenFlow 1.0 flow table backed by a linear scan (the reference
/// implementation; see the module docs).
#[derive(Debug, Clone, Default)]
pub struct LinearFlowTable {
    entries: Vec<FlowEntry>,
    max_entries: usize,
    /// Lookups performed (for table stats).
    pub lookup_count: u64,
    /// Lookups that matched (for table stats).
    pub matched_count: u64,
}

impl LinearFlowTable {
    /// Creates a table bounded at `max_entries` rules (0 = unbounded).
    pub fn new(max_entries: usize) -> Self {
        LinearFlowTable {
            entries: Vec::new(),
            max_entries,
            lookup_count: 0,
            matched_count: 0,
        }
    }

    /// Number of installed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no entries are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of entries (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.max_entries
    }

    /// Iterates over the installed entries.
    pub fn entries(&self) -> impl Iterator<Item = &FlowEntry> {
        self.entries.iter()
    }

    /// Finds the entry exactly matching `match_` and `priority` (strict
    /// semantics).
    pub fn find_strict(&self, match_: &OfMatch, priority: u16) -> Option<&FlowEntry> {
        self.entries
            .iter()
            .find(|e| e.priority == priority && e.match_ == *match_)
    }

    /// Looks up the highest-priority entry matching a packet, first
    /// installed winning ties.
    pub fn lookup(&mut self, pkt: &PacketHeader, in_port: PortNo) -> Option<&FlowEntry> {
        self.lookup_count += 1;
        let mut best: Option<usize> = None;
        for (i, e) in self.entries.iter().enumerate() {
            if !e.match_.matches(pkt, in_port) {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) if e.priority > self.entries[b].priority => best = Some(i),
                _ => {}
            }
        }
        if best.is_some() {
            self.matched_count += 1;
        }
        best.map(move |i| &self.entries[i])
    }

    /// Same as [`LinearFlowTable::lookup`] but without statistics updates.
    pub fn peek_lookup(&self, pkt: &PacketHeader, in_port: PortNo) -> Option<&FlowEntry> {
        let mut best: Option<&FlowEntry> = None;
        for e in &self.entries {
            if !e.match_.matches(pkt, in_port) {
                continue;
            }
            match best {
                None => best = Some(e),
                Some(b) if e.priority > b.priority => best = Some(e),
                _ => {}
            }
        }
        best
    }

    /// Credits a matched packet to an entry (counters + idle-timeout clock).
    pub fn account(&mut self, match_: &OfMatch, priority: u16, bytes: usize, now: Duration) {
        if let Some(e) = self
            .entries
            .iter_mut()
            .find(|e| e.priority == priority && e.match_ == *match_)
        {
            e.packet_count += 1;
            e.byte_count += bytes as u64;
            e.last_hit = e.last_hit.max(now);
        }
    }

    /// Applies a flow-mod, returning which cookies were activated/removed.
    pub fn apply(&mut self, fm: &FlowMod, now: Duration) -> Result<FlowModOutcome, FlowTableError> {
        match fm.command {
            FlowModCommand::Add => self.apply_add(fm, now),
            FlowModCommand::Modify => self.apply_modify(fm, now, false),
            FlowModCommand::ModifyStrict => self.apply_modify(fm, now, true),
            FlowModCommand::Delete => Ok(self.apply_delete(fm, false)),
            FlowModCommand::DeleteStrict => Ok(self.apply_delete(fm, true)),
        }
    }

    fn apply_add(&mut self, fm: &FlowMod, now: Duration) -> Result<FlowModOutcome, FlowTableError> {
        if fm.flags & flow_mod_flags::CHECK_OVERLAP != 0 {
            let overlapping = self
                .entries
                .iter()
                .any(|e| e.priority == fm.priority && e.match_.overlaps(&fm.match_));
            if overlapping {
                return Err(FlowTableError::Overlap);
            }
        }
        // Per the spec, an ADD with an identical match and priority replaces
        // the existing entry (counters reset).
        let mut outcome = FlowModOutcome::default();
        if let Some(pos) = self
            .entries
            .iter()
            .position(|e| e.priority == fm.priority && e.match_ == fm.match_)
        {
            let old = self.entries.remove(pos);
            if old.cookie != fm.cookie {
                outcome.removed.push(old.cookie);
            }
        } else if self.max_entries != 0 && self.entries.len() >= self.max_entries {
            return Err(FlowTableError::TableFull);
        }
        outcome.activated.push(fm.cookie);
        self.entries.push(FlowEntry::from_flow_mod(fm, now));
        Ok(outcome)
    }

    fn apply_modify(
        &mut self,
        fm: &FlowMod,
        now: Duration,
        strict: bool,
    ) -> Result<FlowModOutcome, FlowTableError> {
        let mut outcome = FlowModOutcome::default();
        let mut any = false;
        for e in self.entries.iter_mut() {
            let selected = if strict {
                e.priority == fm.priority && e.match_ == fm.match_
            } else {
                fm.match_.covers(&e.match_)
            };
            if selected {
                e.actions = fm.actions.clone();
                // MODIFY does not reset counters or timeouts, per spec.
                outcome.activated.push(fm.cookie);
                any = true;
            }
        }
        if !any {
            // A modify that matches nothing behaves like an ADD.
            return self.apply_add(fm, now);
        }
        Ok(outcome)
    }

    fn apply_delete(&mut self, fm: &FlowMod, strict: bool) -> FlowModOutcome {
        let mut outcome = FlowModOutcome::default();
        let out_port_filter = fm.out_port;
        self.entries.retain(|e| {
            let selected = if strict {
                e.priority == fm.priority && e.match_ == fm.match_
            } else {
                fm.match_.covers(&e.match_)
            };
            let port_ok = out_port_filter == of_port::NONE || e.outputs_to(out_port_filter);
            if selected && port_ok {
                outcome.removed.push(e.cookie);
                false
            } else {
                true
            }
        });
        outcome
    }

    /// Removes entries whose idle or hard timeout expired (earliest deadline
    /// wins); returns their cookies.
    pub fn expire(&mut self, now: Duration) -> Vec<u64> {
        let mut expired = Vec::new();
        self.entries.retain(|e| {
            if e.expiry_deadline().is_some_and(|deadline| now >= deadline) {
                expired.push(e.cookie);
                false
            } else {
                true
            }
        });
        expired
    }
}
