//! Driver-agnostic OpenFlow 1.0 switch semantics.
//!
//! The paper's central observation is that real switches (their HP 5406zl in
//! particular) acknowledge rule modifications on the control plane long
//! before the rules are actually active in the data plane, and that some
//! switches additionally reorder modifications across barriers.  This crate
//! is the one place that misbehaviour is modelled — as a pure library with
//! no simulator or socket dependencies, so the discrete-event simulator
//! (`simnet::OpenFlowSwitch`) and the real-socket host
//! (`rum_tcp::switch_host`) drive the *same* state machine:
//!
//! * [`flow_table`] — OpenFlow 1.0 flow-table semantics (priorities, strict
//!   vs. loose modify/delete, overlap checking, counters), indexed so
//!   lookups, strict operations and bulk installs are sub-linear.
//! * [`oracle`] — the original linear-scan table, kept as the reference
//!   implementation for property tests and throughput baselines.
//! * [`model`] — the timing model: control-plane processing rate (occupancy
//!   dependent), periodic data-plane synchronisation, barrier modes
//!   (faithful, early-reply, reordering), and PacketIn/PacketOut rate
//!   limits — all calibrated to the characteristics published for the
//!   HP 5406zl in the paper and its companion technical report.
//! * [`behavior`] — the sans-IO behaviour engine combining tables + model
//!   with a deterministic, seedable [`FaultPlan`] (silent rule drops,
//!   delayed sync bursts, ack loss/duplication, restart with table wipe),
//!   and the [`GroundTruth`] timeline used to classify acknowledgments as
//!   true or false.
//!
//! Time throughout is [`std::time::Duration`] since an arbitrary driver
//! epoch — simulation start or wall-clock process start, the engine only
//! compares and adds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod flow_table;
pub mod model;
pub mod oracle;

pub use behavior::{
    classify_confirmations, Behavior, BehaviorAction, BehaviorCounters, ConfirmVerdict, FaultPlan,
    GroundTruth, PacketVerdict, TruthEvent,
};
pub use flow_table::{FlowEntry, FlowModOutcome, FlowTable};
pub use model::{BarrierMode, SwitchModel};
pub use oracle::LinearFlowTable;
