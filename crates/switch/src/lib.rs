//! A software OpenFlow 1.0 switch with configurable control/data-plane
//! behaviour models.
//!
//! The paper's central observation is that real switches (their HP 5406zl in
//! particular) acknowledge rule modifications on the control plane long
//! before the rules are actually active in the data plane, and that some
//! switches additionally reorder modifications across barriers.  This crate
//! reproduces that behaviour as a simulated switch:
//!
//! * [`flow_table`] — OpenFlow 1.0 flow-table semantics (priorities, strict
//!   vs. loose modify/delete, overlap checking, counters), indexed so
//!   lookups, strict operations and bulk installs are sub-linear.
//! * [`oracle`] — the original linear-scan table, kept as the reference
//!   implementation for property tests and throughput baselines.
//! * [`model`] — the switch behaviour model: control-plane processing rate
//!   (occupancy dependent), periodic data-plane synchronisation, barrier
//!   modes (faithful, early-reply, reordering), and PacketIn/PacketOut rate
//!   limits — all calibrated to the characteristics published for the
//!   HP 5406zl in the paper and its companion technical report.
//! * [`switch`] — the [`switch::OpenFlowSwitch`] simulation node that speaks
//!   OpenFlow on its control channel and forwards data-plane packets using
//!   the (lagging) data-plane table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flow_table;
pub mod model;
pub mod oracle;
pub mod switch;

pub use flow_table::{FlowEntry, FlowModOutcome, FlowTable};
pub use model::{BarrierMode, SwitchModel};
pub use oracle::LinearFlowTable;
pub use switch::OpenFlowSwitch;
