//! Property test: the indexed [`FlowTable`] is observationally identical to
//! the linear-scan reference oracle ([`LinearFlowTable`]) under randomized
//! flow-mod sequences — adds (with and without CHECK_OVERLAP and idle/hard
//! timeouts), strict and loose modifies and deletes (with out-port filters),
//! expiry sweeps, packet lookups and counter accounting.

use ofswitch::{FlowTable, LinearFlowTable};
use openflow::messages::{FlowMod, FlowModCommand};
use openflow::{Action, MacAddr, OfMatch, PacketHeader};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;
use std::time::Duration;

fn packet(rng: &mut SmallRng) -> PacketHeader {
    let a = rng.gen_index(4) as u8 + 1;
    let b = rng.gen_index(4) as u8 + 1;
    let mut pkt = PacketHeader::ipv4_udp(
        MacAddr::from_id(1),
        MacAddr::from_id(2),
        Ipv4Addr::new(10, 0, 0, a),
        Ipv4Addr::new(10, 0, b, 1),
        1000 + rng.gen_index(2) as u16,
        2000 + rng.gen_index(3) as u16,
    );
    // Occasionally flip ECN bits so the exact index's DSCP canonicalisation
    // is exercised.
    pkt.nw_tos = (rng.gen_index(3) as u8) << 2 | rng.gen_index(4) as u8;
    pkt
}

/// A match drawn from a deliberately small pool so adds, strict operations
/// and overlap checks collide often.
fn random_match(rng: &mut SmallRng) -> OfMatch {
    match rng.gen_index(5) {
        0 => {
            // Fully exact match derived from a plausible packet.
            let pkt = packet(rng);
            OfMatch::exact_from_packet(&pkt, rng.gen_index(3) as u16)
        }
        1 => OfMatch::ipv4_pair(
            Ipv4Addr::new(10, 0, 0, rng.gen_index(4) as u8 + 1),
            Ipv4Addr::new(10, 0, rng.gen_index(4) as u8 + 1, 1),
        ),
        2 => OfMatch::wildcard_all()
            .with_nw_src_prefix(Ipv4Addr::new(10, 0, 0, 0), [8, 16, 24][rng.gen_index(3)]),
        3 => OfMatch::wildcard_all().with_tp_dst(2000 + rng.gen_index(3) as u16),
        _ => OfMatch::wildcard_all(),
    }
}

fn random_flow_mod(rng: &mut SmallRng, next_cookie: &mut u64) -> FlowMod {
    let match_ = random_match(rng);
    let priority = [1u16, 5, 9][rng.gen_index(3)];
    let port = rng.gen_index(4) as u16 + 1;
    let cookie = {
        *next_cookie += 1;
        *next_cookie
    };
    match rng.gen_index(8) {
        // Adds dominate: bulk install is the hot path under test.
        0..=3 => {
            let mut fm =
                FlowMod::add(match_, priority, vec![Action::output(port)]).with_cookie(cookie);
            if rng.gen_bool(0.25) {
                fm = fm.with_check_overlap();
            }
            if rng.gen_bool(0.3) {
                fm = fm.with_hard_timeout(rng.gen_index(3) as u16 + 1);
            }
            if rng.gen_bool(0.3) {
                fm = fm.with_idle_timeout(rng.gen_index(3) as u16 + 1);
            }
            fm
        }
        4 => {
            FlowMod::modify_strict(match_, priority, vec![Action::output(port)]).with_cookie(cookie)
        }
        5 => FlowMod {
            command: FlowModCommand::Modify,
            ..FlowMod::add(match_, priority, vec![Action::output(port)]).with_cookie(cookie)
        },
        6 => {
            let mut fm = FlowMod::delete_strict(match_, priority);
            if rng.gen_bool(0.3) {
                fm.out_port = rng.gen_index(4) as u16 + 1;
            }
            fm
        }
        _ => {
            let mut fm = FlowMod::delete(match_);
            if rng.gen_bool(0.3) {
                fm.out_port = rng.gen_index(4) as u16 + 1;
            }
            fm
        }
    }
}

fn assert_same_state(indexed: &FlowTable, oracle: &LinearFlowTable, seed: u64, step: usize) {
    assert_eq!(
        indexed.len(),
        oracle.len(),
        "length diverged (seed {seed}, step {step})"
    );
    // Full observational check: the entry sequences (installation order,
    // every field) must be identical.
    let a: Vec<_> = indexed.entries().collect();
    let b: Vec<_> = oracle.entries().collect();
    assert_eq!(a, b, "entry sequences diverged (seed {seed}, step {step})");
}

#[test]
fn indexed_table_matches_linear_oracle() {
    for seed in 0..12u64 {
        let mut rng = SmallRng::seed_from_u64(0x000F_100D + seed);
        // Half the runs use a small capacity so TableFull paths are hit too.
        let cap = if seed % 2 == 0 { 0 } else { 12 };
        let mut indexed = FlowTable::new(cap);
        let mut oracle = LinearFlowTable::new(cap);
        let mut now = Duration::ZERO;
        let mut cookie = 0u64;

        for step in 0..400 {
            now += Duration::from_millis(rng.gen_range_u64(400));
            match rng.gen_index(10) {
                // Mostly flow-mods...
                0..=6 => {
                    let fm = random_flow_mod(&mut rng, &mut cookie);
                    let ra = indexed.apply(&fm, now);
                    let rb = oracle.apply(&fm, now);
                    assert_eq!(ra, rb, "apply outcome diverged (seed {seed}, step {step})");
                }
                // ... with lookups, accounting and expiry mixed in.
                7 => {
                    let pkt = packet(&mut rng);
                    let in_port = rng.gen_index(3) as u16;
                    assert_eq!(
                        indexed.peek_lookup(&pkt, in_port),
                        oracle.peek_lookup(&pkt, in_port),
                        "peek_lookup diverged (seed {seed}, step {step})"
                    );
                    assert_eq!(
                        indexed.lookup(&pkt, in_port).cloned(),
                        oracle.lookup(&pkt, in_port).cloned(),
                        "lookup diverged (seed {seed}, step {step})"
                    );
                    assert_eq!(indexed.lookup_count, oracle.lookup_count);
                    assert_eq!(indexed.matched_count, oracle.matched_count);
                }
                8 => {
                    let m = random_match(&mut rng);
                    let priority = [1u16, 5, 9][rng.gen_index(3)];
                    assert_eq!(
                        indexed.find_strict(&m, priority),
                        oracle.find_strict(&m, priority),
                        "find_strict diverged (seed {seed}, step {step})"
                    );
                    indexed.account(&m, priority, 64, now);
                    oracle.account(&m, priority, 64, now);
                }
                _ => {
                    assert_eq!(
                        indexed.expire(now),
                        oracle.expire(now),
                        "expire diverged (seed {seed}, step {step})"
                    );
                }
            }
            assert_same_state(&indexed, &oracle, seed, step);
        }
        // Final expiry far in the future drains every timed entry the same
        // way on both implementations.
        let later = now + Duration::from_secs(3600);
        assert_eq!(indexed.expire(later), oracle.expire(later));
        assert_same_state(&indexed, &oracle, seed, usize::MAX);
    }
}
