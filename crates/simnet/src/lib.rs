//! Deterministic discrete-event network simulator.
//!
//! The paper evaluates RUM on a physical testbed (an HP 5406zl hardware
//! switch, two software switches and two traffic hosts).  This crate is the
//! substitute substrate: a deterministic discrete-event simulation (DES)
//! engine with a topology of nodes connected by latency links, traffic
//! generators, and a measurement layer that records exactly the observables
//! the paper plots — when each flow's packets stop being delivered over the
//! old path, when they start arriving over the new one, when rules become
//! active in a switch's data plane, and when the controller believes they
//! are active.
//!
//! Everything is single-threaded and seeded, so every experiment is exactly
//! reproducible; event ties are broken by insertion order.
//!
//! Module map:
//! * [`time`] — nanosecond-resolution simulation clock.
//! * [`event`] — the event queue.
//! * [`node`] — the [`node::Node`] trait implemented by hosts, switches, the
//!   RUM proxy and controllers.
//! * [`ofnode`] — the simulated OpenFlow switch: a thin driver of the
//!   deployment-agnostic `ofswitch::Behavior` engine.
//! * [`engine`] — the simulator main loop and the [`engine::Context`] handed
//!   to nodes.
//! * [`topology`] — data-plane links between (node, port) pairs.
//! * [`packet`] — the simulated packet (header + bookkeeping metadata).
//! * [`traffic`] — per-flow constant-rate traffic generators (hosts).
//! * [`measure`] — trace events and the analyses that turn them into the
//!   paper's figures (broken time, activation delay, drop counts).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod measure;
pub mod node;
pub mod ofnode;
pub mod packet;
pub mod time;
pub mod topology;
pub mod traffic;

pub use engine::{Context, Simulator};
pub use event::EventPayload;
pub use measure::{FlowId, TraceEvent, TraceSink};
pub use node::{Node, NodeId};
pub use ofnode::OpenFlowSwitch;
pub use packet::SimPacket;
pub use time::SimTime;
pub use topology::Topology;
