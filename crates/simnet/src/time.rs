//! Simulation time.
//!
//! [`SimTime`] is a nanosecond-resolution instant/duration hybrid (the same
//! type is used for both, like `std::time::Duration`).  The paper reports
//! timings at millisecond granularity with a 4 ms measurement precision;
//! nanosecond resolution keeps rounding errors out of the reproduction.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time (or a duration), in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds a time from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Builds a time from fractional seconds (rounds to nanoseconds).
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s * 1e9).round().max(0.0) as u64)
    }

    /// The value in nanoseconds.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// The value in whole microseconds (truncating).
    pub const fn as_micros(&self) -> u64 {
        self.0 / 1_000
    }

    /// The value in whole milliseconds (truncating).
    pub const fn as_millis(&self) -> u64 {
        self.0 / 1_000_000
    }

    /// The value in fractional seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The value in fractional milliseconds.
    pub fn as_millis_f64(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked addition.
    pub fn checked_add(self, other: SimTime) -> Option<SimTime> {
        self.0.checked_add(other.0).map(SimTime)
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// The signed difference `self - other` in fractional milliseconds.
    ///
    /// Used for the paper's Figure 8, where negative values mean the control
    /// plane claimed completion *before* the data plane caught up.
    pub fn signed_delta_millis(self, other: SimTime) -> f64 {
        (self.0 as i128 - other.0 as i128) as f64 / 1e6
    }
}

impl From<SimTime> for std::time::Duration {
    fn from(t: SimTime) -> Self {
        std::time::Duration::from_nanos(t.0)
    }
}

impl From<std::time::Duration> for SimTime {
    fn from(d: std::time::Duration) -> Self {
        SimTime(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{}us", self.as_micros())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2000);
        assert_eq!(SimTime::from_secs_f64(0.001).as_micros(), 1000);
        assert!((SimTime::from_millis(250).as_secs_f64() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!(a + b, SimTime::from_millis(14));
        assert_eq!(a - b, SimTime::from_millis(6));
        assert_eq!(a * 3, SimTime::from_millis(30));
        assert_eq!(a / 2, SimTime::from_millis(5));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        c -= SimTime::from_millis(2);
        assert_eq!(c, SimTime::from_millis(12));
    }

    #[test]
    fn signed_delta() {
        let dp = SimTime::from_millis(100);
        let cp = SimTime::from_millis(400);
        // control plane lags data plane -> positive delay
        assert!((cp.signed_delta_millis(dp) - 300.0).abs() < 1e-9);
        // control plane acked before the data plane -> negative (incorrect)
        assert!((dp.signed_delta_millis(cp) + 300.0).abs() < 1e-9);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = SimTime::from_millis(1);
        let b = SimTime::from_millis(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn sum_and_display() {
        let total: SimTime = [1u64, 2, 3]
            .iter()
            .map(|&ms| SimTime::from_millis(ms))
            .sum();
        assert_eq!(total, SimTime::from_millis(6));
        assert_eq!(format!("{}", SimTime::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimTime::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimTime::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(2)), "2.000s");
    }

    #[test]
    fn from_secs_f64_clamps_negative() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
    }
}
