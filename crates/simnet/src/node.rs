//! The [`Node`] trait and node identifiers.

use crate::engine::Context;
use crate::event::EventPayload;
use std::any::Any;
use std::fmt;

/// Identifies a node inside a [`crate::Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The raw index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A simulated component: host, switch, proxy or controller.
///
/// Nodes communicate exclusively through the [`Context`]: data-plane packets
/// travel over topology links, control-plane messages travel over direct
/// node-to-node channels, and timers deliver wake-ups back to the node that
/// armed them.
pub trait Node: Any {
    /// A human-readable name used in traces.
    fn name(&self) -> String;

    /// Called once before the first event is processed, with the simulation
    /// clock at zero.  Nodes typically arm their first timers here.
    fn start(&mut self, _ctx: &mut Context<'_>) {}

    /// Handles a single event addressed to this node.
    fn handle(&mut self, event: EventPayload, ctx: &mut Context<'_>);

    /// Downcasting support so experiments can interrogate node state after a
    /// run (e.g. read the controller's recorded acknowledgment times).
    fn as_any(&self) -> &dyn Any;

    /// Mutable downcasting support.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_index() {
        let id = NodeId(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "n7");
        assert!(NodeId(1) < NodeId(2));
    }
}
