//! Traffic generation: constant-rate per-flow senders and receivers.
//!
//! The paper's end-to-end experiment sends 250 packets/s for each of 300 IP
//! flows between two hosts (75 000 packets/s total) and checks, per flow,
//! when packets stop arriving over the old path and start arriving over the
//! new one.  [`Host`] implements both roles: it transmits its configured
//! flows on a fixed interval and classifies + records everything it receives.

use crate::engine::Context;
use crate::event::EventPayload;
use crate::measure::{FlowId, TraceEvent};
use crate::node::Node;
use crate::packet::SimPacket;
use crate::time::SimTime;
use openflow::{PacketHeader, PortNo};
use std::any::Any;
use std::collections::HashMap;

/// One unidirectional constant-rate flow sourced by a [`Host`].
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// The flow's id (used for all measurements).
    pub id: FlowId,
    /// Header template for every packet of the flow.
    pub header: PacketHeader,
    /// Port the host sends the flow out of.
    pub out_port: PortNo,
    /// Inter-packet interval (e.g. 4 ms for the paper's 250 packets/s).
    pub interval: SimTime,
    /// When the flow starts sending.
    pub start: SimTime,
    /// When the flow stops sending (exclusive).
    pub stop: SimTime,
}

impl FlowSpec {
    /// A constant-rate flow from `start` to `stop` at `packets_per_sec`.
    pub fn constant_rate(
        id: FlowId,
        header: PacketHeader,
        out_port: PortNo,
        packets_per_sec: u64,
        start: SimTime,
        stop: SimTime,
    ) -> Self {
        assert!(packets_per_sec > 0, "rate must be positive");
        FlowSpec {
            id,
            header,
            out_port,
            interval: SimTime::from_nanos(1_000_000_000 / packets_per_sec),
            start,
            stop,
        }
    }
}

/// The key used to classify received packets back to a flow: the L3/L4
/// 4-tuple plus protocol.  ToS and VLAN are deliberately ignored because RUM
/// and consistent-update mechanisms may rewrite them in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    nw_src: std::net::Ipv4Addr,
    nw_dst: std::net::Ipv4Addr,
    nw_proto: u8,
    tp_src: u16,
    tp_dst: u16,
}

impl FlowKey {
    /// Extracts the classification key from a packet header.
    pub fn from_header(h: &PacketHeader) -> Self {
        FlowKey {
            nw_src: h.nw_src,
            nw_dst: h.nw_dst,
            nw_proto: h.nw_proto,
            tp_src: h.tp_src,
            tp_dst: h.tp_dst,
        }
    }
}

/// A traffic host: sends its configured flows and records what it receives.
pub struct Host {
    label: String,
    tx_flows: Vec<FlowSpec>,
    rx_classifier: HashMap<FlowKey, FlowId>,
    next_packet_id: u64,
    sent: u64,
    received: u64,
    unclassified: u64,
}

impl Host {
    /// Creates a host with no flows.
    pub fn new(label: impl Into<String>) -> Self {
        Host {
            label: label.into(),
            tx_flows: Vec::new(),
            rx_classifier: HashMap::new(),
            next_packet_id: 0,
            sent: 0,
            received: 0,
            unclassified: 0,
        }
    }

    /// Adds a flow this host transmits.
    pub fn add_tx_flow(&mut self, flow: FlowSpec) {
        self.tx_flows.push(flow);
    }

    /// Registers a flow this host expects to receive, so deliveries are
    /// attributed to the right [`FlowId`].
    pub fn expect_flow(&mut self, header: &PacketHeader, id: FlowId) {
        self.rx_classifier.insert(FlowKey::from_header(header), id);
    }

    /// Packets sent so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Packets received and classified so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Packets received that matched no registered flow.
    pub fn unclassified(&self) -> u64 {
        self.unclassified
    }

    fn send_flow_packet(&mut self, flow_idx: usize, ctx: &mut Context<'_>) {
        let flow = self.tx_flows[flow_idx].clone();
        let packet_id = self.next_packet_id;
        self.next_packet_id += 1;
        let packet = SimPacket::new(flow.header, packet_id, ctx.now(), ctx.self_id());
        ctx.record(TraceEvent::PacketSent {
            flow: flow.id,
            packet_id,
            time: ctx.now(),
        });
        self.sent += 1;
        ctx.send_packet(flow.out_port, packet);
    }
}

impl Node for Host {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn start(&mut self, ctx: &mut Context<'_>) {
        for (idx, flow) in self.tx_flows.iter().enumerate() {
            if flow.start < flow.stop {
                ctx.set_timer(flow.start, idx as u64);
            }
        }
    }

    fn handle(&mut self, event: EventPayload, ctx: &mut Context<'_>) {
        match event {
            EventPayload::Timer { token } => {
                let idx = token as usize;
                if idx >= self.tx_flows.len() {
                    return;
                }
                self.send_flow_packet(idx, ctx);
                let flow = &self.tx_flows[idx];
                let next = ctx.now() + flow.interval;
                if next < flow.stop {
                    ctx.set_timer(flow.interval, token);
                }
            }
            EventPayload::Packet { packet, .. } => {
                let key = FlowKey::from_header(&packet.header);
                match self.rx_classifier.get(&key) {
                    Some(flow) => {
                        self.received += 1;
                        ctx.record(TraceEvent::PacketDelivered {
                            node: ctx.self_id(),
                            flow: *flow,
                            packet_id: packet.id,
                            time: ctx.now(),
                            sent_at: packet.sent_at,
                            path: packet.path_signature(),
                        });
                    }
                    None => {
                        self.unclassified += 1;
                    }
                }
            }
            EventPayload::Control { .. } => {
                // Hosts do not speak OpenFlow; ignore stray control traffic.
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Builds the header for the i-th experiment flow between two hosts, the way
/// the paper's testbed numbers its 300 flows: one (source, destination) IP
/// pair per flow, all UDP with fixed ports.
pub fn flow_header(
    flow_index: u32,
    src_mac: openflow::MacAddr,
    dst_mac: openflow::MacAddr,
) -> PacketHeader {
    use std::net::Ipv4Addr;
    let src = Ipv4Addr::new(10, 0, (flow_index >> 8) as u8, (flow_index & 0xff) as u8);
    let dst = Ipv4Addr::new(10, 1, (flow_index >> 8) as u8, (flow_index & 0xff) as u8);
    PacketHeader::ipv4_udp(src_mac, dst_mac, src, dst, 10_000, 20_000)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::node::NodeId;
    use openflow::MacAddr;

    fn two_host_sim(rate: u64, duration_ms: u64) -> (Simulator, NodeId, NodeId, u32) {
        let n_flows = 3u32;
        let mut sender = Host::new("h1");
        let mut receiver = Host::new("h2");
        for i in 0..n_flows {
            let header = flow_header(i, MacAddr::from_id(1), MacAddr::from_id(2));
            sender.add_tx_flow(FlowSpec::constant_rate(
                FlowId(i as u64),
                header,
                1,
                rate,
                SimTime::ZERO,
                SimTime::from_millis(duration_ms),
            ));
            receiver.expect_flow(&header, FlowId(i as u64));
        }
        let mut sim = Simulator::new(7);
        let s = sim.add_node(sender);
        let r = sim.add_node(receiver);
        // Directly wire the two hosts together.
        sim.topology_mut()
            .add_link(s, 1, r, 1, SimTime::from_micros(100));
        (sim, s, r, n_flows)
    }

    #[test]
    fn constant_rate_flow_sends_expected_count() {
        let (mut sim, s, r, n_flows) = two_host_sim(250, 1000);
        sim.run_until(SimTime::from_secs(2));
        let sender = sim.node_ref::<Host>(s).unwrap();
        let receiver = sim.node_ref::<Host>(r).unwrap();
        // 250 packets/s for 1 s = 250 packets per flow.
        assert_eq!(sender.sent(), 250 * n_flows as u64);
        assert_eq!(receiver.received(), sender.sent());
        assert_eq!(receiver.unclassified(), 0);
        assert_eq!(
            sim.trace().delivered_packets(Some(FlowId(0))),
            250,
            "each flow is recorded separately"
        );
    }

    #[test]
    fn deliveries_record_latency_and_path() {
        let (mut sim, _s, _r, _) = two_host_sim(100, 100);
        sim.run_until(SimTime::from_secs(1));
        let summaries = sim.trace().flow_update_summaries();
        assert_eq!(summaries.len(), 3);
        for s in summaries.values() {
            // Hosts are wired back-to-back so the path signature is empty and
            // never changes.
            assert!(!s.path_changed);
            assert_eq!(s.broken_time(), SimTime::ZERO);
        }
    }

    #[test]
    fn unclassified_packets_are_counted_not_recorded() {
        let mut receiver = Host::new("h2");
        receiver.expect_flow(
            &flow_header(0, MacAddr::from_id(1), MacAddr::from_id(2)),
            FlowId(0),
        );
        let mut sender = Host::new("h1");
        // Sender emits flow 5 which the receiver does not expect.
        sender.add_tx_flow(FlowSpec::constant_rate(
            FlowId(5),
            flow_header(5, MacAddr::from_id(1), MacAddr::from_id(2)),
            1,
            100,
            SimTime::ZERO,
            SimTime::from_millis(50),
        ));
        let mut sim = Simulator::new(1);
        let s = sim.add_node(sender);
        let r = sim.add_node(receiver);
        sim.topology_mut()
            .add_link(s, 1, r, 1, SimTime::from_micros(10));
        sim.run_until(SimTime::from_millis(200));
        let receiver = sim.node_ref::<Host>(r).unwrap();
        assert_eq!(receiver.received(), 0);
        assert!(receiver.unclassified() > 0);
        assert_eq!(sim.trace().delivered_packets(None), 0);
    }

    #[test]
    fn flow_header_is_unique_per_index() {
        let a = flow_header(1, MacAddr::from_id(1), MacAddr::from_id(2));
        let b = flow_header(2, MacAddr::from_id(1), MacAddr::from_id(2));
        assert_ne!(FlowKey::from_header(&a), FlowKey::from_header(&b));
        let a300 = flow_header(300, MacAddr::from_id(1), MacAddr::from_id(2));
        assert_eq!(a300.nw_src.octets()[2], 1);
        assert_eq!(a300.nw_src.octets()[3], 44);
    }

    #[test]
    fn flow_key_ignores_tos_and_vlan() {
        let mut h = flow_header(0, MacAddr::from_id(1), MacAddr::from_id(2));
        let key1 = FlowKey::from_header(&h);
        h.nw_tos = 0x80;
        h.dl_vlan = 300;
        assert_eq!(FlowKey::from_header(&h), key1);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_flow_panics() {
        FlowSpec::constant_rate(
            FlowId(0),
            PacketHeader::default(),
            1,
            0,
            SimTime::ZERO,
            SimTime::from_secs(1),
        );
    }
}
