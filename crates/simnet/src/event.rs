//! The event queue driving the simulation.

use crate::node::NodeId;
use crate::packet::SimPacket;
use crate::time::SimTime;
use openflow::{OfMessage, PortNo};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The payload of an event delivered to a node.
#[derive(Debug, Clone)]
pub enum EventPayload {
    /// A data-plane packet arriving on one of the node's ports.
    Packet {
        /// The packet.
        packet: SimPacket,
        /// The port it arrives on.
        in_port: PortNo,
    },
    /// An OpenFlow control-plane message from another node (controller,
    /// proxy or switch, depending on who is talking to whom).
    Control {
        /// The sending node.
        from: NodeId,
        /// The message.
        message: OfMessage,
    },
    /// A timer armed earlier by the node itself.
    Timer {
        /// The token passed when the timer was armed.
        token: u64,
    },
}

impl EventPayload {
    /// A short label for traces and debugging.
    pub fn kind(&self) -> &'static str {
        match self {
            EventPayload::Packet { .. } => "packet",
            EventPayload::Control { .. } => "control",
            EventPayload::Timer { .. } => "timer",
        }
    }
}

/// A scheduled event.
#[derive(Debug)]
pub struct Event {
    /// Delivery time.
    pub time: SimTime,
    /// Tie-break sequence number (insertion order).
    pub seq: u64,
    /// Destination node.
    pub target: NodeId,
    /// Payload.
    pub payload: EventPayload,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` for delivery to `target` at absolute time `time`.
    pub fn schedule(&mut self, time: SimTime, target: NodeId, payload: EventPayload) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event {
            time,
            seq,
            target,
            payload,
        });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// The delivery time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(
            SimTime::from_millis(5),
            NodeId(0),
            EventPayload::Timer { token: 5 },
        );
        q.schedule(
            SimTime::from_millis(1),
            NodeId(0),
            EventPayload::Timer { token: 1 },
        );
        q.schedule(
            SimTime::from_millis(3),
            NodeId(0),
            EventPayload::Timer { token: 3 },
        );
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.payload {
                EventPayload::Timer { token } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(7);
        for token in 0..10 {
            q.schedule(t, NodeId(0), EventPayload::Timer { token });
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.payload {
                EventPayload::Timer { token } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(
            SimTime::from_micros(2),
            NodeId(1),
            EventPayload::Timer { token: 0 },
        );
        q.schedule(
            SimTime::from_micros(1),
            NodeId(1),
            EventPayload::Timer { token: 0 },
        );
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(1)));
    }

    #[test]
    fn payload_kind_labels() {
        assert_eq!(EventPayload::Timer { token: 0 }.kind(), "timer");
        let pkt = EventPayload::Packet {
            packet: SimPacket::new(
                openflow::PacketHeader::default(),
                0,
                SimTime::ZERO,
                NodeId(0),
            ),
            in_port: 1,
        };
        assert_eq!(pkt.kind(), "packet");
        let ctl = EventPayload::Control {
            from: NodeId(0),
            message: OfMessage::Hello { xid: 0 },
        };
        assert_eq!(ctl.kind(), "control");
    }
}
