//! The simulator main loop and the [`Context`] through which nodes act.

use crate::event::{EventPayload, EventQueue};
use crate::measure::{TraceEvent, TraceSink};
use crate::node::{Node, NodeId};
use crate::packet::SimPacket;
use crate::time::SimTime;
use crate::topology::Topology;
use openflow::{OfMessage, PortNo};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The environment a node sees while handling an event.
///
/// All side effects a node can have — sending packets, sending control
/// messages, arming timers, recording measurements — go through this type,
/// which keeps nodes decoupled from each other and the simulation fully
/// deterministic.
pub struct Context<'a> {
    now: SimTime,
    self_id: NodeId,
    topology: &'a Topology,
    queue: &'a mut EventQueue,
    trace: &'a mut TraceSink,
    rng: &'a mut SmallRng,
}

impl<'a> Context<'a> {
    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node handling the event.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// Read-only access to the data-plane topology.
    pub fn topology(&self) -> &Topology {
        self.topology
    }

    /// Sends a data-plane packet out of `out_port`.
    ///
    /// Returns `true` if the port is wired; an unwired port silently drops
    /// the packet (mirroring a disconnected interface) and returns `false`.
    pub fn send_packet(&mut self, out_port: PortNo, packet: SimPacket) -> bool {
        match self.topology.peer_of(self.self_id, out_port) {
            Some((peer, latency)) => {
                self.queue.schedule(
                    self.now + latency,
                    peer.node,
                    EventPayload::Packet {
                        packet,
                        in_port: peer.port,
                    },
                );
                true
            }
            None => false,
        }
    }

    /// Sends an OpenFlow control-plane message to another node, arriving
    /// after `latency`.
    pub fn send_control(&mut self, to: NodeId, message: OfMessage, latency: SimTime) {
        self.queue.schedule(
            self.now + latency,
            to,
            EventPayload::Control {
                from: self.self_id,
                message,
            },
        );
    }

    /// Arms a timer that will fire back on this node after `delay`.
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        self.queue.schedule(
            self.now + delay,
            self.self_id,
            EventPayload::Timer { token },
        );
    }

    /// Records a measurement event.
    pub fn record(&mut self, event: TraceEvent) {
        self.trace.record(event);
    }

    /// Deterministic random-number generator shared by the whole simulation.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }
}

/// The discrete-event simulator.
pub struct Simulator {
    nodes: Vec<Option<Box<dyn Node>>>,
    names: Vec<String>,
    topology: Topology,
    queue: EventQueue,
    trace: TraceSink,
    now: SimTime,
    rng: SmallRng,
    started: bool,
    events_processed: u64,
}

impl Simulator {
    /// Creates a simulator seeded for deterministic runs.
    pub fn new(seed: u64) -> Self {
        Simulator {
            nodes: Vec::new(),
            names: Vec::new(),
            topology: Topology::new(),
            queue: EventQueue::new(),
            trace: TraceSink::new(),
            now: SimTime::ZERO,
            rng: SmallRng::seed_from_u64(seed),
            started: false,
            events_processed: 0,
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node<N: Node>(&mut self, node: N) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.names.push(node.name());
        self.nodes.push(Some(Box::new(node)));
        id
    }

    /// Mutable access to the topology (wire links before running).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Read-only access to the topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Schedules an event from outside any node (used by experiment drivers
    /// to kick off an update at a chosen time).
    pub fn schedule(&mut self, time: SimTime, target: NodeId, payload: EventPayload) {
        self.queue.schedule(time, target, payload);
    }

    /// The current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The recorded trace.
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Mutable access to the trace (e.g. to add markers between phases).
    pub fn trace_mut(&mut self) -> &mut TraceSink {
        &mut self.trace
    }

    /// The registered name of a node.
    pub fn name_of(&self, id: NodeId) -> &str {
        &self.names[id.index()]
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Immutable, downcast access to a node (after or between runs).
    pub fn node_ref<T: 'static>(&self, id: NodeId) -> Option<&T> {
        self.nodes[id.index()]
            .as_ref()
            .and_then(|n| n.as_any().downcast_ref::<T>())
    }

    /// Mutable, downcast access to a node.
    pub fn node_mut<T: 'static>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes[id.index()]
            .as_mut()
            .and_then(|n| n.as_any_mut().downcast_mut::<T>())
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for idx in 0..self.nodes.len() {
            let mut node = self.nodes[idx].take().expect("node present at start");
            {
                let mut ctx = Context {
                    now: self.now,
                    self_id: NodeId(idx),
                    topology: &self.topology,
                    queue: &mut self.queue,
                    trace: &mut self.trace,
                    rng: &mut self.rng,
                };
                node.start(&mut ctx);
            }
            self.nodes[idx] = Some(node);
        }
    }

    /// Processes a single event.  Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.ensure_started();
        let Some(event) = self.queue.pop() else {
            return false;
        };
        debug_assert!(event.time >= self.now, "time must be monotonic");
        self.now = event.time;
        self.events_processed += 1;
        let idx = event.target.index();
        let mut node = self.nodes[idx]
            .take()
            .unwrap_or_else(|| panic!("event targeted at missing node {}", event.target));
        {
            let mut ctx = Context {
                now: self.now,
                self_id: event.target,
                topology: &self.topology,
                queue: &mut self.queue,
                trace: &mut self.trace,
                rng: &mut self.rng,
            };
            node.handle(event.payload, &mut ctx);
        }
        self.nodes[idx] = Some(node);
        true
    }

    /// Runs until no event earlier than or at `deadline` remains; the clock
    /// is left at `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.ensure_started();
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.now = self.now.max(deadline);
    }

    /// Runs until the event queue drains or `safety_deadline` is reached
    /// (whichever comes first).  Traffic generators re-arm themselves, so
    /// most experiments use [`Simulator::run_until`] with an explicit end
    /// time instead.
    pub fn run_until_idle(&mut self, safety_deadline: SimTime) {
        self.ensure_started();
        while let Some(t) = self.queue.peek_time() {
            if t > safety_deadline {
                break;
            }
            self.step();
        }
    }
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("nodes", &self.names)
            .field("now", &self.now)
            .field("pending_events", &self.queue.len())
            .field("trace_events", &self.trace.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;

    /// A node that echoes every timer as a new timer `delay` later, up to a
    /// bound, and counts what it saw.
    struct TickNode {
        delay: SimTime,
        remaining: u32,
        ticks_seen: u32,
        packets_seen: u32,
        controls_seen: u32,
    }

    impl TickNode {
        fn new(delay: SimTime, count: u32) -> Self {
            TickNode {
                delay,
                remaining: count,
                ticks_seen: 0,
                packets_seen: 0,
                controls_seen: 0,
            }
        }
    }

    impl Node for TickNode {
        fn name(&self) -> String {
            "tick".into()
        }

        fn start(&mut self, ctx: &mut Context<'_>) {
            if self.remaining > 0 {
                ctx.set_timer(self.delay, 0);
            }
        }

        fn handle(&mut self, event: EventPayload, ctx: &mut Context<'_>) {
            match event {
                EventPayload::Timer { .. } => {
                    self.ticks_seen += 1;
                    self.remaining -= 1;
                    if self.remaining > 0 {
                        ctx.set_timer(self.delay, 0);
                    }
                }
                EventPayload::Packet { .. } => self.packets_seen += 1,
                EventPayload::Control { .. } => self.controls_seen += 1,
            }
        }

        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// A node that forwards every received packet out of port 1.
    struct ForwardNode {
        forwarded: u32,
    }

    impl Node for ForwardNode {
        fn name(&self) -> String {
            "fwd".into()
        }
        fn handle(&mut self, event: EventPayload, ctx: &mut Context<'_>) {
            if let EventPayload::Packet { packet, .. } = event {
                self.forwarded += 1;
                ctx.send_packet(1, packet.with_hop(ctx.self_id()));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn timers_fire_the_requested_number_of_times() {
        let mut sim = Simulator::new(1);
        let id = sim.add_node(TickNode::new(SimTime::from_millis(10), 5));
        sim.run_until(SimTime::from_secs(1));
        let node = sim.node_ref::<TickNode>(id).unwrap();
        assert_eq!(node.ticks_seen, 5);
        assert_eq!(sim.now(), SimTime::from_secs(1));
        assert_eq!(sim.events_processed(), 5);
    }

    #[test]
    fn run_until_does_not_process_future_events() {
        let mut sim = Simulator::new(1);
        let id = sim.add_node(TickNode::new(SimTime::from_millis(100), 10));
        sim.run_until(SimTime::from_millis(350));
        assert_eq!(sim.node_ref::<TickNode>(id).unwrap().ticks_seen, 3);
        sim.run_until(SimTime::from_millis(1050));
        assert_eq!(sim.node_ref::<TickNode>(id).unwrap().ticks_seen, 10);
    }

    #[test]
    fn packets_follow_links_and_accumulate_hops() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(ForwardNode { forwarded: 0 });
        let b = sim.add_node(ForwardNode { forwarded: 0 });
        let sink = sim.add_node(TickNode::new(SimTime::from_millis(1), 0));
        // a:1 -> b:2, b:1 -> sink:1
        sim.topology_mut()
            .add_link(a, 1, b, 2, SimTime::from_micros(100));
        sim.topology_mut()
            .add_link(b, 1, sink, 1, SimTime::from_micros(100));
        let pkt = SimPacket::new(openflow::PacketHeader::default(), 1, SimTime::ZERO, a);
        sim.schedule(
            SimTime::from_micros(1),
            a,
            EventPayload::Packet {
                packet: pkt,
                in_port: 7,
            },
        );
        sim.run_until(SimTime::from_millis(10));
        assert_eq!(sim.node_ref::<ForwardNode>(a).unwrap().forwarded, 1);
        assert_eq!(sim.node_ref::<ForwardNode>(b).unwrap().forwarded, 1);
        assert_eq!(sim.node_ref::<TickNode>(sink).unwrap().packets_seen, 1);
    }

    #[test]
    fn send_packet_on_unwired_port_reports_false() {
        let mut sim = Simulator::new(1);
        struct Lonely {
            result: Option<bool>,
        }
        impl Node for Lonely {
            fn name(&self) -> String {
                "lonely".into()
            }
            fn start(&mut self, ctx: &mut Context<'_>) {
                let pkt = SimPacket::new(
                    openflow::PacketHeader::default(),
                    0,
                    ctx.now(),
                    ctx.self_id(),
                );
                self.result = Some(ctx.send_packet(3, pkt));
            }
            fn handle(&mut self, _e: EventPayload, _c: &mut Context<'_>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let id = sim.add_node(Lonely { result: None });
        sim.run_until(SimTime::from_millis(1));
        assert_eq!(sim.node_ref::<Lonely>(id).unwrap().result, Some(false));
    }

    #[test]
    fn control_messages_are_delivered_with_latency() {
        let mut sim = Simulator::new(1);
        let receiver = sim.add_node(TickNode::new(SimTime::from_millis(1), 0));
        struct Sender {
            to: NodeId,
        }
        impl Node for Sender {
            fn name(&self) -> String {
                "sender".into()
            }
            fn start(&mut self, ctx: &mut Context<'_>) {
                ctx.send_control(
                    self.to,
                    OfMessage::Hello { xid: 1 },
                    SimTime::from_millis(5),
                );
            }
            fn handle(&mut self, _e: EventPayload, _c: &mut Context<'_>) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        sim.add_node(Sender { to: receiver });
        sim.run_until(SimTime::from_millis(4));
        assert_eq!(sim.node_ref::<TickNode>(receiver).unwrap().controls_seen, 0);
        sim.run_until(SimTime::from_millis(6));
        assert_eq!(sim.node_ref::<TickNode>(receiver).unwrap().controls_seen, 1);
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        fn run(seed: u64) -> u64 {
            let mut sim = Simulator::new(seed);
            sim.add_node(TickNode::new(SimTime::from_millis(3), 100));
            sim.add_node(TickNode::new(SimTime::from_millis(7), 100));
            sim.run_until(SimTime::from_secs(1));
            sim.events_processed()
        }
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn debug_format_mentions_nodes() {
        let mut sim = Simulator::new(0);
        sim.add_node(TickNode::new(SimTime::from_millis(1), 1));
        let dbg = format!("{sim:?}");
        assert!(dbg.contains("tick"));
        assert_eq!(sim.node_count(), 1);
        assert_eq!(sim.name_of(NodeId(0)), "tick");
    }
}
