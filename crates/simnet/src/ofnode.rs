//! The simulator driver for the shared switch-behaviour engine.
//!
//! [`OpenFlowSwitch`] is a thin `simnet` node around
//! [`ofswitch::Behavior`]: it translates simulator events (control messages,
//! timers, data-plane packets) into behaviour-engine calls and executes the
//! returned [`BehaviorAction`]s through the simulator [`Context`] — delayed
//! control replies, trace records for data-plane activations, timer arming
//! from [`Behavior::next_deadline`].  All switch semantics — the lagging
//! data plane, barrier modes, and the seedable fault plan — live in the
//! engine, which `rum_tcp::switch_host` drives over real TCP sockets.
//!
//! Driver-level concerns that stay here: the OpenFlow handshake surface
//! (features/config/stats replies), PacketOut execution and PacketIn
//! emission with their rate limiters, and data-plane forwarding across the
//! simulated topology.

use ofswitch::{Behavior, BehaviorAction, FaultPlan, FlowTable, SwitchModel};
use openflow::constants::{error_type, packet_in_reason, port as of_port};
use openflow::messages::{
    ErrorMsg, FeaturesReply, PacketIn, PacketOut, StatsReply, StatsRequest, SwitchConfig,
};
use openflow::{Action, DatapathId, OfMessage, PacketHeader, PortNo};

use crate::engine::Context;
use crate::event::EventPayload;
use crate::measure::TraceEvent;
use crate::node::{Node, NodeId};
use crate::packet::SimPacket;
use crate::time::SimTime;
use std::any::Any;
use std::collections::VecDeque;

/// Timer token: re-examine the behaviour engine (sync ticks, in-flight
/// batches, withheld barriers).
const TOKEN_BEHAVIOR: u64 = 0;
/// Timer token: execute queued PacketOut messages.
const TOKEN_PACKET_OUT: u64 = 2;
/// Timer token: reattach after a restart (reboot finished).
const TOKEN_RECONNECT: u64 = 3;

/// A simulated OpenFlow 1.0 switch: the simnet driver of the shared
/// [`Behavior`] engine.
pub struct OpenFlowSwitch {
    label: String,
    dpid: DatapathId,
    n_ports: u16,
    behavior: Behavior,
    controller: Option<NodeId>,

    pending_packet_outs: VecDeque<(SimTime, PacketOut)>,
    packet_out_available_at: SimTime,
    packet_in_available_at: SimTime,
    config: SwitchConfig,
    /// The earliest armed behaviour deadline, to avoid flooding the event
    /// queue with duplicate timers.
    armed_deadline: Option<SimTime>,
    /// Reusable behaviour-action buffer.
    actions: Vec<BehaviorAction>,
    /// How long a restarted switch stays down before it reattaches and
    /// replays the handshake.  `None` (the default) leaves it down forever,
    /// matching the pre-reconnect behaviour.
    reconnect_delay: Option<std::time::Duration>,
    /// True between our reattach `Hello` going out and the peer's `Hello`
    /// coming back; that reply completes the handshake and must not be
    /// answered with yet another `Hello`.
    hello_pending: bool,

    packet_ins_sent: u64,
    packet_ins_suppressed: u64,
    packet_outs_processed: u64,
    data_packets_forwarded: u64,
    data_packets_dropped: u64,
}

impl OpenFlowSwitch {
    /// Creates a switch with `n_ports` data ports and the given behaviour
    /// model (fault-free).
    pub fn new(
        label: impl Into<String>,
        dpid: DatapathId,
        n_ports: u16,
        model: SwitchModel,
    ) -> Self {
        Self::with_faults(label, dpid, n_ports, model, FaultPlan::none())
    }

    /// Creates a switch with an explicit fault plan.
    pub fn with_faults(
        label: impl Into<String>,
        dpid: DatapathId,
        n_ports: u16,
        model: SwitchModel,
        faults: FaultPlan,
    ) -> Self {
        OpenFlowSwitch {
            label: label.into(),
            dpid,
            n_ports,
            behavior: Behavior::new(model, faults),
            controller: None,
            pending_packet_outs: VecDeque::new(),
            packet_out_available_at: SimTime::ZERO,
            packet_in_available_at: SimTime::ZERO,
            config: SwitchConfig::default(),
            armed_deadline: None,
            actions: Vec::new(),
            reconnect_delay: None,
            hello_pending: false,
            packet_ins_sent: 0,
            packet_ins_suppressed: 0,
            packet_outs_processed: 0,
            data_packets_forwarded: 0,
            data_packets_dropped: 0,
        }
    }

    /// Points the switch's OpenFlow connection at a node (the controller or
    /// a RUM proxy impersonating it).
    pub fn connect_controller(&mut self, node: NodeId) {
        self.controller = Some(node);
    }

    /// Makes a restarted switch come back: after `delay` it reattaches the
    /// behaviour engine and replays the OpenFlow handshake towards its
    /// controller connection.  `None` (the default) keeps it down forever.
    pub fn set_reconnect_delay(&mut self, delay: Option<std::time::Duration>) {
        self.reconnect_delay = delay;
    }

    /// Installs a rule directly into both tables, bypassing the control
    /// channel and all timing models.  Used to pre-install state before an
    /// experiment starts, like the paper pre-installs the initial paths.
    pub fn preinstall(&mut self, fm: &openflow::messages::FlowMod) {
        self.behavior.preinstall(fm);
    }

    /// The switch's datapath id.
    pub fn dpid(&self) -> DatapathId {
        self.dpid
    }

    /// The behaviour engine (model, fault plan, tables, ground truth).
    pub fn behavior(&self) -> &Behavior {
        &self.behavior
    }

    /// The behaviour model.
    pub fn model(&self) -> &SwitchModel {
        self.behavior.model()
    }

    /// The control-plane view of the flow table.
    pub fn control_table(&self) -> &FlowTable {
        self.behavior.control_table()
    }

    /// The data-plane view of the flow table.
    pub fn data_table(&self) -> &FlowTable {
        self.behavior.data_table()
    }

    /// Number of accepted modifications not yet visible in the data plane.
    pub fn dataplane_backlog(&self) -> usize {
        self.behavior.dataplane_backlog()
    }

    /// Flow modifications processed so far.
    pub fn flow_mods_processed(&self) -> u64 {
        self.behavior.counters().flow_mods
    }

    /// Barrier requests processed so far.
    pub fn barriers_processed(&self) -> u64 {
        self.behavior.counters().barriers
    }

    /// PacketIn messages emitted so far.
    pub fn packet_ins_sent(&self) -> u64 {
        self.packet_ins_sent
    }

    /// PacketIn messages suppressed by the rate limiter.
    pub fn packet_ins_suppressed(&self) -> u64 {
        self.packet_ins_suppressed
    }

    /// PacketOut messages executed so far.
    pub fn packet_outs_processed(&self) -> u64 {
        self.packet_outs_processed
    }

    /// Data-plane packets forwarded so far.
    pub fn data_packets_forwarded(&self) -> u64 {
        self.data_packets_forwarded
    }

    /// Data-plane packets dropped so far.
    pub fn data_packets_dropped(&self) -> u64 {
        self.data_packets_dropped
    }

    /// The time at which the control-plane CPU becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.behavior.busy_until().into()
    }

    fn send_to_controller(&self, ctx: &mut Context<'_>, msg: OfMessage, extra_delay: SimTime) {
        if let Some(ctrl) = self.controller {
            let latency: SimTime = self.behavior.model().control_latency.into();
            ctx.send_control(ctrl, msg, latency + extra_delay);
        }
    }

    // ------------------------------------------------------------------
    // Behaviour-engine plumbing
    // ------------------------------------------------------------------

    /// Advances the engine to `now`, executes any produced actions, and
    /// re-arms the deadline timer.
    fn drive(&mut self, ctx: &mut Context<'_>) {
        let now = ctx.now();
        let mut actions = std::mem::take(&mut self.actions);
        self.behavior.advance(now.into(), &mut actions);
        self.execute_actions(&mut actions, ctx);
        self.actions = actions;
        self.rearm_deadline(ctx);
    }

    fn execute_actions(&mut self, actions: &mut Vec<BehaviorAction>, ctx: &mut Context<'_>) {
        let now = ctx.now();
        for action in actions.drain(..) {
            match action {
                BehaviorAction::Reply { at, message } => {
                    let at: SimTime = at.into();
                    self.send_to_controller(ctx, message, at.saturating_sub(now));
                }
                BehaviorAction::Activated { at, cookie } => {
                    ctx.record(TraceEvent::DataPlaneActivated {
                        switch: ctx.self_id(),
                        cookie,
                        time: at.into(),
                    });
                }
                BehaviorAction::Deactivated { at, cookie } => {
                    ctx.record(TraceEvent::DataPlaneDeactivated {
                        switch: ctx.self_id(),
                        cookie,
                        time: at.into(),
                    });
                }
                BehaviorAction::Restarted { at } => {
                    // The simulator has no socket to tear down; record the
                    // restart, drop driver-level queued work, and — when a
                    // reconnect delay is configured — schedule the reboot to
                    // finish with a reattach + handshake replay.
                    self.pending_packet_outs.clear();
                    let at: SimTime = at.into();
                    ctx.record(TraceEvent::Marker {
                        label: format!("{}: switch restarted (tables wiped)", self.label),
                        time: at,
                    });
                    if let Some(delay) = self.reconnect_delay {
                        let delay: SimTime = SimTime::from(delay) + at.saturating_sub(now);
                        ctx.set_timer(delay, TOKEN_RECONNECT);
                    }
                }
            }
        }
    }

    fn rearm_deadline(&mut self, ctx: &mut Context<'_>) {
        let Some(deadline) = self.behavior.next_deadline() else {
            return;
        };
        let deadline: SimTime = deadline.into();
        if self.armed_deadline.is_some_and(|armed| armed <= deadline) {
            return;
        }
        self.armed_deadline = Some(deadline);
        ctx.set_timer(deadline.saturating_sub(ctx.now()), TOKEN_BEHAVIOR);
    }

    // ------------------------------------------------------------------
    // Control-plane message handling
    // ------------------------------------------------------------------

    fn handle_control(&mut self, from: NodeId, msg: OfMessage, ctx: &mut Context<'_>) {
        if self.controller.is_none() {
            // Adopt whoever speaks to us first as our controller connection.
            self.controller = Some(from);
        }
        let now = ctx.now();
        let mut actions = std::mem::take(&mut self.actions);
        let consumed = self.behavior.handle_message(now.into(), &msg, &mut actions);
        self.execute_actions(&mut actions, ctx);
        self.actions = actions;
        if consumed {
            self.rearm_deadline(ctx);
            return;
        }
        match msg {
            OfMessage::Hello { xid } => {
                // A Hello answering our own reattach Hello completes the
                // handshake; answering it again would ping-pong forever.
                if self.hello_pending {
                    self.hello_pending = false;
                } else {
                    self.send_to_controller(ctx, OfMessage::Hello { xid }, SimTime::ZERO);
                }
            }
            OfMessage::EchoRequest { xid, data } => {
                self.send_to_controller(ctx, OfMessage::EchoReply { xid, data }, SimTime::ZERO);
            }
            OfMessage::FeaturesRequest { xid } => {
                let body = FeaturesReply::simulated(self.dpid, self.n_ports);
                self.send_to_controller(ctx, OfMessage::FeaturesReply { xid, body }, SimTime::ZERO);
            }
            OfMessage::GetConfigRequest { xid } => {
                self.send_to_controller(
                    ctx,
                    OfMessage::GetConfigReply {
                        xid,
                        config: self.config,
                    },
                    SimTime::ZERO,
                );
            }
            OfMessage::SetConfig { config, .. } => {
                self.config = config;
            }
            OfMessage::PacketOut { body, .. } => self.handle_packet_out(body, ctx),
            OfMessage::StatsRequest { xid, body } => self.handle_stats(xid, body, ctx),
            OfMessage::EchoReply { .. }
            | OfMessage::Vendor { .. }
            | OfMessage::PortMod { .. }
            | OfMessage::QueueGetConfig { .. }
            | OfMessage::Error { .. } => {
                // Accepted and ignored by the simulated switch.
            }
            other => {
                // Controller-bound messages arriving at a switch indicate a
                // mis-wired experiment; reply with a BAD_REQUEST error.
                let err = OfMessage::Error {
                    xid: other.xid(),
                    body: ErrorMsg {
                        err_type: error_type::BAD_REQUEST,
                        code: 0,
                        data: Vec::new(),
                    },
                };
                self.send_to_controller(ctx, err, SimTime::ZERO);
            }
        }
    }

    fn handle_packet_out(&mut self, po: PacketOut, ctx: &mut Context<'_>) {
        let now = ctx.now();
        // PacketOut processing consumes control-plane CPU (slowing rule
        // installation slightly) and is rate limited.
        let cost = self.behavior.model().packet_out_time;
        self.behavior.consume_cpu(now.into(), cost);
        let interval: SimTime = self.behavior.model().packet_out_interval.into();
        let exec_at = self.packet_out_available_at.max(now);
        self.packet_out_available_at = exec_at + interval;
        self.pending_packet_outs.push_back((exec_at, po));
        let delay = exec_at.saturating_sub(now);
        ctx.set_timer(delay, TOKEN_PACKET_OUT);
    }

    fn execute_packet_out(&mut self, po: PacketOut, ctx: &mut Context<'_>) {
        self.packet_outs_processed += 1;
        let Ok(header) = PacketHeader::from_bytes(&po.data) else {
            return;
        };
        let packet = SimPacket::new(header, u64::from(po.buffer_id), ctx.now(), ctx.self_id())
            .into_injected();
        let (rewritten, outputs) = Action::apply_list(&po.actions, &header);
        for port in outputs {
            match port {
                of_port::TABLE => {
                    let in_port = if po.in_port == of_port::NONE {
                        0
                    } else {
                        po.in_port
                    };
                    let mut p = packet.clone();
                    p.header = rewritten;
                    self.forward_via_table(p, in_port, ctx);
                }
                of_port::CONTROLLER => {
                    self.emit_packet_in(&rewritten, po.in_port, packet_in_reason::ACTION, ctx);
                }
                _ => {
                    let mut p = packet.clone();
                    p.header = rewritten;
                    ctx.send_packet(port, p.with_hop(ctx.self_id()));
                }
            }
        }
    }

    fn handle_stats(&mut self, xid: u32, req: StatsRequest, ctx: &mut Context<'_>) {
        let control_table = self.behavior.control_table();
        let reply = match req {
            StatsRequest::Desc => StatsReply::Desc {
                mfr_desc: "RUM reproduction".into(),
                hw_desc: format!("simulated switch ({:?})", self.model().barrier_mode),
                sw_desc: "ofswitch".into(),
                serial_num: format!("{}", self.dpid),
                dp_desc: self.label.clone(),
            },
            // Flow stats are answered by `Behavior::handle_message` (including
            // fragmentation and stats-targeted faults); they never reach here.
            StatsRequest::Flow { .. } => return,
            StatsRequest::Aggregate { match_, .. } => {
                let mut packet_count = 0;
                let mut byte_count = 0;
                let mut flow_count = 0;
                for e in control_table.entries() {
                    if match_.covers(&e.match_) {
                        packet_count += e.packet_count;
                        byte_count += e.byte_count;
                        flow_count += 1;
                    }
                }
                StatsReply::Aggregate {
                    packet_count,
                    byte_count,
                    flow_count,
                }
            }
            StatsRequest::Table => StatsReply::Table(vec![openflow::messages::TableStatsEntry {
                table_id: 0,
                name: "main".into(),
                wildcards: openflow::Wildcards::ALL,
                max_entries: if self.model().table_capacity == 0 {
                    65535
                } else {
                    self.model().table_capacity as u32
                },
                active_count: control_table.len() as u32,
                lookup_count: self.behavior.data_table().lookup_count,
                matched_count: self.behavior.data_table().matched_count,
            }]),
            StatsRequest::Port { .. } => StatsReply::Port(
                (1..=self.n_ports)
                    .map(|p| openflow::messages::PortStatsEntry {
                        port_no: p,
                        tx_packets: self.data_packets_forwarded,
                        rx_packets: self.data_packets_forwarded,
                        ..Default::default()
                    })
                    .collect(),
            ),
            StatsRequest::Other { stats_type, .. } => StatsReply::Other {
                stats_type,
                body: Vec::new(),
            },
        };
        self.send_to_controller(
            ctx,
            OfMessage::StatsReply {
                xid,
                more: false,
                body: reply,
            },
            SimTime::ZERO,
        );
    }

    // ------------------------------------------------------------------
    // Data-plane forwarding
    // ------------------------------------------------------------------

    fn emit_packet_in(
        &mut self,
        header: &PacketHeader,
        in_port: PortNo,
        reason: u8,
        ctx: &mut Context<'_>,
    ) {
        let now = ctx.now();
        // The PacketIn path is rate limited; when the limiter is saturated
        // the switch silently drops the notification (observed behaviour
        // under overload).
        let interval: SimTime = self.behavior.model().packet_in_interval.into();
        let backlog = self.packet_in_available_at.saturating_sub(now);
        if backlog > interval * 64 {
            self.packet_ins_suppressed += 1;
            return;
        }
        let emit_at = self.packet_in_available_at.max(now);
        self.packet_in_available_at = emit_at + interval;
        let cost = self.behavior.model().packet_in_time;
        self.behavior.consume_cpu(now.into(), cost);
        self.packet_ins_sent += 1;
        let data = header.to_bytes();
        let body = PacketIn {
            buffer_id: openflow::constants::NO_BUFFER,
            total_len: data.len() as u16,
            in_port,
            reason,
            data,
        };
        let msg = OfMessage::PacketIn { xid: 0, body };
        self.send_to_controller(ctx, msg, emit_at.saturating_sub(now));
    }

    fn record_drop(&mut self, packet: &SimPacket, ctx: &mut Context<'_>) {
        self.data_packets_dropped += 1;
        if !packet.injected {
            ctx.record(TraceEvent::PacketDropped {
                node: ctx.self_id(),
                flow: None,
                packet_id: packet.id,
                time: ctx.now(),
            });
        }
    }

    fn forward_via_table(&mut self, packet: SimPacket, in_port: PortNo, ctx: &mut Context<'_>) {
        let verdict =
            self.behavior
                .classify_packet(ctx.now().into(), &packet.header, in_port, packet.size);
        if !verdict.matched {
            self.record_drop(&packet, ctx);
            if self.config.miss_send_len > 0 {
                self.emit_packet_in(&packet.header, in_port, packet_in_reason::NO_MATCH, ctx);
            }
            return;
        }
        if verdict.outputs.is_empty() {
            // An empty action list is an explicit drop rule.
            self.record_drop(&packet, ctx);
            return;
        }
        let forwarded = packet.forwarded(ctx.self_id(), verdict.rewritten);
        let mut sent_any = false;
        for port in verdict.outputs {
            match port {
                of_port::CONTROLLER => {
                    self.emit_packet_in(&verdict.rewritten, in_port, packet_in_reason::ACTION, ctx);
                    sent_any = true;
                }
                of_port::IN_PORT => {
                    sent_any |= ctx.send_packet(in_port, forwarded.clone());
                }
                of_port::FLOOD | of_port::ALL => {
                    for p in ctx.topology().ports_of(ctx.self_id()) {
                        if p != in_port {
                            sent_any |= ctx.send_packet(p, forwarded.clone());
                        }
                    }
                }
                of_port::TABLE | of_port::NORMAL | of_port::LOCAL | of_port::NONE => {}
                physical => {
                    sent_any |= ctx.send_packet(physical, forwarded.clone());
                }
            }
        }
        if sent_any {
            self.data_packets_forwarded += 1;
        } else {
            self.record_drop(&packet, ctx);
        }
    }
}

impl Node for OpenFlowSwitch {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn start(&mut self, _ctx: &mut Context<'_>) {
        // Timers are armed lazily from the behaviour engine's deadlines; an
        // idle switch schedules nothing.
    }

    fn handle(&mut self, event: EventPayload, ctx: &mut Context<'_>) {
        // Always let the engine catch up first: sync ticks and in-flight
        // batches due before this event must be visible to it.
        self.drive(ctx);
        match event {
            EventPayload::Control { from, message } => self.handle_control(from, message, ctx),
            EventPayload::Packet { packet, in_port } => {
                self.forward_via_table(packet, in_port, ctx)
            }
            EventPayload::Timer { token } => match token {
                TOKEN_BEHAVIOR => {
                    // drive() above already advanced the engine; just allow
                    // re-arming for the next deadline.
                    self.armed_deadline = None;
                }
                TOKEN_PACKET_OUT => {
                    let now = ctx.now();
                    while let Some((exec_at, _)) = self.pending_packet_outs.front() {
                        if *exec_at > now {
                            break;
                        }
                        let (_, po) = self.pending_packet_outs.pop_front().expect("front");
                        self.execute_packet_out(po, ctx);
                    }
                }
                TOKEN_RECONNECT => {
                    // The reboot finished: reattach the behaviour engine and
                    // replay the handshake (the engine emits the switch-side
                    // Hello as a Reply action executed below).
                    let now = ctx.now();
                    let mut actions = std::mem::take(&mut self.actions);
                    self.behavior.reattach(now.into(), &mut actions);
                    if !actions.is_empty() {
                        self.hello_pending = true;
                    }
                    self.execute_actions(&mut actions, ctx);
                    self.actions = actions;
                }
                _ => {}
            },
        }
        self.rearm_deadline(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::measure::FlowId;
    use crate::traffic::{FlowSpec, Host};
    use openflow::messages::FlowMod;
    use openflow::OfMatch;
    use std::any::Any;
    use std::net::Ipv4Addr;

    /// A stub controller that records everything the switch sends and can be
    /// pre-loaded with messages to transmit at given times.
    pub struct StubController {
        to_send: Vec<(SimTime, NodeId, OfMessage)>,
        pub received: Vec<(SimTime, OfMessage)>,
    }

    impl StubController {
        pub fn new(to_send: Vec<(SimTime, NodeId, OfMessage)>) -> Self {
            StubController {
                to_send,
                received: Vec::new(),
            }
        }
        pub fn barrier_reply_times(&self) -> Vec<SimTime> {
            self.received
                .iter()
                .filter(|(_, m)| matches!(m, OfMessage::BarrierReply { .. }))
                .map(|(t, _)| *t)
                .collect()
        }
    }

    impl Node for StubController {
        fn name(&self) -> String {
            "stub-controller".into()
        }
        fn start(&mut self, ctx: &mut Context<'_>) {
            for (t, to, msg) in self.to_send.drain(..) {
                // Send now with the extra latency baked in.
                ctx.send_control(to, msg, t);
            }
        }
        fn handle(&mut self, event: EventPayload, ctx: &mut Context<'_>) {
            if let EventPayload::Control { message, .. } = event {
                self.received.push((ctx.now(), message));
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn flow_mod(i: u8, port: PortNo, cookie: u64) -> OfMessage {
        OfMessage::FlowMod {
            xid: cookie as u32,
            body: FlowMod::add(
                OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, i), Ipv4Addr::new(10, 1, 0, i)),
                100,
                vec![Action::output(port)],
            )
            .with_cookie(cookie),
        }
    }

    #[test]
    fn handshake_messages_are_answered() {
        let mut sim = Simulator::new(1);
        let sw_id = NodeId(1);
        let ctrl = StubController::new(vec![
            (SimTime::from_millis(1), sw_id, OfMessage::Hello { xid: 1 }),
            (
                SimTime::from_millis(2),
                sw_id,
                OfMessage::FeaturesRequest { xid: 2 },
            ),
            (
                SimTime::from_millis(3),
                sw_id,
                OfMessage::EchoRequest {
                    xid: 3,
                    data: vec![1, 2],
                },
            ),
            (
                SimTime::from_millis(4),
                sw_id,
                OfMessage::GetConfigRequest { xid: 4 },
            ),
            (
                SimTime::from_millis(5),
                sw_id,
                OfMessage::StatsRequest {
                    xid: 5,
                    body: StatsRequest::Desc,
                },
            ),
        ]);
        let ctrl_id = sim.add_node(ctrl);
        let mut sw = OpenFlowSwitch::new("s1", DatapathId::new(1), 4, SwitchModel::faithful());
        sw.connect_controller(ctrl_id);
        let added = sim.add_node(sw);
        assert_eq!(added, sw_id);
        sim.run_until(SimTime::from_millis(100));
        let ctrl = sim.node_ref::<StubController>(ctrl_id).unwrap();
        let names: Vec<&str> = ctrl.received.iter().map(|(_, m)| m.name()).collect();
        assert!(names.contains(&"Hello"));
        assert!(names.contains(&"FeaturesReply"));
        assert!(names.contains(&"EchoReply"));
        assert!(names.contains(&"GetConfigReply"));
        assert!(names.contains(&"StatsReply"));
    }

    #[test]
    fn faithful_switch_barrier_waits_for_data_plane() {
        let mut sim = Simulator::new(1);
        let sw_id = NodeId(1);
        let ctrl = StubController::new(vec![
            (SimTime::from_millis(1), sw_id, flow_mod(1, 2, 11)),
            (
                SimTime::from_millis(1),
                sw_id,
                OfMessage::BarrierRequest { xid: 99 },
            ),
        ]);
        let ctrl_id = sim.add_node(ctrl);
        let mut sw = OpenFlowSwitch::new("s1", DatapathId::new(1), 4, SwitchModel::faithful());
        sw.connect_controller(ctrl_id);
        sim.add_node(sw);
        sim.run_until(SimTime::from_secs(2));

        let activations = sim.trace().data_plane_activation_times();
        let dp_time = activations[&11];
        let ctrl = sim.node_ref::<StubController>(ctrl_id).unwrap();
        let reply_time = ctrl.barrier_reply_times()[0];
        assert!(
            reply_time >= dp_time,
            "faithful barrier reply ({reply_time}) must not precede data-plane activation ({dp_time})"
        );
    }

    #[test]
    fn hp_switch_barrier_replies_before_data_plane() {
        let mut sim = Simulator::new(1);
        let sw_id = NodeId(1);
        let ctrl = StubController::new(vec![
            (SimTime::from_millis(1), sw_id, flow_mod(1, 2, 11)),
            (
                SimTime::from_millis(1),
                sw_id,
                OfMessage::BarrierRequest { xid: 99 },
            ),
        ]);
        let ctrl_id = sim.add_node(ctrl);
        let mut sw = OpenFlowSwitch::new("s2", DatapathId::new(2), 4, SwitchModel::hp5406zl());
        sw.connect_controller(ctrl_id);
        sim.add_node(sw);
        sim.run_until(SimTime::from_secs(2));

        let activations = sim.trace().data_plane_activation_times();
        let dp_time = activations[&11];
        let ctrl = sim.node_ref::<StubController>(ctrl_id).unwrap();
        let reply_time = ctrl.barrier_reply_times()[0];
        assert!(
            reply_time < dp_time,
            "the buggy switch must acknowledge the barrier ({reply_time}) before the data plane activates ({dp_time})"
        );
        // The gap should be in the published 100-300 ms band.
        let gap = dp_time - reply_time;
        assert!(gap >= SimTime::from_millis(50), "gap was {gap}");
        assert!(gap <= SimTime::from_millis(310), "gap was {gap}");
    }

    #[test]
    fn data_plane_lags_but_eventually_converges() {
        let mut sim = Simulator::new(1);
        let sw_id = NodeId(1);
        let msgs: Vec<(SimTime, NodeId, OfMessage)> = (0..50u64)
            .map(|i| {
                (
                    SimTime::from_millis(1),
                    sw_id,
                    flow_mod(i as u8, 2, 100 + i),
                )
            })
            .collect();
        let ctrl_id = sim.add_node(StubController::new(msgs));
        let mut sw = OpenFlowSwitch::new("s2", DatapathId::new(2), 4, SwitchModel::hp5406zl());
        sw.connect_controller(ctrl_id);
        let sw_node = sim.add_node(sw);
        sim.run_until(SimTime::from_millis(150));
        {
            let sw = sim.node_ref::<OpenFlowSwitch>(sw_node).unwrap();
            assert_eq!(
                sw.control_table().len(),
                50,
                "control plane accepted all mods"
            );
            assert!(
                sw.data_table().len() < 50,
                "data plane must lag the control plane shortly after the burst"
            );
        }
        sim.run_until(SimTime::from_secs(3));
        let sw = sim.node_ref::<OpenFlowSwitch>(sw_node).unwrap();
        assert_eq!(
            sw.data_table().len(),
            50,
            "data plane eventually catches up"
        );
        assert_eq!(sw.flow_mods_processed(), 50);
        assert_eq!(sw.dataplane_backlog(), 0);
    }

    #[test]
    fn packets_forward_through_installed_rules_and_drop_otherwise() {
        let mut sim = Simulator::new(1);
        // h1 -- s1 -- h2
        let mut h1 = Host::new("h1");
        let mut h2 = Host::new("h2");
        let header = crate::traffic::flow_header(
            0,
            openflow::MacAddr::from_id(1),
            openflow::MacAddr::from_id(2),
        );
        h1.add_tx_flow(FlowSpec::constant_rate(
            FlowId(0),
            header,
            1,
            250,
            SimTime::ZERO,
            SimTime::from_millis(400),
        ));
        h2.expect_flow(&header, FlowId(0));
        let h1_id = sim.add_node(h1);
        let h2_id = sim.add_node(h2);
        let mut sw = OpenFlowSwitch::new("s1", DatapathId::new(1), 4, SwitchModel::faithful());
        // Pre-install: traffic from h1 (port 1) forwarded out port 2 to h2.
        sw.preinstall(
            &FlowMod::add(
                OfMatch::ipv4_pair(header.nw_src, header.nw_dst),
                10,
                vec![Action::output(2)],
            )
            .with_cookie(1),
        );
        let sw_id = sim.add_node(sw);
        sim.topology_mut()
            .add_link(h1_id, 1, sw_id, 1, SimTime::from_micros(50));
        sim.topology_mut()
            .add_link(sw_id, 2, h2_id, 1, SimTime::from_micros(50));
        sim.run_until(SimTime::from_millis(600));
        let delivered = sim.trace().delivered_packets(Some(FlowId(0)));
        assert_eq!(delivered, 100, "250 pkt/s for 400 ms");
        let sw = sim.node_ref::<OpenFlowSwitch>(sw_id).unwrap();
        assert_eq!(sw.data_packets_forwarded(), 100);
        assert_eq!(sw.data_packets_dropped(), 0);
    }

    #[test]
    fn unmatched_packets_are_dropped_and_counted() {
        let mut sim = Simulator::new(1);
        let mut h1 = Host::new("h1");
        let header = crate::traffic::flow_header(
            7,
            openflow::MacAddr::from_id(1),
            openflow::MacAddr::from_id(2),
        );
        h1.add_tx_flow(FlowSpec::constant_rate(
            FlowId(7),
            header,
            1,
            100,
            SimTime::ZERO,
            SimTime::from_millis(100),
        ));
        let h1_id = sim.add_node(h1);
        let mut sw = OpenFlowSwitch::new("s1", DatapathId::new(1), 2, SwitchModel::faithful());
        // No controller connected and miss_send_len left at default: the
        // switch still counts the miss as a drop.
        sw.connect_controller(NodeId(0)); // point back at the host; it ignores control traffic
        let sw_id = sim.add_node(sw);
        sim.topology_mut()
            .add_link(h1_id, 1, sw_id, 1, SimTime::from_micros(50));
        sim.run_until(SimTime::from_millis(300));
        let sw = sim.node_ref::<OpenFlowSwitch>(sw_id).unwrap();
        assert_eq!(sw.data_packets_dropped(), 10);
        assert_eq!(sim.trace().dropped_packets(None), 10);
    }

    #[test]
    fn drop_rule_drops_without_packet_in() {
        let mut sim = Simulator::new(1);
        let mut h1 = Host::new("h1");
        let header = crate::traffic::flow_header(
            3,
            openflow::MacAddr::from_id(1),
            openflow::MacAddr::from_id(2),
        );
        h1.add_tx_flow(FlowSpec::constant_rate(
            FlowId(3),
            header,
            1,
            100,
            SimTime::ZERO,
            SimTime::from_millis(50),
        ));
        let h1_id = sim.add_node(h1);
        let mut sw = OpenFlowSwitch::new("s1", DatapathId::new(1), 2, SwitchModel::faithful());
        sw.preinstall(&FlowMod::add(OfMatch::wildcard_all(), 0, vec![]).with_cookie(1));
        sw.connect_controller(NodeId(0));
        let sw_id = sim.add_node(sw);
        sim.topology_mut()
            .add_link(h1_id, 1, sw_id, 1, SimTime::from_micros(50));
        sim.run_until(SimTime::from_millis(200));
        let sw = sim.node_ref::<OpenFlowSwitch>(sw_id).unwrap();
        assert_eq!(sw.data_packets_dropped(), 5);
        assert_eq!(
            sw.packet_ins_sent(),
            0,
            "drop rule must not create PacketIns"
        );
    }

    #[test]
    fn packet_out_injects_into_data_plane() {
        let mut sim = Simulator::new(1);
        let mut h2 = Host::new("h2");
        let header = crate::traffic::flow_header(
            0,
            openflow::MacAddr::from_id(1),
            openflow::MacAddr::from_id(2),
        );
        h2.expect_flow(&header, FlowId(0));
        let h2_id = sim.add_node(h2);

        // The switch will be node 2; the controller (node 1) sends it a
        // PacketOut that outputs the frame directly on port 2, plus one that
        // goes through the flow table (OFPP_TABLE).
        let sw_id = NodeId(2);
        let direct = OfMessage::PacketOut {
            xid: 1,
            body: PacketOut::single_port(2, header.to_bytes()),
        };
        let via_table = OfMessage::PacketOut {
            xid: 2,
            body: PacketOut::via_table(header.to_bytes()),
        };
        let ctrl_id = sim.add_node(StubController::new(vec![
            (SimTime::from_millis(1), sw_id, direct),
            (SimTime::from_millis(2), sw_id, via_table),
        ]));

        let mut sw = OpenFlowSwitch::new("s1", DatapathId::new(1), 2, SwitchModel::faithful());
        sw.preinstall(
            &FlowMod::add(
                OfMatch::ipv4_pair(header.nw_src, header.nw_dst),
                10,
                vec![Action::output(2)],
            )
            .with_cookie(5),
        );
        sw.connect_controller(ctrl_id);
        let added = sim.add_node(sw);
        assert_eq!(added, sw_id);
        sim.topology_mut()
            .add_link(sw_id, 2, h2_id, 1, SimTime::from_micros(50));
        sim.run_until(SimTime::from_millis(100));

        assert_eq!(
            sim.trace().delivered_packets(Some(FlowId(0))),
            2,
            "both the direct and the via-table PacketOut reach the host"
        );
        let sw = sim.node_ref::<OpenFlowSwitch>(sw_id).unwrap();
        assert_eq!(sw.packet_outs_processed(), 2);
    }

    #[test]
    fn table_full_produces_error_message() {
        let mut sim = Simulator::new(1);
        let sw_id = NodeId(1);
        let mut model = SwitchModel::faithful();
        model.table_capacity = 1;
        let ctrl_id = sim.add_node(StubController::new(vec![
            (SimTime::from_millis(1), sw_id, flow_mod(1, 2, 1)),
            (SimTime::from_millis(2), sw_id, flow_mod(2, 2, 2)),
        ]));
        let mut sw = OpenFlowSwitch::new("s1", DatapathId::new(1), 4, model);
        sw.connect_controller(ctrl_id);
        sim.add_node(sw);
        sim.run_until(SimTime::from_secs(1));
        let ctrl = sim.node_ref::<StubController>(ctrl_id).unwrap();
        let errors: Vec<&OfMessage> = ctrl
            .received
            .iter()
            .map(|(_, m)| m)
            .filter(|m| matches!(m, OfMessage::Error { .. }))
            .collect();
        assert_eq!(errors.len(), 1);
    }

    /// The fault plan is reachable through the simnet driver: a wedged
    /// modification never activates, yet the buggy switch still answers
    /// barriers — the trace shows the confirmation gap the matrix measures.
    #[test]
    fn fault_plan_wedges_data_plane_through_the_driver() {
        let mut sim = Simulator::new(1);
        let sw_id = NodeId(1);
        let faults = FaultPlan::seeded(21).with_silent_drops(4);
        let wedge = (0..32u64).find(|&c| faults.drops_cookie(c)).unwrap();
        let mut msgs: Vec<(SimTime, NodeId, OfMessage)> = (0..=wedge + 2)
            .map(|c| (SimTime::from_millis(1), sw_id, flow_mod(c as u8, 2, c)))
            .collect();
        msgs.push((
            SimTime::from_millis(1),
            sw_id,
            OfMessage::BarrierRequest { xid: 4242 },
        ));
        let ctrl_id = sim.add_node(StubController::new(msgs));
        let mut sw = OpenFlowSwitch::with_faults(
            "s1",
            DatapathId::new(1),
            4,
            SwitchModel::hp5406zl(),
            faults,
        );
        sw.connect_controller(ctrl_id);
        sim.add_node(sw);
        sim.run_until(SimTime::from_secs(5));

        let sw = sim.node_ref::<OpenFlowSwitch>(NodeId(1)).unwrap();
        let truth = sw.behavior().ground_truth();
        assert!(truth.first_activation(wedge).is_none());
        assert!(truth.wedged.contains(&wedge));
        if wedge > 0 {
            assert!(truth.first_activation(0).is_some());
        }
        // The buggy switch acknowledged the barrier regardless.
        let ctrl = sim.node_ref::<StubController>(ctrl_id).unwrap();
        assert_eq!(ctrl.barrier_reply_times().len(), 1);
    }
}
