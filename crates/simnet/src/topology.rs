//! Data-plane topology: point-to-point links between node ports.

use crate::node::NodeId;
use crate::time::SimTime;
use openflow::PortNo;
use std::collections::HashMap;

/// One endpoint of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Endpoint {
    /// The node.
    pub node: NodeId,
    /// The port on that node.
    pub port: PortNo,
}

impl Endpoint {
    /// Creates an endpoint.
    pub fn new(node: NodeId, port: PortNo) -> Self {
        Endpoint { node, port }
    }
}

/// A bidirectional link with a propagation latency.
#[derive(Debug, Clone, Copy)]
pub struct Link {
    /// One end.
    pub a: Endpoint,
    /// The other end.
    pub b: Endpoint,
    /// One-way propagation latency.
    pub latency: SimTime,
}

/// The set of data-plane links in an experiment.
///
/// The topology is immutable while the simulation runs; nodes query it via
/// the [`crate::Context`] to learn where a packet sent out of a port ends up.
#[derive(Debug, Default)]
pub struct Topology {
    links: Vec<Link>,
    by_endpoint: HashMap<Endpoint, usize>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Connects `(a, port_a)` to `(b, port_b)` with the given one-way
    /// latency.  Panics if either endpoint is already connected — silently
    /// rewiring a port is almost always an experiment bug.
    pub fn add_link(
        &mut self,
        a: NodeId,
        port_a: PortNo,
        b: NodeId,
        port_b: PortNo,
        latency: SimTime,
    ) {
        let ea = Endpoint::new(a, port_a);
        let eb = Endpoint::new(b, port_b);
        assert!(
            !self.by_endpoint.contains_key(&ea),
            "endpoint {a}:{port_a} already wired"
        );
        assert!(
            !self.by_endpoint.contains_key(&eb),
            "endpoint {b}:{port_b} already wired"
        );
        let idx = self.links.len();
        self.links.push(Link {
            a: ea,
            b: eb,
            latency,
        });
        self.by_endpoint.insert(ea, idx);
        self.by_endpoint.insert(eb, idx);
    }

    /// Where does traffic leaving `node` through `port` arrive?
    /// Returns the peer endpoint and the link latency.
    pub fn peer_of(&self, node: NodeId, port: PortNo) -> Option<(Endpoint, SimTime)> {
        let ep = Endpoint::new(node, port);
        let link = &self.links[*self.by_endpoint.get(&ep)?];
        let peer = if link.a == ep { link.b } else { link.a };
        Some((peer, link.latency))
    }

    /// All wired ports of a node, sorted.
    pub fn ports_of(&self, node: NodeId) -> Vec<PortNo> {
        let mut ports: Vec<PortNo> = self
            .by_endpoint
            .keys()
            .filter(|e| e.node == node)
            .map(|e| e.port)
            .collect();
        ports.sort_unstable();
        ports
    }

    /// All neighbours of a node with the local port leading to each.
    pub fn neighbors(&self, node: NodeId) -> Vec<(PortNo, NodeId)> {
        let mut out: Vec<(PortNo, NodeId)> = self
            .ports_of(node)
            .into_iter()
            .filter_map(|p| self.peer_of(node, p).map(|(peer, _)| (p, peer.node)))
            .collect();
        out.sort_unstable();
        out
    }

    /// The local port on `from` that leads directly to `to`, if any.
    pub fn port_towards(&self, from: NodeId, to: NodeId) -> Option<PortNo> {
        self.neighbors(from)
            .into_iter()
            .find(|(_, n)| *n == to)
            .map(|(p, _)| p)
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterates over all links.
    pub fn links(&self) -> impl Iterator<Item = &Link> {
        self.links.iter()
    }

    /// The adjacency list over nodes (ignoring ports), useful for graph
    /// algorithms such as the vertex colouring RUM uses to assign per-switch
    /// probe values.
    pub fn adjacency(&self) -> HashMap<NodeId, Vec<NodeId>> {
        let mut adj: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for link in &self.links {
            adj.entry(link.a.node).or_default().push(link.b.node);
            adj.entry(link.b.node).or_default().push(link.a.node);
        }
        for neighbors in adj.values_mut() {
            neighbors.sort_unstable();
            neighbors.dedup();
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_lookup_both_directions() {
        let mut t = Topology::new();
        t.add_link(NodeId(0), 1, NodeId(1), 2, SimTime::from_micros(50));
        let (peer, lat) = t.peer_of(NodeId(0), 1).unwrap();
        assert_eq!(peer, Endpoint::new(NodeId(1), 2));
        assert_eq!(lat, SimTime::from_micros(50));
        let (peer, _) = t.peer_of(NodeId(1), 2).unwrap();
        assert_eq!(peer, Endpoint::new(NodeId(0), 1));
        assert!(t.peer_of(NodeId(0), 9).is_none());
        assert_eq!(t.link_count(), 1);
    }

    #[test]
    #[should_panic(expected = "already wired")]
    fn double_wiring_panics() {
        let mut t = Topology::new();
        t.add_link(NodeId(0), 1, NodeId(1), 1, SimTime::ZERO);
        t.add_link(NodeId(0), 1, NodeId(2), 1, SimTime::ZERO);
    }

    #[test]
    fn triangle_adjacency() {
        // The paper's Figure 1a triangle: S1 - S2 - S3 - S1.
        let mut t = Topology::new();
        t.add_link(NodeId(0), 1, NodeId(1), 1, SimTime::from_micros(10));
        t.add_link(NodeId(1), 2, NodeId(2), 1, SimTime::from_micros(10));
        t.add_link(NodeId(2), 2, NodeId(0), 2, SimTime::from_micros(10));
        let adj = t.adjacency();
        assert_eq!(adj[&NodeId(0)], vec![NodeId(1), NodeId(2)]);
        assert_eq!(adj[&NodeId(1)], vec![NodeId(0), NodeId(2)]);
        assert_eq!(adj[&NodeId(2)], vec![NodeId(0), NodeId(1)]);
        assert_eq!(t.ports_of(NodeId(0)), vec![1, 2]);
        assert_eq!(t.port_towards(NodeId(0), NodeId(2)), Some(2));
        assert_eq!(t.port_towards(NodeId(0), NodeId(0)), None);
        assert_eq!(t.neighbors(NodeId(1)), vec![(1, NodeId(0)), (2, NodeId(2))]);
    }
}
