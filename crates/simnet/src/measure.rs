//! Measurement: trace events and the analyses behind the paper's figures.
//!
//! Every node records [`TraceEvent`]s into the shared [`TraceSink`] through
//! its [`crate::Context`].  After a run, the analysis methods reduce the raw
//! trace to the quantities the paper reports:
//!
//! * per-flow *broken time* (Figure 1b) — how long a flow went dark during a
//!   network update,
//! * per-flow *update time* (Figures 6, 7) — when the last old-path packet
//!   and the first new-path packet arrived,
//! * per-rule *activation delay* (Figure 8) — signed gap between data-plane
//!   activation and the control-plane acknowledgment,
//! * drop counts (the "6000–7500 packets lost" headline number).

use crate::node::NodeId;
use crate::time::SimTime;
use std::collections::{BTreeMap, HashMap};

/// Identifies an end-to-end flow in an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

impl FlowId {
    /// The raw value.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for FlowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "flow{}", self.0)
    }
}

/// A single recorded observation.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A host emitted a data packet.
    PacketSent {
        /// The flow the packet belongs to.
        flow: FlowId,
        /// Packet id.
        packet_id: u64,
        /// Emission time.
        time: SimTime,
    },
    /// A host received a data packet addressed to it.
    PacketDelivered {
        /// Receiving node.
        node: NodeId,
        /// The flow the packet belongs to.
        flow: FlowId,
        /// Packet id.
        packet_id: u64,
        /// Delivery time.
        time: SimTime,
        /// Emission time.
        sent_at: SimTime,
        /// Path signature (node indices of traversed switches, in order).
        path: Vec<usize>,
    },
    /// A switch dropped a data packet (no matching rule, or an explicit drop
    /// rule).
    PacketDropped {
        /// Dropping node.
        node: NodeId,
        /// The flow the packet belongs to (if classifiable).
        flow: Option<FlowId>,
        /// Packet id.
        packet_id: u64,
        /// Drop time.
        time: SimTime,
    },
    /// A rule (identified by its controller-assigned cookie) became active in
    /// a switch's *data plane* — the ground truth RUM tries to track.
    DataPlaneActivated {
        /// The switch.
        switch: NodeId,
        /// The rule's cookie.
        cookie: u64,
        /// Activation time.
        time: SimTime,
    },
    /// A rule stopped being active in the data plane (deleted/replaced).
    DataPlaneDeactivated {
        /// The switch.
        switch: NodeId,
        /// The rule's cookie.
        cookie: u64,
        /// Deactivation time.
        time: SimTime,
    },
    /// The controller (through whatever acknowledgment technique is in use)
    /// considered the rule with this cookie to be installed.
    ControlPlaneConfirmed {
        /// The rule's cookie.
        cookie: u64,
        /// Confirmation time.
        time: SimTime,
    },
    /// The controller sent the flow-mod with this cookie to the switch side.
    FlowModSent {
        /// The rule's cookie.
        cookie: u64,
        /// Send time.
        time: SimTime,
    },
    /// A free-form annotation (used sparingly, e.g. phase markers).
    Marker {
        /// Label.
        label: String,
        /// Time.
        time: SimTime,
    },
}

impl TraceEvent {
    /// The timestamp of the event.
    pub fn time(&self) -> SimTime {
        match self {
            TraceEvent::PacketSent { time, .. }
            | TraceEvent::PacketDelivered { time, .. }
            | TraceEvent::PacketDropped { time, .. }
            | TraceEvent::DataPlaneActivated { time, .. }
            | TraceEvent::DataPlaneDeactivated { time, .. }
            | TraceEvent::ControlPlaneConfirmed { time, .. }
            | TraceEvent::FlowModSent { time, .. }
            | TraceEvent::Marker { time, .. } => *time,
        }
    }
}

/// Summary of one flow's behaviour across a network update.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowUpdateSummary {
    /// The flow.
    pub flow: FlowId,
    /// Arrival time of the last packet delivered over the initial path.
    pub last_old_path: Option<SimTime>,
    /// Arrival time of the first packet delivered over the final path.
    pub first_new_path: Option<SimTime>,
    /// Number of delivered packets.
    pub delivered: usize,
    /// Number of dropped packets attributed to this flow.
    pub dropped: usize,
    /// True when the flow's path actually changed during the run.
    pub path_changed: bool,
}

impl FlowUpdateSummary {
    /// The interval during which the flow was broken (no packets were being
    /// delivered because the old path was already torn down but the new path
    /// was not yet functional).  Zero when the switchover was seamless.
    pub fn broken_time(&self) -> SimTime {
        match (self.last_old_path, self.first_new_path) {
            (Some(last_old), Some(first_new)) if first_new > last_old => first_new - last_old,
            _ => SimTime::ZERO,
        }
    }

    /// The flow update time used by Figures 6 and 7: when the flow started
    /// using the new path.
    pub fn update_completed_at(&self) -> Option<SimTime> {
        self.first_new_path
    }
}

/// The activation-delay sample behind Figure 8: one per rule modification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivationDelay {
    /// The rule's cookie.
    pub cookie: u64,
    /// When the rule became active in the data plane.
    pub data_plane: SimTime,
    /// When the controller was told the rule was in place.
    pub control_plane: SimTime,
}

impl ActivationDelay {
    /// Signed delay in milliseconds: positive when the acknowledgment arrived
    /// after the data-plane activation (safe), negative when the controller
    /// was told too early (the incorrect behaviour the paper demonstrates).
    pub fn delay_millis(&self) -> f64 {
        self.control_plane.signed_delta_millis(self.data_plane)
    }
}

/// Collects trace events during a simulation run.
#[derive(Debug, Default)]
pub struct TraceSink {
    events: Vec<TraceEvent>,
}

impl TraceSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        TraceSink::default()
    }

    /// Records one event.
    pub fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All events in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total packets dropped (optionally restricted to one flow).
    pub fn dropped_packets(&self, flow: Option<FlowId>) -> usize {
        self.events
            .iter()
            .filter(|e| match e {
                TraceEvent::PacketDropped { flow: f, .. } => flow.is_none() || *f == flow,
                _ => false,
            })
            .count()
    }

    /// Total packets delivered (optionally restricted to one flow).
    pub fn delivered_packets(&self, flow: Option<FlowId>) -> usize {
        self.events
            .iter()
            .filter(|e| match e {
                TraceEvent::PacketDelivered { flow: f, .. } => flow.is_none_or(|want| *f == want),
                _ => false,
            })
            .count()
    }

    /// Per-flow update summaries (Figures 1b, 6, 7).
    ///
    /// The initial path of a flow is the path signature of its first
    /// delivered packet; the final path is the signature of its last
    /// delivered packet.  `last_old_path` / `first_new_path` are computed
    /// against those two signatures.
    pub fn flow_update_summaries(&self) -> BTreeMap<FlowId, FlowUpdateSummary> {
        // Gather deliveries per flow in time order (events are recorded in
        // time order because the simulator is single-threaded).
        let mut deliveries: BTreeMap<FlowId, Vec<(SimTime, Vec<usize>)>> = BTreeMap::new();
        let mut drops: HashMap<FlowId, usize> = HashMap::new();
        for e in &self.events {
            match e {
                TraceEvent::PacketDelivered {
                    flow, time, path, ..
                } => deliveries
                    .entry(*flow)
                    .or_default()
                    .push((*time, path.clone())),
                TraceEvent::PacketDropped {
                    flow: Some(flow), ..
                } => *drops.entry(*flow).or_default() += 1,
                _ => {}
            }
        }
        deliveries
            .into_iter()
            .map(|(flow, recs)| {
                let old_path = recs.first().map(|(_, p)| p.clone()).unwrap_or_default();
                let new_path = recs.last().map(|(_, p)| p.clone()).unwrap_or_default();
                let path_changed = old_path != new_path;
                let last_old_path = recs
                    .iter()
                    .filter(|(_, p)| *p == old_path)
                    .map(|(t, _)| *t)
                    .next_back();
                let first_new_path = if path_changed {
                    recs.iter().find(|(_, p)| *p == new_path).map(|(t, _)| *t)
                } else {
                    last_old_path
                };
                let summary = FlowUpdateSummary {
                    flow,
                    last_old_path,
                    first_new_path,
                    delivered: recs.len(),
                    dropped: drops.get(&flow).copied().unwrap_or(0),
                    path_changed,
                };
                (flow, summary)
            })
            .collect()
    }

    /// Per-rule activation delays (Figure 8).
    ///
    /// For each cookie, pairs the *first* data-plane activation with the
    /// *first* control-plane confirmation.  Rules missing either side are
    /// skipped (e.g. probe rules RUM installs for itself).
    pub fn activation_delays(&self) -> Vec<ActivationDelay> {
        let mut data_plane: HashMap<u64, SimTime> = HashMap::new();
        let mut control_plane: HashMap<u64, SimTime> = HashMap::new();
        for e in &self.events {
            match e {
                TraceEvent::DataPlaneActivated { cookie, time, .. } => {
                    data_plane.entry(*cookie).or_insert(*time);
                }
                TraceEvent::ControlPlaneConfirmed { cookie, time } => {
                    control_plane.entry(*cookie).or_insert(*time);
                }
                _ => {}
            }
        }
        let mut out: Vec<ActivationDelay> = data_plane
            .into_iter()
            .filter_map(|(cookie, dp)| {
                control_plane.get(&cookie).map(|cp| ActivationDelay {
                    cookie,
                    data_plane: dp,
                    control_plane: *cp,
                })
            })
            .collect();
        out.sort_by_key(|d| d.cookie);
        out
    }

    /// The times at which flow mods were sent, keyed by cookie.
    pub fn flow_mod_send_times(&self) -> HashMap<u64, SimTime> {
        let mut out = HashMap::new();
        for e in &self.events {
            if let TraceEvent::FlowModSent { cookie, time } = e {
                out.entry(*cookie).or_insert(*time);
            }
        }
        out
    }

    /// The times at which rules were confirmed to the controller, keyed by
    /// cookie.
    pub fn confirmation_times(&self) -> HashMap<u64, SimTime> {
        let mut out = HashMap::new();
        for e in &self.events {
            if let TraceEvent::ControlPlaneConfirmed { cookie, time } = e {
                out.entry(*cookie).or_insert(*time);
            }
        }
        out
    }

    /// The first data-plane activation time per cookie.
    pub fn data_plane_activation_times(&self) -> HashMap<u64, SimTime> {
        let mut out = HashMap::new();
        for e in &self.events {
            if let TraceEvent::DataPlaneActivated { cookie, time, .. } = e {
                out.entry(*cookie).or_insert(*time);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delivered(flow: u64, t_ms: u64, path: Vec<usize>) -> TraceEvent {
        TraceEvent::PacketDelivered {
            node: NodeId(9),
            flow: FlowId(flow),
            packet_id: t_ms,
            time: SimTime::from_millis(t_ms),
            sent_at: SimTime::from_millis(t_ms.saturating_sub(1)),
            path,
        }
    }

    #[test]
    fn broken_time_computed_from_path_change() {
        let mut sink = TraceSink::new();
        // Old path 1-3, packets until t=100; new path 1-2-3 from t=390.
        for t in (0..=100).step_by(20) {
            sink.record(delivered(1, t, vec![1, 3]));
        }
        for t in (390..=450).step_by(20) {
            sink.record(delivered(1, t, vec![1, 2, 3]));
        }
        let summaries = sink.flow_update_summaries();
        let s = &summaries[&FlowId(1)];
        assert!(s.path_changed);
        assert_eq!(s.last_old_path, Some(SimTime::from_millis(100)));
        assert_eq!(s.first_new_path, Some(SimTime::from_millis(390)));
        assert_eq!(s.broken_time(), SimTime::from_millis(290));
        assert_eq!(s.delivered, 6 + 4);
    }

    #[test]
    fn seamless_update_has_zero_broken_time() {
        let mut sink = TraceSink::new();
        sink.record(delivered(2, 0, vec![1, 3]));
        sink.record(delivered(2, 4, vec![1, 3]));
        sink.record(delivered(2, 8, vec![1, 2, 3]));
        let s = &sink.flow_update_summaries()[&FlowId(2)];
        assert!(s.path_changed);
        // A seamless switchover is bounded by the inter-packet gap (4 ms),
        // the paper's measurement precision.
        assert!(s.broken_time() <= SimTime::from_millis(4));
        assert_eq!(s.first_new_path, Some(SimTime::from_millis(8)));
    }

    #[test]
    fn unchanged_path_reports_no_change() {
        let mut sink = TraceSink::new();
        sink.record(delivered(3, 0, vec![1, 3]));
        sink.record(delivered(3, 10, vec![1, 3]));
        let s = &sink.flow_update_summaries()[&FlowId(3)];
        assert!(!s.path_changed);
        assert_eq!(s.broken_time(), SimTime::ZERO);
    }

    #[test]
    fn drop_counting() {
        let mut sink = TraceSink::new();
        sink.record(TraceEvent::PacketDropped {
            node: NodeId(1),
            flow: Some(FlowId(7)),
            packet_id: 1,
            time: SimTime::from_millis(5),
        });
        sink.record(TraceEvent::PacketDropped {
            node: NodeId(1),
            flow: None,
            packet_id: 2,
            time: SimTime::from_millis(6),
        });
        sink.record(delivered(7, 10, vec![1]));
        assert_eq!(sink.dropped_packets(None), 2);
        assert_eq!(sink.dropped_packets(Some(FlowId(7))), 1);
        assert_eq!(sink.delivered_packets(None), 1);
        assert_eq!(sink.delivered_packets(Some(FlowId(7))), 1);
        assert_eq!(sink.delivered_packets(Some(FlowId(8))), 0);
        let s = &sink.flow_update_summaries()[&FlowId(7)];
        assert_eq!(s.dropped, 1);
    }

    #[test]
    fn activation_delay_sign_convention() {
        let mut sink = TraceSink::new();
        // Rule 1: ack 50 ms after data plane (safe).
        sink.record(TraceEvent::DataPlaneActivated {
            switch: NodeId(2),
            cookie: 1,
            time: SimTime::from_millis(100),
        });
        sink.record(TraceEvent::ControlPlaneConfirmed {
            cookie: 1,
            time: SimTime::from_millis(150),
        });
        // Rule 2: ack 200 ms BEFORE data plane (the bug the paper exposes).
        sink.record(TraceEvent::ControlPlaneConfirmed {
            cookie: 2,
            time: SimTime::from_millis(100),
        });
        sink.record(TraceEvent::DataPlaneActivated {
            switch: NodeId(2),
            cookie: 2,
            time: SimTime::from_millis(300),
        });
        // Rule 3: no confirmation at all -> excluded.
        sink.record(TraceEvent::DataPlaneActivated {
            switch: NodeId(2),
            cookie: 3,
            time: SimTime::from_millis(400),
        });
        let delays = sink.activation_delays();
        assert_eq!(delays.len(), 2);
        assert!((delays[0].delay_millis() - 50.0).abs() < 1e-9);
        assert!((delays[1].delay_millis() + 200.0).abs() < 1e-9);
    }

    #[test]
    fn first_occurrence_wins_for_duplicate_cookies() {
        let mut sink = TraceSink::new();
        sink.record(TraceEvent::DataPlaneActivated {
            switch: NodeId(0),
            cookie: 9,
            time: SimTime::from_millis(10),
        });
        sink.record(TraceEvent::DataPlaneActivated {
            switch: NodeId(0),
            cookie: 9,
            time: SimTime::from_millis(99),
        });
        sink.record(TraceEvent::ControlPlaneConfirmed {
            cookie: 9,
            time: SimTime::from_millis(20),
        });
        let delays = sink.activation_delays();
        assert_eq!(delays[0].data_plane, SimTime::from_millis(10));
        assert_eq!(
            sink.data_plane_activation_times()[&9],
            SimTime::from_millis(10)
        );
    }

    #[test]
    fn event_time_accessor_and_maps() {
        let mut sink = TraceSink::new();
        assert!(sink.is_empty());
        sink.record(TraceEvent::FlowModSent {
            cookie: 4,
            time: SimTime::from_millis(2),
        });
        sink.record(TraceEvent::Marker {
            label: "update-start".into(),
            time: SimTime::from_millis(3),
        });
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.events()[1].time(), SimTime::from_millis(3));
        assert_eq!(sink.flow_mod_send_times()[&4], SimTime::from_millis(2));
        assert!(sink.confirmation_times().is_empty());
    }
}
