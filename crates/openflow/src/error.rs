//! Error types for encoding and decoding OpenFlow messages.

use std::fmt;

/// An error raised while decoding bytes into an OpenFlow structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the structure was complete.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// How many bytes were needed.
        needed: usize,
        /// How many bytes were available.
        available: usize,
    },
    /// The message declared an OpenFlow version other than 1.0.
    BadVersion(u8),
    /// The message type byte is not a known OpenFlow 1.0 type.
    UnknownMessageType(u8),
    /// An action header declared an unknown action type.
    UnknownActionType(u16),
    /// A stats request/reply declared an unknown stats type.
    UnknownStatsType(u16),
    /// A flow-mod command value outside the specification.
    UnknownFlowModCommand(u16),
    /// A length field is inconsistent (e.g. shorter than the fixed header).
    BadLength {
        /// What was being decoded.
        what: &'static str,
        /// The offending length value.
        len: usize,
    },
    /// A payload failed structural validation.
    Malformed(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated {
                what,
                needed,
                available,
            } => write!(
                f,
                "truncated {what}: needed {needed} bytes, only {available} available"
            ),
            DecodeError::BadVersion(v) => write!(f, "unsupported OpenFlow version 0x{v:02x}"),
            DecodeError::UnknownMessageType(t) => write!(f, "unknown OpenFlow message type {t}"),
            DecodeError::UnknownActionType(t) => write!(f, "unknown OpenFlow action type {t}"),
            DecodeError::UnknownStatsType(t) => write!(f, "unknown OpenFlow stats type {t}"),
            DecodeError::UnknownFlowModCommand(c) => write!(f, "unknown flow-mod command {c}"),
            DecodeError::BadLength { what, len } => {
                write!(f, "inconsistent length {len} while decoding {what}")
            }
            DecodeError::Malformed(what) => write!(f, "malformed {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// An error raised while encoding an OpenFlow structure to bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// The message is too large to express in the 16-bit length field.
    TooLarge(usize),
    /// A string field exceeds its fixed wire width.
    StringTooLong {
        /// Which field.
        field: &'static str,
        /// Maximum width in bytes.
        max: usize,
        /// Actual length.
        len: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::TooLarge(len) => {
                write!(f, "message of {len} bytes exceeds the 16-bit length field")
            }
            EncodeError::StringTooLong { field, max, len } => {
                write!(f, "string field {field} of {len} bytes exceeds {max} bytes")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_truncated() {
        let e = DecodeError::Truncated {
            what: "ofp_match",
            needed: 40,
            available: 12,
        };
        let s = e.to_string();
        assert!(s.contains("ofp_match"));
        assert!(s.contains("40"));
        assert!(s.contains("12"));
    }

    #[test]
    fn display_bad_version() {
        assert_eq!(
            DecodeError::BadVersion(4).to_string(),
            "unsupported OpenFlow version 0x04"
        );
    }

    #[test]
    fn display_encode_errors() {
        assert!(EncodeError::TooLarge(70000).to_string().contains("70000"));
        let e = EncodeError::StringTooLong {
            field: "name",
            max: 16,
            len: 20,
        };
        assert!(e.to_string().contains("name"));
    }

    #[test]
    fn errors_are_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<DecodeError>();
        assert_err::<EncodeError>();
    }
}
