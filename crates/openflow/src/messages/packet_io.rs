//! `PacketIn`, `PacketOut` and `PortStatus` messages.
//!
//! Data-plane probing (the core of RUM) is driven entirely by these two
//! messages: RUM injects probe packets with `PacketOut` and learns that a
//! rule is active when the probe comes back in a `PacketIn`.

use crate::actions::Action;
use crate::error::DecodeError;
use crate::types::{BufferId, PortNo};
use bytes::{Buf, BufMut};

/// An `OFPT_PACKET_IN` message body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketIn {
    /// ID assigned by the switch if the packet is buffered there.
    pub buffer_id: BufferId,
    /// Full length of the frame (the included data may be shorter).
    pub total_len: u16,
    /// Port on which the frame was received.
    pub in_port: PortNo,
    /// Reason the packet was sent (see `packet_in_reason`).
    pub reason: u8,
    /// The (possibly truncated) frame bytes.
    pub data: Vec<u8>,
}

/// Fixed part of a packet-in body.
pub const PACKET_IN_FIXED_LEN: usize = 4 + 2 + 2 + 1 + 1;

impl PacketIn {
    /// Builds an unbuffered PacketIn carrying the full frame.
    pub fn unbuffered(in_port: PortNo, reason: u8, data: Vec<u8>) -> Self {
        PacketIn {
            buffer_id: crate::constants::NO_BUFFER,
            total_len: data.len() as u16,
            in_port,
            reason,
            data,
        }
    }

    /// Body length on the wire.
    pub fn body_len(&self) -> usize {
        PACKET_IN_FIXED_LEN + self.data.len()
    }

    /// Encodes the body.
    pub fn encode_body<B: BufMut>(&self, buf: &mut B) {
        buf.put_u32(self.buffer_id);
        buf.put_u16(self.total_len);
        buf.put_u16(self.in_port);
        buf.put_u8(self.reason);
        buf.put_u8(0);
        buf.put_slice(&self.data);
    }

    /// Decodes the body given its total length.
    pub fn decode_body<B: Buf>(buf: &mut B, body_len: usize) -> Result<Self, DecodeError> {
        if body_len < PACKET_IN_FIXED_LEN || buf.remaining() < body_len {
            return Err(DecodeError::Truncated {
                what: "packet_in",
                needed: PACKET_IN_FIXED_LEN.max(body_len),
                available: buf.remaining(),
            });
        }
        let buffer_id = buf.get_u32();
        let total_len = buf.get_u16();
        let in_port = buf.get_u16();
        let reason = buf.get_u8();
        buf.advance(1);
        let mut data = vec![0u8; body_len - PACKET_IN_FIXED_LEN];
        buf.copy_to_slice(&mut data);
        Ok(PacketIn {
            buffer_id,
            total_len,
            in_port,
            reason,
            data,
        })
    }
}

/// An `OFPT_PACKET_OUT` message body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketOut {
    /// Buffered packet to release, or `NO_BUFFER` when `data` carries the
    /// frame.
    pub buffer_id: BufferId,
    /// Ingress port the actions should assume (`OFPP_NONE` if none).
    pub in_port: PortNo,
    /// Actions to apply to the frame.
    pub actions: Vec<Action>,
    /// The frame to send when `buffer_id` is `NO_BUFFER`.
    pub data: Vec<u8>,
}

/// Fixed part of a packet-out body.
pub const PACKET_OUT_FIXED_LEN: usize = 4 + 2 + 2;

impl PacketOut {
    /// Builds a PacketOut that injects `data` and applies `actions`.
    pub fn inject(actions: Vec<Action>, data: Vec<u8>) -> Self {
        PacketOut {
            buffer_id: crate::constants::NO_BUFFER,
            in_port: crate::constants::port::NONE,
            actions,
            data,
        }
    }

    /// Builds a PacketOut that sends `data` out of a single `port`.
    pub fn single_port(port: PortNo, data: Vec<u8>) -> Self {
        PacketOut::inject(vec![Action::output(port)], data)
    }

    /// Builds a PacketOut that pushes `data` through the switch flow table
    /// (`OFPP_TABLE`), the mode sequential probing uses so the probe exercises
    /// the freshly installed rule.
    pub fn via_table(data: Vec<u8>) -> Self {
        PacketOut::inject(vec![Action::output(crate::constants::port::TABLE)], data)
    }

    /// Body length on the wire.
    pub fn body_len(&self) -> usize {
        PACKET_OUT_FIXED_LEN + Action::list_len(&self.actions) + self.data.len()
    }

    /// Encodes the body.
    pub fn encode_body<B: BufMut>(&self, buf: &mut B) {
        buf.put_u32(self.buffer_id);
        buf.put_u16(self.in_port);
        buf.put_u16(Action::list_len(&self.actions) as u16);
        Action::encode_list(&self.actions, buf);
        buf.put_slice(&self.data);
    }

    /// Decodes the body given its total length.
    pub fn decode_body<B: Buf>(buf: &mut B, body_len: usize) -> Result<Self, DecodeError> {
        if body_len < PACKET_OUT_FIXED_LEN || buf.remaining() < body_len {
            return Err(DecodeError::Truncated {
                what: "packet_out",
                needed: PACKET_OUT_FIXED_LEN.max(body_len),
                available: buf.remaining(),
            });
        }
        let buffer_id = buf.get_u32();
        let in_port = buf.get_u16();
        let actions_len = buf.get_u16() as usize;
        if PACKET_OUT_FIXED_LEN + actions_len > body_len {
            return Err(DecodeError::BadLength {
                what: "packet_out actions",
                len: actions_len,
            });
        }
        let actions = Action::decode_list(buf, actions_len)?;
        let mut data = vec![0u8; body_len - PACKET_OUT_FIXED_LEN - actions_len];
        buf.copy_to_slice(&mut data);
        Ok(PacketOut {
            buffer_id,
            in_port,
            actions,
            data,
        })
    }
}

/// Description of a physical switch port (`ofp_phy_port`, 48 bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhyPort {
    /// Port number.
    pub port_no: PortNo,
    /// MAC address of the port.
    pub hw_addr: crate::types::MacAddr,
    /// Human readable name (up to 15 bytes + NUL).
    pub name: String,
    /// Bitmap of OFPPC_* flags.
    pub config: u32,
    /// Bitmap of OFPPS_* flags.
    pub state: u32,
    /// Current features.
    pub curr: u32,
    /// Advertised features.
    pub advertised: u32,
    /// Supported features.
    pub supported: u32,
    /// Features advertised by peer.
    pub peer: u32,
}

/// Wire size of a `ofp_phy_port`.
pub const PHY_PORT_LEN: usize = 48;

impl PhyPort {
    /// A minimal port description used by the simulated switches.
    pub fn simple(port_no: PortNo, hw_addr: crate::types::MacAddr, name: &str) -> Self {
        PhyPort {
            port_no,
            hw_addr,
            name: name.chars().take(15).collect(),
            config: 0,
            state: 0,
            curr: 0,
            advertised: 0,
            supported: 0,
            peer: 0,
        }
    }

    /// Encodes the port description.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(self.port_no);
        buf.put_slice(&self.hw_addr.octets());
        let mut name_bytes = [0u8; 16];
        let raw = self.name.as_bytes();
        let n = raw.len().min(15);
        name_bytes[..n].copy_from_slice(&raw[..n]);
        buf.put_slice(&name_bytes);
        buf.put_u32(self.config);
        buf.put_u32(self.state);
        buf.put_u32(self.curr);
        buf.put_u32(self.advertised);
        buf.put_u32(self.supported);
        buf.put_u32(self.peer);
    }

    /// Decodes a port description.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        if buf.remaining() < PHY_PORT_LEN {
            return Err(DecodeError::Truncated {
                what: "ofp_phy_port",
                needed: PHY_PORT_LEN,
                available: buf.remaining(),
            });
        }
        let port_no = buf.get_u16();
        let mut mac = [0u8; 6];
        buf.copy_to_slice(&mut mac);
        let mut name_bytes = [0u8; 16];
        buf.copy_to_slice(&mut name_bytes);
        let name_end = name_bytes.iter().position(|&b| b == 0).unwrap_or(16);
        let name = String::from_utf8_lossy(&name_bytes[..name_end]).into_owned();
        let config = buf.get_u32();
        let state = buf.get_u32();
        let curr = buf.get_u32();
        let advertised = buf.get_u32();
        let supported = buf.get_u32();
        let peer = buf.get_u32();
        Ok(PhyPort {
            port_no,
            hw_addr: crate::types::MacAddr(mac),
            name,
            config,
            state,
            curr,
            advertised,
            supported,
            peer,
        })
    }
}

/// An `OFPT_PORT_STATUS` message body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortStatus {
    /// One of `port_reason`.
    pub reason: u8,
    /// Description of the affected port.
    pub desc: PhyPort,
}

/// Wire size of a port-status body.
pub const PORT_STATUS_LEN: usize = 8 + PHY_PORT_LEN;

impl PortStatus {
    /// Body length on the wire.
    pub fn body_len(&self) -> usize {
        PORT_STATUS_LEN
    }

    /// Encodes the body.
    pub fn encode_body<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(self.reason);
        buf.put_slice(&[0u8; 7]);
        self.desc.encode(buf);
    }

    /// Decodes the body.
    pub fn decode_body<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        if buf.remaining() < PORT_STATUS_LEN {
            return Err(DecodeError::Truncated {
                what: "port_status",
                needed: PORT_STATUS_LEN,
                available: buf.remaining(),
            });
        }
        let reason = buf.get_u8();
        buf.advance(7);
        let desc = PhyPort::decode(buf)?;
        Ok(PortStatus { reason, desc })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::packet_in_reason;
    use crate::packet::PacketHeader;
    use crate::types::MacAddr;
    use bytes::BytesMut;

    #[test]
    fn packet_in_round_trip() {
        let frame = PacketHeader::default().to_bytes();
        let pi = PacketIn::unbuffered(7, packet_in_reason::ACTION, frame.clone());
        let mut buf = BytesMut::new();
        pi.encode_body(&mut buf);
        assert_eq!(buf.len(), pi.body_len());
        let decoded = PacketIn::decode_body(&mut buf.freeze(), pi.body_len()).unwrap();
        assert_eq!(decoded, pi);
        assert_eq!(decoded.data, frame);
    }

    #[test]
    fn packet_in_empty_data() {
        let pi = PacketIn::unbuffered(1, packet_in_reason::NO_MATCH, Vec::new());
        let mut buf = BytesMut::new();
        pi.encode_body(&mut buf);
        let decoded = PacketIn::decode_body(&mut buf.freeze(), pi.body_len()).unwrap();
        assert!(decoded.data.is_empty());
    }

    #[test]
    fn packet_out_round_trip() {
        let frame = PacketHeader::default().to_bytes();
        let po = PacketOut::inject(vec![Action::SetNwTos(4), Action::output(2)], frame.clone());
        let mut buf = BytesMut::new();
        po.encode_body(&mut buf);
        assert_eq!(buf.len(), po.body_len());
        let decoded = PacketOut::decode_body(&mut buf.freeze(), po.body_len()).unwrap();
        assert_eq!(decoded, po);
    }

    #[test]
    fn packet_out_via_table_uses_table_port() {
        let po = PacketOut::via_table(vec![1, 2, 3]);
        assert_eq!(
            Action::output_ports(&po.actions),
            vec![crate::constants::port::TABLE]
        );
    }

    #[test]
    fn packet_out_bad_action_len_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32(crate::constants::NO_BUFFER);
        buf.put_u16(0);
        buf.put_u16(64); // declares more action bytes than the body holds
        buf.put_slice(&[0u8; 4]);
        let len = buf.len();
        assert!(PacketOut::decode_body(&mut buf.freeze(), len).is_err());
    }

    #[test]
    fn phy_port_round_trip() {
        let p = PhyPort::simple(3, MacAddr::from_id(9), "eth3");
        let mut buf = BytesMut::new();
        p.encode(&mut buf);
        assert_eq!(buf.len(), PHY_PORT_LEN);
        let decoded = PhyPort::decode(&mut buf.freeze()).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn phy_port_name_truncated_to_15() {
        let p = PhyPort::simple(1, MacAddr::ZERO, "a-very-long-interface-name");
        assert!(p.name.len() <= 15);
        let mut buf = BytesMut::new();
        p.encode(&mut buf);
        let decoded = PhyPort::decode(&mut buf.freeze()).unwrap();
        assert_eq!(decoded.name, p.name);
    }

    #[test]
    fn port_status_round_trip() {
        let ps = PortStatus {
            reason: crate::constants::port_reason::MODIFY,
            desc: PhyPort::simple(2, MacAddr::from_id(5), "eth2"),
        };
        let mut buf = BytesMut::new();
        ps.encode_body(&mut buf);
        assert_eq!(buf.len(), ps.body_len());
        let decoded = PortStatus::decode_body(&mut buf.freeze()).unwrap();
        assert_eq!(decoded, ps);
    }
}
