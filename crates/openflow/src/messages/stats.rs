//! `OFPT_STATS_REQUEST` / `OFPT_STATS_REPLY` messages.
//!
//! The paper's §3.1 discusses (and rejects) using statistics requests as an
//! acknowledgment channel; the switch model still answers them so that
//! controllers relying on flow statistics keep working through the RUM proxy.

use crate::actions::Action;
use crate::constants::stats_type;
use crate::error::DecodeError;
use crate::flow_match::OfMatch;
use crate::types::{PortNo, Xid};
use bytes::{Buf, BufMut};

/// `OFPSF_REPLY_MORE`: more fragments of this statistics reply follow.
///
/// OpenFlow 1.0 statistics replies whose body would overflow the 16-bit
/// message length are split into fragments sharing one xid; every fragment
/// but the last carries this flag.
pub const STATS_REPLY_MORE: u16 = 0x0001;

/// Largest statistics-reply body (stats header included) that fits in one
/// OpenFlow 1.0 message: the 16-bit total length minus the 8-byte header.
pub const MAX_STATS_BODY: usize = u16::MAX as usize - 8;

/// Fixed-size string field helper: encodes `s` NUL-padded to `width`.
fn put_fixed_str<B: BufMut>(buf: &mut B, s: &str, width: usize) {
    let raw = s.as_bytes();
    let n = raw.len().min(width - 1);
    buf.put_slice(&raw[..n]);
    for _ in n..width {
        buf.put_u8(0);
    }
}

/// Fixed-size string field helper: decodes a NUL-terminated string of `width`
/// bytes.
fn get_fixed_str<B: Buf>(buf: &mut B, width: usize) -> String {
    let mut bytes = vec![0u8; width];
    buf.copy_to_slice(&mut bytes);
    let end = bytes.iter().position(|&b| b == 0).unwrap_or(width);
    String::from_utf8_lossy(&bytes[..end]).into_owned()
}

/// A statistics request body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsRequest {
    /// Switch description.
    Desc,
    /// Individual flow statistics.
    Flow {
        /// Flows to match.
        match_: OfMatch,
        /// Table to read (0xff = all).
        table_id: u8,
        /// Restrict to flows outputting to this port (`OFPP_NONE` = all).
        out_port: PortNo,
    },
    /// Aggregate flow statistics.
    Aggregate {
        /// Flows to match.
        match_: OfMatch,
        /// Table to read (0xff = all).
        table_id: u8,
        /// Restrict to flows outputting to this port (`OFPP_NONE` = all).
        out_port: PortNo,
    },
    /// Flow table statistics.
    Table,
    /// Port statistics.
    Port {
        /// Port to read (`OFPP_NONE` = all ports).
        port_no: PortNo,
    },
    /// A vendor or unsupported stats request carried opaquely.
    Other {
        /// Raw stats type.
        stats_type: u16,
        /// Raw body.
        body: Vec<u8>,
    },
}

impl StatsRequest {
    /// The stats type code of this request.
    pub fn stats_type(&self) -> u16 {
        match self {
            StatsRequest::Desc => stats_type::DESC,
            StatsRequest::Flow { .. } => stats_type::FLOW,
            StatsRequest::Aggregate { .. } => stats_type::AGGREGATE,
            StatsRequest::Table => stats_type::TABLE,
            StatsRequest::Port { .. } => stats_type::PORT,
            StatsRequest::Other { stats_type, .. } => *stats_type,
        }
    }

    /// Body length on the wire (including the 4-byte stats header).
    pub fn body_len(&self) -> usize {
        4 + match self {
            StatsRequest::Desc | StatsRequest::Table => 0,
            StatsRequest::Flow { .. } | StatsRequest::Aggregate { .. } => 44,
            StatsRequest::Port { .. } => 8,
            StatsRequest::Other { body, .. } => body.len(),
        }
    }

    /// Encodes the body (stats header + type-specific part).
    pub fn encode_body<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(self.stats_type());
        buf.put_u16(0); // flags
        match self {
            StatsRequest::Desc | StatsRequest::Table => {}
            StatsRequest::Flow {
                match_,
                table_id,
                out_port,
            }
            | StatsRequest::Aggregate {
                match_,
                table_id,
                out_port,
            } => {
                match_.encode(buf);
                buf.put_u8(*table_id);
                buf.put_u8(0);
                buf.put_u16(*out_port);
            }
            StatsRequest::Port { port_no } => {
                buf.put_u16(*port_no);
                buf.put_slice(&[0u8; 6]);
            }
            StatsRequest::Other { body, .. } => buf.put_slice(body),
        }
    }

    /// Decodes a stats request body of `body_len` bytes.
    pub fn decode_body<B: Buf>(buf: &mut B, body_len: usize) -> Result<Self, DecodeError> {
        if body_len < 4 || buf.remaining() < body_len {
            return Err(DecodeError::Truncated {
                what: "stats_request",
                needed: 4.max(body_len),
                available: buf.remaining(),
            });
        }
        let ty = buf.get_u16();
        let _flags = buf.get_u16();
        let rest = body_len - 4;
        Ok(match ty {
            stats_type::DESC => {
                buf.advance(rest);
                StatsRequest::Desc
            }
            stats_type::TABLE => {
                buf.advance(rest);
                StatsRequest::Table
            }
            stats_type::FLOW | stats_type::AGGREGATE => {
                if rest < 44 {
                    return Err(DecodeError::BadLength {
                        what: "flow stats request",
                        len: rest,
                    });
                }
                let match_ = OfMatch::decode(buf)?;
                let table_id = buf.get_u8();
                buf.advance(1);
                let out_port = buf.get_u16();
                buf.advance(rest - 44);
                if ty == stats_type::FLOW {
                    StatsRequest::Flow {
                        match_,
                        table_id,
                        out_port,
                    }
                } else {
                    StatsRequest::Aggregate {
                        match_,
                        table_id,
                        out_port,
                    }
                }
            }
            stats_type::PORT => {
                if rest < 8 {
                    return Err(DecodeError::BadLength {
                        what: "port stats request",
                        len: rest,
                    });
                }
                let port_no = buf.get_u16();
                buf.advance(rest - 2);
                StatsRequest::Port { port_no }
            }
            other => {
                let mut body = vec![0u8; rest];
                buf.copy_to_slice(&mut body);
                StatsRequest::Other {
                    stats_type: other,
                    body,
                }
            }
        })
    }
}

/// One flow entry in a flow-stats reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowStatsEntry {
    /// Table the flow lives in.
    pub table_id: u8,
    /// Match of the flow.
    pub match_: OfMatch,
    /// Seconds the flow has been alive.
    pub duration_sec: u32,
    /// Nanosecond remainder of the duration.
    pub duration_nsec: u32,
    /// Priority of the flow.
    pub priority: u16,
    /// Idle timeout.
    pub idle_timeout: u16,
    /// Hard timeout.
    pub hard_timeout: u16,
    /// Cookie.
    pub cookie: u64,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
    /// Actions of the flow.
    pub actions: Vec<Action>,
}

/// Fixed part of a flow-stats entry.
pub const FLOW_STATS_ENTRY_FIXED_LEN: usize = 2 + 1 + 1 + 40 + 4 + 4 + 2 + 2 + 2 + 6 + 8 + 8 + 8;

impl FlowStatsEntry {
    /// Wire length of this entry.
    pub fn wire_len(&self) -> usize {
        FLOW_STATS_ENTRY_FIXED_LEN + Action::list_len(&self.actions)
    }

    /// Encodes the entry.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(self.wire_len() as u16);
        buf.put_u8(self.table_id);
        buf.put_u8(0);
        self.match_.encode(buf);
        buf.put_u32(self.duration_sec);
        buf.put_u32(self.duration_nsec);
        buf.put_u16(self.priority);
        buf.put_u16(self.idle_timeout);
        buf.put_u16(self.hard_timeout);
        buf.put_slice(&[0u8; 6]);
        buf.put_u64(self.cookie);
        buf.put_u64(self.packet_count);
        buf.put_u64(self.byte_count);
        Action::encode_list(&self.actions, buf);
    }

    /// Decodes one entry.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        if buf.remaining() < FLOW_STATS_ENTRY_FIXED_LEN {
            return Err(DecodeError::Truncated {
                what: "flow stats entry",
                needed: FLOW_STATS_ENTRY_FIXED_LEN,
                available: buf.remaining(),
            });
        }
        let length = buf.get_u16() as usize;
        if length < FLOW_STATS_ENTRY_FIXED_LEN {
            return Err(DecodeError::BadLength {
                what: "flow stats entry",
                len: length,
            });
        }
        let table_id = buf.get_u8();
        buf.advance(1);
        let match_ = OfMatch::decode(buf)?;
        let duration_sec = buf.get_u32();
        let duration_nsec = buf.get_u32();
        let priority = buf.get_u16();
        let idle_timeout = buf.get_u16();
        let hard_timeout = buf.get_u16();
        buf.advance(6);
        let cookie = buf.get_u64();
        let packet_count = buf.get_u64();
        let byte_count = buf.get_u64();
        let actions = Action::decode_list(buf, length - FLOW_STATS_ENTRY_FIXED_LEN)?;
        Ok(FlowStatsEntry {
            table_id,
            match_,
            duration_sec,
            duration_nsec,
            priority,
            idle_timeout,
            hard_timeout,
            cookie,
            packet_count,
            byte_count,
            actions,
        })
    }
}

/// Per-port statistics in a port-stats reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PortStatsEntry {
    /// Port number.
    pub port_no: PortNo,
    /// Received packets.
    pub rx_packets: u64,
    /// Transmitted packets.
    pub tx_packets: u64,
    /// Received bytes.
    pub rx_bytes: u64,
    /// Transmitted bytes.
    pub tx_bytes: u64,
    /// Packets dropped on receive.
    pub rx_dropped: u64,
    /// Packets dropped on transmit.
    pub tx_dropped: u64,
    /// Receive errors.
    pub rx_errors: u64,
    /// Transmit errors.
    pub tx_errors: u64,
}

/// Wire size of a port-stats entry.
pub const PORT_STATS_ENTRY_LEN: usize = 104;

impl PortStatsEntry {
    /// Encodes the entry.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(self.port_no);
        buf.put_slice(&[0u8; 6]);
        buf.put_u64(self.rx_packets);
        buf.put_u64(self.tx_packets);
        buf.put_u64(self.rx_bytes);
        buf.put_u64(self.tx_bytes);
        buf.put_u64(self.rx_dropped);
        buf.put_u64(self.tx_dropped);
        buf.put_u64(self.rx_errors);
        buf.put_u64(self.tx_errors);
        // rx_frame_err, rx_over_err, rx_crc_err, collisions — unused by the model.
        buf.put_slice(&[0u8; 32]);
    }

    /// Decodes one entry.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        if buf.remaining() < PORT_STATS_ENTRY_LEN {
            return Err(DecodeError::Truncated {
                what: "port stats entry",
                needed: PORT_STATS_ENTRY_LEN,
                available: buf.remaining(),
            });
        }
        let port_no = buf.get_u16();
        buf.advance(6);
        let rx_packets = buf.get_u64();
        let tx_packets = buf.get_u64();
        let rx_bytes = buf.get_u64();
        let tx_bytes = buf.get_u64();
        let rx_dropped = buf.get_u64();
        let tx_dropped = buf.get_u64();
        let rx_errors = buf.get_u64();
        let tx_errors = buf.get_u64();
        buf.advance(32);
        Ok(PortStatsEntry {
            port_no,
            rx_packets,
            tx_packets,
            rx_bytes,
            tx_bytes,
            rx_dropped,
            tx_dropped,
            rx_errors,
            tx_errors,
        })
    }
}

/// Per-table statistics in a table-stats reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableStatsEntry {
    /// Table id.
    pub table_id: u8,
    /// Human-readable table name.
    pub name: String,
    /// Wildcards supported by the table.
    pub wildcards: u32,
    /// Maximum entries.
    pub max_entries: u32,
    /// Active entries.
    pub active_count: u32,
    /// Packets looked up.
    pub lookup_count: u64,
    /// Packets that hit.
    pub matched_count: u64,
}

/// Wire size of a table-stats entry.
pub const TABLE_STATS_ENTRY_LEN: usize = 1 + 3 + 32 + 4 + 4 + 4 + 8 + 8;

impl TableStatsEntry {
    /// Encodes the entry.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(self.table_id);
        buf.put_slice(&[0u8; 3]);
        put_fixed_str(buf, &self.name, 32);
        buf.put_u32(self.wildcards);
        buf.put_u32(self.max_entries);
        buf.put_u32(self.active_count);
        buf.put_u64(self.lookup_count);
        buf.put_u64(self.matched_count);
    }

    /// Decodes one entry.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        if buf.remaining() < TABLE_STATS_ENTRY_LEN {
            return Err(DecodeError::Truncated {
                what: "table stats entry",
                needed: TABLE_STATS_ENTRY_LEN,
                available: buf.remaining(),
            });
        }
        let table_id = buf.get_u8();
        buf.advance(3);
        let name = get_fixed_str(buf, 32);
        let wildcards = buf.get_u32();
        let max_entries = buf.get_u32();
        let active_count = buf.get_u32();
        let lookup_count = buf.get_u64();
        let matched_count = buf.get_u64();
        Ok(TableStatsEntry {
            table_id,
            name,
            wildcards,
            max_entries,
            active_count,
            lookup_count,
            matched_count,
        })
    }
}

/// A statistics reply body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsReply {
    /// Switch description strings.
    Desc {
        /// Manufacturer description.
        mfr_desc: String,
        /// Hardware description.
        hw_desc: String,
        /// Software description.
        sw_desc: String,
        /// Serial number.
        serial_num: String,
        /// Datapath description.
        dp_desc: String,
    },
    /// Individual flow statistics.
    Flow(Vec<FlowStatsEntry>),
    /// Aggregate flow statistics.
    Aggregate {
        /// Total packets.
        packet_count: u64,
        /// Total bytes.
        byte_count: u64,
        /// Number of flows.
        flow_count: u32,
    },
    /// Per-table statistics.
    Table(Vec<TableStatsEntry>),
    /// Per-port statistics.
    Port(Vec<PortStatsEntry>),
    /// A vendor or unsupported stats reply carried opaquely.
    Other {
        /// Raw stats type.
        stats_type: u16,
        /// Raw body.
        body: Vec<u8>,
    },
}

impl StatsReply {
    /// The stats type code of this reply.
    pub fn stats_type(&self) -> u16 {
        match self {
            StatsReply::Desc { .. } => stats_type::DESC,
            StatsReply::Flow(_) => stats_type::FLOW,
            StatsReply::Aggregate { .. } => stats_type::AGGREGATE,
            StatsReply::Table(_) => stats_type::TABLE,
            StatsReply::Port(_) => stats_type::PORT,
            StatsReply::Other { stats_type, .. } => *stats_type,
        }
    }

    /// Body length on the wire (including the 4-byte stats header).
    pub fn body_len(&self) -> usize {
        4 + match self {
            StatsReply::Desc { .. } => 256 * 4 + 32,
            StatsReply::Flow(entries) => entries.iter().map(FlowStatsEntry::wire_len).sum(),
            StatsReply::Aggregate { .. } => 24,
            StatsReply::Table(entries) => entries.len() * TABLE_STATS_ENTRY_LEN,
            StatsReply::Port(entries) => entries.len() * PORT_STATS_ENTRY_LEN,
            StatsReply::Other { body, .. } => body.len(),
        }
    }

    /// Encodes the body with flags 0 (a complete, unfragmented reply).
    pub fn encode_body<B: BufMut>(&self, buf: &mut B) {
        self.encode_body_flags(buf, 0);
    }

    /// Encodes the body with explicit stats flags ([`STATS_REPLY_MORE`] on
    /// every fragment but the last of a multipart reply).
    pub fn encode_body_flags<B: BufMut>(&self, buf: &mut B, flags: u16) {
        buf.put_u16(self.stats_type());
        buf.put_u16(flags);
        match self {
            StatsReply::Desc {
                mfr_desc,
                hw_desc,
                sw_desc,
                serial_num,
                dp_desc,
            } => {
                put_fixed_str(buf, mfr_desc, 256);
                put_fixed_str(buf, hw_desc, 256);
                put_fixed_str(buf, sw_desc, 256);
                put_fixed_str(buf, serial_num, 32);
                put_fixed_str(buf, dp_desc, 256);
            }
            StatsReply::Flow(entries) => {
                for e in entries {
                    e.encode(buf);
                }
            }
            StatsReply::Aggregate {
                packet_count,
                byte_count,
                flow_count,
            } => {
                buf.put_u64(*packet_count);
                buf.put_u64(*byte_count);
                buf.put_u32(*flow_count);
                buf.put_slice(&[0u8; 4]);
            }
            StatsReply::Table(entries) => {
                for e in entries {
                    e.encode(buf);
                }
            }
            StatsReply::Port(entries) => {
                for e in entries {
                    e.encode(buf);
                }
            }
            StatsReply::Other { body, .. } => buf.put_slice(body),
        }
    }

    /// Decodes a stats reply body of `body_len` bytes, discarding the flags.
    pub fn decode_body<B: Buf>(buf: &mut B, body_len: usize) -> Result<Self, DecodeError> {
        Self::decode_body_flags(buf, body_len).map(|(reply, _)| reply)
    }

    /// Decodes a stats reply body of `body_len` bytes, returning the stats
    /// flags alongside ([`STATS_REPLY_MORE`] marks a non-final fragment).
    pub fn decode_body_flags<B: Buf>(
        buf: &mut B,
        body_len: usize,
    ) -> Result<(Self, u16), DecodeError> {
        if body_len < 4 || buf.remaining() < body_len {
            return Err(DecodeError::Truncated {
                what: "stats_reply",
                needed: 4.max(body_len),
                available: buf.remaining(),
            });
        }
        let ty = buf.get_u16();
        let flags = buf.get_u16();
        let rest = body_len - 4;
        let reply = match ty {
            stats_type::DESC => {
                if rest < 256 * 4 + 32 {
                    return Err(DecodeError::BadLength {
                        what: "desc stats reply",
                        len: rest,
                    });
                }
                let mfr_desc = get_fixed_str(buf, 256);
                let hw_desc = get_fixed_str(buf, 256);
                let sw_desc = get_fixed_str(buf, 256);
                let serial_num = get_fixed_str(buf, 32);
                let dp_desc = get_fixed_str(buf, 256);
                buf.advance(rest - (256 * 4 + 32));
                StatsReply::Desc {
                    mfr_desc,
                    hw_desc,
                    sw_desc,
                    serial_num,
                    dp_desc,
                }
            }
            stats_type::FLOW => {
                let mut remaining = rest;
                let mut entries = Vec::new();
                while remaining >= FLOW_STATS_ENTRY_FIXED_LEN {
                    let entry = FlowStatsEntry::decode(buf)?;
                    remaining -= entry.wire_len();
                    entries.push(entry);
                }
                if remaining != 0 {
                    return Err(DecodeError::BadLength {
                        what: "flow stats reply",
                        len: rest,
                    });
                }
                StatsReply::Flow(entries)
            }
            stats_type::AGGREGATE => {
                if rest < 24 {
                    return Err(DecodeError::BadLength {
                        what: "aggregate stats reply",
                        len: rest,
                    });
                }
                let packet_count = buf.get_u64();
                let byte_count = buf.get_u64();
                let flow_count = buf.get_u32();
                buf.advance(rest - 20);
                StatsReply::Aggregate {
                    packet_count,
                    byte_count,
                    flow_count,
                }
            }
            stats_type::TABLE => {
                if !rest.is_multiple_of(TABLE_STATS_ENTRY_LEN) {
                    return Err(DecodeError::BadLength {
                        what: "table stats reply",
                        len: rest,
                    });
                }
                let mut entries = Vec::new();
                for _ in 0..rest / TABLE_STATS_ENTRY_LEN {
                    entries.push(TableStatsEntry::decode(buf)?);
                }
                StatsReply::Table(entries)
            }
            stats_type::PORT => {
                if !rest.is_multiple_of(PORT_STATS_ENTRY_LEN) {
                    return Err(DecodeError::BadLength {
                        what: "port stats reply",
                        len: rest,
                    });
                }
                let mut entries = Vec::new();
                for _ in 0..rest / PORT_STATS_ENTRY_LEN {
                    entries.push(PortStatsEntry::decode(buf)?);
                }
                StatsReply::Port(entries)
            }
            other => {
                let mut body = vec![0u8; rest];
                buf.copy_to_slice(&mut body);
                StatsReply::Other {
                    stats_type: other,
                    body,
                }
            }
        };
        Ok((reply, flags))
    }

    /// Splits a flow-stats reply into multipart fragments whose encoded
    /// bodies each fit within `max_body_bytes` (stats header included).
    ///
    /// Every fragment shares `xid`; all but the last carry
    /// [`STATS_REPLY_MORE`].  An empty entry list still yields one (final,
    /// empty) fragment, so a readback of an empty table produces a reply.
    /// Entries larger than the budget get a fragment of their own — the
    /// 16-bit OpenFlow length field is the caller's cap to enforce via
    /// `max_body_bytes`.
    pub fn flow_fragments(
        xid: Xid,
        entries: Vec<FlowStatsEntry>,
        max_body_bytes: usize,
    ) -> Vec<crate::OfMessage> {
        let budget = max_body_bytes
            .saturating_sub(4)
            .max(FLOW_STATS_ENTRY_FIXED_LEN);
        let mut chunks: Vec<Vec<FlowStatsEntry>> = vec![Vec::new()];
        let mut used = 0usize;
        for e in entries {
            let len = e.wire_len();
            if used > 0 && used + len > budget {
                chunks.push(Vec::new());
                used = 0;
            }
            used += len;
            chunks.last_mut().expect("chunks never empty").push(e);
        }
        let n = chunks.len();
        chunks
            .into_iter()
            .enumerate()
            .map(|(i, chunk)| crate::OfMessage::StatsReply {
                xid,
                more: i + 1 < n,
                body: StatsReply::Flow(chunk),
            })
            .collect()
    }
}

/// Reassembles a multipart flow-stats reply from its fragments.
///
/// Feed every `StatsReply::Flow` fragment (with its xid and
/// [`STATS_REPLY_MORE`] flag) into [`FlowStatsAccumulator::push`]; the final
/// fragment completes the readback and returns the full entry list.  A
/// fragment carrying a *different* xid abandons the partial readback and
/// starts accumulating the new one — stale fragments of a superseded request
/// must not leak into a fresh snapshot.
#[derive(Debug, Default)]
pub struct FlowStatsAccumulator {
    xid: Option<Xid>,
    entries: Vec<FlowStatsEntry>,
}

impl FlowStatsAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// The xid of the readback currently being assembled, if any.
    pub fn pending_xid(&self) -> Option<Xid> {
        self.xid
    }

    /// Number of entries accumulated so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no partial readback is in progress.
    pub fn is_empty(&self) -> bool {
        self.xid.is_none() && self.entries.is_empty()
    }

    /// Feeds one fragment.  Returns the complete entry list when this was
    /// the final fragment (`more == false`), `None` while more are expected.
    pub fn push(
        &mut self,
        xid: Xid,
        more: bool,
        entries: Vec<FlowStatsEntry>,
    ) -> Option<Vec<FlowStatsEntry>> {
        if self.xid != Some(xid) {
            self.entries.clear();
            self.xid = Some(xid);
        }
        self.entries.extend(entries);
        if more {
            None
        } else {
            self.xid = None;
            Some(std::mem::take(&mut self.entries))
        }
    }

    /// Drops any partial readback.
    pub fn reset(&mut self) {
        self.xid = None;
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use std::net::Ipv4Addr;

    #[test]
    fn desc_request_round_trip() {
        let req = StatsRequest::Desc;
        let mut buf = BytesMut::new();
        req.encode_body(&mut buf);
        assert_eq!(buf.len(), req.body_len());
        let decoded = StatsRequest::decode_body(&mut buf.freeze(), req.body_len()).unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn flow_request_round_trip() {
        let req = StatsRequest::Flow {
            match_: OfMatch::ipv4_pair(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2)),
            table_id: 0xff,
            out_port: crate::constants::port::NONE,
        };
        let mut buf = BytesMut::new();
        req.encode_body(&mut buf);
        let decoded = StatsRequest::decode_body(&mut buf.freeze(), req.body_len()).unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn aggregate_request_round_trip() {
        let req = StatsRequest::Aggregate {
            match_: OfMatch::wildcard_all(),
            table_id: 0,
            out_port: 3,
        };
        let mut buf = BytesMut::new();
        req.encode_body(&mut buf);
        let decoded = StatsRequest::decode_body(&mut buf.freeze(), req.body_len()).unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn port_request_round_trip() {
        let req = StatsRequest::Port { port_no: 5 };
        let mut buf = BytesMut::new();
        req.encode_body(&mut buf);
        let decoded = StatsRequest::decode_body(&mut buf.freeze(), req.body_len()).unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn unknown_request_type_is_preserved() {
        let req = StatsRequest::Other {
            stats_type: 0x1234,
            body: vec![1, 2, 3],
        };
        let mut buf = BytesMut::new();
        req.encode_body(&mut buf);
        let decoded = StatsRequest::decode_body(&mut buf.freeze(), req.body_len()).unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn desc_reply_round_trip() {
        let reply = StatsReply::Desc {
            mfr_desc: "RUM reproduction".into(),
            hw_desc: "simulated HP 5406zl".into(),
            sw_desc: "ofswitch".into(),
            serial_num: "0001".into(),
            dp_desc: "triangle S2".into(),
        };
        let mut buf = BytesMut::new();
        reply.encode_body(&mut buf);
        assert_eq!(buf.len(), reply.body_len());
        let decoded = StatsReply::decode_body(&mut buf.freeze(), reply.body_len()).unwrap();
        assert_eq!(decoded, reply);
    }

    #[test]
    fn flow_reply_round_trip() {
        let entry = FlowStatsEntry {
            table_id: 0,
            match_: OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)),
            duration_sec: 5,
            duration_nsec: 100,
            priority: 10,
            idle_timeout: 0,
            hard_timeout: 0,
            cookie: 42,
            packet_count: 100,
            byte_count: 6400,
            actions: vec![Action::output(2)],
        };
        let reply = StatsReply::Flow(vec![entry.clone(), entry]);
        let mut buf = BytesMut::new();
        reply.encode_body(&mut buf);
        assert_eq!(buf.len(), reply.body_len());
        let decoded = StatsReply::decode_body(&mut buf.freeze(), reply.body_len()).unwrap();
        assert_eq!(decoded, reply);
    }

    #[test]
    fn aggregate_reply_round_trip() {
        let reply = StatsReply::Aggregate {
            packet_count: 10,
            byte_count: 640,
            flow_count: 3,
        };
        let mut buf = BytesMut::new();
        reply.encode_body(&mut buf);
        let decoded = StatsReply::decode_body(&mut buf.freeze(), reply.body_len()).unwrap();
        assert_eq!(decoded, reply);
    }

    #[test]
    fn table_reply_round_trip() {
        let reply = StatsReply::Table(vec![TableStatsEntry {
            table_id: 0,
            name: "main".into(),
            wildcards: crate::wildcards::Wildcards::ALL,
            max_entries: 1500,
            active_count: 300,
            lookup_count: 123456,
            matched_count: 120000,
        }]);
        let mut buf = BytesMut::new();
        reply.encode_body(&mut buf);
        let decoded = StatsReply::decode_body(&mut buf.freeze(), reply.body_len()).unwrap();
        assert_eq!(decoded, reply);
    }

    #[test]
    fn port_reply_round_trip() {
        let reply = StatsReply::Port(vec![
            PortStatsEntry {
                port_no: 1,
                rx_packets: 10,
                tx_packets: 20,
                rx_bytes: 640,
                tx_bytes: 1280,
                ..Default::default()
            },
            PortStatsEntry {
                port_no: 2,
                ..Default::default()
            },
        ]);
        let mut buf = BytesMut::new();
        reply.encode_body(&mut buf);
        let decoded = StatsReply::decode_body(&mut buf.freeze(), reply.body_len()).unwrap();
        assert_eq!(decoded, reply);
    }

    #[test]
    fn truncated_stats_rejected() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&[0, 1]);
        assert!(StatsRequest::decode_body(&mut buf.clone().freeze(), 2).is_err());
        assert!(StatsReply::decode_body(&mut buf.freeze(), 2).is_err());
    }

    fn random_entry(rng: &mut rand::rngs::SmallRng) -> FlowStatsEntry {
        use rand::Rng;
        let n_actions = rng.gen_range_u64(3) as usize;
        FlowStatsEntry {
            table_id: 0,
            match_: OfMatch::ipv4_pair(
                Ipv4Addr::new(
                    10,
                    rng.gen_range_u64(4) as u8,
                    rng.gen_range_u64(256) as u8,
                    1,
                ),
                Ipv4Addr::new(10, 200, rng.gen_range_u64(256) as u8, 2),
            ),
            duration_sec: rng.gen_range_u64(1000) as u32,
            duration_nsec: rng.gen_range_u64(1_000_000) as u32,
            priority: rng.gen_range_u64(u16::MAX as u64 + 1) as u16,
            idle_timeout: rng.gen_range_u64(60) as u16,
            hard_timeout: rng.gen_range_u64(60) as u16,
            cookie: rng.next_u64(),
            packet_count: rng.next_u64() >> 16,
            byte_count: rng.next_u64() >> 16,
            actions: (0..n_actions)
                .map(|_| Action::output(1 + rng.gen_range_u64(8) as u16))
                .collect(),
        }
    }

    /// Property: for random entry lists and random fragment budgets,
    /// [`StatsReply::flow_fragments`] + a full wire round trip (encode,
    /// reframe through [`crate::OfCodec`], decode) +
    /// [`FlowStatsAccumulator`] reassembly is the identity on the entry
    /// list — and every fragment respects the budget and the MORE-flag
    /// protocol.
    #[test]
    fn multipart_fragmentation_reassembles_to_identity() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0x57A7_5F10);
        let budgets = [60usize, 96, 150, 400, 1500, 65_000];
        for round in 0..48 {
            let n = rng.gen_range_u64(33) as usize;
            let entries: Vec<FlowStatsEntry> = (0..n).map(|_| random_entry(&mut rng)).collect();
            let max_body = budgets[rng.gen_range_u64(budgets.len() as u64) as usize];
            let xid = 0x6000_0000 + round as Xid;

            let fragments = StatsReply::flow_fragments(xid, entries.clone(), max_body);
            assert!(!fragments.is_empty(), "even an empty table yields a reply");
            let budget = max_body.saturating_sub(4).max(FLOW_STATS_ENTRY_FIXED_LEN);
            let mut wire = Vec::new();
            for (i, frag) in fragments.iter().enumerate() {
                let crate::OfMessage::StatsReply {
                    xid: f_xid,
                    more,
                    body,
                } = frag
                else {
                    panic!("flow_fragments must yield StatsReply messages");
                };
                assert_eq!(*f_xid, xid, "all fragments share the request xid");
                assert_eq!(
                    *more,
                    i + 1 < fragments.len(),
                    "MORE on every fragment but the last (round {round})"
                );
                let StatsReply::Flow(chunk) = body else {
                    panic!("flow fragments carry flow bodies");
                };
                let chunk_bytes: usize = chunk.iter().map(FlowStatsEntry::wire_len).sum();
                assert!(
                    chunk.len() <= 1 || chunk_bytes <= budget,
                    "multi-entry fragment above budget: {chunk_bytes} > {budget} (round {round})"
                );
                assert!(
                    !chunk.is_empty() || fragments.len() == 1,
                    "only a lone final fragment may be empty"
                );
                frag.encode_into(&mut wire).expect("fragment encodes");
            }

            // Reframe the concatenated bytes and reassemble.
            let mut codec = crate::OfCodec::new();
            codec.feed(&wire);
            let mut acc = FlowStatsAccumulator::new();
            let mut result = None;
            let mut completions = 0;
            while let Some(msg) = codec.next_message().expect("fragments reframe") {
                let crate::OfMessage::StatsReply {
                    xid: f_xid,
                    more,
                    body: StatsReply::Flow(chunk),
                } = msg
                else {
                    panic!("unexpected message on the wire");
                };
                if let Some(full) = acc.push(f_xid, more, chunk) {
                    completions += 1;
                    result = Some(full);
                }
            }
            assert_eq!(completions, 1, "exactly the final fragment completes");
            assert_eq!(
                result.expect("readback completes"),
                entries,
                "reassembly is the identity (round {round}, n {n}, budget {max_body})"
            );
            assert!(acc.is_empty(), "a completed readback leaves no residue");
        }
    }

    /// A fragment from a superseded request (different xid) abandons the
    /// partial readback instead of contaminating the fresh snapshot.
    #[test]
    fn accumulator_abandons_stale_xids() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
        let stale: Vec<FlowStatsEntry> = (0..3).map(|_| random_entry(&mut rng)).collect();
        let fresh: Vec<FlowStatsEntry> = (0..2).map(|_| random_entry(&mut rng)).collect();

        let mut acc = FlowStatsAccumulator::new();
        assert_eq!(acc.push(1, true, stale), None, "stale readback incomplete");
        assert_eq!(acc.pending_xid(), Some(1));
        assert_eq!(acc.len(), 3);
        // The re-request's reply arrives under a fresh xid: the stale
        // partial must vanish, not prepend itself.
        assert_eq!(
            acc.push(2, false, fresh.clone()),
            Some(fresh),
            "fresh single-fragment readback completes alone"
        );
        assert_eq!(acc.pending_xid(), None);
    }
}
