//! OpenFlow 1.0 messages: the [`OfMessage`] enum and its wire codec.
//!
//! Every message the proxy, switch or controller exchanges is an
//! [`OfMessage`].  Messages are encoded with [`OfMessage::encode`] and decoded
//! from a full frame with [`OfMessage::decode`]; stream framing (splitting a
//! TCP byte stream into frames) lives in [`crate::codec`].

pub mod flow_mod;
pub mod packet_io;
pub mod stats;
pub mod switch_config;

pub use flow_mod::{FlowMod, FlowModCommand, FlowRemoved};
pub use packet_io::{PacketIn, PacketOut, PhyPort, PortStatus};
pub use stats::{
    FlowStatsAccumulator, FlowStatsEntry, PortStatsEntry, StatsReply, StatsRequest,
    TableStatsEntry, MAX_STATS_BODY, STATS_REPLY_MORE,
};
pub use switch_config::{FeaturesReply, PortMod, SwitchConfig};

use crate::constants::msg_type;
use crate::error::{DecodeError, EncodeError};
use crate::types::Xid;
use crate::OFP_VERSION;
use bytes::{Buf, BufMut};

/// Size of the fixed OpenFlow header.
pub const OFP_HEADER_LEN: usize = 8;

/// The fixed OpenFlow header preceding every message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OfHeader {
    /// Protocol version (always 0x01 here).
    pub version: u8,
    /// Message type (see [`crate::constants::msg_type`]).
    pub msg_type: u8,
    /// Total message length including this header.
    pub length: u16,
    /// Transaction id.
    pub xid: Xid,
}

impl OfHeader {
    /// Decodes a header from the first 8 bytes of a buffer without consuming
    /// them (peek), so stream framing can wait for the full message.
    pub fn peek(buf: &[u8]) -> Result<OfHeader, DecodeError> {
        if buf.len() < OFP_HEADER_LEN {
            return Err(DecodeError::Truncated {
                what: "ofp_header",
                needed: OFP_HEADER_LEN,
                available: buf.len(),
            });
        }
        Ok(OfHeader {
            version: buf[0],
            msg_type: buf[1],
            length: u16::from_be_bytes([buf[2], buf[3]]),
            xid: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
        })
    }

    /// Encodes the header.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u8(self.version);
        buf.put_u8(self.msg_type);
        buf.put_u16(self.length);
        buf.put_u32(self.xid);
    }
}

/// The body of an error message (`OFPT_ERROR`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorMsg {
    /// High-level error type (see [`crate::constants::error_type`]).
    pub err_type: u16,
    /// Type-specific error code.
    pub code: u16,
    /// At least 64 bytes of the offending request, or ASCII text.
    pub data: Vec<u8>,
}

/// A fully parsed OpenFlow 1.0 message (header payload + xid).
///
/// The xid is carried alongside the payload because the RUM proxy routinely
/// needs to correlate replies with requests and to re-stamp messages it
/// forwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OfMessage {
    /// OFPT_HELLO.
    Hello {
        /// Transaction id.
        xid: Xid,
    },
    /// OFPT_ERROR — also used (with [`crate::constants::error_type::RUM_ACK`])
    /// as RUM's positive acknowledgment channel.
    Error {
        /// Transaction id.
        xid: Xid,
        /// Error body.
        body: ErrorMsg,
    },
    /// OFPT_ECHO_REQUEST.
    EchoRequest {
        /// Transaction id.
        xid: Xid,
        /// Arbitrary payload echoed back.
        data: Vec<u8>,
    },
    /// OFPT_ECHO_REPLY.
    EchoReply {
        /// Transaction id.
        xid: Xid,
        /// Echoed payload.
        data: Vec<u8>,
    },
    /// OFPT_VENDOR.
    Vendor {
        /// Transaction id.
        xid: Xid,
        /// Vendor id.
        vendor: u32,
        /// Opaque vendor body.
        data: Vec<u8>,
    },
    /// OFPT_FEATURES_REQUEST.
    FeaturesRequest {
        /// Transaction id.
        xid: Xid,
    },
    /// OFPT_FEATURES_REPLY.
    FeaturesReply {
        /// Transaction id.
        xid: Xid,
        /// Reply body.
        body: FeaturesReply,
    },
    /// OFPT_GET_CONFIG_REQUEST.
    GetConfigRequest {
        /// Transaction id.
        xid: Xid,
    },
    /// OFPT_GET_CONFIG_REPLY.
    GetConfigReply {
        /// Transaction id.
        xid: Xid,
        /// Switch configuration.
        config: SwitchConfig,
    },
    /// OFPT_SET_CONFIG.
    SetConfig {
        /// Transaction id.
        xid: Xid,
        /// Switch configuration.
        config: SwitchConfig,
    },
    /// OFPT_PACKET_IN.
    PacketIn {
        /// Transaction id.
        xid: Xid,
        /// Message body.
        body: PacketIn,
    },
    /// OFPT_FLOW_REMOVED.
    FlowRemoved {
        /// Transaction id.
        xid: Xid,
        /// Message body.
        body: FlowRemoved,
    },
    /// OFPT_PORT_STATUS.
    PortStatus {
        /// Transaction id.
        xid: Xid,
        /// Message body.
        body: PortStatus,
    },
    /// OFPT_PACKET_OUT.
    PacketOut {
        /// Transaction id.
        xid: Xid,
        /// Message body.
        body: PacketOut,
    },
    /// OFPT_FLOW_MOD.
    FlowMod {
        /// Transaction id.
        xid: Xid,
        /// Message body.
        body: FlowMod,
    },
    /// OFPT_PORT_MOD.
    PortMod {
        /// Transaction id.
        xid: Xid,
        /// Message body.
        body: PortMod,
    },
    /// OFPT_STATS_REQUEST.
    StatsRequest {
        /// Transaction id.
        xid: Xid,
        /// Message body.
        body: StatsRequest,
    },
    /// OFPT_STATS_REPLY.
    StatsReply {
        /// Transaction id.
        xid: Xid,
        /// `OFPSF_REPLY_MORE`: further fragments of this reply follow (large
        /// replies are split into fragments sharing one xid).
        more: bool,
        /// Message body.
        body: StatsReply,
    },
    /// OFPT_BARRIER_REQUEST.
    BarrierRequest {
        /// Transaction id.
        xid: Xid,
    },
    /// OFPT_BARRIER_REPLY.
    BarrierReply {
        /// Transaction id.
        xid: Xid,
    },
    /// OFPT_QUEUE_GET_CONFIG_REQUEST / REPLY, carried opaquely.
    QueueGetConfig {
        /// Transaction id.
        xid: Xid,
        /// True for the reply direction.
        reply: bool,
        /// Raw body bytes.
        data: Vec<u8>,
    },
}

impl OfMessage {
    /// The transaction id of this message.
    pub fn xid(&self) -> Xid {
        match self {
            OfMessage::Hello { xid }
            | OfMessage::Error { xid, .. }
            | OfMessage::EchoRequest { xid, .. }
            | OfMessage::EchoReply { xid, .. }
            | OfMessage::Vendor { xid, .. }
            | OfMessage::FeaturesRequest { xid }
            | OfMessage::FeaturesReply { xid, .. }
            | OfMessage::GetConfigRequest { xid }
            | OfMessage::GetConfigReply { xid, .. }
            | OfMessage::SetConfig { xid, .. }
            | OfMessage::PacketIn { xid, .. }
            | OfMessage::FlowRemoved { xid, .. }
            | OfMessage::PortStatus { xid, .. }
            | OfMessage::PacketOut { xid, .. }
            | OfMessage::FlowMod { xid, .. }
            | OfMessage::PortMod { xid, .. }
            | OfMessage::StatsRequest { xid, .. }
            | OfMessage::StatsReply { xid, .. }
            | OfMessage::BarrierRequest { xid }
            | OfMessage::BarrierReply { xid }
            | OfMessage::QueueGetConfig { xid, .. } => *xid,
        }
    }

    /// Rewrites the transaction id (the proxy re-stamps forwarded messages).
    pub fn set_xid(&mut self, new_xid: Xid) {
        match self {
            OfMessage::Hello { xid }
            | OfMessage::Error { xid, .. }
            | OfMessage::EchoRequest { xid, .. }
            | OfMessage::EchoReply { xid, .. }
            | OfMessage::Vendor { xid, .. }
            | OfMessage::FeaturesRequest { xid }
            | OfMessage::FeaturesReply { xid, .. }
            | OfMessage::GetConfigRequest { xid }
            | OfMessage::GetConfigReply { xid, .. }
            | OfMessage::SetConfig { xid, .. }
            | OfMessage::PacketIn { xid, .. }
            | OfMessage::FlowRemoved { xid, .. }
            | OfMessage::PortStatus { xid, .. }
            | OfMessage::PacketOut { xid, .. }
            | OfMessage::FlowMod { xid, .. }
            | OfMessage::PortMod { xid, .. }
            | OfMessage::StatsRequest { xid, .. }
            | OfMessage::StatsReply { xid, .. }
            | OfMessage::BarrierRequest { xid }
            | OfMessage::BarrierReply { xid }
            | OfMessage::QueueGetConfig { xid, .. } => *xid = new_xid,
        }
    }

    /// The message type code.
    pub fn msg_type(&self) -> u8 {
        match self {
            OfMessage::Hello { .. } => msg_type::HELLO,
            OfMessage::Error { .. } => msg_type::ERROR,
            OfMessage::EchoRequest { .. } => msg_type::ECHO_REQUEST,
            OfMessage::EchoReply { .. } => msg_type::ECHO_REPLY,
            OfMessage::Vendor { .. } => msg_type::VENDOR,
            OfMessage::FeaturesRequest { .. } => msg_type::FEATURES_REQUEST,
            OfMessage::FeaturesReply { .. } => msg_type::FEATURES_REPLY,
            OfMessage::GetConfigRequest { .. } => msg_type::GET_CONFIG_REQUEST,
            OfMessage::GetConfigReply { .. } => msg_type::GET_CONFIG_REPLY,
            OfMessage::SetConfig { .. } => msg_type::SET_CONFIG,
            OfMessage::PacketIn { .. } => msg_type::PACKET_IN,
            OfMessage::FlowRemoved { .. } => msg_type::FLOW_REMOVED,
            OfMessage::PortStatus { .. } => msg_type::PORT_STATUS,
            OfMessage::PacketOut { .. } => msg_type::PACKET_OUT,
            OfMessage::FlowMod { .. } => msg_type::FLOW_MOD,
            OfMessage::PortMod { .. } => msg_type::PORT_MOD,
            OfMessage::StatsRequest { .. } => msg_type::STATS_REQUEST,
            OfMessage::StatsReply { .. } => msg_type::STATS_REPLY,
            OfMessage::BarrierRequest { .. } => msg_type::BARRIER_REQUEST,
            OfMessage::BarrierReply { .. } => msg_type::BARRIER_REPLY,
            OfMessage::QueueGetConfig { reply, .. } => {
                if *reply {
                    msg_type::QUEUE_GET_CONFIG_REPLY
                } else {
                    msg_type::QUEUE_GET_CONFIG_REQUEST
                }
            }
        }
    }

    /// A short human-readable name for logs and traces.
    pub fn name(&self) -> &'static str {
        match self {
            OfMessage::Hello { .. } => "Hello",
            OfMessage::Error { .. } => "Error",
            OfMessage::EchoRequest { .. } => "EchoRequest",
            OfMessage::EchoReply { .. } => "EchoReply",
            OfMessage::Vendor { .. } => "Vendor",
            OfMessage::FeaturesRequest { .. } => "FeaturesRequest",
            OfMessage::FeaturesReply { .. } => "FeaturesReply",
            OfMessage::GetConfigRequest { .. } => "GetConfigRequest",
            OfMessage::GetConfigReply { .. } => "GetConfigReply",
            OfMessage::SetConfig { .. } => "SetConfig",
            OfMessage::PacketIn { .. } => "PacketIn",
            OfMessage::FlowRemoved { .. } => "FlowRemoved",
            OfMessage::PortStatus { .. } => "PortStatus",
            OfMessage::PacketOut { .. } => "PacketOut",
            OfMessage::FlowMod { .. } => "FlowMod",
            OfMessage::PortMod { .. } => "PortMod",
            OfMessage::StatsRequest { .. } => "StatsRequest",
            OfMessage::StatsReply { .. } => "StatsReply",
            OfMessage::BarrierRequest { .. } => "BarrierRequest",
            OfMessage::BarrierReply { .. } => "BarrierReply",
            OfMessage::QueueGetConfig { .. } => "QueueGetConfig",
        }
    }

    /// True if this message mutates switch state (and therefore matters to
    /// barrier ordering in the RUM layer).
    pub fn is_state_modifying(&self) -> bool {
        matches!(
            self,
            OfMessage::FlowMod { .. }
                | OfMessage::PortMod { .. }
                | OfMessage::SetConfig { .. }
                | OfMessage::PacketOut { .. }
        )
    }

    /// Length of the body (everything after the 8-byte header).
    pub fn body_len(&self) -> usize {
        match self {
            OfMessage::Hello { .. }
            | OfMessage::FeaturesRequest { .. }
            | OfMessage::GetConfigRequest { .. }
            | OfMessage::BarrierRequest { .. }
            | OfMessage::BarrierReply { .. } => 0,
            OfMessage::Error { body, .. } => 4 + body.data.len(),
            OfMessage::EchoRequest { data, .. } | OfMessage::EchoReply { data, .. } => data.len(),
            OfMessage::Vendor { data, .. } => 4 + data.len(),
            OfMessage::FeaturesReply { body, .. } => body.body_len(),
            OfMessage::GetConfigReply { .. } | OfMessage::SetConfig { .. } => {
                switch_config::SWITCH_CONFIG_LEN
            }
            OfMessage::PacketIn { body, .. } => body.body_len(),
            OfMessage::FlowRemoved { body, .. } => body.body_len(),
            OfMessage::PortStatus { body, .. } => body.body_len(),
            OfMessage::PacketOut { body, .. } => body.body_len(),
            OfMessage::FlowMod { body, .. } => body.body_len(),
            OfMessage::PortMod { .. } => switch_config::PORT_MOD_LEN,
            OfMessage::StatsRequest { body, .. } => body.body_len(),
            OfMessage::StatsReply { body, .. } => body.body_len(),
            OfMessage::QueueGetConfig { data, .. } => data.len(),
        }
    }

    /// Total encoded length including the header.
    pub fn wire_len(&self) -> usize {
        OFP_HEADER_LEN + self.body_len()
    }

    /// Encodes the full message (header + body) into `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) -> Result<(), EncodeError> {
        let total = self.wire_len();
        if total > u16::MAX as usize {
            return Err(EncodeError::TooLarge(total));
        }
        let header = OfHeader {
            version: OFP_VERSION,
            msg_type: self.msg_type(),
            length: total as u16,
            xid: self.xid(),
        };
        header.encode(buf);
        match self {
            OfMessage::Hello { .. }
            | OfMessage::FeaturesRequest { .. }
            | OfMessage::GetConfigRequest { .. }
            | OfMessage::BarrierRequest { .. }
            | OfMessage::BarrierReply { .. } => {}
            OfMessage::Error { body, .. } => {
                buf.put_u16(body.err_type);
                buf.put_u16(body.code);
                buf.put_slice(&body.data);
            }
            OfMessage::EchoRequest { data, .. } | OfMessage::EchoReply { data, .. } => {
                buf.put_slice(data);
            }
            OfMessage::Vendor { vendor, data, .. } => {
                buf.put_u32(*vendor);
                buf.put_slice(data);
            }
            OfMessage::FeaturesReply { body, .. } => body.encode_body(buf),
            OfMessage::GetConfigReply { config, .. } | OfMessage::SetConfig { config, .. } => {
                config.encode_body(buf)
            }
            OfMessage::PacketIn { body, .. } => body.encode_body(buf),
            OfMessage::FlowRemoved { body, .. } => body.encode_body(buf),
            OfMessage::PortStatus { body, .. } => body.encode_body(buf),
            OfMessage::PacketOut { body, .. } => body.encode_body(buf),
            OfMessage::FlowMod { body, .. } => body.encode_body(buf),
            OfMessage::PortMod { body, .. } => body.encode_body(buf),
            OfMessage::StatsRequest { body, .. } => body.encode_body(buf),
            OfMessage::StatsReply { more, body, .. } => {
                body.encode_body_flags(buf, if *more { stats::STATS_REPLY_MORE } else { 0 })
            }
            OfMessage::QueueGetConfig { data, .. } => buf.put_slice(data),
        }
        Ok(())
    }

    /// Appends the encoded message (header + body) to `out` without any
    /// intermediate allocation — the zero-alloc form every send path uses:
    /// callers keep one buffer per connection and reuse it across drains.
    ///
    /// On error nothing has been written (the only failure, an oversized
    /// message, is detected before the first byte).
    pub fn encode_into(&self, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        out.reserve(self.wire_len());
        self.encode(out)
    }

    /// Encodes into a fresh byte vector (one allocation, sized exactly).
    pub fn encode_to_vec(&self) -> Result<Vec<u8>, EncodeError> {
        let mut buf = Vec::with_capacity(self.wire_len());
        self.encode(&mut buf)?;
        Ok(buf)
    }

    /// Decodes a single complete message from `frame`.
    ///
    /// The frame must contain exactly one message (as produced by the stream
    /// codec); trailing bytes beyond the declared length are rejected by the
    /// codec, not here.
    pub fn decode(frame: &[u8]) -> Result<OfMessage, DecodeError> {
        let header = OfHeader::peek(frame)?;
        if header.version != OFP_VERSION {
            return Err(DecodeError::BadVersion(header.version));
        }
        let declared = header.length as usize;
        if declared < OFP_HEADER_LEN || declared > frame.len() {
            return Err(DecodeError::BadLength {
                what: "ofp_header.length",
                len: declared,
            });
        }
        let body_len = declared - OFP_HEADER_LEN;
        let mut body = &frame[OFP_HEADER_LEN..declared];
        let xid = header.xid;
        let msg = match header.msg_type {
            msg_type::HELLO => OfMessage::Hello { xid },
            msg_type::ERROR => {
                if body.len() < 4 {
                    return Err(DecodeError::Truncated {
                        what: "error message",
                        needed: 4,
                        available: body.len(),
                    });
                }
                let err_type = body.get_u16();
                let code = body.get_u16();
                OfMessage::Error {
                    xid,
                    body: ErrorMsg {
                        err_type,
                        code,
                        data: body.to_vec(),
                    },
                }
            }
            msg_type::ECHO_REQUEST => OfMessage::EchoRequest {
                xid,
                data: body.to_vec(),
            },
            msg_type::ECHO_REPLY => OfMessage::EchoReply {
                xid,
                data: body.to_vec(),
            },
            msg_type::VENDOR => {
                if body.len() < 4 {
                    return Err(DecodeError::Truncated {
                        what: "vendor message",
                        needed: 4,
                        available: body.len(),
                    });
                }
                let vendor = body.get_u32();
                OfMessage::Vendor {
                    xid,
                    vendor,
                    data: body.to_vec(),
                }
            }
            msg_type::FEATURES_REQUEST => OfMessage::FeaturesRequest { xid },
            msg_type::FEATURES_REPLY => OfMessage::FeaturesReply {
                xid,
                body: FeaturesReply::decode_body(&mut body, body_len)?,
            },
            msg_type::GET_CONFIG_REQUEST => OfMessage::GetConfigRequest { xid },
            msg_type::GET_CONFIG_REPLY => OfMessage::GetConfigReply {
                xid,
                config: SwitchConfig::decode_body(&mut body)?,
            },
            msg_type::SET_CONFIG => OfMessage::SetConfig {
                xid,
                config: SwitchConfig::decode_body(&mut body)?,
            },
            msg_type::PACKET_IN => OfMessage::PacketIn {
                xid,
                body: PacketIn::decode_body(&mut body, body_len)?,
            },
            msg_type::FLOW_REMOVED => OfMessage::FlowRemoved {
                xid,
                body: FlowRemoved::decode_body(&mut body)?,
            },
            msg_type::PORT_STATUS => OfMessage::PortStatus {
                xid,
                body: PortStatus::decode_body(&mut body)?,
            },
            msg_type::PACKET_OUT => OfMessage::PacketOut {
                xid,
                body: PacketOut::decode_body(&mut body, body_len)?,
            },
            msg_type::FLOW_MOD => OfMessage::FlowMod {
                xid,
                body: FlowMod::decode_body(&mut body, body_len)?,
            },
            msg_type::PORT_MOD => OfMessage::PortMod {
                xid,
                body: PortMod::decode_body(&mut body)?,
            },
            msg_type::STATS_REQUEST => OfMessage::StatsRequest {
                xid,
                body: StatsRequest::decode_body(&mut body, body_len)?,
            },
            msg_type::STATS_REPLY => {
                let (reply, flags) = StatsReply::decode_body_flags(&mut body, body_len)?;
                OfMessage::StatsReply {
                    xid,
                    more: flags & stats::STATS_REPLY_MORE != 0,
                    body: reply,
                }
            }
            msg_type::BARRIER_REQUEST => OfMessage::BarrierRequest { xid },
            msg_type::BARRIER_REPLY => OfMessage::BarrierReply { xid },
            msg_type::QUEUE_GET_CONFIG_REQUEST => OfMessage::QueueGetConfig {
                xid,
                reply: false,
                data: body.to_vec(),
            },
            msg_type::QUEUE_GET_CONFIG_REPLY => OfMessage::QueueGetConfig {
                xid,
                reply: true,
                data: body.to_vec(),
            },
            other => return Err(DecodeError::UnknownMessageType(other)),
        };
        Ok(msg)
    }

    /// Builds the positive acknowledgment RUM sends to a RUM-aware
    /// controller when the flow-mod with transaction id `acked_xid` is known
    /// to be active in the data plane (paper §4: an error message with an
    /// unused error code is reused as the ack channel).
    pub fn rum_ack(acked_xid: Xid) -> OfMessage {
        OfMessage::Error {
            xid: acked_xid,
            body: ErrorMsg {
                err_type: crate::constants::error_type::RUM_ACK,
                code: 0,
                data: acked_xid.to_be_bytes().to_vec(),
            },
        }
    }

    /// Returns `Some(acked_xid)` when the message is a RUM positive ack.
    pub fn as_rum_ack(&self) -> Option<Xid> {
        match self {
            OfMessage::Error { body, .. }
                if body.err_type == crate::constants::error_type::RUM_ACK
                    && body.data.len() >= 4 =>
            {
                Some(u32::from_be_bytes([
                    body.data[0],
                    body.data[1],
                    body.data[2],
                    body.data[3],
                ]))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::Action;
    use crate::flow_match::OfMatch;
    use crate::packet::PacketHeader;
    use crate::types::DatapathId;
    use std::net::Ipv4Addr;

    fn round_trip(msg: OfMessage) {
        let bytes = msg.encode_to_vec().unwrap();
        assert_eq!(bytes.len(), msg.wire_len());
        let header = OfHeader::peek(&bytes).unwrap();
        assert_eq!(header.length as usize, bytes.len());
        assert_eq!(header.version, OFP_VERSION);
        let decoded = OfMessage::decode(&bytes).unwrap();
        assert_eq!(decoded, msg, "round trip failed for {}", msg.name());
    }

    #[test]
    fn round_trip_simple_messages() {
        round_trip(OfMessage::Hello { xid: 1 });
        round_trip(OfMessage::FeaturesRequest { xid: 2 });
        round_trip(OfMessage::GetConfigRequest { xid: 3 });
        round_trip(OfMessage::BarrierRequest { xid: 4 });
        round_trip(OfMessage::BarrierReply { xid: 5 });
        round_trip(OfMessage::EchoRequest {
            xid: 6,
            data: vec![1, 2, 3],
        });
        round_trip(OfMessage::EchoReply {
            xid: 7,
            data: vec![],
        });
        round_trip(OfMessage::Vendor {
            xid: 8,
            vendor: 0x2320,
            data: vec![9, 9],
        });
        round_trip(OfMessage::QueueGetConfig {
            xid: 9,
            reply: true,
            data: vec![0, 1, 2, 3],
        });
    }

    #[test]
    fn round_trip_error() {
        round_trip(OfMessage::Error {
            xid: 11,
            body: ErrorMsg {
                err_type: crate::constants::error_type::FLOW_MOD_FAILED,
                code: crate::constants::flow_mod_failed_code::ALL_TABLES_FULL,
                data: vec![0xde, 0xad],
            },
        });
    }

    #[test]
    fn round_trip_flow_mod() {
        let fm = FlowMod::add(
            OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)),
            500,
            vec![Action::SetNwTos(8), Action::output(2)],
        );
        round_trip(OfMessage::FlowMod { xid: 21, body: fm });
    }

    #[test]
    fn round_trip_packet_io() {
        let frame = PacketHeader::default().to_bytes();
        round_trip(OfMessage::PacketIn {
            xid: 31,
            body: PacketIn::unbuffered(2, 1, frame.clone()),
        });
        round_trip(OfMessage::PacketOut {
            xid: 32,
            body: PacketOut::single_port(4, frame),
        });
    }

    #[test]
    fn round_trip_features_and_config() {
        round_trip(OfMessage::FeaturesReply {
            xid: 41,
            body: FeaturesReply::simulated(DatapathId::new(7), 3),
        });
        round_trip(OfMessage::GetConfigReply {
            xid: 42,
            config: SwitchConfig::default(),
        });
        round_trip(OfMessage::SetConfig {
            xid: 43,
            config: SwitchConfig {
                flags: 0,
                miss_send_len: 0xffff,
            },
        });
    }

    #[test]
    fn round_trip_stats() {
        round_trip(OfMessage::StatsRequest {
            xid: 51,
            body: StatsRequest::Desc,
        });
        round_trip(OfMessage::StatsReply {
            xid: 52,
            more: false,
            body: StatsReply::Aggregate {
                packet_count: 1,
                byte_count: 2,
                flow_count: 3,
            },
        });
        round_trip(OfMessage::StatsReply {
            xid: 53,
            more: true,
            body: StatsReply::Flow(vec![]),
        });
    }

    #[test]
    fn round_trip_flow_removed_port_status() {
        round_trip(OfMessage::FlowRemoved {
            xid: 61,
            body: FlowRemoved {
                match_: OfMatch::wildcard_all(),
                cookie: 1,
                priority: 2,
                reason: 0,
                duration_sec: 3,
                duration_nsec: 4,
                idle_timeout: 5,
                packet_count: 6,
                byte_count: 7,
            },
        });
        round_trip(OfMessage::PortStatus {
            xid: 62,
            body: PortStatus {
                reason: 2,
                desc: PhyPort::simple(1, crate::types::MacAddr::from_id(1), "p1"),
            },
        });
        round_trip(OfMessage::PortMod {
            xid: 63,
            body: PortMod {
                port_no: 1,
                hw_addr: crate::types::MacAddr::from_id(1),
                config: 0,
                mask: 0,
                advertise: 0,
            },
        });
    }

    #[test]
    fn decode_rejects_wrong_version() {
        let mut bytes = OfMessage::Hello { xid: 1 }.encode_to_vec().unwrap();
        bytes[0] = 0x04;
        assert!(matches!(
            OfMessage::decode(&bytes),
            Err(DecodeError::BadVersion(0x04))
        ));
    }

    #[test]
    fn decode_rejects_unknown_type() {
        let mut bytes = OfMessage::Hello { xid: 1 }.encode_to_vec().unwrap();
        bytes[1] = 99;
        assert!(matches!(
            OfMessage::decode(&bytes),
            Err(DecodeError::UnknownMessageType(99))
        ));
    }

    #[test]
    fn decode_rejects_length_beyond_frame() {
        let mut bytes = OfMessage::Hello { xid: 1 }.encode_to_vec().unwrap();
        bytes[3] = 200; // declared length larger than the frame
        assert!(OfMessage::decode(&bytes).is_err());
    }

    #[test]
    fn xid_accessors() {
        let mut msg = OfMessage::BarrierRequest { xid: 9 };
        assert_eq!(msg.xid(), 9);
        msg.set_xid(100);
        assert_eq!(msg.xid(), 100);
        assert_eq!(msg.msg_type(), msg_type::BARRIER_REQUEST);
        assert_eq!(msg.name(), "BarrierRequest");
    }

    #[test]
    fn state_modifying_classification() {
        assert!(OfMessage::FlowMod {
            xid: 0,
            body: FlowMod::delete(OfMatch::wildcard_all()),
        }
        .is_state_modifying());
        assert!(!OfMessage::BarrierRequest { xid: 0 }.is_state_modifying());
        assert!(!OfMessage::Hello { xid: 0 }.is_state_modifying());
    }

    #[test]
    fn rum_ack_round_trip() {
        let ack = OfMessage::rum_ack(0x1234_5678);
        assert_eq!(ack.as_rum_ack(), Some(0x1234_5678));
        let bytes = ack.encode_to_vec().unwrap();
        let decoded = OfMessage::decode(&bytes).unwrap();
        assert_eq!(decoded.as_rum_ack(), Some(0x1234_5678));
        // A normal error message is not an ack.
        let err = OfMessage::Error {
            xid: 1,
            body: ErrorMsg {
                err_type: 1,
                code: 0,
                data: vec![0, 0, 0, 1],
            },
        };
        assert_eq!(err.as_rum_ack(), None);
    }
}
