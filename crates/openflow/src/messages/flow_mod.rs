//! The `OFPT_FLOW_MOD` message and flow-removed notification.

use crate::actions::Action;
use crate::constants::{flow_mod_command, flow_mod_flags};
use crate::error::DecodeError;
use crate::flow_match::OfMatch;
use crate::types::{BufferId, PortNo};
use bytes::{Buf, BufMut};

/// The command carried by a flow modification message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlowModCommand {
    /// Add a new flow entry.
    Add,
    /// Modify the actions of all matching entries (loose match).
    Modify,
    /// Modify the actions of the entry strictly matching wildcards/priority.
    ModifyStrict,
    /// Delete all matching entries (loose match).
    Delete,
    /// Delete the entry strictly matching wildcards and priority.
    DeleteStrict,
}

impl FlowModCommand {
    /// Wire value of the command.
    pub fn to_wire(self) -> u16 {
        match self {
            FlowModCommand::Add => flow_mod_command::ADD,
            FlowModCommand::Modify => flow_mod_command::MODIFY,
            FlowModCommand::ModifyStrict => flow_mod_command::MODIFY_STRICT,
            FlowModCommand::Delete => flow_mod_command::DELETE,
            FlowModCommand::DeleteStrict => flow_mod_command::DELETE_STRICT,
        }
    }

    /// Parses the wire value of the command.
    pub fn from_wire(raw: u16) -> Result<Self, DecodeError> {
        Ok(match raw {
            flow_mod_command::ADD => FlowModCommand::Add,
            flow_mod_command::MODIFY => FlowModCommand::Modify,
            flow_mod_command::MODIFY_STRICT => FlowModCommand::ModifyStrict,
            flow_mod_command::DELETE => FlowModCommand::Delete,
            flow_mod_command::DELETE_STRICT => FlowModCommand::DeleteStrict,
            other => return Err(DecodeError::UnknownFlowModCommand(other)),
        })
    }

    /// True for the two delete commands.
    pub fn is_delete(self) -> bool {
        matches!(self, FlowModCommand::Delete | FlowModCommand::DeleteStrict)
    }
}

/// An `OFPT_FLOW_MOD` message body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowMod {
    /// Fields to match.
    pub match_: OfMatch,
    /// Opaque controller-issued identifier.
    pub cookie: u64,
    /// The modification command.
    pub command: FlowModCommand,
    /// Idle time before discarding (seconds); 0 = never.
    pub idle_timeout: u16,
    /// Max time before discarding (seconds); 0 = never.
    pub hard_timeout: u16,
    /// Priority level of the flow entry (higher wins).
    pub priority: u16,
    /// Buffered packet to apply to, or `NO_BUFFER`.
    pub buffer_id: BufferId,
    /// For DELETE commands, require matching entries to include this output
    /// port; `OFPP_NONE` means no restriction.
    pub out_port: PortNo,
    /// Bitmap of `flow_mod_flags`.
    pub flags: u16,
    /// Action list applied to matching packets.
    pub actions: Vec<Action>,
}

/// Wire size of the fixed part of a flow-mod body (without OF header).
pub const FLOW_MOD_FIXED_LEN: usize = 40 + 8 + 2 + 2 + 2 + 2 + 4 + 2 + 2;

impl FlowMod {
    /// Creates an ADD flow-mod with the given match, priority and actions.
    pub fn add(match_: OfMatch, priority: u16, actions: Vec<Action>) -> Self {
        FlowMod {
            match_,
            cookie: 0,
            command: FlowModCommand::Add,
            idle_timeout: 0,
            hard_timeout: 0,
            priority,
            buffer_id: crate::constants::NO_BUFFER,
            out_port: crate::constants::port::NONE,
            flags: 0,
            actions,
        }
    }

    /// Creates a strict-delete flow-mod for the given match and priority.
    pub fn delete_strict(match_: OfMatch, priority: u16) -> Self {
        FlowMod {
            command: FlowModCommand::DeleteStrict,
            ..FlowMod::add(match_, priority, Vec::new())
        }
    }

    /// Creates a loose-delete flow-mod for the given match.
    pub fn delete(match_: OfMatch) -> Self {
        FlowMod {
            command: FlowModCommand::Delete,
            ..FlowMod::add(match_, 0, Vec::new())
        }
    }

    /// Creates a strict-modify flow-mod replacing the actions of the entry
    /// identified by `match_` and `priority`.
    pub fn modify_strict(match_: OfMatch, priority: u16, actions: Vec<Action>) -> Self {
        FlowMod {
            command: FlowModCommand::ModifyStrict,
            ..FlowMod::add(match_, priority, actions)
        }
    }

    /// Builder-style: sets the cookie.
    pub fn with_cookie(mut self, cookie: u64) -> Self {
        self.cookie = cookie;
        self
    }

    /// Builder-style: sets the CHECK_OVERLAP flag.
    pub fn with_check_overlap(mut self) -> Self {
        self.flags |= flow_mod_flags::CHECK_OVERLAP;
        self
    }

    /// Builder-style: sets the SEND_FLOW_REM flag.
    pub fn with_send_flow_removed(mut self) -> Self {
        self.flags |= flow_mod_flags::SEND_FLOW_REM;
        self
    }

    /// Builder-style: sets the idle timeout.
    pub fn with_idle_timeout(mut self, secs: u16) -> Self {
        self.idle_timeout = secs;
        self
    }

    /// Builder-style: sets the hard timeout.
    pub fn with_hard_timeout(mut self, secs: u16) -> Self {
        self.hard_timeout = secs;
        self
    }

    /// Body length on the wire (without the OpenFlow header).
    pub fn body_len(&self) -> usize {
        FLOW_MOD_FIXED_LEN + Action::list_len(&self.actions)
    }

    /// Encodes the body (everything after the OpenFlow header).
    pub fn encode_body<B: BufMut>(&self, buf: &mut B) {
        self.match_.encode(buf);
        buf.put_u64(self.cookie);
        buf.put_u16(self.command.to_wire());
        buf.put_u16(self.idle_timeout);
        buf.put_u16(self.hard_timeout);
        buf.put_u16(self.priority);
        buf.put_u32(self.buffer_id);
        buf.put_u16(self.out_port);
        buf.put_u16(self.flags);
        Action::encode_list(&self.actions, buf);
    }

    /// Decodes the body; `body_len` is the total body length from the header.
    pub fn decode_body<B: Buf>(buf: &mut B, body_len: usize) -> Result<Self, DecodeError> {
        if body_len < FLOW_MOD_FIXED_LEN {
            return Err(DecodeError::BadLength {
                what: "flow_mod",
                len: body_len,
            });
        }
        let match_ = OfMatch::decode(buf)?;
        if buf.remaining() < FLOW_MOD_FIXED_LEN - 40 {
            return Err(DecodeError::Truncated {
                what: "flow_mod fixed fields",
                needed: FLOW_MOD_FIXED_LEN - 40,
                available: buf.remaining(),
            });
        }
        let cookie = buf.get_u64();
        let command = FlowModCommand::from_wire(buf.get_u16())?;
        let idle_timeout = buf.get_u16();
        let hard_timeout = buf.get_u16();
        let priority = buf.get_u16();
        let buffer_id = buf.get_u32();
        let out_port = buf.get_u16();
        let flags = buf.get_u16();
        let actions = Action::decode_list(buf, body_len - FLOW_MOD_FIXED_LEN)?;
        Ok(FlowMod {
            match_,
            cookie,
            command,
            idle_timeout,
            hard_timeout,
            priority,
            buffer_id,
            out_port,
            flags,
            actions,
        })
    }
}

/// An `OFPT_FLOW_REMOVED` message body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRemoved {
    /// Match of the removed entry.
    pub match_: OfMatch,
    /// Cookie of the removed entry.
    pub cookie: u64,
    /// Priority of the removed entry.
    pub priority: u16,
    /// One of `flow_removed_reason`.
    pub reason: u8,
    /// Time the flow was alive, seconds part.
    pub duration_sec: u32,
    /// Time the flow was alive, nanoseconds part.
    pub duration_nsec: u32,
    /// Idle timeout of the removed entry.
    pub idle_timeout: u16,
    /// Packets matched by the entry.
    pub packet_count: u64,
    /// Bytes matched by the entry.
    pub byte_count: u64,
}

/// Wire size of a flow-removed body.
pub const FLOW_REMOVED_LEN: usize = 40 + 8 + 2 + 1 + 1 + 4 + 4 + 2 + 2 + 8 + 8;

impl FlowRemoved {
    /// Body length on the wire.
    pub fn body_len(&self) -> usize {
        FLOW_REMOVED_LEN
    }

    /// Encodes the body.
    pub fn encode_body<B: BufMut>(&self, buf: &mut B) {
        self.match_.encode(buf);
        buf.put_u64(self.cookie);
        buf.put_u16(self.priority);
        buf.put_u8(self.reason);
        buf.put_u8(0);
        buf.put_u32(self.duration_sec);
        buf.put_u32(self.duration_nsec);
        buf.put_u16(self.idle_timeout);
        buf.put_slice(&[0, 0]);
        buf.put_u64(self.packet_count);
        buf.put_u64(self.byte_count);
    }

    /// Decodes the body.
    pub fn decode_body<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        let match_ = OfMatch::decode(buf)?;
        if buf.remaining() < FLOW_REMOVED_LEN - 40 {
            return Err(DecodeError::Truncated {
                what: "flow_removed",
                needed: FLOW_REMOVED_LEN - 40,
                available: buf.remaining(),
            });
        }
        let cookie = buf.get_u64();
        let priority = buf.get_u16();
        let reason = buf.get_u8();
        buf.advance(1);
        let duration_sec = buf.get_u32();
        let duration_nsec = buf.get_u32();
        let idle_timeout = buf.get_u16();
        buf.advance(2);
        let packet_count = buf.get_u64();
        let byte_count = buf.get_u64();
        Ok(FlowRemoved {
            match_,
            cookie,
            priority,
            reason,
            duration_sec,
            duration_nsec,
            idle_timeout,
            packet_count,
            byte_count,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use std::net::Ipv4Addr;

    fn sample_flow_mod() -> FlowMod {
        FlowMod::add(
            OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)),
            100,
            vec![Action::SetNwTos(0x20), Action::output(3)],
        )
        .with_cookie(0xdead_beef)
        .with_idle_timeout(30)
        .with_check_overlap()
    }

    #[test]
    fn command_round_trip() {
        for cmd in [
            FlowModCommand::Add,
            FlowModCommand::Modify,
            FlowModCommand::ModifyStrict,
            FlowModCommand::Delete,
            FlowModCommand::DeleteStrict,
        ] {
            assert_eq!(FlowModCommand::from_wire(cmd.to_wire()).unwrap(), cmd);
        }
        assert!(FlowModCommand::from_wire(99).is_err());
        assert!(FlowModCommand::Delete.is_delete());
        assert!(!FlowModCommand::Add.is_delete());
    }

    #[test]
    fn flow_mod_round_trip() {
        let fm = sample_flow_mod();
        let mut buf = BytesMut::new();
        fm.encode_body(&mut buf);
        assert_eq!(buf.len(), fm.body_len());
        let decoded = FlowMod::decode_body(&mut buf.freeze(), fm.body_len()).unwrap();
        assert_eq!(decoded, fm);
    }

    #[test]
    fn flow_mod_without_actions_round_trip() {
        let fm = FlowMod::delete_strict(OfMatch::wildcard_all(), 5);
        let mut buf = BytesMut::new();
        fm.encode_body(&mut buf);
        assert_eq!(buf.len(), FLOW_MOD_FIXED_LEN);
        let decoded = FlowMod::decode_body(&mut buf.freeze(), FLOW_MOD_FIXED_LEN).unwrap();
        assert_eq!(decoded, fm);
    }

    #[test]
    fn flow_mod_too_short_rejected() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&[0u8; 20]);
        assert!(FlowMod::decode_body(&mut buf.freeze(), 20).is_err());
    }

    #[test]
    fn builders_set_flags() {
        let fm = sample_flow_mod();
        assert_eq!(
            fm.flags & flow_mod_flags::CHECK_OVERLAP,
            flow_mod_flags::CHECK_OVERLAP
        );
        assert_eq!(fm.idle_timeout, 30);
        let fm = fm.with_send_flow_removed().with_hard_timeout(60);
        assert_eq!(
            fm.flags & flow_mod_flags::SEND_FLOW_REM,
            flow_mod_flags::SEND_FLOW_REM
        );
        assert_eq!(fm.hard_timeout, 60);
    }

    #[test]
    fn flow_removed_round_trip() {
        let fr = FlowRemoved {
            match_: OfMatch::ipv4_pair(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8)),
            cookie: 77,
            priority: 10,
            reason: crate::constants::flow_removed_reason::DELETE,
            duration_sec: 12,
            duration_nsec: 500,
            idle_timeout: 0,
            packet_count: 1000,
            byte_count: 64000,
        };
        let mut buf = BytesMut::new();
        fr.encode_body(&mut buf);
        assert_eq!(buf.len(), FLOW_REMOVED_LEN);
        let decoded = FlowRemoved::decode_body(&mut buf.freeze()).unwrap();
        assert_eq!(decoded, fr);
    }
}
