//! Switch handshake and configuration messages: features, config, port mod.

use crate::error::DecodeError;
use crate::messages::packet_io::{PhyPort, PHY_PORT_LEN};
use crate::types::{DatapathId, MacAddr, PortNo};
use bytes::{Buf, BufMut};

/// An `OFPT_FEATURES_REPLY` message body (`ofp_switch_features`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeaturesReply {
    /// Datapath unique id (lower 48 bits are the MAC address).
    pub datapath_id: DatapathId,
    /// Max packets the switch can buffer for the controller.
    pub n_buffers: u32,
    /// Number of flow tables.
    pub n_tables: u8,
    /// Bitmap of supported capabilities (OFPC_*).
    pub capabilities: u32,
    /// Bitmap of supported actions.
    pub actions: u32,
    /// Port descriptions.
    pub ports: Vec<PhyPort>,
}

/// Fixed part of a features-reply body.
pub const FEATURES_REPLY_FIXED_LEN: usize = 8 + 4 + 1 + 3 + 4 + 4;

impl FeaturesReply {
    /// Builds a features reply for a simulated switch with `n_ports`
    /// consecutively numbered ports starting at 1.
    pub fn simulated(datapath_id: DatapathId, n_ports: u16) -> Self {
        let ports = (1..=n_ports)
            .map(|p| {
                PhyPort::simple(
                    p,
                    MacAddr::from_id(datapath_id.raw() << 8 | u64::from(p)),
                    &format!("sim{p}"),
                )
            })
            .collect();
        FeaturesReply {
            datapath_id,
            n_buffers: 256,
            n_tables: 1,
            capabilities: 0x0000_0087, // FLOW_STATS | TABLE_STATS | PORT_STATS | ARP_MATCH_IP
            actions: 0x0000_0fff,      // all OF 1.0 standard actions
            ports,
        }
    }

    /// Body length on the wire.
    pub fn body_len(&self) -> usize {
        FEATURES_REPLY_FIXED_LEN + self.ports.len() * PHY_PORT_LEN
    }

    /// Encodes the body.
    pub fn encode_body<B: BufMut>(&self, buf: &mut B) {
        buf.put_u64(self.datapath_id.raw());
        buf.put_u32(self.n_buffers);
        buf.put_u8(self.n_tables);
        buf.put_slice(&[0, 0, 0]);
        buf.put_u32(self.capabilities);
        buf.put_u32(self.actions);
        for p in &self.ports {
            p.encode(buf);
        }
    }

    /// Decodes the body given its total length.
    pub fn decode_body<B: Buf>(buf: &mut B, body_len: usize) -> Result<Self, DecodeError> {
        if body_len < FEATURES_REPLY_FIXED_LEN || buf.remaining() < body_len {
            return Err(DecodeError::Truncated {
                what: "features_reply",
                needed: FEATURES_REPLY_FIXED_LEN.max(body_len),
                available: buf.remaining(),
            });
        }
        let datapath_id = DatapathId::new(buf.get_u64());
        let n_buffers = buf.get_u32();
        let n_tables = buf.get_u8();
        buf.advance(3);
        let capabilities = buf.get_u32();
        let actions = buf.get_u32();
        let ports_len = body_len - FEATURES_REPLY_FIXED_LEN;
        if !ports_len.is_multiple_of(PHY_PORT_LEN) {
            return Err(DecodeError::BadLength {
                what: "features_reply ports",
                len: ports_len,
            });
        }
        let mut ports = Vec::with_capacity(ports_len / PHY_PORT_LEN);
        for _ in 0..ports_len / PHY_PORT_LEN {
            ports.push(PhyPort::decode(buf)?);
        }
        Ok(FeaturesReply {
            datapath_id,
            n_buffers,
            n_tables,
            capabilities,
            actions,
            ports,
        })
    }
}

/// An `OFPT_GET_CONFIG_REPLY` / `OFPT_SET_CONFIG` body (`ofp_switch_config`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchConfig {
    /// Bitmap of OFPC_FRAG_* flags.
    pub flags: u16,
    /// Max bytes of packet sent to the controller on a table miss.
    pub miss_send_len: u16,
}

/// Wire size of a switch-config body.
pub const SWITCH_CONFIG_LEN: usize = 4;

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            flags: 0,
            miss_send_len: 128,
        }
    }
}

impl SwitchConfig {
    /// Encodes the body.
    pub fn encode_body<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(self.flags);
        buf.put_u16(self.miss_send_len);
    }

    /// Decodes the body.
    pub fn decode_body<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        if buf.remaining() < SWITCH_CONFIG_LEN {
            return Err(DecodeError::Truncated {
                what: "switch_config",
                needed: SWITCH_CONFIG_LEN,
                available: buf.remaining(),
            });
        }
        Ok(SwitchConfig {
            flags: buf.get_u16(),
            miss_send_len: buf.get_u16(),
        })
    }
}

/// An `OFPT_PORT_MOD` message body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortMod {
    /// Port to modify.
    pub port_no: PortNo,
    /// MAC address of the port (sanity check).
    pub hw_addr: MacAddr,
    /// New config bits.
    pub config: u32,
    /// Mask of config bits to change.
    pub mask: u32,
    /// Features to advertise (0 = unchanged).
    pub advertise: u32,
}

/// Wire size of a port-mod body.
pub const PORT_MOD_LEN: usize = 2 + 6 + 4 + 4 + 4 + 4;

impl PortMod {
    /// Encodes the body.
    pub fn encode_body<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(self.port_no);
        buf.put_slice(&self.hw_addr.octets());
        buf.put_u32(self.config);
        buf.put_u32(self.mask);
        buf.put_u32(self.advertise);
        buf.put_slice(&[0u8; 4]);
    }

    /// Decodes the body.
    pub fn decode_body<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        if buf.remaining() < PORT_MOD_LEN {
            return Err(DecodeError::Truncated {
                what: "port_mod",
                needed: PORT_MOD_LEN,
                available: buf.remaining(),
            });
        }
        let port_no = buf.get_u16();
        let mut mac = [0u8; 6];
        buf.copy_to_slice(&mut mac);
        let config = buf.get_u32();
        let mask = buf.get_u32();
        let advertise = buf.get_u32();
        buf.advance(4);
        Ok(PortMod {
            port_no,
            hw_addr: MacAddr(mac),
            config,
            mask,
            advertise,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn features_reply_round_trip() {
        let fr = FeaturesReply::simulated(DatapathId::new(0x42), 4);
        assert_eq!(fr.ports.len(), 4);
        let mut buf = BytesMut::new();
        fr.encode_body(&mut buf);
        assert_eq!(buf.len(), fr.body_len());
        let decoded = FeaturesReply::decode_body(&mut buf.freeze(), fr.body_len()).unwrap();
        assert_eq!(decoded, fr);
    }

    #[test]
    fn features_reply_no_ports() {
        let mut fr = FeaturesReply::simulated(DatapathId::new(1), 0);
        fr.ports.clear();
        let mut buf = BytesMut::new();
        fr.encode_body(&mut buf);
        let decoded = FeaturesReply::decode_body(&mut buf.freeze(), fr.body_len()).unwrap();
        assert!(decoded.ports.is_empty());
    }

    #[test]
    fn features_reply_bad_port_len() {
        let fr = FeaturesReply::simulated(DatapathId::new(1), 1);
        let mut buf = BytesMut::new();
        fr.encode_body(&mut buf);
        // Chop a few bytes off the port list so it is no longer a multiple of 48.
        let bad_len = fr.body_len() - 3;
        let mut bytes = buf.freeze();
        assert!(FeaturesReply::decode_body(&mut bytes, bad_len).is_err());
    }

    #[test]
    fn switch_config_round_trip() {
        let sc = SwitchConfig {
            flags: 1,
            miss_send_len: 0xffff,
        };
        let mut buf = BytesMut::new();
        sc.encode_body(&mut buf);
        assert_eq!(buf.len(), SWITCH_CONFIG_LEN);
        let decoded = SwitchConfig::decode_body(&mut buf.freeze()).unwrap();
        assert_eq!(decoded, sc);
        assert_eq!(SwitchConfig::default().miss_send_len, 128);
    }

    #[test]
    fn port_mod_round_trip() {
        let pm = PortMod {
            port_no: 7,
            hw_addr: MacAddr::from_id(3),
            config: 0x1,
            mask: 0x1,
            advertise: 0,
        };
        let mut buf = BytesMut::new();
        pm.encode_body(&mut buf);
        assert_eq!(buf.len(), PORT_MOD_LEN);
        let decoded = PortMod::decode_body(&mut buf.freeze()).unwrap();
        assert_eq!(decoded, pm);
    }
}
