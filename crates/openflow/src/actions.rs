//! OpenFlow 1.0 actions: wire codec and a small interpreter.
//!
//! Actions are both a protocol element (they travel inside `FlowMod` and
//! `PacketOut` messages) and a data-plane element (the switch applies them to
//! packets).  The interpreter here is shared by the software switch and by
//! the RUM layer, which must predict what a probed rule will do to a probe
//! packet (e.g. the sequential-probing rule rewrites the ToS field with a
//! version number).

use crate::constants::{action_type, OFP_VLAN_NONE};
use crate::error::DecodeError;
use crate::packet::PacketHeader;
use crate::types::{ipv4_to_u32, u32_to_ipv4, MacAddr, PortNo};
use bytes::{Buf, BufMut};

/// A single OpenFlow 1.0 action.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Action {
    /// Forward the packet out of a port, optionally limiting the bytes sent
    /// to the controller when the port is `OFPP_CONTROLLER`.
    Output {
        /// Destination port.
        port: PortNo,
        /// Maximum bytes to send to the controller.
        max_len: u16,
    },
    /// Set the 802.1Q VLAN id (tags the packet if untagged).
    SetVlanVid(u16),
    /// Set the 802.1Q priority.
    SetVlanPcp(u8),
    /// Strip the 802.1Q tag.
    StripVlan,
    /// Rewrite the Ethernet source address.
    SetDlSrc(MacAddr),
    /// Rewrite the Ethernet destination address.
    SetDlDst(MacAddr),
    /// Rewrite the IPv4 source address.
    SetNwSrc(u32),
    /// Rewrite the IPv4 destination address.
    SetNwDst(u32),
    /// Rewrite the IP ToS byte (DSCP bits).
    SetNwTos(u8),
    /// Rewrite the TCP/UDP source port.
    SetTpSrc(u16),
    /// Rewrite the TCP/UDP destination port.
    SetTpDst(u16),
    /// Output to a queue attached to a port.
    Enqueue {
        /// Destination port.
        port: PortNo,
        /// Queue id on that port.
        queue_id: u32,
    },
    /// A vendor action, carried opaquely.
    Vendor {
        /// Vendor id.
        vendor: u32,
        /// Opaque body (padded to 8-byte multiples on the wire).
        body: Vec<u8>,
    },
}

impl Action {
    /// Convenience constructor for an output action with no controller limit.
    pub fn output(port: PortNo) -> Self {
        Action::Output {
            port,
            max_len: 0xffff,
        }
    }

    /// Convenience constructor for "send the whole packet to the controller".
    pub fn to_controller() -> Self {
        Action::Output {
            port: crate::constants::port::CONTROLLER,
            max_len: 0xffff,
        }
    }

    /// Wire length of this action in bytes (always a multiple of 8).
    pub fn wire_len(&self) -> usize {
        match self {
            Action::Output { .. } => 8,
            Action::SetVlanVid(_) => 8,
            Action::SetVlanPcp(_) => 8,
            Action::StripVlan => 8,
            Action::SetDlSrc(_) | Action::SetDlDst(_) => 16,
            Action::SetNwSrc(_) | Action::SetNwDst(_) => 8,
            Action::SetNwTos(_) => 8,
            Action::SetTpSrc(_) | Action::SetTpDst(_) => 8,
            Action::Enqueue { .. } => 16,
            Action::Vendor { body, .. } => {
                let unpadded = 8 + body.len();
                unpadded.div_ceil(8) * 8
            }
        }
    }

    /// Encodes the action to its wire representation.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        match *self {
            Action::Output { port, max_len } => {
                buf.put_u16(action_type::OUTPUT);
                buf.put_u16(8);
                buf.put_u16(port);
                buf.put_u16(max_len);
            }
            Action::SetVlanVid(vid) => {
                buf.put_u16(action_type::SET_VLAN_VID);
                buf.put_u16(8);
                buf.put_u16(vid);
                buf.put_slice(&[0, 0]);
            }
            Action::SetVlanPcp(pcp) => {
                buf.put_u16(action_type::SET_VLAN_PCP);
                buf.put_u16(8);
                buf.put_u8(pcp);
                buf.put_slice(&[0, 0, 0]);
            }
            Action::StripVlan => {
                buf.put_u16(action_type::STRIP_VLAN);
                buf.put_u16(8);
                buf.put_slice(&[0, 0, 0, 0]);
            }
            Action::SetDlSrc(mac) => {
                buf.put_u16(action_type::SET_DL_SRC);
                buf.put_u16(16);
                buf.put_slice(&mac.octets());
                buf.put_slice(&[0; 6]);
            }
            Action::SetDlDst(mac) => {
                buf.put_u16(action_type::SET_DL_DST);
                buf.put_u16(16);
                buf.put_slice(&mac.octets());
                buf.put_slice(&[0; 6]);
            }
            Action::SetNwSrc(addr) => {
                buf.put_u16(action_type::SET_NW_SRC);
                buf.put_u16(8);
                buf.put_u32(addr);
            }
            Action::SetNwDst(addr) => {
                buf.put_u16(action_type::SET_NW_DST);
                buf.put_u16(8);
                buf.put_u32(addr);
            }
            Action::SetNwTos(tos) => {
                buf.put_u16(action_type::SET_NW_TOS);
                buf.put_u16(8);
                buf.put_u8(tos);
                buf.put_slice(&[0, 0, 0]);
            }
            Action::SetTpSrc(port) => {
                buf.put_u16(action_type::SET_TP_SRC);
                buf.put_u16(8);
                buf.put_u16(port);
                buf.put_slice(&[0, 0]);
            }
            Action::SetTpDst(port) => {
                buf.put_u16(action_type::SET_TP_DST);
                buf.put_u16(8);
                buf.put_u16(port);
                buf.put_slice(&[0, 0]);
            }
            Action::Enqueue { port, queue_id } => {
                buf.put_u16(action_type::ENQUEUE);
                buf.put_u16(16);
                buf.put_u16(port);
                buf.put_slice(&[0; 6]);
                buf.put_u32(queue_id);
            }
            Action::Vendor { vendor, ref body } => {
                let len = self.wire_len();
                buf.put_u16(action_type::VENDOR);
                buf.put_u16(len as u16);
                buf.put_u32(vendor);
                buf.put_slice(body);
                for _ in 0..(len - 8 - body.len()) {
                    buf.put_u8(0);
                }
            }
        }
    }

    /// Decodes a single action from the buffer.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        if buf.remaining() < 4 {
            return Err(DecodeError::Truncated {
                what: "action header",
                needed: 4,
                available: buf.remaining(),
            });
        }
        let ty = buf.get_u16();
        let len = buf.get_u16() as usize;
        if len < 8 || !len.is_multiple_of(8) {
            return Err(DecodeError::BadLength {
                what: "action",
                len,
            });
        }
        let body_len = len - 4;
        if buf.remaining() < body_len {
            return Err(DecodeError::Truncated {
                what: "action body",
                needed: body_len,
                available: buf.remaining(),
            });
        }
        let action = match ty {
            action_type::OUTPUT => {
                let port = buf.get_u16();
                let max_len = buf.get_u16();
                Action::Output { port, max_len }
            }
            action_type::SET_VLAN_VID => {
                let vid = buf.get_u16();
                buf.advance(2);
                Action::SetVlanVid(vid)
            }
            action_type::SET_VLAN_PCP => {
                let pcp = buf.get_u8();
                buf.advance(3);
                Action::SetVlanPcp(pcp)
            }
            action_type::STRIP_VLAN => {
                buf.advance(4);
                Action::StripVlan
            }
            action_type::SET_DL_SRC | action_type::SET_DL_DST => {
                let mut mac = [0u8; 6];
                buf.copy_to_slice(&mut mac);
                buf.advance(6);
                if ty == action_type::SET_DL_SRC {
                    Action::SetDlSrc(MacAddr(mac))
                } else {
                    Action::SetDlDst(MacAddr(mac))
                }
            }
            action_type::SET_NW_SRC => Action::SetNwSrc(buf.get_u32()),
            action_type::SET_NW_DST => Action::SetNwDst(buf.get_u32()),
            action_type::SET_NW_TOS => {
                let tos = buf.get_u8();
                buf.advance(3);
                Action::SetNwTos(tos)
            }
            action_type::SET_TP_SRC => {
                let p = buf.get_u16();
                buf.advance(2);
                Action::SetTpSrc(p)
            }
            action_type::SET_TP_DST => {
                let p = buf.get_u16();
                buf.advance(2);
                Action::SetTpDst(p)
            }
            action_type::ENQUEUE => {
                let port = buf.get_u16();
                buf.advance(6);
                let queue_id = buf.get_u32();
                Action::Enqueue { port, queue_id }
            }
            action_type::VENDOR => {
                let vendor = buf.get_u32();
                let mut body = vec![0u8; body_len - 4];
                buf.copy_to_slice(&mut body);
                Action::Vendor { vendor, body }
            }
            other => return Err(DecodeError::UnknownActionType(other)),
        };
        Ok(action)
    }

    /// Encodes a whole action list.
    pub fn encode_list<B: BufMut>(actions: &[Action], buf: &mut B) {
        for a in actions {
            a.encode(buf);
        }
    }

    /// Total wire length of an action list.
    pub fn list_len(actions: &[Action]) -> usize {
        actions.iter().map(Action::wire_len).sum()
    }

    /// Decodes exactly `len` bytes worth of actions.
    pub fn decode_list<B: Buf>(buf: &mut B, len: usize) -> Result<Vec<Action>, DecodeError> {
        if buf.remaining() < len {
            return Err(DecodeError::Truncated {
                what: "action list",
                needed: len,
                available: buf.remaining(),
            });
        }
        let mut slice = buf.copy_to_bytes(len);
        let mut actions = Vec::new();
        while slice.has_remaining() {
            actions.push(Action::decode(&mut slice)?);
        }
        Ok(actions)
    }

    /// Applies a header-rewrite action to a packet, returning the modified
    /// header.  [`Action::Output`] and [`Action::Enqueue`] do not modify the
    /// packet and are handled by the forwarding logic instead.
    pub fn apply(&self, pkt: &PacketHeader) -> PacketHeader {
        let mut p = *pkt;
        match *self {
            Action::Output { .. } | Action::Enqueue { .. } | Action::Vendor { .. } => {}
            Action::SetVlanVid(vid) => {
                p.dl_vlan = vid & 0x0fff;
            }
            Action::SetVlanPcp(pcp) => {
                if !p.has_vlan() {
                    p.dl_vlan = 0;
                }
                p.dl_vlan_pcp = pcp & 0x07;
            }
            Action::StripVlan => {
                p.dl_vlan = OFP_VLAN_NONE;
                p.dl_vlan_pcp = 0;
            }
            Action::SetDlSrc(mac) => p.dl_src = mac,
            Action::SetDlDst(mac) => p.dl_dst = mac,
            Action::SetNwSrc(addr) => p.nw_src = u32_to_ipv4(addr),
            Action::SetNwDst(addr) => p.nw_dst = u32_to_ipv4(addr),
            Action::SetNwTos(tos) => p.nw_tos = tos,
            Action::SetTpSrc(port) => p.tp_src = port,
            Action::SetTpDst(port) => p.tp_dst = port,
        }
        p
    }

    /// Applies a whole action list, returning the rewritten packet and the
    /// set of output destinations encountered (ports and queues), in order.
    pub fn apply_list(actions: &[Action], pkt: &PacketHeader) -> (PacketHeader, Vec<PortNo>) {
        let mut p = *pkt;
        let mut outputs = Vec::new();
        for a in actions {
            match a {
                Action::Output { port, .. } => outputs.push(*port),
                Action::Enqueue { port, .. } => outputs.push(*port),
                _ => p = a.apply(&p),
            }
        }
        (p, outputs)
    }

    /// The set of output ports of an action list without applying rewrites.
    pub fn output_ports(actions: &[Action]) -> Vec<PortNo> {
        actions
            .iter()
            .filter_map(|a| match a {
                Action::Output { port, .. } => Some(*port),
                Action::Enqueue { port, .. } => Some(*port),
                _ => None,
            })
            .collect()
    }

    /// True if two action lists are observationally different for a packet:
    /// they forward to different ports or rewrite headers differently.
    ///
    /// The general-probing technique (paper §3.2.2) requires the probed
    /// rule's action to be distinguishable from the action of the rule that
    /// would match the probe packet if the probed rule were absent.
    pub fn observably_differs(a: &[Action], b: &[Action], pkt: &PacketHeader) -> bool {
        let (pa, outa) = Action::apply_list(a, pkt);
        let (pb, outb) = Action::apply_list(b, pkt);
        pa != pb || outa != outb
    }

    /// Converts an IPv4 address to the u32 used by `SetNwSrc`/`SetNwDst`.
    pub fn nw_addr(addr: std::net::Ipv4Addr) -> u32 {
        ipv4_to_u32(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;
    use std::net::Ipv4Addr;

    fn all_variants() -> Vec<Action> {
        vec![
            Action::Output {
                port: 3,
                max_len: 128,
            },
            Action::SetVlanVid(100),
            Action::SetVlanPcp(5),
            Action::StripVlan,
            Action::SetDlSrc(MacAddr::from_id(1)),
            Action::SetDlDst(MacAddr::from_id(2)),
            Action::SetNwSrc(0x0a000001),
            Action::SetNwDst(0x0a000002),
            Action::SetNwTos(0x38),
            Action::SetTpSrc(1234),
            Action::SetTpDst(80),
            Action::Enqueue {
                port: 2,
                queue_id: 7,
            },
            Action::Vendor {
                vendor: 0x2320,
                // 8-byte body: already aligned, so encode/decode is lossless
                // (shorter bodies gain padding; see vendor_action_padding).
                body: vec![1, 2, 3, 4, 5, 6, 7, 8],
            },
        ]
    }

    #[test]
    fn round_trip_each_action() {
        for action in all_variants() {
            let mut buf = BytesMut::new();
            action.encode(&mut buf);
            assert_eq!(buf.len(), action.wire_len(), "wire_len of {action:?}");
            assert_eq!(buf.len() % 8, 0, "8-byte alignment of {action:?}");
            let decoded = Action::decode(&mut buf.freeze()).unwrap();
            assert_eq!(decoded, action);
        }
    }

    #[test]
    fn round_trip_action_list() {
        let actions = all_variants();
        let mut buf = BytesMut::new();
        Action::encode_list(&actions, &mut buf);
        let total = Action::list_len(&actions);
        assert_eq!(buf.len(), total);
        let decoded = Action::decode_list(&mut buf.freeze(), total).unwrap();
        assert_eq!(decoded, actions);
    }

    #[test]
    fn decode_unknown_action_type() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&[0x00, 0x42, 0x00, 0x08, 0, 0, 0, 0]);
        assert!(matches!(
            Action::decode(&mut buf.freeze()),
            Err(DecodeError::UnknownActionType(0x42))
        ));
    }

    #[test]
    fn decode_bad_length() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&[0x00, 0x00, 0x00, 0x05, 0, 0, 0, 0]);
        assert!(matches!(
            Action::decode(&mut buf.freeze()),
            Err(DecodeError::BadLength { .. })
        ));
    }

    #[test]
    fn apply_rewrites() {
        let pkt = PacketHeader::ipv4_udp(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1000,
            2000,
        );
        let p = Action::SetNwTos(0x2e).apply(&pkt);
        assert_eq!(p.nw_tos, 0x2e);
        let p = Action::SetTpDst(53).apply(&p);
        assert_eq!(p.tp_dst, 53);
        let p = Action::SetVlanVid(300).apply(&p);
        assert_eq!(p.dl_vlan, 300);
        let p = Action::StripVlan.apply(&p);
        assert!(!p.has_vlan());
        let p = Action::SetNwDst(Action::nw_addr(Ipv4Addr::new(8, 8, 8, 8))).apply(&p);
        assert_eq!(p.nw_dst, Ipv4Addr::new(8, 8, 8, 8));
    }

    #[test]
    fn apply_list_collects_outputs_in_order() {
        let pkt = PacketHeader::default();
        let actions = vec![
            Action::SetNwTos(0x04),
            Action::output(1),
            Action::SetNwTos(0x08),
            Action::output(2),
        ];
        let (rewritten, outputs) = Action::apply_list(&actions, &pkt);
        // Note: OpenFlow applies set-field actions cumulatively; outputs see
        // the packet as rewritten *so far*, but apply_list returns the final
        // header which is what the last output would carry.
        assert_eq!(outputs, vec![1, 2]);
        assert_eq!(rewritten.nw_tos, 0x08);
    }

    #[test]
    fn output_ports_extraction() {
        let actions = vec![
            Action::SetNwTos(1),
            Action::output(4),
            Action::Enqueue {
                port: 9,
                queue_id: 0,
            },
        ];
        assert_eq!(Action::output_ports(&actions), vec![4, 9]);
    }

    #[test]
    fn observably_differs_detects_port_and_rewrite_differences() {
        let pkt = PacketHeader::default();
        let fwd1 = vec![Action::output(1)];
        let fwd2 = vec![Action::output(2)];
        let fwd1_rewrite = vec![Action::SetNwTos(0x10), Action::output(1)];
        assert!(Action::observably_differs(&fwd1, &fwd2, &pkt));
        assert!(Action::observably_differs(&fwd1, &fwd1_rewrite, &pkt));
        assert!(!Action::observably_differs(&fwd1, &fwd1.clone(), &pkt));
    }

    #[test]
    fn drop_vs_forward_differs() {
        // An empty action list means drop.
        let pkt = PacketHeader::default();
        assert!(Action::observably_differs(&[], &[Action::output(1)], &pkt));
        assert!(!Action::observably_differs(&[], &[], &pkt));
    }

    #[test]
    fn vendor_action_padding() {
        let a = Action::Vendor {
            vendor: 1,
            body: vec![0xaa; 5],
        };
        assert_eq!(a.wire_len(), 16);
        let mut buf = BytesMut::new();
        a.encode(&mut buf);
        assert_eq!(buf.len(), 16);
        let decoded = Action::decode(&mut buf.freeze()).unwrap();
        match decoded {
            Action::Vendor { vendor, body } => {
                assert_eq!(vendor, 1);
                // Padding is preserved as part of the opaque body on decode.
                assert_eq!(body.len(), 8);
                assert_eq!(&body[..5], &[0xaa; 5]);
            }
            other => panic!("expected vendor action, got {other:?}"),
        }
    }

    #[test]
    fn to_controller_helper() {
        match Action::to_controller() {
            Action::Output { port, max_len } => {
                assert_eq!(port, crate::constants::port::CONTROLLER);
                assert_eq!(max_len, 0xffff);
            }
            _ => panic!(),
        }
    }
}
