//! Stream framing: splitting a TCP byte stream into OpenFlow messages.
//!
//! The RUM prototype (paper §4) is a TCP proxy that sits between switches
//! and the controller.  [`OfCodec`] accumulates raw bytes from a socket and
//! yields complete [`OfMessage`]s; it also serializes outgoing messages.  The
//! codec is deliberately runtime-agnostic: the `rum-tcp` crate drives it from
//! blocking std sockets, and tests drive it from in-memory buffers.

use crate::error::{DecodeError, EncodeError};
use crate::messages::{OfHeader, OfMessage, OFP_HEADER_LEN};
use bytes::BytesMut;

/// Maximum message size the codec will accept before declaring the stream
/// corrupt.  OpenFlow lengths are 16-bit so this is the protocol limit.
pub const MAX_MESSAGE_LEN: usize = u16::MAX as usize;

/// An incremental decoder/encoder for an OpenFlow byte stream.
#[derive(Debug, Default)]
pub struct OfCodec {
    buffer: BytesMut,
}

impl OfCodec {
    /// Creates an empty codec.
    pub fn new() -> Self {
        OfCodec {
            buffer: BytesMut::with_capacity(4096),
        }
    }

    /// Appends raw bytes received from the peer.
    pub fn feed(&mut self, data: &[u8]) {
        self.buffer.extend_from_slice(data);
    }

    /// Number of buffered, not-yet-decoded bytes.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Attempts to decode the next complete message from the buffer.
    ///
    /// Returns `Ok(None)` when more bytes are needed.  A framing-level error
    /// (bad version, bad length, unknown type) is returned as `Err` and the
    /// offending frame is discarded so the stream can attempt to resync.
    pub fn next_message(&mut self) -> Result<Option<OfMessage>, DecodeError> {
        if self.buffer.len() < OFP_HEADER_LEN {
            return Ok(None);
        }
        let header = OfHeader::peek(&self.buffer)?;
        let declared = header.length as usize;
        if declared < OFP_HEADER_LEN {
            // Drop the stream contents: a length smaller than the header is
            // unrecoverable desynchronisation.
            self.buffer.clear();
            return Err(DecodeError::BadLength {
                what: "ofp_header.length",
                len: declared,
            });
        }
        if self.buffer.len() < declared {
            return Ok(None);
        }
        let frame = self.buffer.split_to(declared);
        OfMessage::decode(&frame).map(Some)
    }

    /// Decodes every complete message currently buffered.
    pub fn drain_messages(&mut self) -> Result<Vec<OfMessage>, DecodeError> {
        let mut out = Vec::new();
        while let Some(msg) = self.next_message()? {
            out.push(msg);
        }
        Ok(out)
    }

    /// Serializes a message for transmission.
    pub fn encode(&self, msg: &OfMessage) -> Result<Vec<u8>, EncodeError> {
        msg.encode_to_vec()
    }

    /// Serializes a batch of messages into one contiguous buffer (useful to
    /// issue a flow-mod burst followed by a barrier in a single write).
    pub fn encode_batch(&self, msgs: &[OfMessage]) -> Result<Vec<u8>, EncodeError> {
        let mut out = Vec::with_capacity(msgs.iter().map(OfMessage::wire_len).sum());
        for m in msgs {
            out.extend_from_slice(&m.encode_to_vec()?);
        }
        Ok(out)
    }

    /// Discards all buffered bytes (e.g. after a connection reset).
    pub fn reset(&mut self) {
        self.buffer.clear();
    }
}

/// Splits a contiguous byte slice containing whole messages into frames
/// without copying the payloads. Convenience for tests and trace analysis.
pub fn split_frames(mut data: &[u8]) -> Result<Vec<&[u8]>, DecodeError> {
    let mut frames = Vec::new();
    while !data.is_empty() {
        let header = OfHeader::peek(data)?;
        let len = header.length as usize;
        if len < OFP_HEADER_LEN || len > data.len() {
            return Err(DecodeError::BadLength {
                what: "ofp_header.length",
                len,
            });
        }
        let (frame, rest) = data.split_at(len);
        frames.push(frame);
        data = rest;
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::Action;
    use crate::flow_match::OfMatch;
    use crate::messages::FlowMod;
    use std::net::Ipv4Addr;

    fn sample_messages() -> Vec<OfMessage> {
        vec![
            OfMessage::Hello { xid: 1 },
            OfMessage::FlowMod {
                xid: 2,
                body: FlowMod::add(
                    OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)),
                    10,
                    vec![Action::output(1)],
                ),
            },
            OfMessage::BarrierRequest { xid: 3 },
            OfMessage::EchoRequest {
                xid: 4,
                data: vec![0xab; 32],
            },
        ]
    }

    #[test]
    fn feed_all_at_once() {
        let msgs = sample_messages();
        let mut codec = OfCodec::new();
        let bytes = codec.encode_batch(&msgs).unwrap();
        codec.feed(&bytes);
        let decoded = codec.drain_messages().unwrap();
        assert_eq!(decoded, msgs);
        assert_eq!(codec.buffered(), 0);
    }

    #[test]
    fn feed_byte_by_byte() {
        let msgs = sample_messages();
        let mut codec = OfCodec::new();
        let bytes = codec.encode_batch(&msgs).unwrap();
        let mut decoded = Vec::new();
        for b in bytes {
            codec.feed(&[b]);
            while let Some(m) = codec.next_message().unwrap() {
                decoded.push(m);
            }
        }
        assert_eq!(decoded, msgs);
    }

    #[test]
    fn partial_message_returns_none() {
        let mut codec = OfCodec::new();
        let bytes = OfMessage::EchoRequest {
            xid: 1,
            data: vec![1, 2, 3, 4],
        }
        .encode_to_vec()
        .unwrap();
        codec.feed(&bytes[..6]);
        assert!(codec.next_message().unwrap().is_none());
        codec.feed(&bytes[6..]);
        assert!(codec.next_message().unwrap().is_some());
    }

    #[test]
    fn bad_length_clears_buffer() {
        let mut codec = OfCodec::new();
        // length field of 4 (< header size) is unrecoverable
        codec.feed(&[0x01, 0x00, 0x00, 0x04, 0, 0, 0, 1]);
        assert!(codec.next_message().is_err());
        assert_eq!(codec.buffered(), 0);
    }

    #[test]
    fn unknown_type_skips_frame_but_keeps_stream() {
        let mut codec = OfCodec::new();
        let mut bad = OfMessage::Hello { xid: 1 }.encode_to_vec().unwrap();
        bad[1] = 77; // unknown type
        let good = OfMessage::BarrierReply { xid: 2 }.encode_to_vec().unwrap();
        codec.feed(&bad);
        codec.feed(&good);
        assert!(codec.next_message().is_err());
        // The bad frame was consumed; the good one is still decodable.
        let msg = codec.next_message().unwrap().unwrap();
        assert_eq!(msg, OfMessage::BarrierReply { xid: 2 });
    }

    #[test]
    fn reset_discards_buffered_bytes() {
        let mut codec = OfCodec::new();
        codec.feed(&[1, 2, 3]);
        assert_eq!(codec.buffered(), 3);
        codec.reset();
        assert_eq!(codec.buffered(), 0);
    }

    #[test]
    fn split_frames_works() {
        let msgs = sample_messages();
        let codec = OfCodec::new();
        let bytes = codec.encode_batch(&msgs).unwrap();
        let frames = split_frames(&bytes).unwrap();
        assert_eq!(frames.len(), msgs.len());
        for (frame, msg) in frames.iter().zip(&msgs) {
            assert_eq!(&OfMessage::decode(frame).unwrap(), msg);
        }
    }

    #[test]
    fn split_frames_rejects_truncation() {
        let bytes = OfMessage::Hello { xid: 1 }.encode_to_vec().unwrap();
        assert!(split_frames(&bytes[..5]).is_err());
    }
}
