//! Stream framing: splitting a TCP byte stream into OpenFlow messages.
//!
//! The RUM prototype (paper §4) is a TCP proxy that sits between switches
//! and the controller.  [`OfCodec`] accumulates raw bytes from a socket and
//! yields complete [`OfMessage`]s; it also serializes outgoing messages.  The
//! codec is deliberately runtime-agnostic: the `rum-tcp` crate drives it from
//! blocking std sockets, and tests drive it from in-memory buffers.

use crate::error::{DecodeError, EncodeError};
use crate::messages::{OfHeader, OfMessage, OFP_HEADER_LEN};

/// Maximum message size the codec will accept before declaring the stream
/// corrupt.  OpenFlow lengths are 16-bit so this is the protocol limit.
pub const MAX_MESSAGE_LEN: usize = u16::MAX as usize;

/// Consumed bytes accumulate at the front of the scratch buffer until this
/// many are pending, then one `memmove` reclaims the space.  Keeping the
/// threshold above the typical read size means steady-state decoding does no
/// allocation and only rare, bounded copies.
const COMPACT_THRESHOLD: usize = 16 * 1024;

/// An incremental decoder/encoder for an OpenFlow byte stream.
///
/// The decoder owns one scratch buffer that is reused across frames and
/// reads: `feed` appends, `next_message` advances a cursor over complete
/// frames, and the consumed prefix is compacted in place once it grows past
/// a fixed threshold — no per-frame allocation or copying.
#[derive(Debug, Default)]
pub struct OfCodec {
    buffer: Vec<u8>,
    /// Length of the already-decoded prefix of `buffer`.
    pos: usize,
}

impl OfCodec {
    /// Creates an empty codec.
    pub fn new() -> Self {
        OfCodec {
            buffer: Vec::with_capacity(4096),
            pos: 0,
        }
    }

    /// Appends raw bytes received from the peer.
    pub fn feed(&mut self, data: &[u8]) {
        if self.pos == self.buffer.len() {
            self.buffer.clear();
            self.pos = 0;
        } else if self.pos >= COMPACT_THRESHOLD {
            self.buffer.copy_within(self.pos.., 0);
            self.buffer.truncate(self.buffer.len() - self.pos);
            self.pos = 0;
        }
        self.buffer.extend_from_slice(data);
    }

    /// Number of buffered, not-yet-decoded bytes.
    pub fn buffered(&self) -> usize {
        self.buffer.len() - self.pos
    }

    /// Attempts to decode the next complete message from the buffer.
    ///
    /// Returns `Ok(None)` when more bytes are needed.  A framing-level error
    /// (bad version, bad length, unknown type) is returned as `Err` and the
    /// offending frame is discarded so the stream can attempt to resync.
    pub fn next_message(&mut self) -> Result<Option<OfMessage>, DecodeError> {
        let pending = &self.buffer[self.pos..];
        if pending.len() < OFP_HEADER_LEN {
            return Ok(None);
        }
        let header = OfHeader::peek(pending)?;
        let declared = header.length as usize;
        if declared < OFP_HEADER_LEN {
            // Drop the stream contents: a length smaller than the header is
            // unrecoverable desynchronisation.
            self.reset();
            return Err(DecodeError::BadLength {
                what: "ofp_header.length",
                len: declared,
            });
        }
        if pending.len() < declared {
            return Ok(None);
        }
        let frame = &pending[..declared];
        let result = OfMessage::decode(frame).map(Some);
        // The frame is consumed whether or not it decoded — a bad frame is
        // skipped so the stream can resync on the next one.
        self.pos += declared;
        result
    }

    /// Decodes every complete message currently buffered.
    pub fn drain_messages(&mut self) -> Result<Vec<OfMessage>, DecodeError> {
        let mut out = Vec::new();
        self.drain_messages_into(&mut out)?;
        Ok(out)
    }

    /// Decodes every complete message currently buffered, appending to a
    /// caller-owned vector (reused across reads on the socket hot path).
    pub fn drain_messages_into(&mut self, out: &mut Vec<OfMessage>) -> Result<(), DecodeError> {
        while let Some(msg) = self.next_message()? {
            out.push(msg);
        }
        Ok(())
    }

    /// Serializes a message for transmission.
    pub fn encode(&self, msg: &OfMessage) -> Result<Vec<u8>, EncodeError> {
        msg.encode_to_vec()
    }

    /// Appends the encoded message to a caller-owned buffer — the
    /// allocation-free form of [`OfCodec::encode`].
    pub fn encode_into(&self, msg: &OfMessage, out: &mut Vec<u8>) -> Result<(), EncodeError> {
        msg.encode_into(out)
    }

    /// Serializes a batch of messages into one contiguous buffer (useful to
    /// issue a flow-mod burst followed by a barrier in a single write).
    pub fn encode_batch(&self, msgs: &[OfMessage]) -> Result<Vec<u8>, EncodeError> {
        let mut out = Vec::with_capacity(msgs.iter().map(OfMessage::wire_len).sum());
        self.encode_batch_into(msgs, &mut out)?;
        Ok(out)
    }

    /// Appends an encoded batch to a caller-owned buffer, encoding each
    /// message in place (no per-message allocation).
    pub fn encode_batch_into(
        &self,
        msgs: &[OfMessage],
        out: &mut Vec<u8>,
    ) -> Result<(), EncodeError> {
        out.reserve(msgs.iter().map(OfMessage::wire_len).sum());
        for m in msgs {
            m.encode_into(out)?;
        }
        Ok(())
    }

    /// Discards all buffered bytes (e.g. after a connection reset).
    pub fn reset(&mut self) {
        self.buffer.clear();
        self.pos = 0;
    }
}

/// Splits a contiguous byte slice containing whole messages into frames
/// without copying the payloads. Convenience for tests and trace analysis.
pub fn split_frames(mut data: &[u8]) -> Result<Vec<&[u8]>, DecodeError> {
    let mut frames = Vec::new();
    while !data.is_empty() {
        let header = OfHeader::peek(data)?;
        let len = header.length as usize;
        if len < OFP_HEADER_LEN || len > data.len() {
            return Err(DecodeError::BadLength {
                what: "ofp_header.length",
                len,
            });
        }
        let (frame, rest) = data.split_at(len);
        frames.push(frame);
        data = rest;
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actions::Action;
    use crate::flow_match::OfMatch;
    use crate::messages::FlowMod;
    use std::net::Ipv4Addr;

    fn sample_messages() -> Vec<OfMessage> {
        vec![
            OfMessage::Hello { xid: 1 },
            OfMessage::FlowMod {
                xid: 2,
                body: FlowMod::add(
                    OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)),
                    10,
                    vec![Action::output(1)],
                ),
            },
            OfMessage::BarrierRequest { xid: 3 },
            OfMessage::EchoRequest {
                xid: 4,
                data: vec![0xab; 32],
            },
        ]
    }

    #[test]
    fn feed_all_at_once() {
        let msgs = sample_messages();
        let mut codec = OfCodec::new();
        let bytes = codec.encode_batch(&msgs).unwrap();
        codec.feed(&bytes);
        let decoded = codec.drain_messages().unwrap();
        assert_eq!(decoded, msgs);
        assert_eq!(codec.buffered(), 0);
    }

    #[test]
    fn feed_byte_by_byte() {
        let msgs = sample_messages();
        let mut codec = OfCodec::new();
        let bytes = codec.encode_batch(&msgs).unwrap();
        let mut decoded = Vec::new();
        for b in bytes {
            codec.feed(&[b]);
            while let Some(m) = codec.next_message().unwrap() {
                decoded.push(m);
            }
        }
        assert_eq!(decoded, msgs);
    }

    #[test]
    fn partial_message_returns_none() {
        let mut codec = OfCodec::new();
        let bytes = OfMessage::EchoRequest {
            xid: 1,
            data: vec![1, 2, 3, 4],
        }
        .encode_to_vec()
        .unwrap();
        codec.feed(&bytes[..6]);
        assert!(codec.next_message().unwrap().is_none());
        codec.feed(&bytes[6..]);
        assert!(codec.next_message().unwrap().is_some());
    }

    #[test]
    fn bad_length_clears_buffer() {
        let mut codec = OfCodec::new();
        // length field of 4 (< header size) is unrecoverable
        codec.feed(&[0x01, 0x00, 0x00, 0x04, 0, 0, 0, 1]);
        assert!(codec.next_message().is_err());
        assert_eq!(codec.buffered(), 0);
    }

    #[test]
    fn unknown_type_skips_frame_but_keeps_stream() {
        let mut codec = OfCodec::new();
        let mut bad = OfMessage::Hello { xid: 1 }.encode_to_vec().unwrap();
        bad[1] = 77; // unknown type
        let good = OfMessage::BarrierReply { xid: 2 }.encode_to_vec().unwrap();
        codec.feed(&bad);
        codec.feed(&good);
        assert!(codec.next_message().is_err());
        // The bad frame was consumed; the good one is still decodable.
        let msg = codec.next_message().unwrap().unwrap();
        assert_eq!(msg, OfMessage::BarrierReply { xid: 2 });
    }

    #[test]
    fn reset_discards_buffered_bytes() {
        let mut codec = OfCodec::new();
        codec.feed(&[1, 2, 3]);
        assert_eq!(codec.buffered(), 3);
        codec.reset();
        assert_eq!(codec.buffered(), 0);
    }

    #[test]
    fn split_frames_works() {
        let msgs = sample_messages();
        let codec = OfCodec::new();
        let bytes = codec.encode_batch(&msgs).unwrap();
        let frames = split_frames(&bytes).unwrap();
        assert_eq!(frames.len(), msgs.len());
        for (frame, msg) in frames.iter().zip(&msgs) {
            assert_eq!(&OfMessage::decode(frame).unwrap(), msg);
        }
    }

    #[test]
    fn split_frames_rejects_truncation() {
        let bytes = OfMessage::Hello { xid: 1 }.encode_to_vec().unwrap();
        assert!(split_frames(&bytes[..5]).is_err());
    }

    #[test]
    fn decoder_scratch_is_reused_across_frames() {
        let msgs = sample_messages();
        let mut codec = OfCodec::new();
        let wire = codec.encode_batch(&msgs).unwrap();
        // Warm up the scratch buffer once...
        codec.feed(&wire);
        assert_eq!(codec.drain_messages().unwrap().len(), msgs.len());
        let cap = codec.buffer.capacity();
        let ptr = codec.buffer.as_ptr();
        // ... then many more rounds must not grow or reallocate it.
        for _ in 0..100 {
            codec.feed(&wire);
            assert_eq!(codec.drain_messages().unwrap().len(), msgs.len());
        }
        assert_eq!(codec.buffer.capacity(), cap);
        assert_eq!(codec.buffer.as_ptr(), ptr);
        assert_eq!(codec.buffered(), 0);
    }

    #[test]
    fn consumed_prefix_is_compacted_past_the_threshold() {
        let msg = OfMessage::EchoRequest {
            xid: 1,
            data: vec![0xaa; 1024],
        };
        let wire = msg.encode_to_vec().unwrap();
        let mut codec = OfCodec::new();
        // Feed a partial frame so the buffer is never fully consumed, then
        // keep the stream going long past the compaction threshold.
        for _ in 0..2 * COMPACT_THRESHOLD / wire.len() {
            codec.feed(&wire);
            codec.feed(&wire[..3]); // next frame arrives split
            while codec.next_message().unwrap().is_some() {}
            codec.feed(&wire[3..]);
            while codec.next_message().unwrap().is_some() {}
        }
        assert_eq!(codec.buffered(), 0);
        assert!(
            codec.pos < COMPACT_THRESHOLD + wire.len(),
            "consumed prefix must be compacted, pos = {}",
            codec.pos
        );
    }

    #[test]
    fn encode_into_appends_and_batches() {
        let msgs = sample_messages();
        let codec = OfCodec::new();
        let mut buf = Vec::new();
        for m in &msgs {
            codec.encode_into(m, &mut buf).unwrap();
        }
        assert_eq!(buf, codec.encode_batch(&msgs).unwrap());
        // Appending a batch after existing content preserves the prefix.
        let mut appended = b"prefix".to_vec();
        codec.encode_batch_into(&msgs, &mut appended).unwrap();
        assert_eq!(&appended[..6], b"prefix");
        assert_eq!(&appended[6..], &buf[..]);
    }
}
