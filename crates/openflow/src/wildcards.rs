//! The OpenFlow 1.0 `ofp_flow_wildcards` bitfield.
//!
//! OpenFlow 1.0 wildcards are mostly single bits ("this field is ignored"),
//! except the IP source/destination addresses which carry a 6-bit count of
//! wildcarded low-order bits, i.e. a CIDR prefix length encoded backwards:
//! `0` means match all 32 bits, `32` (or more) means the field is fully
//! wildcarded.

/// Wildcard flags of an OpenFlow 1.0 match structure.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Wildcards(pub u32);

impl Wildcards {
    /// Switch input port.
    pub const IN_PORT: u32 = 1 << 0;
    /// VLAN id.
    pub const DL_VLAN: u32 = 1 << 1;
    /// Ethernet source address.
    pub const DL_SRC: u32 = 1 << 2;
    /// Ethernet destination address.
    pub const DL_DST: u32 = 1 << 3;
    /// Ethernet frame type.
    pub const DL_TYPE: u32 = 1 << 4;
    /// IP protocol.
    pub const NW_PROTO: u32 = 1 << 5;
    /// TCP/UDP source port.
    pub const TP_SRC: u32 = 1 << 6;
    /// TCP/UDP destination port.
    pub const TP_DST: u32 = 1 << 7;
    /// VLAN priority.
    pub const DL_VLAN_PCP: u32 = 1 << 20;
    /// IP ToS (DSCP field).
    pub const NW_TOS: u32 = 1 << 21;

    /// Bit offset of the IP source wildcard-bit-count field.
    pub const NW_SRC_SHIFT: u32 = 8;
    /// Bit offset of the IP destination wildcard-bit-count field.
    pub const NW_DST_SHIFT: u32 = 14;
    /// Mask (pre-shift) of the 6-bit wildcard counts.
    pub const NW_BITS_MASK: u32 = 0x3f;
    /// IP source fully wildcarded.
    pub const NW_SRC_ALL: u32 = 32 << Self::NW_SRC_SHIFT;
    /// IP destination fully wildcarded.
    pub const NW_DST_ALL: u32 = 32 << Self::NW_DST_SHIFT;

    /// Every field wildcarded (`OFPFW_ALL`).
    pub const ALL: u32 = 0x003f_ffff;

    /// A wildcard set matching every packet.
    pub fn all() -> Self {
        Wildcards(Self::ALL)
    }

    /// A wildcard set matching only fully specified packets (exact match).
    pub fn none() -> Self {
        Wildcards(0)
    }

    /// Constructs from the raw wire value, keeping only defined bits.
    pub fn from_raw(raw: u32) -> Self {
        Wildcards(raw & Self::ALL)
    }

    /// Returns the raw wire value.
    pub fn raw(&self) -> u32 {
        self.0
    }

    /// Tests whether a single-bit wildcard flag is set.
    pub fn is_wildcarded(&self, flag: u32) -> bool {
        self.0 & flag != 0
    }

    /// Sets or clears a single-bit wildcard flag, returning the new value.
    pub fn with(self, flag: u32, wildcarded: bool) -> Self {
        if wildcarded {
            Wildcards(self.0 | flag)
        } else {
            Wildcards(self.0 & !flag)
        }
    }

    /// Number of wildcarded low-order bits of the IP source address,
    /// saturated to 32.
    pub fn nw_src_bits(&self) -> u32 {
        ((self.0 >> Self::NW_SRC_SHIFT) & Self::NW_BITS_MASK).min(32)
    }

    /// Number of wildcarded low-order bits of the IP destination address,
    /// saturated to 32.
    pub fn nw_dst_bits(&self) -> u32 {
        ((self.0 >> Self::NW_DST_SHIFT) & Self::NW_BITS_MASK).min(32)
    }

    /// Returns a copy with the IP source wildcard bit count set to `bits`
    /// (clamped to 0..=32; 0 = exact match, 32 = fully wildcarded).
    pub fn with_nw_src_bits(self, bits: u32) -> Self {
        let bits = bits.min(32);
        let cleared = self.0 & !(Self::NW_BITS_MASK << Self::NW_SRC_SHIFT);
        Wildcards(cleared | (bits << Self::NW_SRC_SHIFT))
    }

    /// Returns a copy with the IP destination wildcard bit count set to
    /// `bits` (clamped to 0..=32).
    pub fn with_nw_dst_bits(self, bits: u32) -> Self {
        let bits = bits.min(32);
        let cleared = self.0 & !(Self::NW_BITS_MASK << Self::NW_DST_SHIFT);
        Wildcards(cleared | (bits << Self::NW_DST_SHIFT))
    }

    /// The 32-bit mask of IP source bits that participate in matching.
    pub fn nw_src_mask(&self) -> u32 {
        prefix_mask(self.nw_src_bits())
    }

    /// The 32-bit mask of IP destination bits that participate in matching.
    pub fn nw_dst_mask(&self) -> u32 {
        prefix_mask(self.nw_dst_bits())
    }

    /// True if every field is wildcarded.
    pub fn matches_everything(&self) -> bool {
        const SINGLE_BITS: u32 = Wildcards::IN_PORT
            | Wildcards::DL_VLAN
            | Wildcards::DL_SRC
            | Wildcards::DL_DST
            | Wildcards::DL_TYPE
            | Wildcards::NW_PROTO
            | Wildcards::TP_SRC
            | Wildcards::TP_DST
            | Wildcards::DL_VLAN_PCP
            | Wildcards::NW_TOS;
        (self.0 & SINGLE_BITS) == SINGLE_BITS
            && self.nw_src_bits() == 32
            && self.nw_dst_bits() == 32
    }
}

impl Default for Wildcards {
    fn default() -> Self {
        Wildcards::all()
    }
}

impl std::fmt::Debug for Wildcards {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Wildcards(0x{:06x})", self.0)
    }
}

/// Computes the network mask that keeps the high `32 - wildcarded_bits` bits.
fn prefix_mask(wildcarded_bits: u32) -> u32 {
    if wildcarded_bits >= 32 {
        0
    } else {
        u32::MAX << wildcarded_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_matches_everything() {
        assert!(Wildcards::all().matches_everything());
        assert!(!Wildcards::none().matches_everything());
    }

    #[test]
    fn single_bit_flags() {
        let w = Wildcards::none().with(Wildcards::IN_PORT, true);
        assert!(w.is_wildcarded(Wildcards::IN_PORT));
        assert!(!w.is_wildcarded(Wildcards::DL_SRC));
        let w = w.with(Wildcards::IN_PORT, false);
        assert!(!w.is_wildcarded(Wildcards::IN_PORT));
    }

    #[test]
    fn nw_bits_round_trip() {
        let w = Wildcards::none().with_nw_src_bits(8).with_nw_dst_bits(24);
        assert_eq!(w.nw_src_bits(), 8);
        assert_eq!(w.nw_dst_bits(), 24);
        assert_eq!(w.nw_src_mask(), 0xffff_ff00);
        assert_eq!(w.nw_dst_mask(), 0xff00_0000);
    }

    #[test]
    fn nw_bits_saturate_at_32() {
        // The spec allows values > 32; they all mean "wildcard everything".
        let raw = 45 << Wildcards::NW_SRC_SHIFT;
        let w = Wildcards::from_raw(raw);
        assert_eq!(w.nw_src_bits(), 32);
        assert_eq!(w.nw_src_mask(), 0);
    }

    #[test]
    fn with_nw_bits_clamps() {
        let w = Wildcards::none().with_nw_src_bits(100);
        assert_eq!(w.nw_src_bits(), 32);
    }

    #[test]
    fn from_raw_masks_undefined_bits() {
        let w = Wildcards::from_raw(u32::MAX);
        assert_eq!(w.raw(), Wildcards::ALL);
    }

    #[test]
    fn prefix_mask_values() {
        assert_eq!(prefix_mask(0), u32::MAX);
        assert_eq!(prefix_mask(1), 0xffff_fffe);
        assert_eq!(prefix_mask(16), 0xffff_0000);
        assert_eq!(prefix_mask(31), 0x8000_0000);
        assert_eq!(prefix_mask(32), 0);
    }

    #[test]
    fn exact_match_masks_are_full() {
        let w = Wildcards::none();
        assert_eq!(w.nw_src_mask(), u32::MAX);
        assert_eq!(w.nw_dst_mask(), u32::MAX);
    }
}
