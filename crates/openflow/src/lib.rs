//! OpenFlow 1.0 protocol support for the RUM reproduction.
//!
//! The RUM layer from *"Providing Reliable FIB Update Acknowledgments in
//! SDN"* (CoNEXT 2014) is a transparent proxy that intercepts and rewrites
//! OpenFlow traffic between a controller and its switches.  Faithfully
//! reproducing it therefore requires a real protocol implementation, not a
//! mock: messages must round-trip through the wire format, flow matches must
//! have the exact OpenFlow 1.0 wildcard semantics, and probe packets must be
//! synthesised against those semantics.
//!
//! This crate provides:
//!
//! * [`types`] — small value types shared across the stack (MAC addresses,
//!   datapath ids, port numbers, ...).
//! * [`wildcards`] — the OpenFlow 1.0 wildcard bitfield with its odd
//!   CIDR-style network-address wildcarding.
//! * [`flow_match`] — the 40-byte `ofp_match` structure, its matching
//!   semantics against concrete packet headers and the overlap / covering
//!   analysis used for probe synthesis.
//! * [`packet`] — a concrete packet-header model plus an Ethernet/IPv4/L4
//!   serializer so `PacketIn`/`PacketOut` payloads carry real bytes.
//! * [`actions`] — the OpenFlow 1.0 action list with wire codec and an
//!   interpreter that applies actions to packet headers.
//! * [`messages`] — every OpenFlow 1.0 message, with encode/decode.
//! * [`codec`] — stream framing (length-delimited) for the TCP deployment.
//!
//! The implementation follows the OpenFlow Switch Specification v1.0.0
//! (wire format offsets, constants and semantics).  Everything is
//! deterministic and allocation-light so it can run inside the
//! discrete-event simulator as well as over real sockets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actions;
pub mod codec;
pub mod constants;
pub mod error;
pub mod flow_match;
pub mod messages;
pub mod packet;
pub mod types;
pub mod wildcards;

pub use actions::Action;
pub use codec::OfCodec;
pub use error::{DecodeError, EncodeError};
pub use flow_match::OfMatch;
pub use messages::{OfHeader, OfMessage};
pub use packet::PacketHeader;
pub use types::{BufferId, DatapathId, MacAddr, PortNo, Xid};
pub use wildcards::Wildcards;

/// The OpenFlow protocol version implemented by this crate (`0x01`).
pub const OFP_VERSION: u8 = 0x01;
