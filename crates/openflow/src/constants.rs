//! Numeric constants from the OpenFlow 1.0 specification.
//!
//! Only the constants the rest of the workspace needs are defined, but they
//! use the exact values and names (modulo Rust casing) of `openflow.h` from
//! the v1.0.0 specification so the wire format is interoperable.

/// OpenFlow 1.0 message type codes (`ofp_type`).
pub mod msg_type {
    /// OFPT_HELLO
    pub const HELLO: u8 = 0;
    /// OFPT_ERROR
    pub const ERROR: u8 = 1;
    /// OFPT_ECHO_REQUEST
    pub const ECHO_REQUEST: u8 = 2;
    /// OFPT_ECHO_REPLY
    pub const ECHO_REPLY: u8 = 3;
    /// OFPT_VENDOR
    pub const VENDOR: u8 = 4;
    /// OFPT_FEATURES_REQUEST
    pub const FEATURES_REQUEST: u8 = 5;
    /// OFPT_FEATURES_REPLY
    pub const FEATURES_REPLY: u8 = 6;
    /// OFPT_GET_CONFIG_REQUEST
    pub const GET_CONFIG_REQUEST: u8 = 7;
    /// OFPT_GET_CONFIG_REPLY
    pub const GET_CONFIG_REPLY: u8 = 8;
    /// OFPT_SET_CONFIG
    pub const SET_CONFIG: u8 = 9;
    /// OFPT_PACKET_IN
    pub const PACKET_IN: u8 = 10;
    /// OFPT_FLOW_REMOVED
    pub const FLOW_REMOVED: u8 = 11;
    /// OFPT_PORT_STATUS
    pub const PORT_STATUS: u8 = 12;
    /// OFPT_PACKET_OUT
    pub const PACKET_OUT: u8 = 13;
    /// OFPT_FLOW_MOD
    pub const FLOW_MOD: u8 = 14;
    /// OFPT_PORT_MOD
    pub const PORT_MOD: u8 = 15;
    /// OFPT_STATS_REQUEST
    pub const STATS_REQUEST: u8 = 16;
    /// OFPT_STATS_REPLY
    pub const STATS_REPLY: u8 = 17;
    /// OFPT_BARRIER_REQUEST
    pub const BARRIER_REQUEST: u8 = 18;
    /// OFPT_BARRIER_REPLY
    pub const BARRIER_REPLY: u8 = 19;
    /// OFPT_QUEUE_GET_CONFIG_REQUEST
    pub const QUEUE_GET_CONFIG_REQUEST: u8 = 20;
    /// OFPT_QUEUE_GET_CONFIG_REPLY
    pub const QUEUE_GET_CONFIG_REPLY: u8 = 21;
}

/// Reserved port numbers (`ofp_port`).
pub mod port {
    /// Maximum number of physical switch ports.
    pub const MAX: u16 = 0xff00;
    /// Send the packet out the input port (OFPP_IN_PORT).
    pub const IN_PORT: u16 = 0xfff8;
    /// Perform actions in the flow table (OFPP_TABLE); PacketOut only.
    pub const TABLE: u16 = 0xfff9;
    /// Process with normal L2/L3 switching (OFPP_NORMAL).
    pub const NORMAL: u16 = 0xfffa;
    /// All physical ports except input port and those disabled by STP.
    pub const FLOOD: u16 = 0xfffb;
    /// All physical ports except input port (OFPP_ALL).
    pub const ALL: u16 = 0xfffc;
    /// Send to controller (OFPP_CONTROLLER).
    pub const CONTROLLER: u16 = 0xfffd;
    /// Local openflow "port" (OFPP_LOCAL).
    pub const LOCAL: u16 = 0xfffe;
    /// Not associated with a physical port (OFPP_NONE).
    pub const NONE: u16 = 0xffff;
}

/// `ofp_flow_mod_command` values.
pub mod flow_mod_command {
    /// New flow (OFPFC_ADD).
    pub const ADD: u16 = 0;
    /// Modify all matching flows (OFPFC_MODIFY).
    pub const MODIFY: u16 = 1;
    /// Modify entry strictly matching wildcards (OFPFC_MODIFY_STRICT).
    pub const MODIFY_STRICT: u16 = 2;
    /// Delete all matching flows (OFPFC_DELETE).
    pub const DELETE: u16 = 3;
    /// Strictly match wildcards and priority (OFPFC_DELETE_STRICT).
    pub const DELETE_STRICT: u16 = 4;
}

/// `ofp_flow_mod_flags` values.
pub mod flow_mod_flags {
    /// Send flow removed message when flow expires or is deleted.
    pub const SEND_FLOW_REM: u16 = 1 << 0;
    /// Check for overlapping entries first.
    pub const CHECK_OVERLAP: u16 = 1 << 1;
    /// Remark this is for emergency.
    pub const EMERG: u16 = 1 << 2;
}

/// `ofp_packet_in_reason` values.
pub mod packet_in_reason {
    /// No matching flow (OFPR_NO_MATCH).
    pub const NO_MATCH: u8 = 0;
    /// Action explicitly output to controller (OFPR_ACTION).
    pub const ACTION: u8 = 1;
}

/// `ofp_flow_removed_reason` values.
pub mod flow_removed_reason {
    /// Flow idle time exceeded idle_timeout.
    pub const IDLE_TIMEOUT: u8 = 0;
    /// Time exceeded hard_timeout.
    pub const HARD_TIMEOUT: u8 = 1;
    /// Evicted by a DELETE flow mod.
    pub const DELETE: u8 = 2;
}

/// `ofp_port_reason` values for PortStatus.
pub mod port_reason {
    /// The port was added.
    pub const ADD: u8 = 0;
    /// The port was removed.
    pub const DELETE: u8 = 1;
    /// Some attribute of the port has changed.
    pub const MODIFY: u8 = 2;
}

/// `ofp_error_type` values.
pub mod error_type {
    /// Hello protocol failed.
    pub const HELLO_FAILED: u16 = 0;
    /// Request was not understood.
    pub const BAD_REQUEST: u16 = 1;
    /// Error in action description.
    pub const BAD_ACTION: u16 = 2;
    /// Problem modifying flow entry.
    pub const FLOW_MOD_FAILED: u16 = 3;
    /// Port mod request failed.
    pub const PORT_MOD_FAILED: u16 = 4;
    /// Queue operation failed.
    pub const QUEUE_OP_FAILED: u16 = 5;
    /// Non-standard error type reused by RUM for positive acknowledgments.
    ///
    /// The paper (Section 4) notes: *"We reuse an error message with a newly
    /// defined (unused) error code for positive acknowledgments."*  0xr(um) =
    /// 0xafff keeps clear of every code assigned by the specification.
    pub const RUM_ACK: u16 = 0xafff;
}

/// `ofp_flow_mod_failed_code` values.
pub mod flow_mod_failed_code {
    /// Flow not added because of full tables.
    pub const ALL_TABLES_FULL: u16 = 0;
    /// Attempted to add overlapping flow with CHECK_OVERLAP set.
    pub const OVERLAP: u16 = 1;
    /// Permissions error.
    pub const EPERM: u16 = 2;
    /// Flow not added because of non-zero idle/hard timeout on emergency flow.
    pub const BAD_EMERG_TIMEOUT: u16 = 3;
    /// Unknown command.
    pub const BAD_COMMAND: u16 = 4;
    /// Unsupported action list.
    pub const UNSUPPORTED: u16 = 5;
}

/// `ofp_stats_types` values.
pub mod stats_type {
    /// Description of the OpenFlow switch.
    pub const DESC: u16 = 0;
    /// Individual flow statistics.
    pub const FLOW: u16 = 1;
    /// Aggregate flow statistics.
    pub const AGGREGATE: u16 = 2;
    /// Flow table statistics.
    pub const TABLE: u16 = 3;
    /// Physical port statistics.
    pub const PORT: u16 = 4;
    /// Queue statistics.
    pub const QUEUE: u16 = 5;
    /// Vendor extension.
    pub const VENDOR: u16 = 0xffff;
}

/// `ofp_action_type` values.
pub mod action_type {
    /// Output to switch port.
    pub const OUTPUT: u16 = 0;
    /// Set the 802.1q VLAN id.
    pub const SET_VLAN_VID: u16 = 1;
    /// Set the 802.1q priority.
    pub const SET_VLAN_PCP: u16 = 2;
    /// Strip the 802.1q header.
    pub const STRIP_VLAN: u16 = 3;
    /// Ethernet source address.
    pub const SET_DL_SRC: u16 = 4;
    /// Ethernet destination address.
    pub const SET_DL_DST: u16 = 5;
    /// IP source address.
    pub const SET_NW_SRC: u16 = 6;
    /// IP destination address.
    pub const SET_NW_DST: u16 = 7;
    /// IP ToS (DSCP field, 6 bits).
    pub const SET_NW_TOS: u16 = 8;
    /// TCP/UDP source port.
    pub const SET_TP_SRC: u16 = 9;
    /// TCP/UDP destination port.
    pub const SET_TP_DST: u16 = 10;
    /// Output to queue.
    pub const ENQUEUE: u16 = 11;
    /// Vendor-specific action.
    pub const VENDOR: u16 = 0xffff;
}

/// Special buffer id meaning "packet is not buffered at the switch".
pub const NO_BUFFER: u32 = 0xffff_ffff;

/// Ethertype of IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// Ethertype of ARP.
pub const ETHERTYPE_ARP: u16 = 0x0806;
/// Ethertype of a 802.1Q VLAN tag.
pub const ETHERTYPE_VLAN: u16 = 0x8100;

/// IP protocol number for ICMP.
pub const IPPROTO_ICMP: u8 = 1;
/// IP protocol number for TCP.
pub const IPPROTO_TCP: u8 = 6;
/// IP protocol number for UDP.
pub const IPPROTO_UDP: u8 = 17;

/// Value meaning "no VLAN tag present" in `dl_vlan` (OFP_VLAN_NONE).
pub const OFP_VLAN_NONE: u16 = 0xffff;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_type_values_match_spec() {
        assert_eq!(msg_type::HELLO, 0);
        assert_eq!(msg_type::FLOW_MOD, 14);
        assert_eq!(msg_type::BARRIER_REQUEST, 18);
        assert_eq!(msg_type::BARRIER_REPLY, 19);
        assert_eq!(msg_type::QUEUE_GET_CONFIG_REPLY, 21);
    }

    #[test]
    fn port_constants_match_spec() {
        assert_eq!(port::CONTROLLER, 0xfffd);
        assert_eq!(port::FLOOD, 0xfffb);
        assert_eq!(port::NONE, 0xffff);
    }

    #[test]
    fn rum_ack_code_is_outside_spec_range() {
        const { assert!(error_type::RUM_ACK > error_type::QUEUE_OP_FAILED) };
    }

    #[test]
    fn action_types_match_spec() {
        assert_eq!(action_type::OUTPUT, 0);
        assert_eq!(action_type::SET_NW_TOS, 8);
        assert_eq!(action_type::ENQUEUE, 11);
        assert_eq!(action_type::VENDOR, 0xffff);
    }
}
