//! Small value types shared across the OpenFlow stack.

use std::fmt;
use std::net::Ipv4Addr;

/// A 48-bit Ethernet MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Builds a MAC address from its six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// A deterministic, locally administered unicast address derived from an
    /// integer id.  Used by the simulator to assign host/switch addresses.
    pub fn from_id(id: u64) -> Self {
        let b = id.to_be_bytes();
        // 0x02 sets the locally-administered bit and keeps the unicast bit
        // clear, so generated addresses can never collide with real OUIs.
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }

    /// Returns the raw octets.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// True if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if the group (multicast) bit is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MacAddr({self})")
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

/// A switch datapath identifier (64 bits).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct DatapathId(pub u64);

impl DatapathId {
    /// Builds a datapath id from a raw 64-bit value.
    pub const fn new(raw: u64) -> Self {
        DatapathId(raw)
    }

    /// Returns the raw 64-bit value.
    pub const fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Debug for DatapathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DatapathId(0x{:016x})", self.0)
    }
}

impl fmt::Display for DatapathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:016x}", self.0)
    }
}

impl From<u64> for DatapathId {
    fn from(raw: u64) -> Self {
        DatapathId(raw)
    }
}

/// An OpenFlow transaction identifier.
pub type Xid = u32;

/// An OpenFlow switch port number (16 bits in OF 1.0).
pub type PortNo = u16;

/// A switch packet-buffer identifier.
pub type BufferId = u32;

/// Converts an [`Ipv4Addr`] to its u32 big-endian representation.
pub fn ipv4_to_u32(addr: Ipv4Addr) -> u32 {
    u32::from_be_bytes(addr.octets())
}

/// Converts a u32 (big-endian semantics) to an [`Ipv4Addr`].
pub fn u32_to_ipv4(raw: u32) -> Ipv4Addr {
    Ipv4Addr::from(raw.to_be_bytes())
}

/// A monotonically increasing generator for OpenFlow transaction ids.
///
/// The RUM proxy must mint xids for the messages it originates (probe
/// `PacketOut`s, barrier requests it injects) without colliding with xids
/// used by the controller, so the generator starts from a configurable
/// offset high in the 32-bit space.
#[derive(Debug, Clone)]
pub struct XidGenerator {
    next: u32,
}

impl XidGenerator {
    /// Creates a generator starting at `start`.
    pub fn new(start: u32) -> Self {
        XidGenerator { next: start }
    }

    /// Returns the next transaction id, wrapping on overflow.
    pub fn next_xid(&mut self) -> Xid {
        let xid = self.next;
        self.next = self.next.wrapping_add(1);
        xid
    }
}

impl Default for XidGenerator {
    fn default() -> Self {
        // High region reserved for proxy-originated messages.
        XidGenerator::new(0x8000_0000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_display_and_from_id() {
        let m = MacAddr::from_id(0x0102_0304_0506);
        assert_eq!(m.to_string(), "02:02:03:04:05:06");
        assert!(!m.is_multicast());
        assert!(!m.is_broadcast());
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
    }

    #[test]
    fn mac_from_id_is_deterministic_and_distinct() {
        assert_eq!(MacAddr::from_id(7), MacAddr::from_id(7));
        assert_ne!(MacAddr::from_id(7), MacAddr::from_id(8));
    }

    #[test]
    fn datapath_id_display() {
        let d = DatapathId::new(0xab);
        assert_eq!(d.to_string(), "0x00000000000000ab");
        assert_eq!(d.raw(), 0xab);
    }

    #[test]
    fn ipv4_u32_round_trip() {
        let a = Ipv4Addr::new(10, 0, 0, 1);
        assert_eq!(u32_to_ipv4(ipv4_to_u32(a)), a);
        assert_eq!(ipv4_to_u32(Ipv4Addr::new(0, 0, 0, 1)), 1);
        assert_eq!(ipv4_to_u32(Ipv4Addr::new(192, 168, 1, 1)), 0xc0a8_0101);
    }

    #[test]
    fn xid_generator_increments_and_wraps() {
        let mut gen = XidGenerator::new(u32::MAX - 1);
        assert_eq!(gen.next_xid(), u32::MAX - 1);
        assert_eq!(gen.next_xid(), u32::MAX);
        assert_eq!(gen.next_xid(), 0);
    }

    #[test]
    fn default_xid_generator_starts_in_proxy_range() {
        let mut gen = XidGenerator::default();
        assert!(gen.next_xid() >= 0x8000_0000);
    }
}
