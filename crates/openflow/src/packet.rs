//! Concrete packet headers and an Ethernet/IPv4/L4 (de)serializer.
//!
//! Data-plane packets in the simulator are represented by a fully concrete
//! [`PacketHeader`].  When a packet crosses the control plane (inside a
//! `PacketIn` or `PacketOut` message) it is serialized to real Ethernet
//! bytes, so the RUM layer parses exactly what a production proxy would see
//! on the wire.

use crate::constants::{
    ETHERTYPE_ARP, ETHERTYPE_IPV4, ETHERTYPE_VLAN, IPPROTO_ICMP, IPPROTO_TCP, IPPROTO_UDP,
    OFP_VLAN_NONE,
};
use crate::error::DecodeError;
use crate::types::{ipv4_to_u32, u32_to_ipv4, MacAddr};
use std::net::Ipv4Addr;

/// A concrete set of packet header values, as seen by the data plane.
///
/// Fields mirror the ones OpenFlow 1.0 can match on.  A packet either has a
/// VLAN tag (`vlan_vid != OFP_VLAN_NONE`) or not; transport ports are only
/// meaningful for TCP/UDP and the ICMP type/code are mapped onto `tp_src` /
/// `tp_dst` as the specification prescribes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketHeader {
    /// Ethernet source address.
    pub dl_src: MacAddr,
    /// Ethernet destination address.
    pub dl_dst: MacAddr,
    /// VLAN id, or [`OFP_VLAN_NONE`] if the packet is untagged.
    pub dl_vlan: u16,
    /// VLAN priority (only meaningful when tagged).
    pub dl_vlan_pcp: u8,
    /// Ethertype of the payload (after any VLAN tag).
    pub dl_type: u16,
    /// IP ToS byte (DSCP in the upper 6 bits), 0 for non-IP packets.
    pub nw_tos: u8,
    /// IP protocol, 0 for non-IP packets.
    pub nw_proto: u8,
    /// IP source address (0.0.0.0 for non-IP packets).
    pub nw_src: Ipv4Addr,
    /// IP destination address (0.0.0.0 for non-IP packets).
    pub nw_dst: Ipv4Addr,
    /// TCP/UDP source port or ICMP type.
    pub tp_src: u16,
    /// TCP/UDP destination port or ICMP code.
    pub tp_dst: u16,
}

impl Default for PacketHeader {
    fn default() -> Self {
        PacketHeader {
            dl_src: MacAddr::ZERO,
            dl_dst: MacAddr::ZERO,
            dl_vlan: OFP_VLAN_NONE,
            dl_vlan_pcp: 0,
            dl_type: ETHERTYPE_IPV4,
            nw_tos: 0,
            nw_proto: IPPROTO_UDP,
            nw_src: Ipv4Addr::UNSPECIFIED,
            nw_dst: Ipv4Addr::UNSPECIFIED,
            tp_src: 0,
            tp_dst: 0,
        }
    }
}

impl PacketHeader {
    /// Convenience constructor for an untagged IPv4/UDP packet, the workhorse
    /// of the paper's experiments (300 IP flows between two hosts).
    pub fn ipv4_udp(
        dl_src: MacAddr,
        dl_dst: MacAddr,
        nw_src: Ipv4Addr,
        nw_dst: Ipv4Addr,
        tp_src: u16,
        tp_dst: u16,
    ) -> Self {
        PacketHeader {
            dl_src,
            dl_dst,
            dl_type: ETHERTYPE_IPV4,
            nw_proto: IPPROTO_UDP,
            nw_src,
            nw_dst,
            tp_src,
            tp_dst,
            ..Default::default()
        }
    }

    /// Convenience constructor for an untagged IPv4/TCP packet.
    pub fn ipv4_tcp(
        dl_src: MacAddr,
        dl_dst: MacAddr,
        nw_src: Ipv4Addr,
        nw_dst: Ipv4Addr,
        tp_src: u16,
        tp_dst: u16,
    ) -> Self {
        PacketHeader {
            nw_proto: IPPROTO_TCP,
            ..Self::ipv4_udp(dl_src, dl_dst, nw_src, nw_dst, tp_src, tp_dst)
        }
    }

    /// True when the packet carries a VLAN tag.
    pub fn has_vlan(&self) -> bool {
        self.dl_vlan != OFP_VLAN_NONE
    }

    /// True when the packet is IPv4.
    pub fn is_ipv4(&self) -> bool {
        self.dl_type == ETHERTYPE_IPV4
    }

    /// True when the packet has L4 ports (TCP or UDP over IPv4).
    pub fn has_l4_ports(&self) -> bool {
        self.is_ipv4() && (self.nw_proto == IPPROTO_TCP || self.nw_proto == IPPROTO_UDP)
    }

    /// Serializes the header into a minimal but valid Ethernet frame.
    ///
    /// IPv4 packets get a correct IPv4 header (including checksum) followed
    /// by an 8-byte UDP/TCP/ICMP stub carrying the transport fields; other
    /// ethertypes get an empty payload.  The result is long enough (>= 60
    /// bytes, padded) to be a legal minimum-size Ethernet frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&self.dl_dst.octets());
        out.extend_from_slice(&self.dl_src.octets());
        if self.has_vlan() {
            out.extend_from_slice(&ETHERTYPE_VLAN.to_be_bytes());
            let tci = ((self.dl_vlan_pcp as u16) << 13) | (self.dl_vlan & 0x0fff);
            out.extend_from_slice(&tci.to_be_bytes());
        }
        out.extend_from_slice(&self.dl_type.to_be_bytes());

        if self.is_ipv4() {
            let transport = self.transport_stub();
            let total_len = 20 + transport.len();
            let mut ip = Vec::with_capacity(total_len);
            ip.push(0x45); // version 4, IHL 5
            ip.push(self.nw_tos);
            ip.extend_from_slice(&(total_len as u16).to_be_bytes());
            ip.extend_from_slice(&[0, 0]); // identification
            ip.extend_from_slice(&[0x40, 0]); // flags: don't fragment
            ip.push(64); // TTL
            ip.push(self.nw_proto);
            ip.extend_from_slice(&[0, 0]); // checksum placeholder
            ip.extend_from_slice(&self.nw_src.octets());
            ip.extend_from_slice(&self.nw_dst.octets());
            let csum = ipv4_checksum(&ip[..20]);
            ip[10..12].copy_from_slice(&csum.to_be_bytes());
            ip.extend_from_slice(&transport);
            out.extend_from_slice(&ip);
        }

        // Pad to the Ethernet minimum frame size (60 bytes before FCS).
        while out.len() < 60 {
            out.push(0);
        }
        out
    }

    fn transport_stub(&self) -> Vec<u8> {
        match self.nw_proto {
            IPPROTO_TCP => {
                // 20-byte TCP header with only ports, seq/ack zero, offset 5.
                let mut t = Vec::with_capacity(20);
                t.extend_from_slice(&self.tp_src.to_be_bytes());
                t.extend_from_slice(&self.tp_dst.to_be_bytes());
                t.extend_from_slice(&[0; 8]); // seq + ack
                t.push(0x50); // data offset
                t.push(0x10); // ACK flag
                t.extend_from_slice(&[0xff, 0xff]); // window
                t.extend_from_slice(&[0, 0, 0, 0]); // checksum + urgent
                t
            }
            IPPROTO_UDP => {
                let mut t = Vec::with_capacity(8);
                t.extend_from_slice(&self.tp_src.to_be_bytes());
                t.extend_from_slice(&self.tp_dst.to_be_bytes());
                t.extend_from_slice(&8u16.to_be_bytes()); // length
                t.extend_from_slice(&[0, 0]); // checksum (optional in IPv4)
                t
            }
            IPPROTO_ICMP => {
                let mut t = Vec::with_capacity(8);
                t.push(self.tp_src as u8); // type
                t.push(self.tp_dst as u8); // code
                t.extend_from_slice(&[0, 0]); // checksum
                t.extend_from_slice(&[0, 0, 0, 0]); // rest of header
                t
            }
            _ => Vec::new(),
        }
    }

    /// Parses an Ethernet frame produced by [`PacketHeader::to_bytes`] (or by
    /// any real network stack) back into a header.
    pub fn from_bytes(data: &[u8]) -> Result<Self, DecodeError> {
        if data.len() < 14 {
            return Err(DecodeError::Truncated {
                what: "ethernet frame",
                needed: 14,
                available: data.len(),
            });
        }
        let dl_dst = MacAddr([data[0], data[1], data[2], data[3], data[4], data[5]]);
        let dl_src = MacAddr([data[6], data[7], data[8], data[9], data[10], data[11]]);
        let mut ethertype = u16::from_be_bytes([data[12], data[13]]);
        let mut offset = 14;
        let mut dl_vlan = OFP_VLAN_NONE;
        let mut dl_vlan_pcp = 0;
        if ethertype == ETHERTYPE_VLAN {
            if data.len() < 18 {
                return Err(DecodeError::Truncated {
                    what: "802.1Q tag",
                    needed: 18,
                    available: data.len(),
                });
            }
            let tci = u16::from_be_bytes([data[14], data[15]]);
            dl_vlan = tci & 0x0fff;
            dl_vlan_pcp = (tci >> 13) as u8;
            ethertype = u16::from_be_bytes([data[16], data[17]]);
            offset = 18;
        }

        let mut header = PacketHeader {
            dl_src,
            dl_dst,
            dl_vlan,
            dl_vlan_pcp,
            dl_type: ethertype,
            nw_tos: 0,
            nw_proto: 0,
            nw_src: Ipv4Addr::UNSPECIFIED,
            nw_dst: Ipv4Addr::UNSPECIFIED,
            tp_src: 0,
            tp_dst: 0,
        };

        if ethertype == ETHERTYPE_IPV4 {
            let ip = &data[offset..];
            if ip.len() < 20 {
                return Err(DecodeError::Truncated {
                    what: "IPv4 header",
                    needed: 20,
                    available: ip.len(),
                });
            }
            if ip[0] >> 4 != 4 {
                return Err(DecodeError::Malformed("IPv4 version nibble"));
            }
            let ihl = (ip[0] & 0x0f) as usize * 4;
            if ihl < 20 || ip.len() < ihl {
                return Err(DecodeError::Malformed("IPv4 IHL"));
            }
            header.nw_tos = ip[1];
            header.nw_proto = ip[9];
            header.nw_src = Ipv4Addr::new(ip[12], ip[13], ip[14], ip[15]);
            header.nw_dst = Ipv4Addr::new(ip[16], ip[17], ip[18], ip[19]);
            let l4 = &ip[ihl..];
            match header.nw_proto {
                IPPROTO_TCP | IPPROTO_UDP if l4.len() >= 4 => {
                    header.tp_src = u16::from_be_bytes([l4[0], l4[1]]);
                    header.tp_dst = u16::from_be_bytes([l4[2], l4[3]]);
                }
                IPPROTO_ICMP if l4.len() >= 2 => {
                    header.tp_src = l4[0] as u16;
                    header.tp_dst = l4[1] as u16;
                }
                _ => {}
            }
        } else if ethertype == ETHERTYPE_ARP {
            // ARP: nw_proto carries the opcode, addresses the ARP SPA/TPA,
            // as the OpenFlow 1.0 specification prescribes.
            let arp = &data[offset..];
            if arp.len() >= 28 {
                header.nw_proto = arp[7];
                header.nw_src = Ipv4Addr::new(arp[14], arp[15], arp[16], arp[17]);
                header.nw_dst = Ipv4Addr::new(arp[24], arp[25], arp[26], arp[27]);
            }
        }

        Ok(header)
    }

    /// The IP source address as a raw big-endian u32 (useful for matching).
    pub fn nw_src_u32(&self) -> u32 {
        ipv4_to_u32(self.nw_src)
    }

    /// The IP destination address as a raw big-endian u32.
    pub fn nw_dst_u32(&self) -> u32 {
        ipv4_to_u32(self.nw_dst)
    }

    /// Replaces the IP source address from a raw u32.
    pub fn set_nw_src_u32(&mut self, raw: u32) {
        self.nw_src = u32_to_ipv4(raw);
    }

    /// Replaces the IP destination address from a raw u32.
    pub fn set_nw_dst_u32(&mut self, raw: u32) {
        self.nw_dst = u32_to_ipv4(raw);
    }
}

/// Computes the standard 16-bit one's-complement IPv4 header checksum.
pub fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = header.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xffff {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PacketHeader {
        PacketHeader::ipv4_udp(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 1, 200),
            4242,
            80,
        )
    }

    #[test]
    fn round_trip_udp() {
        let h = sample();
        let bytes = h.to_bytes();
        assert!(bytes.len() >= 60);
        let parsed = PacketHeader::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn round_trip_tcp_with_tos() {
        let mut h = PacketHeader::ipv4_tcp(
            MacAddr::from_id(3),
            MacAddr::from_id(4),
            Ipv4Addr::new(192, 168, 0, 1),
            Ipv4Addr::new(192, 168, 0, 2),
            5555,
            443,
        );
        h.nw_tos = 0xb8;
        let parsed = PacketHeader::from_bytes(&h.to_bytes()).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(parsed.nw_tos, 0xb8);
    }

    #[test]
    fn round_trip_vlan_tagged() {
        let mut h = sample();
        h.dl_vlan = 100;
        h.dl_vlan_pcp = 5;
        let bytes = h.to_bytes();
        let parsed = PacketHeader::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, h);
        assert!(parsed.has_vlan());
    }

    #[test]
    fn round_trip_icmp() {
        let mut h = sample();
        h.nw_proto = IPPROTO_ICMP;
        h.tp_src = 8; // echo request
        h.tp_dst = 0;
        let parsed = PacketHeader::from_bytes(&h.to_bytes()).unwrap();
        assert_eq!(parsed.nw_proto, IPPROTO_ICMP);
        assert_eq!(parsed.tp_src, 8);
        assert_eq!(parsed.tp_dst, 0);
    }

    #[test]
    fn ipv4_checksum_is_valid() {
        let h = sample();
        let bytes = h.to_bytes();
        // IPv4 header starts right after the 14-byte Ethernet header.
        let ip = &bytes[14..34];
        // Re-checksumming a valid header (checksum included) yields 0.
        assert_eq!(ipv4_checksum(ip), 0);
    }

    #[test]
    fn checksum_known_vector() {
        // Example from RFC 1071 style computation.
        let header: [u8; 20] = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(ipv4_checksum(&header), 0xb861);
    }

    #[test]
    fn truncated_frame_is_rejected() {
        assert!(matches!(
            PacketHeader::from_bytes(&[0u8; 10]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn truncated_ip_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.truncate(20);
        assert!(PacketHeader::from_bytes(&bytes).is_err());
    }

    #[test]
    fn non_ip_frame_parses_l2_only() {
        let mut h = sample();
        h.dl_type = 0x88cc; // LLDP
        let bytes = h.to_bytes();
        let parsed = PacketHeader::from_bytes(&bytes).unwrap();
        assert_eq!(parsed.dl_type, 0x88cc);
        assert_eq!(parsed.nw_src, Ipv4Addr::UNSPECIFIED);
    }

    #[test]
    fn default_packet_is_untagged() {
        let h = PacketHeader::default();
        assert!(!h.has_vlan());
        assert!(h.is_ipv4());
        assert!(h.has_l4_ports());
    }
}
