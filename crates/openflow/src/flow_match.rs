//! The OpenFlow 1.0 `ofp_match` structure and its matching semantics.
//!
//! Besides wire encoding and packet matching, this module implements the
//! relational analysis the general-probing technique of the paper needs:
//! whether two matches *overlap* (some packet matches both), whether one
//! *covers* another (matches a superset), and synthesising an *example
//! packet* for a match — the starting point for probe-packet generation.

use crate::constants::OFP_VLAN_NONE;
use crate::error::DecodeError;
use crate::packet::PacketHeader;
use crate::types::{ipv4_to_u32, u32_to_ipv4, MacAddr, PortNo};
use crate::wildcards::Wildcards;
use bytes::{Buf, BufMut};
use std::net::Ipv4Addr;

/// Encoded size of `ofp_match` on the wire.
pub const OFP_MATCH_LEN: usize = 40;

/// An OpenFlow 1.0 flow match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OfMatch {
    /// Wildcard flags; a field only participates in matching when its
    /// wildcard bit is clear (or, for IP addresses, when fewer than 32 bits
    /// are wildcarded).
    pub wildcards: Wildcards,
    /// Input switch port.
    pub in_port: PortNo,
    /// Ethernet source address.
    pub dl_src: MacAddr,
    /// Ethernet destination address.
    pub dl_dst: MacAddr,
    /// Input VLAN id ([`OFP_VLAN_NONE`] matches untagged packets).
    pub dl_vlan: u16,
    /// Input VLAN priority.
    pub dl_vlan_pcp: u8,
    /// Ethernet frame type.
    pub dl_type: u16,
    /// IP ToS (actually DSCP: only the upper 6 bits are significant).
    pub nw_tos: u8,
    /// IP protocol or lower 8 bits of ARP opcode.
    pub nw_proto: u8,
    /// IP source address.
    pub nw_src: Ipv4Addr,
    /// IP destination address.
    pub nw_dst: Ipv4Addr,
    /// TCP/UDP source port.
    pub tp_src: u16,
    /// TCP/UDP destination port.
    pub tp_dst: u16,
}

impl Default for OfMatch {
    fn default() -> Self {
        OfMatch::wildcard_all()
    }
}

impl OfMatch {
    /// A match with every field wildcarded (matches every packet).
    pub fn wildcard_all() -> Self {
        OfMatch {
            wildcards: Wildcards::all(),
            in_port: 0,
            dl_src: MacAddr::ZERO,
            dl_dst: MacAddr::ZERO,
            dl_vlan: 0,
            dl_vlan_pcp: 0,
            dl_type: 0,
            nw_tos: 0,
            nw_proto: 0,
            nw_src: Ipv4Addr::UNSPECIFIED,
            nw_dst: Ipv4Addr::UNSPECIFIED,
            tp_src: 0,
            tp_dst: 0,
        }
    }

    /// An exact match on every field of a concrete packet header arriving on
    /// `in_port`.
    pub fn exact_from_packet(pkt: &PacketHeader, in_port: PortNo) -> Self {
        OfMatch {
            wildcards: Wildcards::none(),
            in_port,
            dl_src: pkt.dl_src,
            dl_dst: pkt.dl_dst,
            dl_vlan: pkt.dl_vlan,
            dl_vlan_pcp: pkt.dl_vlan_pcp,
            dl_type: pkt.dl_type,
            nw_tos: pkt.nw_tos,
            nw_proto: pkt.nw_proto,
            nw_src: pkt.nw_src,
            nw_dst: pkt.nw_dst,
            tp_src: pkt.tp_src,
            tp_dst: pkt.tp_dst,
        }
    }

    /// A match on an IPv4 source/destination address pair with everything
    /// else wildcarded — the rule shape used throughout the paper's
    /// evaluation ("300 IP flows between hosts H1 and H2").
    pub fn ipv4_pair(nw_src: Ipv4Addr, nw_dst: Ipv4Addr) -> Self {
        let mut m = OfMatch::wildcard_all();
        m.wildcards = m
            .wildcards
            .with(Wildcards::DL_TYPE, false)
            .with_nw_src_bits(0)
            .with_nw_dst_bits(0);
        m.dl_type = crate::constants::ETHERTYPE_IPV4;
        m.nw_src = nw_src;
        m.nw_dst = nw_dst;
        m
    }

    /// Builder-style: match on the IP ToS value (used by RUM probing rules).
    pub fn with_nw_tos(mut self, tos: u8) -> Self {
        self.wildcards = self.wildcards.with(Wildcards::NW_TOS, false);
        self.nw_tos = tos;
        // ToS matching requires the packet to be IP.
        self.wildcards = self.wildcards.with(Wildcards::DL_TYPE, false);
        self.dl_type = crate::constants::ETHERTYPE_IPV4;
        self
    }

    /// Builder-style: match on the VLAN id.
    pub fn with_dl_vlan(mut self, vlan: u16) -> Self {
        self.wildcards = self.wildcards.with(Wildcards::DL_VLAN, false);
        self.dl_vlan = vlan;
        self
    }

    /// Builder-style: match on the input port.
    pub fn with_in_port(mut self, port: PortNo) -> Self {
        self.wildcards = self.wildcards.with(Wildcards::IN_PORT, false);
        self.in_port = port;
        self
    }

    /// Builder-style: match on the IP protocol.
    pub fn with_nw_proto(mut self, proto: u8) -> Self {
        self.wildcards = self
            .wildcards
            .with(Wildcards::NW_PROTO, false)
            .with(Wildcards::DL_TYPE, false);
        self.dl_type = crate::constants::ETHERTYPE_IPV4;
        self.nw_proto = proto;
        self
    }

    /// Builder-style: match on the transport destination port.
    pub fn with_tp_dst(mut self, port: u16) -> Self {
        self.wildcards = self.wildcards.with(Wildcards::TP_DST, false);
        self.tp_dst = port;
        self
    }

    /// Builder-style: match on the transport source port.
    pub fn with_tp_src(mut self, port: u16) -> Self {
        self.wildcards = self.wildcards.with(Wildcards::TP_SRC, false);
        self.tp_src = port;
        self
    }

    /// Builder-style: match on the Ethernet destination address.
    pub fn with_dl_dst(mut self, mac: MacAddr) -> Self {
        self.wildcards = self.wildcards.with(Wildcards::DL_DST, false);
        self.dl_dst = mac;
        self
    }

    /// Builder-style: match on an IPv4 source prefix of `prefix_len` bits.
    pub fn with_nw_src_prefix(mut self, addr: Ipv4Addr, prefix_len: u32) -> Self {
        self.wildcards = self
            .wildcards
            .with(Wildcards::DL_TYPE, false)
            .with_nw_src_bits(32 - prefix_len.min(32));
        self.dl_type = crate::constants::ETHERTYPE_IPV4;
        self.nw_src = addr;
        self
    }

    /// Builder-style: match on an IPv4 destination prefix of `prefix_len` bits.
    pub fn with_nw_dst_prefix(mut self, addr: Ipv4Addr, prefix_len: u32) -> Self {
        self.wildcards = self
            .wildcards
            .with(Wildcards::DL_TYPE, false)
            .with_nw_dst_bits(32 - prefix_len.min(32));
        self.dl_type = crate::constants::ETHERTYPE_IPV4;
        self.nw_dst = addr;
        self
    }

    /// Tests whether a concrete packet header arriving on `in_port` matches.
    pub fn matches(&self, pkt: &PacketHeader, in_port: PortNo) -> bool {
        let w = &self.wildcards;
        if !w.is_wildcarded(Wildcards::IN_PORT) && self.in_port != in_port {
            return false;
        }
        if !w.is_wildcarded(Wildcards::DL_SRC) && self.dl_src != pkt.dl_src {
            return false;
        }
        if !w.is_wildcarded(Wildcards::DL_DST) && self.dl_dst != pkt.dl_dst {
            return false;
        }
        if !w.is_wildcarded(Wildcards::DL_VLAN) && self.dl_vlan != pkt.dl_vlan {
            return false;
        }
        if !w.is_wildcarded(Wildcards::DL_VLAN_PCP)
            && pkt.dl_vlan != OFP_VLAN_NONE
            && self.dl_vlan_pcp != pkt.dl_vlan_pcp
        {
            return false;
        }
        if !w.is_wildcarded(Wildcards::DL_TYPE) && self.dl_type != pkt.dl_type {
            return false;
        }
        if !w.is_wildcarded(Wildcards::NW_TOS) && (self.nw_tos & 0xfc) != (pkt.nw_tos & 0xfc) {
            return false;
        }
        if !w.is_wildcarded(Wildcards::NW_PROTO) && self.nw_proto != pkt.nw_proto {
            return false;
        }
        let src_mask = w.nw_src_mask();
        if ipv4_to_u32(self.nw_src) & src_mask != pkt.nw_src_u32() & src_mask {
            return false;
        }
        let dst_mask = w.nw_dst_mask();
        if ipv4_to_u32(self.nw_dst) & dst_mask != pkt.nw_dst_u32() & dst_mask {
            return false;
        }
        if !w.is_wildcarded(Wildcards::TP_SRC) && self.tp_src != pkt.tp_src {
            return false;
        }
        if !w.is_wildcarded(Wildcards::TP_DST) && self.tp_dst != pkt.tp_dst {
            return false;
        }
        true
    }

    /// True if some packet could match both `self` and `other`.
    ///
    /// Used by the general-probing technique to detect rules whose probe
    /// packets might be hijacked by other entries, and by the flow table for
    /// `CHECK_OVERLAP` semantics.
    pub fn overlaps(&self, other: &OfMatch) -> bool {
        fn field_compatible<T: PartialEq>(a_wild: bool, a_val: T, b_wild: bool, b_val: T) -> bool {
            a_wild || b_wild || a_val == b_val
        }

        let (wa, wb) = (&self.wildcards, &other.wildcards);
        if !field_compatible(
            wa.is_wildcarded(Wildcards::IN_PORT),
            self.in_port,
            wb.is_wildcarded(Wildcards::IN_PORT),
            other.in_port,
        ) {
            return false;
        }
        if !field_compatible(
            wa.is_wildcarded(Wildcards::DL_SRC),
            self.dl_src,
            wb.is_wildcarded(Wildcards::DL_SRC),
            other.dl_src,
        ) {
            return false;
        }
        if !field_compatible(
            wa.is_wildcarded(Wildcards::DL_DST),
            self.dl_dst,
            wb.is_wildcarded(Wildcards::DL_DST),
            other.dl_dst,
        ) {
            return false;
        }
        if !field_compatible(
            wa.is_wildcarded(Wildcards::DL_VLAN),
            self.dl_vlan,
            wb.is_wildcarded(Wildcards::DL_VLAN),
            other.dl_vlan,
        ) {
            return false;
        }
        if !field_compatible(
            wa.is_wildcarded(Wildcards::DL_VLAN_PCP),
            self.dl_vlan_pcp,
            wb.is_wildcarded(Wildcards::DL_VLAN_PCP),
            other.dl_vlan_pcp,
        ) {
            return false;
        }
        if !field_compatible(
            wa.is_wildcarded(Wildcards::DL_TYPE),
            self.dl_type,
            wb.is_wildcarded(Wildcards::DL_TYPE),
            other.dl_type,
        ) {
            return false;
        }
        if !field_compatible(
            wa.is_wildcarded(Wildcards::NW_TOS),
            self.nw_tos & 0xfc,
            wb.is_wildcarded(Wildcards::NW_TOS),
            other.nw_tos & 0xfc,
        ) {
            return false;
        }
        if !field_compatible(
            wa.is_wildcarded(Wildcards::NW_PROTO),
            self.nw_proto,
            wb.is_wildcarded(Wildcards::NW_PROTO),
            other.nw_proto,
        ) {
            return false;
        }
        // For IP prefixes: compatible iff equal on the intersection of masks.
        let common_src = wa.nw_src_mask() & wb.nw_src_mask();
        if ipv4_to_u32(self.nw_src) & common_src != ipv4_to_u32(other.nw_src) & common_src {
            return false;
        }
        let common_dst = wa.nw_dst_mask() & wb.nw_dst_mask();
        if ipv4_to_u32(self.nw_dst) & common_dst != ipv4_to_u32(other.nw_dst) & common_dst {
            return false;
        }
        if !field_compatible(
            wa.is_wildcarded(Wildcards::TP_SRC),
            self.tp_src,
            wb.is_wildcarded(Wildcards::TP_SRC),
            other.tp_src,
        ) {
            return false;
        }
        if !field_compatible(
            wa.is_wildcarded(Wildcards::TP_DST),
            self.tp_dst,
            wb.is_wildcarded(Wildcards::TP_DST),
            other.tp_dst,
        ) {
            return false;
        }
        true
    }

    /// True if `self` matches every packet that `other` matches (i.e. `self`
    /// is equal to or strictly more general than `other`).
    pub fn covers(&self, other: &OfMatch) -> bool {
        fn field_covers<T: PartialEq>(a_wild: bool, a_val: T, b_wild: bool, b_val: T) -> bool {
            a_wild || (!b_wild && a_val == b_val)
        }

        let (wa, wb) = (&self.wildcards, &other.wildcards);
        field_covers(
            wa.is_wildcarded(Wildcards::IN_PORT),
            self.in_port,
            wb.is_wildcarded(Wildcards::IN_PORT),
            other.in_port,
        ) && field_covers(
            wa.is_wildcarded(Wildcards::DL_SRC),
            self.dl_src,
            wb.is_wildcarded(Wildcards::DL_SRC),
            other.dl_src,
        ) && field_covers(
            wa.is_wildcarded(Wildcards::DL_DST),
            self.dl_dst,
            wb.is_wildcarded(Wildcards::DL_DST),
            other.dl_dst,
        ) && field_covers(
            wa.is_wildcarded(Wildcards::DL_VLAN),
            self.dl_vlan,
            wb.is_wildcarded(Wildcards::DL_VLAN),
            other.dl_vlan,
        ) && field_covers(
            wa.is_wildcarded(Wildcards::DL_VLAN_PCP),
            self.dl_vlan_pcp,
            wb.is_wildcarded(Wildcards::DL_VLAN_PCP),
            other.dl_vlan_pcp,
        ) && field_covers(
            wa.is_wildcarded(Wildcards::DL_TYPE),
            self.dl_type,
            wb.is_wildcarded(Wildcards::DL_TYPE),
            other.dl_type,
        ) && field_covers(
            wa.is_wildcarded(Wildcards::NW_TOS),
            self.nw_tos & 0xfc,
            wb.is_wildcarded(Wildcards::NW_TOS),
            other.nw_tos & 0xfc,
        ) && field_covers(
            wa.is_wildcarded(Wildcards::NW_PROTO),
            self.nw_proto,
            wb.is_wildcarded(Wildcards::NW_PROTO),
            other.nw_proto,
        ) && {
            // self covers other on an IP field iff self's mask is a subset of
            // other's mask and the masked addresses agree.
            let ma = wa.nw_src_mask();
            let mb = wb.nw_src_mask();
            (ma & !mb) == 0 && (ipv4_to_u32(self.nw_src) & ma) == (ipv4_to_u32(other.nw_src) & ma)
        } && {
            let ma = wa.nw_dst_mask();
            let mb = wb.nw_dst_mask();
            (ma & !mb) == 0 && (ipv4_to_u32(self.nw_dst) & ma) == (ipv4_to_u32(other.nw_dst) & ma)
        } && field_covers(
            wa.is_wildcarded(Wildcards::TP_SRC),
            self.tp_src,
            wb.is_wildcarded(Wildcards::TP_SRC),
            other.tp_src,
        ) && field_covers(
            wa.is_wildcarded(Wildcards::TP_DST),
            self.tp_dst,
            wb.is_wildcarded(Wildcards::TP_DST),
            other.tp_dst,
        )
    }

    /// True when this is an exact match (no wildcarded fields).
    pub fn is_exact(&self) -> bool {
        self.wildcards.raw()
            & !(Wildcards::NW_BITS_MASK << Wildcards::NW_SRC_SHIFT)
            & !(Wildcards::NW_BITS_MASK << Wildcards::NW_DST_SHIFT)
            == 0
            && self.wildcards.nw_src_bits() == 0
            && self.wildcards.nw_dst_bits() == 0
    }

    /// Synthesises a concrete packet header (and input port) that matches
    /// this rule.  Wildcarded fields take neutral defaults; specified fields
    /// take the rule's values.  The result is the seed for probe-packet
    /// generation in the RUM layer.
    pub fn example_packet(&self, template: &PacketHeader) -> (PacketHeader, PortNo) {
        let w = &self.wildcards;
        let mut pkt = *template;
        let in_port = if w.is_wildcarded(Wildcards::IN_PORT) {
            0
        } else {
            self.in_port
        };
        if !w.is_wildcarded(Wildcards::DL_SRC) {
            pkt.dl_src = self.dl_src;
        }
        if !w.is_wildcarded(Wildcards::DL_DST) {
            pkt.dl_dst = self.dl_dst;
        }
        if !w.is_wildcarded(Wildcards::DL_VLAN) {
            pkt.dl_vlan = self.dl_vlan;
        }
        if !w.is_wildcarded(Wildcards::DL_VLAN_PCP) {
            pkt.dl_vlan_pcp = self.dl_vlan_pcp;
        }
        if !w.is_wildcarded(Wildcards::DL_TYPE) {
            pkt.dl_type = self.dl_type;
        }
        if !w.is_wildcarded(Wildcards::NW_TOS) {
            pkt.nw_tos = self.nw_tos;
        }
        if !w.is_wildcarded(Wildcards::NW_PROTO) {
            pkt.nw_proto = self.nw_proto;
        }
        let src_mask = w.nw_src_mask();
        pkt.set_nw_src_u32((pkt.nw_src_u32() & !src_mask) | (ipv4_to_u32(self.nw_src) & src_mask));
        let dst_mask = w.nw_dst_mask();
        pkt.set_nw_dst_u32((pkt.nw_dst_u32() & !dst_mask) | (ipv4_to_u32(self.nw_dst) & dst_mask));
        if !w.is_wildcarded(Wildcards::TP_SRC) {
            pkt.tp_src = self.tp_src;
        }
        if !w.is_wildcarded(Wildcards::TP_DST) {
            pkt.tp_dst = self.tp_dst;
        }
        (pkt, in_port)
    }

    /// Encodes into the 40-byte wire representation.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u32(self.wildcards.raw());
        buf.put_u16(self.in_port);
        buf.put_slice(&self.dl_src.octets());
        buf.put_slice(&self.dl_dst.octets());
        buf.put_u16(self.dl_vlan);
        buf.put_u8(self.dl_vlan_pcp);
        buf.put_u8(0); // pad
        buf.put_u16(self.dl_type);
        buf.put_u8(self.nw_tos);
        buf.put_u8(self.nw_proto);
        buf.put_slice(&[0, 0]); // pad
        buf.put_u32(ipv4_to_u32(self.nw_src));
        buf.put_u32(ipv4_to_u32(self.nw_dst));
        buf.put_u16(self.tp_src);
        buf.put_u16(self.tp_dst);
    }

    /// Decodes from the 40-byte wire representation.
    pub fn decode<B: Buf>(buf: &mut B) -> Result<Self, DecodeError> {
        if buf.remaining() < OFP_MATCH_LEN {
            return Err(DecodeError::Truncated {
                what: "ofp_match",
                needed: OFP_MATCH_LEN,
                available: buf.remaining(),
            });
        }
        let wildcards = Wildcards::from_raw(buf.get_u32());
        let in_port = buf.get_u16();
        let mut dl_src = [0u8; 6];
        buf.copy_to_slice(&mut dl_src);
        let mut dl_dst = [0u8; 6];
        buf.copy_to_slice(&mut dl_dst);
        let dl_vlan = buf.get_u16();
        let dl_vlan_pcp = buf.get_u8();
        buf.advance(1);
        let dl_type = buf.get_u16();
        let nw_tos = buf.get_u8();
        let nw_proto = buf.get_u8();
        buf.advance(2);
        let nw_src = u32_to_ipv4(buf.get_u32());
        let nw_dst = u32_to_ipv4(buf.get_u32());
        let tp_src = buf.get_u16();
        let tp_dst = buf.get_u16();
        Ok(OfMatch {
            wildcards,
            in_port,
            dl_src: MacAddr(dl_src),
            dl_dst: MacAddr(dl_dst),
            dl_vlan,
            dl_vlan_pcp,
            dl_type,
            nw_tos,
            nw_proto,
            nw_src,
            nw_dst,
            tp_src,
            tp_dst,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::{ETHERTYPE_IPV4, IPPROTO_TCP, IPPROTO_UDP};
    use bytes::BytesMut;

    fn pkt(src: [u8; 4], dst: [u8; 4], tos: u8) -> PacketHeader {
        let mut p = PacketHeader::ipv4_udp(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Ipv4Addr::from(src),
            Ipv4Addr::from(dst),
            1000,
            2000,
        );
        p.nw_tos = tos;
        p
    }

    #[test]
    fn wildcard_all_matches_any_packet() {
        let m = OfMatch::wildcard_all();
        assert!(m.matches(&pkt([10, 0, 0, 1], [10, 0, 0, 2], 0), 3));
        assert!(m.matches(&PacketHeader::default(), 0));
    }

    #[test]
    fn ipv4_pair_matches_only_that_pair() {
        let m = OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
        assert!(m.matches(&pkt([10, 0, 0, 1], [10, 0, 0, 2], 0), 1));
        assert!(!m.matches(&pkt([10, 0, 0, 1], [10, 0, 0, 3], 0), 1));
        assert!(!m.matches(&pkt([10, 0, 0, 9], [10, 0, 0, 2], 0), 1));
    }

    #[test]
    fn tos_matching_ignores_low_bits() {
        // The spec matches on the 6-bit DSCP, so the two ECN bits are ignored.
        let m = OfMatch::wildcard_all().with_nw_tos(0xb8);
        assert!(m.matches(&pkt([1, 1, 1, 1], [2, 2, 2, 2], 0xb8), 0));
        assert!(m.matches(&pkt([1, 1, 1, 1], [2, 2, 2, 2], 0xbb), 0));
        assert!(!m.matches(&pkt([1, 1, 1, 1], [2, 2, 2, 2], 0x00), 0));
    }

    #[test]
    fn prefix_matching() {
        let m = OfMatch::wildcard_all().with_nw_dst_prefix(Ipv4Addr::new(10, 0, 1, 0), 24);
        assert!(m.matches(&pkt([1, 2, 3, 4], [10, 0, 1, 200], 0), 0));
        assert!(!m.matches(&pkt([1, 2, 3, 4], [10, 0, 2, 200], 0), 0));
    }

    #[test]
    fn in_port_matching() {
        let m = OfMatch::wildcard_all().with_in_port(7);
        assert!(m.matches(&PacketHeader::default(), 7));
        assert!(!m.matches(&PacketHeader::default(), 8));
    }

    #[test]
    fn exact_match_round_trip_via_packet() {
        let p = pkt([10, 1, 1, 1], [10, 2, 2, 2], 0x10);
        let m = OfMatch::exact_from_packet(&p, 4);
        assert!(m.is_exact());
        assert!(m.matches(&p, 4));
        assert!(!m.matches(&p, 5));
        let mut p2 = p;
        p2.tp_dst = 9999;
        assert!(!m.matches(&p2, 4));
    }

    #[test]
    fn encode_decode_round_trip() {
        let m = OfMatch::ipv4_pair(Ipv4Addr::new(172, 16, 0, 1), Ipv4Addr::new(172, 16, 5, 9))
            .with_nw_tos(0x20)
            .with_in_port(3)
            .with_tp_dst(80)
            .with_nw_proto(IPPROTO_TCP);
        let mut buf = BytesMut::new();
        m.encode(&mut buf);
        assert_eq!(buf.len(), OFP_MATCH_LEN);
        let decoded = OfMatch::decode(&mut buf.freeze()).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn decode_truncated() {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&[0u8; 12]);
        assert!(matches!(
            OfMatch::decode(&mut buf.freeze()),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn overlap_disjoint_pairs() {
        let a = OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
        let b = OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 3), Ipv4Addr::new(10, 0, 0, 2));
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn overlap_prefix_vs_exact() {
        let prefix = OfMatch::wildcard_all().with_nw_dst_prefix(Ipv4Addr::new(10, 0, 0, 0), 8);
        let exact = OfMatch::ipv4_pair(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(10, 9, 9, 9));
        assert!(prefix.overlaps(&exact));
        assert!(exact.overlaps(&prefix));
        let outside = OfMatch::ipv4_pair(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(11, 0, 0, 1));
        assert!(!prefix.overlaps(&outside));
    }

    #[test]
    fn overlap_on_different_fields_is_still_overlap() {
        // One constrains ToS, the other constrains tp_dst; a packet with both
        // values exists, so they overlap.
        let a = OfMatch::wildcard_all().with_nw_tos(0x40);
        let b = OfMatch::wildcard_all().with_tp_dst(80);
        assert!(a.overlaps(&b));
    }

    #[test]
    fn covers_relationships() {
        let all = OfMatch::wildcard_all();
        let pair = OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
        let prefix = OfMatch::wildcard_all().with_nw_src_prefix(Ipv4Addr::new(10, 0, 0, 0), 24);
        assert!(all.covers(&pair));
        assert!(!pair.covers(&all));
        assert!(prefix
            .covers(&OfMatch::wildcard_all().with_nw_src_prefix(Ipv4Addr::new(10, 0, 0, 0), 32)));
        assert!(pair.covers(&pair));
        // A /24 on a *different* network does not cover.
        let other_prefix =
            OfMatch::wildcard_all().with_nw_src_prefix(Ipv4Addr::new(10, 0, 1, 0), 24);
        assert!(!other_prefix.covers(&pair.clone()));
    }

    #[test]
    fn covers_implies_overlap() {
        let a = OfMatch::wildcard_all().with_nw_src_prefix(Ipv4Addr::new(10, 0, 0, 0), 16);
        let b = OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 3, 4), Ipv4Addr::new(10, 0, 0, 9));
        assert!(a.covers(&b));
        assert!(a.overlaps(&b));
    }

    #[test]
    fn example_packet_matches_its_own_rule() {
        let rules = [
            OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2)),
            OfMatch::wildcard_all().with_nw_tos(0x3c),
            OfMatch::wildcard_all()
                .with_nw_dst_prefix(Ipv4Addr::new(192, 168, 0, 0), 16)
                .with_nw_proto(IPPROTO_UDP)
                .with_tp_dst(53),
            OfMatch::wildcard_all().with_in_port(9).with_dl_vlan(100),
        ];
        let template = PacketHeader::default();
        for rule in &rules {
            let (p, port) = rule.example_packet(&template);
            assert!(rule.matches(&p, port), "example packet must match {rule:?}");
        }
    }

    #[test]
    fn example_packet_preserves_template_for_wildcarded_fields() {
        let template = pkt([9, 9, 9, 9], [8, 8, 8, 8], 0x04);
        let rule = OfMatch::wildcard_all().with_tp_dst(443);
        let (p, _) = rule.example_packet(&template);
        assert_eq!(p.nw_src, Ipv4Addr::new(9, 9, 9, 9));
        assert_eq!(p.tp_dst, 443);
    }

    #[test]
    fn ipv4_pair_is_ip_only() {
        let m = OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(m.dl_type, ETHERTYPE_IPV4);
        assert!(!m.wildcards.is_wildcarded(Wildcards::DL_TYPE));
        assert!(!m.is_exact());
    }
}
