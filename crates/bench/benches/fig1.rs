//! Criterion bench for the Figure 1b experiment (reduced scale).
//!
//! Measures the wall-clock cost of simulating the consistent path migration
//! with the baseline (buggy barriers) and with general probing, and asserts
//! the headline result as a side effect: the baseline drops packets, probing
//! does not.

use criterion::{criterion_group, criterion_main, Criterion};
use rum_bench::experiments::{run_end_to_end, EndToEndTechnique};

fn fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_broken_time");
    group.sample_size(10);
    group.bench_function("barriers_30flows", |b| {
        b.iter(|| {
            let r = run_end_to_end(EndToEndTechnique::Barriers, 30, 250, 42);
            assert!(r.total_drops > 0);
            r.flows.len()
        })
    });
    group.bench_function("general_probing_30flows", |b| {
        b.iter(|| {
            let r = run_end_to_end(EndToEndTechnique::General, 30, 250, 42);
            assert_eq!(r.total_drops, 0);
            r.flows.len()
        })
    });
    group.finish();
}

criterion_group!(benches, fig1);
criterion_main!(benches);
