//! Criterion bench for the Figure 7 experiment (probing techniques, reduced
//! scale).

use criterion::{criterion_group, criterion_main, Criterion};
use rum_bench::experiments::{run_end_to_end, EndToEndTechnique};

fn fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_probing");
    group.sample_size(10);
    for technique in [
        EndToEndTechnique::Sequential,
        EndToEndTechnique::General,
        EndToEndTechnique::NoWait,
    ] {
        group.bench_function(technique.label(), move |b| {
            b.iter(|| {
                let r = run_end_to_end(technique, 25, 250, 9);
                // The probing techniques must be loss-free; "no wait" is only
                // the timing lower bound and offers no consistency guarantee.
                if !matches!(technique, EndToEndTechnique::NoWait) {
                    assert_eq!(r.total_drops, 0);
                }
                r.mean_update_ms
            })
        });
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
