//! Criterion bench for the Figure 6 experiment (control-plane techniques,
//! reduced scale).

use criterion::{criterion_group, criterion_main, Criterion};
use rum_bench::experiments::{run_end_to_end, EndToEndTechnique};
use simnet::SimTime;

fn fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_controlplane");
    group.sample_size(10);
    for technique in [
        EndToEndTechnique::Barriers,
        EndToEndTechnique::Timeout(SimTime::from_millis(300)),
        EndToEndTechnique::Adaptive(200.0),
        EndToEndTechnique::Adaptive(250.0),
    ] {
        group.bench_function(technique.label(), move |b| {
            b.iter(|| run_end_to_end(technique, 25, 250, 7).mean_update_ms)
        });
    }
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
