//! Criterion-registered throughput benches for the message-pipeline hot
//! paths: bulk flow-mod install into the indexed [`ofswitch::FlowTable`]
//! (10k–1M entries, with the linear-scan oracle as baseline at the sizes
//! where its quadratic cost is still tolerable), OpenFlow codec
//! encode/decode throughput, and sans-IO engine/session drain rates.
//!
//! `cargo bench --bench throughput` prints ops/sec-comparable wall times;
//! the same workloads feed the `bench_results` binary that writes the
//! `BENCH_results.json` throughput rows.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rum_bench::throughput::{
    bulk_flow_mods, codec_messages, decode_throughput, encode_throughput, engine_drain_throughput,
    install_indexed, install_linear, session_drain_throughput,
};

fn flow_mod_install(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_mod_install");
    group.sample_size(3);
    for n in [10_000usize, 100_000, 1_000_000] {
        let mods = bulk_flow_mods(n);
        group.bench_function(format!("indexed_{n}"), |b| {
            b.iter(|| install_indexed(black_box(&mods)))
        });
    }
    // The linear baseline is quadratic; 10k (~hundreds of ms per run) is the
    // largest size worth spinning here.  `bench_results` measures it once at
    // 100k for the recorded speedup.
    let mods = bulk_flow_mods(10_000);
    group.bench_function("linear_10000", |b| {
        b.iter(|| install_linear(black_box(&mods)))
    });
    group.finish();
}

fn codec_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_throughput");
    group.sample_size(20);
    let msgs = codec_messages(4096);
    let mut wire = Vec::new();
    encode_throughput(&msgs, &mut wire);
    let frozen = wire.clone();
    group.bench_function("encode_4096_msgs_reused_buffer", |b| {
        b.iter(|| encode_throughput(black_box(&msgs), &mut wire))
    });
    group.bench_function("decode_4096_msgs", |b| {
        b.iter(|| decode_throughput(black_box(&frozen), msgs.len()))
    });
    group.finish();
}

fn engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    group.bench_function("rum_engine_drain_8192_inputs", |b| {
        b.iter(|| engine_drain_throughput(8192))
    });
    group.bench_function("update_session_drain_8192_mods", |b| {
        b.iter(|| session_drain_throughput(8192))
    });
    group.finish();
}

criterion_group!(
    benches,
    flow_mod_install,
    codec_throughput,
    engine_throughput
);
criterion_main!(benches);
