//! Micro-benchmarks of the building blocks: OpenFlow codec throughput,
//! flow-table lookups, probe synthesis and the simulator event loop.  These
//! are not paper figures; they document where the reproduction spends time
//! and guard against performance regressions.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ofswitch::FlowTable;
use openflow::messages::FlowMod;
use openflow::{Action, OfCodec, OfMatch, OfMessage, PacketHeader};
use rum::probe::{synthesize_general_probe, KnownRule};
use std::net::Ipv4Addr;

fn codec_roundtrip(c: &mut Criterion) {
    let msg = OfMessage::FlowMod {
        xid: 7,
        body: FlowMod::add(
            OfMatch::ipv4_pair(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 1, 0, 1)),
            100,
            vec![Action::SetNwTos(8), Action::output(3)],
        ),
    };
    let bytes = msg.encode_to_vec().unwrap();
    c.bench_function("openflow_flowmod_encode", |b| {
        b.iter(|| black_box(&msg).encode_to_vec().unwrap().len())
    });
    c.bench_function("openflow_flowmod_decode", |b| {
        b.iter(|| OfMessage::decode(black_box(&bytes)).unwrap().xid())
    });
    c.bench_function("openflow_stream_codec_64_messages", |b| {
        let codec = OfCodec::new();
        let batch: Vec<OfMessage> = (0..64u32)
            .map(|i| OfMessage::BarrierRequest { xid: i })
            .collect();
        let wire = codec.encode_batch(&batch).unwrap();
        b.iter(|| {
            let mut codec = OfCodec::new();
            codec.feed(black_box(&wire));
            codec.drain_messages().unwrap().len()
        })
    });
}

fn flow_table_lookup(c: &mut Criterion) {
    let mut table = FlowTable::new(0);
    for i in 0..1000u32 {
        let fm = FlowMod::add(
            OfMatch::ipv4_pair(
                Ipv4Addr::new(10, (i >> 8) as u8, (i & 0xff) as u8, 1),
                Ipv4Addr::new(10, 128, (i & 0xff) as u8, 1),
            ),
            100,
            vec![Action::output(2)],
        )
        .with_cookie(u64::from(i));
        table.apply(&fm, std::time::Duration::ZERO).unwrap();
    }
    let pkt = PacketHeader::ipv4_udp(
        openflow::MacAddr::from_id(1),
        openflow::MacAddr::from_id(2),
        Ipv4Addr::new(10, 1, 200, 1),
        Ipv4Addr::new(10, 128, 200, 1),
        1,
        2,
    );
    c.bench_function("flow_table_lookup_1000_rules", |b| {
        b.iter(|| table.peek_lookup(black_box(&pkt), 1).map(|e| e.cookie))
    });
}

fn probe_synthesis(c: &mut Criterion) {
    let known: Vec<KnownRule> = (0..500u32)
        .map(|i| KnownRule {
            match_: OfMatch::ipv4_pair(
                Ipv4Addr::new(10, 0, (i >> 8) as u8, (i & 0xff) as u8),
                Ipv4Addr::new(10, 1, (i >> 8) as u8, (i & 0xff) as u8),
            ),
            priority: 100,
            actions: vec![Action::output(2)],
        })
        .collect();
    let rule = known[250].clone();
    c.bench_function("general_probe_synthesis_500_known_rules", |b| {
        b.iter(|| synthesize_general_probe(black_box(&rule), black_box(&known), 0xf8, 77).unwrap())
    });
}

criterion_group!(benches, codec_roundtrip, flow_table_lookup, probe_synthesis);
criterion_main!(benches);
