//! Criterion bench for the §5.1 barrier-layer overhead experiment (reduced
//! scale).

use criterion::{criterion_group, criterion_main, Criterion};
use rum_bench::experiments::run_barrier_layer;

fn barrier_layer(c: &mut Criterion) {
    let mut group = c.benchmark_group("barrier_layer_overhead");
    group.sample_size(10);
    group.bench_function("ordering_switch_batch10", |b| {
        b.iter(|| run_barrier_layer(10, false, 60, 31).overhead_factor())
    });
    group.bench_function("reordering_switch_batch10", |b| {
        b.iter(|| run_barrier_layer(10, true, 60, 31).overhead_factor())
    });
    group.finish();
}

criterion_group!(benches, barrier_layer);
criterion_main!(benches);
