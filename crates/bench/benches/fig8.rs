//! Criterion bench for the Figure 8 experiment (activation delay, reduced
//! scale, no data-plane traffic for speed).

use criterion::{criterion_group, criterion_main, Criterion};
use rum_bench::experiments::{run_activation_delay, EndToEndTechnique};
use simnet::SimTime;

fn fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_activation_delay");
    group.sample_size(10);
    for technique in [
        EndToEndTechnique::Barriers,
        EndToEndTechnique::Timeout(SimTime::from_millis(300)),
        EndToEndTechnique::Adaptive(200.0),
        EndToEndTechnique::Sequential,
        EndToEndTechnique::General,
    ] {
        group.bench_function(technique.label(), move |b| {
            b.iter(|| run_activation_delay(technique, 40, 40, 0, 13).len())
        });
    }
    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
