//! Criterion bench for the §5.2 PacketIn/PacketOut microbenchmarks.

use criterion::{criterion_group, criterion_main, Criterion};
use rum_bench::experiments::run_pktio_rates;

fn pktio(c: &mut Criterion) {
    let mut group = c.benchmark_group("pktio_rates");
    group.sample_size(10);
    group.bench_function("all_microbenchmarks", |b| {
        b.iter(|| {
            let r = run_pktio_rates(55);
            assert!(r.packet_out_per_sec > 1000.0);
            r.packet_in_per_sec
        })
    });
    group.finish();
}

criterion_group!(benches, pktio);
criterion_main!(benches);
