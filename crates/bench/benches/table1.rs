//! Criterion bench for Table 1 (usable update rate, reduced scale).

use criterion::{criterion_group, criterion_main, Criterion};
use rum_bench::experiments::run_update_rate;

fn table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_update_rate");
    group.sample_size(10);
    for (batch, window) in [(1usize, 20usize), (10, 50), (20, 100)] {
        group.bench_function(format!("probe_every_{batch}_K{window}"), move |b| {
            b.iter(|| run_update_rate(batch, window, 200, 21).normalized())
        });
    }
    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
