//! Criterion bench isolating the cost of the telemetry hot-path operations:
//! the bulk indexed flow-mod install with and without the per-apply metric
//! updates (sharded counter increment + per-thread recorder observation).
//! The two curves should be near-indistinguishable — `bench_results` records
//! the same comparison as the `telemetry_overhead/*` rows of
//! `BENCH_results.json`, gated at < 3% by `validate_results`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rum_bench::throughput::{bulk_flow_mods, install_indexed, install_indexed_instrumented};
use telemetry::Registry;

fn telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    group.sample_size(10);
    for n in [10_000usize, 100_000] {
        let mods = bulk_flow_mods(n);
        group.bench_function(format!("uninstrumented_{n}"), |b| {
            b.iter(|| install_indexed(black_box(&mods)))
        });
        group.bench_function(format!("instrumented_{n}"), |b| {
            b.iter(|| install_indexed_instrumented(black_box(&mods), &Registry::new()))
        });
    }
    group.finish();
}

criterion_group!(benches, telemetry_overhead);
criterion_main!(benches);
